// Robustness to logging discrepancies (the paper's challenge 1): degraded
// corpora — random line loss, corruption, missing time windows, absent
// sources — must degrade the analysis gracefully, never crash it.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/analysis_context.hpp"
#include "core/leadtime.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "loggen/degrade.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"

namespace hpcfail {
namespace {

/// Detection + diagnosis over the parsed corpus's full extent.
std::vector<core::AnalyzedFailure> diagnose_all(const parsers::ParsedCorpus& parsed) {
  const core::AnalysisContext ctx(
      parsed.store, &parsed.jobs, parsed.store.first_time(),
      parsed.store.last_time() + util::Duration::microseconds(1));
  return ctx.failures();
}

struct Baseline {
  faultsim::SimulationResult sim;
  loggen::Corpus corpus;
  std::size_t failures;
};

const Baseline& baseline() {
  static const Baseline b = [] {
    auto sim =
        faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 7, 606))
            .run();
    auto corpus = loggen::build_corpus(sim);
    const auto parsed = parsers::parse_corpus(corpus);
    const auto failures = diagnose_all(parsed);
    return Baseline{std::move(sim), std::move(corpus), failures.size()};
  }();
  return b;
}

std::size_t detect_on(const loggen::Corpus& corpus) {
  const auto parsed = parsers::parse_corpus(corpus);
  return diagnose_all(parsed).size();
}

TEST(RobustnessTest, RandomLineLossDegradesGracefully) {
  loggen::DegradeConfig cfg;
  cfg.drop_line_fraction = 0.10;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const std::size_t found = detect_on(degraded);
  // 10% line loss may drop some markers but most failures survive.
  EXPECT_GT(found, baseline().failures * 7 / 10);
  EXPECT_LE(found, baseline().failures + 2);
}

TEST(RobustnessTest, HeavyCorruptionNeverCrashes) {
  loggen::DegradeConfig cfg;
  cfg.corrupt_line_fraction = 0.5;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  EXPECT_GT(parsed.skipped_lines, 0u);  // corruption rejects some lines
  const auto failures = diagnose_all(parsed);
  EXPECT_GT(failures.size(), 0u);
}

TEST(RobustnessTest, MissingTimeWindowRemovesThoseFailures) {
  const auto& b = baseline();
  loggen::DegradeConfig cfg;
  cfg.gap_begin = b.corpus.begin + util::Duration::days(2);
  cfg.gap_end = b.corpus.begin + util::Duration::days(4);
  const auto degraded = loggen::degrade_corpus(b.corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  // The gap is empty of records.
  EXPECT_TRUE(parsed.store.range(*cfg.gap_begin, *cfg.gap_end).empty());
  // Failures outside the gap still detected.
  const auto failures = diagnose_all(parsed);
  std::size_t planted_outside = 0;
  for (const auto& f : b.sim.truth.failures) {
    if (f.fail_time < *cfg.gap_begin || f.fail_time >= *cfg.gap_end) ++planted_outside;
  }
  EXPECT_GT(failures.size(), planted_outside * 8 / 10);
}

TEST(RobustnessTest, DroppingExternalSourcesKillsLeadTimeOnly) {
  loggen::DegradeConfig cfg;
  cfg.drop_source[static_cast<std::size_t>(logmodel::LogSource::Erd)] = true;
  cfg.drop_source[static_cast<std::size_t>(logmodel::LogSource::Controller)] = true;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  const auto failures = diagnose_all(parsed);
  // Detection barely changes (it is internal-log driven)...
  EXPECT_GT(failures.size(), baseline().failures * 9 / 10);
  // ...but without the external universe no lead-time enhancement exists
  // (the S5 situation, Observation 5).
  const core::LeadTimeAnalyzer analyzer(parsed.store);
  EXPECT_EQ(analyzer.summarize(failures).enhanceable, 0u);
}

// --- Corruption matrix -----------------------------------------------------
//
// Each case damages the corpus *text* in memory in a specific way, then
// checks that the streaming chunked ingest of the damaged bytes produces
// byte-for-byte the same accounting (total / parsed / skipped lines, store
// size) as the in-memory parse of the same damaged text.  This pins the
// skip bookkeeping exactly: damage may cost records, but never accounting.

/// Writes `corpus` to a scratch dir and streams it back with deliberately
/// small chunks so the damage spans chunk boundaries.
parsers::IngestResult ingest_damaged(const loggen::Corpus& corpus) {
  const std::string dir = "/tmp/hpcfail_robustness_corruption";
  std::filesystem::remove_all(dir);
  loggen::write_corpus(corpus, dir);
  parsers::IngestOptions options;
  options.chunk_bytes = 4096;
  auto result = parsers::ingest_files(dir, options);
  std::filesystem::remove_all(dir);
  return result;
}

void expect_accounting_matches(const loggen::Corpus& damaged) {
  const auto reference = parsers::parse_corpus(damaged);
  const auto streamed = ingest_damaged(damaged);
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(streamed.total_lines, reference.total_lines);
  EXPECT_EQ(streamed.parsed_records, reference.parsed_records);
  EXPECT_EQ(streamed.skipped_lines, reference.skipped_lines);
  EXPECT_EQ(streamed.store.size(), reference.store.size());
  EXPECT_EQ(streamed.parsed_records + streamed.skipped_lines, streamed.total_lines);
}

TEST(CorruptionMatrixTest, GarbledBytesMidRecord) {
  loggen::Corpus damaged = baseline().corpus;
  std::string& text = damaged.of(logmodel::LogSource::Console);
  ASSERT_GT(text.size(), 9000u);
  // Stomp a 64-byte window in the middle of the file with non-newline
  // garbage, straddling whatever record happens to live there.
  for (std::size_t i = text.size() / 2; i < text.size() / 2 + 64; ++i) {
    if (text[i] != '\n') text[i] = '\x01';
  }
  expect_accounting_matches(damaged);
}

TEST(CorruptionMatrixTest, NulBytesInsideLines) {
  loggen::Corpus damaged = baseline().corpus;
  std::string& text = damaged.of(logmodel::LogSource::Messages);
  ASSERT_GT(text.size(), 4096u);
  // NUL every 97th byte (skipping newlines): binary junk must flow through
  // the chunked reader and the line splitter without truncating anything.
  for (std::size_t i = 0; i < text.size(); i += 97) {
    if (text[i] != '\n') text[i] = '\0';
  }
  expect_accounting_matches(damaged);
}

TEST(CorruptionMatrixTest, SingleLineLongerThanChunk) {
  loggen::Corpus damaged = baseline().corpus;
  std::string& text = damaged.of(logmodel::LogSource::Console);
  // Splice one 3-chunk monster line into the middle of the file (on a line
  // boundary): the reader must grow its chunk past chunk_bytes rather than
  // splitting the line, and the line counts as exactly one skip.
  const std::size_t newline = text.find('\n', text.size() / 2);
  ASSERT_NE(newline, std::string::npos);
  text.insert(newline + 1, std::string(3 * 4096, 'x') + '\n');
  expect_accounting_matches(damaged);
}

TEST(CorruptionMatrixTest, MidLineEof) {
  loggen::Corpus damaged = baseline().corpus;
  std::string& text = damaged.of(logmodel::LogSource::Controller);
  ASSERT_GT(text.size(), 2u);
  // Cut the file mid-line: drop the final newline plus half of the last
  // record.  The dangling partial line is still a line — seen, skipped,
  // and counted identically by both paths.
  const std::size_t last_newline = text.find_last_of('\n', text.size() - 2);
  ASSERT_NE(last_newline, std::string::npos);
  text.resize(last_newline + 1 + (text.size() - last_newline - 1) / 2);
  expect_accounting_matches(damaged);
}

TEST(RobustnessTest, DegradeIsDeterministic) {
  loggen::DegradeConfig cfg;
  cfg.drop_line_fraction = 0.2;
  cfg.corrupt_line_fraction = 0.1;
  cfg.seed = 7;
  const auto a = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto b = loggen::degrade_corpus(baseline().corpus, cfg);
  for (std::size_t s = 0; s < a.text.size(); ++s) {
    EXPECT_EQ(a.text[s], b.text[s]);
  }
}

}  // namespace
}  // namespace hpcfail
