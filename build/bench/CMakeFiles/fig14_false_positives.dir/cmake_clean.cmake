file(REMOVE_RECURSE
  "CMakeFiles/fig14_false_positives.dir/fig14_false_positives.cpp.o"
  "CMakeFiles/fig14_false_positives.dir/fig14_false_positives.cpp.o.d"
  "fig14_false_positives"
  "fig14_false_positives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_false_positives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
