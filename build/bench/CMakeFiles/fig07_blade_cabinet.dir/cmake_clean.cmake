file(REMOVE_RECURSE
  "CMakeFiles/fig07_blade_cabinet.dir/fig07_blade_cabinet.cpp.o"
  "CMakeFiles/fig07_blade_cabinet.dir/fig07_blade_cabinet.cpp.o.d"
  "fig07_blade_cabinet"
  "fig07_blade_cabinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_blade_cabinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
