// Shared analysis substrate for the unified engine (core/engine.hpp).
//
// The paper's analyses all ask variations of the same questions — "which
// failures, what window, which records of type T near them" — and before the
// engine existed every analyzer re-derived detection and re-scanned the
// LogStore independently.  An AnalysisContext is built ONCE per engine run
// and shared by every analyzer: it memoizes `FailureDetector::detect_full`,
// diagnoses each failure (the per-failure evidence collection shards over a
// ThreadPool with index-ordered assembly, byte-identical to serial), and
// precomputes the joins the analyzers keep re-building — the in-window
// event-type histogram, failure indexes per node, and failure indexes per
// job id.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/failure_detector.hpp"
#include "core/root_cause.hpp"
#include "jobs/job_table.hpp"
#include "logmodel/log_store.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail::core {

class AnalysisContext {
 public:
  /// Detects and diagnoses immediately; `store` must be finalized (throws
  /// std::logic_error otherwise) and must outlive the context, as must
  /// `jobs` when non-null.  When `pool` is non-null the per-failure
  /// diagnoses shard over it; the result is identical to the serial path.
  AnalysisContext(const logmodel::LogStore& store, const jobs::JobTable* jobs,
                  util::TimePoint begin, util::TimePoint end,
                  const DetectorConfig& detector_config = {},
                  const RootCauseConfig& root_cause_config = {},
                  util::ThreadPool* pool = nullptr);

  [[nodiscard]] const logmodel::LogStore& store() const noexcept { return store_; }
  [[nodiscard]] const jobs::JobTable* jobs() const noexcept { return jobs_; }
  [[nodiscard]] util::TimePoint begin() const noexcept { return begin_; }
  [[nodiscard]] util::TimePoint end() const noexcept { return end_; }

  /// Memoized detector output: failures, SWO clusters, shutdown exclusions.
  [[nodiscard]] const Detection& detection() const noexcept { return detection_; }

  /// Diagnosed failures (detection().failures + root-cause inference),
  /// time-ordered; every downstream analyzer indexes into this list.
  [[nodiscard]] const std::vector<AnalyzedFailure>& failures() const noexcept {
    return failures_;
  }

  /// In-window count per event type (the "how many NVFs/NHFs/SEDC warnings
  /// did this window even see" histogram).
  [[nodiscard]] const std::array<std::size_t, logmodel::kEventTypeCount>& type_histogram()
      const noexcept {
    return type_histogram_;
  }
  [[nodiscard]] std::size_t type_count(logmodel::EventType type) const noexcept {
    return type_histogram_[static_cast<std::size_t>(type)];
  }

  /// Failure-list indexes on `node`, time-ordered; nullptr when none.
  [[nodiscard]] const std::vector<std::size_t>* failures_on_node(
      platform::NodeId node) const noexcept;

  /// Failure-list indexes attributed to `job_id`, time-ordered; nullptr
  /// when none (kNoJob never joins).
  [[nodiscard]] const std::vector<std::size_t>* failures_of_job(
      std::int64_t job_id) const noexcept;

  /// Store indexes of `node`'s records clipped to the analysis window —
  /// the per-node window view analyzers previously re-filtered themselves.
  /// Views into the store's per-node index; valid as long as the store.
  [[nodiscard]] std::span<const std::uint32_t> node_window(platform::NodeId node) const {
    return store_.node_range(node, begin_, end_);
  }
  [[nodiscard]] std::span<const std::uint32_t> blade_window(platform::BladeId blade) const {
    return store_.blade_range(blade, begin_, end_);
  }

 private:
  const logmodel::LogStore& store_;
  const jobs::JobTable* jobs_;
  util::TimePoint begin_;
  util::TimePoint end_;
  Detection detection_;
  std::vector<AnalyzedFailure> failures_;
  std::array<std::size_t, logmodel::kEventTypeCount> type_histogram_{};
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> failures_by_node_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> failures_by_job_;
};

}  // namespace hpcfail::core
