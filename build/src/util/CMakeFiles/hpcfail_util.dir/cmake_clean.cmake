file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_util.dir/rng.cpp.o"
  "CMakeFiles/hpcfail_util.dir/rng.cpp.o.d"
  "CMakeFiles/hpcfail_util.dir/strings.cpp.o"
  "CMakeFiles/hpcfail_util.dir/strings.cpp.o.d"
  "CMakeFiles/hpcfail_util.dir/table.cpp.o"
  "CMakeFiles/hpcfail_util.dir/table.cpp.o.d"
  "CMakeFiles/hpcfail_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hpcfail_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/hpcfail_util.dir/time.cpp.o"
  "CMakeFiles/hpcfail_util.dir/time.cpp.o.d"
  "libhpcfail_util.a"
  "libhpcfail_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
