#include "sarif.hpp"

#include <cstdio>
#include <set>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace hpcfail::lint {

namespace {

/// JSON string escaping per RFC 8259 (control characters as \u00XX).
[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string_view sarif_level(Severity severity) {
  switch (severity) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "error";
}

}  // namespace

std::string to_sarif(const Report& report) {
  // Rule list: every registered check, plus ad-hoc rules for any diagnostic
  // whose check the registry does not know (synthetic "usage" errors).
  struct Rule {
    std::string id;
    std::string description;
  };
  std::vector<Rule> rules;
  std::set<std::string> known;
  for (const auto& info : all_checks()) {
    rules.push_back({info.name, info.description});
    known.insert(info.name);
  }
  for (const auto& d : report.diagnostics) {
    if (known.insert(d.check).second) {
      rules.push_back({d.check, "ad-hoc rule (not in the check registry)"});
    }
  }

  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
         "master/Schemata/sarif-schema-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"hpcfail-lint\",\n";
  out += "          \"informationUri\": \"tools/hpcfail-lint\",\n";
  out += "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\n";
    out += "              \"id\": \"" + json_escape(rules[i].id) + "\",\n";
    out += "              \"shortDescription\": { \"text\": \"" +
           json_escape(rules[i].description) + "\" }\n";
    out += i + 1 < rules.size() ? "            },\n" : "            }\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  const auto& diags = report.diagnostics;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& d = diags[i];
    // SARIF requires startLine >= 1; line 0 means "whole file" internally.
    const std::size_t line = d.line == 0 ? 1 : d.line;
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(d.check) + "\",\n";
    out += "          \"level\": \"" + std::string(sarif_level(d.severity)) + "\",\n";
    out += "          \"message\": { \"text\": \"" + json_escape(d.message) + "\" },\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": { \"uri\": \"" + json_escape(d.file) +
           "\" },\n";
    out += "                \"region\": { \"startLine\": " + std::to_string(line) +
           " }\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += i + 1 < diags.size() ? "        },\n" : "        }\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace hpcfail::lint
