# Empty dependencies file for fig04_dominant_cause.
# This may be replaced when dependencies are built.
