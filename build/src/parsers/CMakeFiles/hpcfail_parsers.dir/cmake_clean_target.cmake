file(REMOVE_RECURSE
  "libhpcfail_parsers.a"
)
