file(REMOVE_RECURSE
  "CMakeFiles/tab06_s3_shares.dir/tab06_s3_shares.cpp.o"
  "CMakeFiles/tab06_s3_shares.dir/tab06_s3_shares.cpp.o.d"
  "tab06_s3_shares"
  "tab06_s3_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_s3_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
