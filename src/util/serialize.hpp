// The flat-section serialization vocabulary shared by every persistent
// structure in the tree.
//
// A *section* is a named, contiguous run of bytes — a whole column, arena
// or index array, never a record-at-a-time encoding.  A structure that can
// persist itself exposes exactly two hooks:
//
//   void append_sections(util::Sections& out, const std::string& prefix) const;
//   static X from_sections(const util::SectionMap& in, const std::string& prefix);
//
// append_sections registers each flat buffer under "<prefix>.<field>"
// (borrowed views into live storage where possible, owned normalized
// buffers where the in-memory form is not flat); from_sections rebuilds the
// structure from the named spans, throwing util::SectionError on any
// inconsistency — a missing section, a byte length that does not divide by
// the element size, offsets that run backwards.  The hooks compose: a
// structure serializes its members by delegating with a longer prefix
// (LogStore -> CsrIndex, JobTable -> its string pool), so no class owns
// another's layout.
//
// Sections know nothing about files.  The container format — magic,
// format version, section table, checksums — lives in util/snapshot.hpp;
// anything else (a network frame, a test harness) can consume the same
// Sections.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hpcfail::util {

/// Thrown by from_sections()-style loaders on a structurally inconsistent
/// section; the snapshot layer converts it into a structured SnapshotError
/// at the file boundary, so it never escapes to callers of load().
class SectionError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    Missing,    ///< a required section is absent from the snapshot
    Malformed,  ///< the section exists but its contents are inconsistent
  };

  SectionError(std::string section, const std::string& what,
               Kind kind = Kind::Malformed)
      : std::runtime_error("section '" + section + "': " + what),
        section_(std::move(section)),
        kind_(kind) {}

  [[nodiscard]] const std::string& section() const noexcept { return section_; }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  std::string section_;
  Kind kind_;
};

/// Writer-side collection of named flat byte runs.  Entries keep insertion
/// order — the section table of a written snapshot is deterministic.
/// Borrowed entries alias caller storage that must outlive the Sections;
/// owned entries are moved in and kept alive here (for buffers that had to
/// be normalized, e.g. a symbol arena flattened into one run).
class Sections {
 public:
  struct Entry {
    std::string name;
    std::span<const std::byte> bytes;  ///< into caller storage or owned_
    std::size_t owned_index;           ///< index into owned_, or npos
  };

  static constexpr std::size_t kNotOwned = static_cast<std::size_t>(-1);

  /// Registers a borrowed view; the caller's buffer must outlive this
  /// object (the usual case: a span over a live column or index array).
  void add(std::string name, std::span<const std::byte> bytes) {
    require_fresh(name);
    entries_.push_back(Entry{std::move(name), bytes, kNotOwned});
  }

  /// Registers and takes ownership of a normalized buffer.
  void add_owned(std::string name, std::vector<std::byte> bytes) {
    require_fresh(name);
    owned_.push_back(std::move(bytes));
    entries_.push_back(Entry{std::move(name), owned_.back(), owned_.size() - 1});
  }

  /// Borrowed view over a vector of trivially copyable elements.
  template <class T>
  void add_vector(std::string name, const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    add(std::move(name), std::as_bytes(std::span<const T>(v)));
  }

  /// Owned copy of one trivially copyable value (meta/header sections).
  template <class T>
  void add_scalar(std::string name, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    add_owned(std::move(name), std::move(bytes));
  }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  void require_fresh(const std::string& name) const {
    for (const Entry& e : entries_) {
      if (e.name == name) throw SectionError(name, "registered twice");
    }
  }

  std::vector<Entry> entries_;
  // deque-like stability is not needed: entries_ re-resolve through
  // owned_index, and spans over moved vectors stay valid (the heap buffer
  // moves with the vector).
  std::vector<std::vector<std::byte>> owned_;
};

/// Reader-side view: section name -> bytes, all aliasing one loaded file
/// buffer owned by the caller (util::Snapshot keeps it alive).
class SectionMap {
 public:
  void add(std::string name, std::span<const std::byte> bytes) {
    entries_.push_back({std::move(name), bytes});
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  /// The named section's bytes, or nullptr when absent.
  [[nodiscard]] const std::span<const std::byte>* find(std::string_view name) const noexcept {
    for (const auto& e : entries_) {
      if (e.name == name) return &e.bytes;
    }
    return nullptr;
  }

  /// The named section's bytes; throws SectionError when absent.
  [[nodiscard]] std::span<const std::byte> require(std::string_view name) const {
    const auto* bytes = find(name);
    if (bytes == nullptr) {
      throw SectionError(std::string(name), "missing from snapshot",
                         SectionError::Kind::Missing);
    }
    return *bytes;
  }

  /// Rebuilds a vector of trivially copyable elements from the named
  /// section (one bulk memcpy); throws when the byte length does not
  /// divide by the element size.
  template <class T>
  [[nodiscard]] std::vector<T> vector_of(std::string_view name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = require(name);
    if (bytes.size() % sizeof(T) != 0) {
      throw SectionError(std::string(name),
                         "byte length " + std::to_string(bytes.size()) +
                             " is not a multiple of the element size " +
                             std::to_string(sizeof(T)));
    }
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Reads one trivially copyable value; the section must be exactly
  /// sizeof(T) bytes.
  template <class T>
  [[nodiscard]] T scalar_of(std::string_view name) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = require(name);
    if (bytes.size() != sizeof(T)) {
      throw SectionError(std::string(name),
                         "expected " + std::to_string(sizeof(T)) + " bytes, found " +
                             std::to_string(bytes.size()));
    }
    T out;
    std::memcpy(&out, bytes.data(), sizeof(T));
    return out;
  }

  struct Entry {
    std::string name;
    std::span<const std::byte> bytes;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace hpcfail::util
