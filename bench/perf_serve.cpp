// Serve-layer latency and throughput baseline: boots a resident
// serve::Server over the canonical corpus (one simulated S2 week, seed
// 42), then hammers it with a fixed mix of protocol requests from
// concurrent pool clients and reports per-request latency percentiles and
// sustained queries/s.  Within one epoch every analysis-backed verb is
// answered from the per-epoch cache, so the numbers pin the steady-state
// query path — the regime a resident daemon exists for; the one-time cost
// of filling that cache is reported separately as analysis_cold_ms.
//
// `--json[=PATH]` writes the committed BENCH_serve.json trajectory (best
// of kRepeats hammer rounds); without it the summary goes to stderr only.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "serve/server.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hpcfail;

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 500;
constexpr int kRepeats = 3;

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[rank];
}

struct Round {
  std::vector<double> latencies_us;  // sorted on return
  double seconds = 0.0;
  double queries_per_s = 0.0;
};

/// One hammer round: kClients pool tasks, each issuing its request script
/// back to back and timing every handle_line() call.
Round hammer(serve::Server& server, util::ThreadPool& clients,
             const std::vector<std::string>& script) {
  serve::Server* const srv = &server;  // outlives every queued client task
  std::vector<std::future<std::vector<double>>> futures;
  futures.reserve(kClients);
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < kClients; ++c) {
    futures.push_back(clients.submit([srv, script] {
      std::vector<double> us;
      us.reserve(script.size());
      for (const auto& request : script) {
        const auto q0 = std::chrono::steady_clock::now();
        const std::string response = srv->handle_line(request);
        const auto q1 = std::chrono::steady_clock::now();
        if (response.empty()) continue;  // keeps the response alive too
        us.push_back(std::chrono::duration<double, std::micro>(q1 - q0).count());
      }
      return us;
    }));
  }
  Round round;
  for (auto& f : futures) {
    const auto us = f.get();
    round.latencies_us.insert(round.latencies_us.end(), us.begin(), us.end());
  }
  round.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::sort(round.latencies_us.begin(), round.latencies_us.end());
  round.queries_per_s =
      round.seconds > 0.0 ? static_cast<double>(round.latencies_us.size()) / round.seconds
                          : 0.0;
  return round;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool write_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
      json_path = "BENCH_serve.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      write_json = true;
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: perf_serve [--json[=PATH]]\n");
      return 2;
    }
  }

  std::fprintf(stderr, "perf_serve: simulating S2 week (seed 42)...\n");
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 7, 42)).run();
  util::ThreadPool pool;
  auto parsed = parsers::parse_corpus(loggen::build_corpus(sim), &pool);
  const std::size_t records = parsed.store.size();
  const std::string node =
      std::string(parsed.topology.node_name(parsed.store.nodes().front()));

  serve::ServerConfig config;
  config.pool = &pool;
  serve::Server server(std::move(parsed), config);

  // The analysis-backed verbs share one engine run per epoch; pay for it
  // once here so the hammer rounds measure the cached steady state.
  const auto a0 = std::chrono::steady_clock::now();
  (void)server.handle_line(R"({"id":1,"verb":"causes"})");
  const double analysis_cold_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - a0)
          .count();

  // Fixed per-client request script: every verb class the daemon answers
  // in steady state, heavy and light interleaved.
  const std::vector<std::string> mix = {
      R"({"id":1,"verb":"status"})",
      R"({"id":2,"verb":"ping"})",
      R"({"id":3,"verb":"causes"})",
      R"({"id":4,"verb":"lead_time"})",
      R"({"id":5,"verb":"node_health","params":{"node":")" + node + R"("}})",
      R"({"id":6,"verb":"report"})",
      R"({"id":7,"verb":"metrics"})",
  };
  std::vector<std::string> script;
  script.reserve(kRequestsPerClient);
  for (int i = 0; i < kRequestsPerClient; ++i) script.push_back(mix[i % mix.size()]);

  util::ThreadPool clients(kClients);
  Round best;
  for (int r = 0; r < kRepeats; ++r) {
    Round round = hammer(server, clients, script);
    std::fprintf(stderr, "  round %d: %zu queries in %.3fs (%.0f q/s, p50 %.1fus, p99 %.1fus)\n",
                 r + 1, round.latencies_us.size(), round.seconds, round.queries_per_s,
                 percentile(round.latencies_us, 0.50), percentile(round.latencies_us, 0.99));
    if (round.queries_per_s > best.queries_per_s) best = std::move(round);
  }
  if (best.latencies_us.empty()) {
    std::fprintf(stderr, "perf_serve: no latencies recorded\n");
    return 1;
  }
  if (server.analysis_recomputes() != 1) {
    std::fprintf(stderr,
                 "perf_serve: expected exactly 1 analysis recompute, saw %llu — the "
                 "epoch cache is broken and the numbers are meaningless\n",
                 static_cast<unsigned long long>(server.analysis_recomputes()));
    return 1;
  }

  const double p50 = percentile(best.latencies_us, 0.50);
  const double p99 = percentile(best.latencies_us, 0.99);
  std::fprintf(stderr,
               "perf_serve: best of %d: %.0f queries/s, p50 %.1fus, p99 %.1fus "
               "(analysis cold %.1fms, %zu records)\n",
               kRepeats, best.queries_per_s, p50, p99, analysis_cold_ms, records);

  if (write_json) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "perf_serve: cannot write %s\n", json_path.c_str());
      return 1;
    }
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "{\n"
                  "  \"bench\": \"perf_serve\",\n"
                  "  \"corpus\": {\"system\": \"S2\", \"days\": 7, \"seed\": 42, "
                  "\"records\": %zu},\n"
                  "  \"clients\": %d,\n"
                  "  \"requests\": %zu,\n"
                  "  \"repeats\": %d,\n"
                  "  \"analysis_cold_ms\": %.1f,\n"
                  "  \"p50_us\": %.1f,\n"
                  "  \"p99_us\": %.1f,\n"
                  "  \"queries_per_s\": %.0f\n"
                  "}\n",
                  records, kClients, best.latencies_us.size(), kRepeats,
                  analysis_cold_ms, p50, p99, best.queries_per_s);
    out << buf;
    std::fprintf(stderr, "perf_serve: wrote %s\n", json_path.c_str());
  }
  return 0;
}
