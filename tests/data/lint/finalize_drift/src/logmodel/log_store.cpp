#include "logmodel/log_store.hpp"

namespace hpcfail::logmodel {

void LogStore::finalize() { finalized_ = true; }

}  // namespace hpcfail::logmodel
