#include "stats/logistic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hpcfail::stats {

namespace {
double sigmoid(double z) noexcept {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double LogisticModel::predict(std::span<const double> features) const {
  double z = bias;
  const std::size_t n = std::min(features.size(), weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    z += weights[i] * (features[i] - feature_means[i]) / feature_stds[i];
  }
  return sigmoid(z);
}

LogisticModel train_logistic(const std::vector<std::vector<double>>& x,
                             const std::vector<int>& y, const LogisticTrainConfig& config) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("train_logistic: empty or mismatched data");
  }
  const std::size_t dims = x.front().size();
  for (const auto& row : x) {
    if (row.size() != dims) throw std::invalid_argument("train_logistic: ragged rows");
  }
  const auto positives = static_cast<std::size_t>(std::count(y.begin(), y.end(), 1));
  if (positives == 0 || positives == y.size()) {
    throw std::invalid_argument("train_logistic: need both classes");
  }

  LogisticModel model;
  model.weights.assign(dims, 0.0);
  model.feature_means.assign(dims, 0.0);
  model.feature_stds.assign(dims, 1.0);

  // Standardize.
  const auto n = static_cast<double>(x.size());
  for (std::size_t d = 0; d < dims; ++d) {
    double mean = 0.0;
    for (const auto& row : x) mean += row[d];
    mean /= n;
    double var = 0.0;
    for (const auto& row : x) var += (row[d] - mean) * (row[d] - mean);
    var /= n;
    model.feature_means[d] = mean;
    model.feature_stds[d] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  std::vector<std::vector<double>> xs(x.size(), std::vector<double>(dims));
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t d = 0; d < dims; ++d) {
      xs[i][d] = (x[i][d] - model.feature_means[d]) / model.feature_stds[d];
    }
  }

  std::vector<double> grad(dims);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_bias = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double z = model.bias;
      for (std::size_t d = 0; d < dims; ++d) z += model.weights[d] * xs[i][d];
      const double err = sigmoid(z) - static_cast<double>(y[i]);
      for (std::size_t d = 0; d < dims; ++d) grad[d] += err * xs[i][d];
      grad_bias += err;
    }
    for (std::size_t d = 0; d < dims; ++d) {
      model.weights[d] -=
          config.learning_rate * (grad[d] / n + config.l2 * model.weights[d]);
    }
    model.bias -= config.learning_rate * grad_bias / n;
  }
  return model;
}

BinaryMetrics evaluate_logistic(const LogisticModel& model,
                                const std::vector<std::vector<double>>& x,
                                const std::vector<int>& y, double threshold) {
  BinaryMetrics m;
  std::vector<double> pos_scores, neg_scores;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double p = model.predict(x[i]);
    const bool predicted = p >= threshold;
    if (y[i] == 1) {
      pos_scores.push_back(p);
      predicted ? ++m.tp : ++m.fn;
    } else {
      neg_scores.push_back(p);
      predicted ? ++m.fp : ++m.tn;
    }
  }
  // AUC via the Mann-Whitney rank statistic.
  if (!pos_scores.empty() && !neg_scores.empty()) {
    double wins = 0.0;
    for (const double p : pos_scores) {
      for (const double q : neg_scores) {
        if (p > q) {
          wins += 1.0;
        } else if (p == q) {
          wins += 0.5;
        }
      }
    }
    m.auc = wins / (static_cast<double>(pos_scores.size()) *
                    static_cast<double>(neg_scores.size()));
  }
  return m;
}

}  // namespace hpcfail::stats
