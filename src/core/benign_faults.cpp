#include "core/benign_faults.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

SedcPopulation BenignFaultAnalyzer::sedc_population(util::TimePoint begin,
                                                    util::TimePoint end) const {
  SedcPopulation out;
  std::unordered_set<std::uint32_t> warn_blades;
  std::unordered_set<std::uint32_t> fault_blades;
  std::unordered_set<std::uint32_t> fault_cabinets;
  for (const LogRecord& r : store_.range(begin, end)) {
    if (logmodel::is_sedc_warning(r.type)) {
      ++out.warning_count;
      if (r.has_blade()) warn_blades.insert(r.blade.value);
      if (!r.has_blade() && r.has_cabinet()) fault_cabinets.insert(r.cabinet.value);
    } else if (logmodel::is_health_fault(r.type)) {
      ++out.fault_count;
      if (r.has_blade()) fault_blades.insert(r.blade.value);
      if (r.has_cabinet()) fault_cabinets.insert(r.cabinet.value);
    }
  }
  out.blades_with_warnings = warn_blades.size();
  out.blades_with_faults = fault_blades.size();
  out.cabinets_with_faults = fault_cabinets.size();
  return out;
}

std::vector<BladeWarningProfile> BenignFaultAnalyzer::top_warning_blades(
    util::TimePoint day_begin, std::size_t top_k) const {
  std::unordered_map<std::uint32_t, BladeWarningProfile> profiles;
  const util::TimePoint day_end = day_begin + util::Duration::days(1);
  for (const LogRecord& r : store_.range(day_begin, day_end)) {
    if (!logmodel::is_sedc_warning(r.type) || !r.has_blade()) continue;
    auto& p = profiles[r.blade.value];
    p.blade = r.blade.value;
    ++p.hourly[static_cast<std::size_t>(r.time.hour_of_day())];
    ++p.total;
  }
  std::vector<BladeWarningProfile> out;
  out.reserve(profiles.size());
  for (auto& [blade, p] : profiles) out.push_back(std::move(p));
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.total > b.total; });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

std::vector<DailyErrorNodes> BenignFaultAnalyzer::daily_error_nodes(
    util::TimePoint begin, int days, const std::vector<AnalyzedFailure>& failures) const {
  std::vector<DailyErrorNodes> out(static_cast<std::size_t>(std::max(0, days)));
  std::vector<std::unordered_set<std::uint32_t>> hw(out.size()), mce(out.size()),
      lustre(out.size()), failed(out.size());
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d].day = (begin + util::Duration::days(static_cast<std::int64_t>(d))).day_index();
  }
  const util::TimePoint end = begin + util::Duration::days(days);
  for (const LogRecord& r : store_.range(begin, end)) {
    if (!r.has_node()) continue;
    const auto d = static_cast<std::size_t>((r.time - begin).usec /
                                            util::Duration::days(1).usec);
    if (d >= out.size()) continue;
    switch (r.type) {
      case EventType::HardwareError: hw[d].insert(r.node.value); break;
      case EventType::MachineCheckException: mce[d].insert(r.node.value); break;
      case EventType::LustreError: lustre[d].insert(r.node.value); break;
      default: break;
    }
  }
  for (const auto& f : failures) {
    const auto offset = (f.event.time - begin).usec;
    if (offset < 0) continue;
    const auto d = static_cast<std::size_t>(offset / util::Duration::days(1).usec);
    if (d < out.size()) failed[d].insert(f.event.node.value);
  }
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d].hw_error_nodes = hw[d].size();
    out[d].mce_nodes = mce[d].size();
    out[d].lustre_nodes = lustre[d].size();
    out[d].failed_nodes = failed[d].size();
  }
  return out;
}

BenignFaultAnalyzer::InterconnectSummary BenignFaultAnalyzer::interconnect_summary(
    util::TimePoint begin, util::TimePoint end,
    const std::vector<AnalyzedFailure>& failures, util::Duration near_window) const {
  InterconnectSummary out;
  out.failovers_ok = store_.type_range(EventType::LinkFailover, begin, end).size();
  out.failovers_failed =
      store_.type_range(EventType::LinkFailoverFailed, begin, end).size();
  for (const std::uint32_t idx : store_.type_range(EventType::LaneDegrade, begin, end)) {
    const LogRecord& r = store_[idx];
    ++out.lane_degrades;
    for (const auto& f : failures) {
      if (f.event.blade.value == r.blade.value &&
          std::abs((f.event.time - r.time).usec) <= near_window.usec) {
        ++out.degrades_near_failure;
        break;
      }
    }
  }
  return out;
}

double BenignFaultAnalyzer::erroring_node_failure_fraction(
    EventType type, util::TimePoint begin, util::TimePoint end, util::Duration horizon,
    const std::vector<AnalyzedFailure>& failures) const {
  // First error time per node.
  std::unordered_map<std::uint32_t, util::TimePoint> first_error;
  for (const std::uint32_t idx : store_.type_range(type, begin, end)) {
    const LogRecord& r = store_[idx];
    if (!r.has_node()) continue;
    first_error.emplace(r.node.value, r.time);  // store is time-sorted
  }
  if (first_error.empty()) return 0.0;
  std::size_t failing = 0;
  for (const auto& [node, t0] : first_error) {
    for (const auto& f : failures) {
      if (f.event.node.value == node && f.event.time >= t0 &&
          f.event.time - t0 <= horizon) {
        ++failing;
        break;
      }
    }
  }
  return static_cast<double>(failing) / static_cast<double>(first_error.size());
}

}  // namespace hpcfail::core
