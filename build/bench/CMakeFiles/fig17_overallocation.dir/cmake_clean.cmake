file(REMOVE_RECURSE
  "CMakeFiles/fig17_overallocation.dir/fig17_overallocation.cpp.o"
  "CMakeFiles/fig17_overallocation.dir/fig17_overallocation.cpp.o.d"
  "fig17_overallocation"
  "fig17_overallocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_overallocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
