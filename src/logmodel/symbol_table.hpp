// String interning for low-cardinality record payloads (module names,
// sensor labels, reason texts).  A SymbolTable maps each distinct string to
// a dense uint32 Symbol and stores exactly one copy of the bytes in an
// arena whose storage never moves, so resolved string_views stay valid for
// the table's lifetime.  Records carry the 4-byte Symbol instead of a
// heap-allocated std::string, which makes LogRecord trivially copyable and
// removes the per-record allocation from the ingest hot path.
//
// Lifetime rules: a string_view returned by view() is valid while the table
// (or a table it was moved into) lives.  LogStore owns the table for all
// records it holds; resolve details through the store, not through a
// builder-side table that may have been consumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/serialize.hpp"

namespace hpcfail::logmodel {

/// Dense handle for an interned string.  Value-initialized Symbol{} is the
/// empty string in every table (id 0 is reserved for "" at construction).
struct Symbol {
  std::uint32_t id = 0;

  friend bool operator==(Symbol, Symbol) = default;
};

class SymbolTable {
 public:
  /// Interns "" as id 0 so default-constructed Symbols resolve cleanly.
  SymbolTable();

  /// Deep copy: re-interns every string in id order, so ids are preserved
  /// but the copy owns its own arena.
  SymbolTable(const SymbolTable& other);
  SymbolTable& operator=(const SymbolTable& other);

  // Moves keep arena blocks (and the views into them) stable.
  SymbolTable(SymbolTable&&) noexcept = default;
  SymbolTable& operator=(SymbolTable&&) noexcept = default;

  /// Returns the Symbol for `text`, interning a copy on first sight.
  Symbol intern(std::string_view text);

  /// Resolves a Symbol; out-of-range ids resolve to "" rather than UB so a
  /// Symbol from a foreign table cannot read out of bounds.
  [[nodiscard]] std::string_view view(Symbol symbol) const noexcept {
    return symbol.id < views_.size() ? views_[symbol.id] : std::string_view{};
  }

  /// Number of distinct strings, including the reserved "".
  [[nodiscard]] std::size_t size() const noexcept { return views_.size(); }

  /// Total interned payload bytes (excludes map/arena overhead).
  [[nodiscard]] std::size_t bytes() const noexcept { return payload_bytes_; }

  /// Interns every string of `src` into this table and returns the id
  /// remap: remap[old.id] is the Symbol in this table.  Used when merging
  /// per-chunk tables into the builder's table.
  std::vector<Symbol> absorb(const SymbolTable& src);

  /// Registers the table as two flat sections: "<prefix>.bytes" (every
  /// string's payload concatenated in id order, owned by `out`) and
  /// "<prefix>.offsets" (uint64[size + 1] delimiting each string).
  void append_sections(util::Sections& out, const std::string& prefix) const;

  /// Rebuilds a table by re-interning the serialized strings in id order,
  /// so ids are preserved exactly.  Throws util::SectionError when the
  /// offsets are inconsistent, string 0 is not "", or a duplicate string
  /// would shift later ids.
  [[nodiscard]] static SymbolTable from_sections(const util::SectionMap& in,
                                                 const std::string& prefix);

 private:
  const char* arena_store(std::string_view text);

  /// 8-bytes-at-a-time xor-multiply hash.  intern() is called once per
  /// record on the ingest hot path, so the hash must not walk the string
  /// byte by byte the way std::hash does.
  [[nodiscard]] static std::uint64_t hash_bytes(std::string_view text) noexcept;

  /// Probe/insert with a precomputed hash — lets absorb() and the copy
  /// constructor reuse the hashes the source table already paid for.
  Symbol intern_hashed(std::string_view text, std::uint64_t hash);

  void grow_slots();

  static constexpr std::size_t kBlockBytes = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::size_t block_used_ = 0;   ///< bytes used in blocks_.back()
  std::size_t payload_bytes_ = 0;
  std::vector<std::string_view> views_;  ///< id -> stable view
  std::vector<std::uint64_t> hashes_;    ///< id -> hash_bytes(view)
  /// Open-addressing id index: power-of-two linear-probe table holding
  /// id + 1 (0 marks an empty slot).  Flat arrays beat the node-based
  /// unordered_map here: no per-string node allocation and no bucket
  /// pointer chase on the per-record lookup.
  std::vector<std::uint32_t> slots_;
};

}  // namespace hpcfail::logmodel
