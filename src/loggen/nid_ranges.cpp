#include "loggen/nid_ranges.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace hpcfail::loggen {

namespace {
constexpr int kNidWidth = 5;
constexpr int kHostWidth = 4;
}  // namespace

std::string compress_node_list(std::vector<platform::NodeId> nodes,
                               platform::NamingScheme naming) {
  const char* prefix = naming == platform::NamingScheme::CrayCname ? "nid" : "node";
  const int width = naming == platform::NamingScheme::CrayCname ? kNidWidth : kHostWidth;
  if (nodes.empty()) return std::string(prefix) + "[]";
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  char buf[32];
  if (nodes.size() == 1) {
    std::snprintf(buf, sizeof buf, "%s%0*u", prefix, width, nodes[0].value);
    return buf;
  }
  std::string out = prefix;
  out += '[';
  std::size_t i = 0;
  bool first = true;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1].value == nodes[j].value + 1) ++j;
    if (!first) out += ',';
    first = false;
    if (j == i) {
      std::snprintf(buf, sizeof buf, "%0*u", width, nodes[i].value);
      out += buf;
    } else {
      std::snprintf(buf, sizeof buf, "%0*u-%0*u", width, nodes[i].value, width,
                    nodes[j].value);
      out += buf;
    }
    i = j + 1;
  }
  out += ']';
  return out;
}

std::optional<std::vector<platform::NodeId>> expand_node_list(std::string_view text) noexcept {
  std::string_view rest;
  if (auto r = util::strip_prefix(text, "nid")) {
    rest = *r;
  } else if (auto r2 = util::strip_prefix(text, "node")) {
    rest = *r2;
  } else {
    return std::nullopt;
  }

  std::vector<platform::NodeId> out;
  auto parse_one = [&out](std::string_view piece) -> bool {
    const std::size_t dash = piece.find('-');
    if (dash == std::string_view::npos) {
      const auto v = util::parse_u64(piece);
      if (!v) return false;
      out.push_back(platform::NodeId{static_cast<std::uint32_t>(*v)});
      return true;
    }
    const auto lo = util::parse_u64(piece.substr(0, dash));
    const auto hi = util::parse_u64(piece.substr(dash + 1));
    if (!lo || !hi || *hi < *lo || *hi - *lo > 1'000'000) return false;
    const std::size_t base = out.size();
    out.resize(base + static_cast<std::size_t>(*hi - *lo + 1));
    for (std::uint64_t v = *lo; v <= *hi; ++v) {
      out[base + static_cast<std::size_t>(v - *lo)] =
          platform::NodeId{static_cast<std::uint32_t>(v)};
    }
    return true;
  };

  if (!rest.empty() && rest.front() == '[') {
    if (rest.back() != ']') return std::nullopt;
    const std::string_view inner = rest.substr(1, rest.size() - 2);
    if (inner.empty()) return out;  // explicit empty list
    // Exact pre-count, ranges included: these vectors live for the whole
    // run inside JobInfo, and growing ranges through resize strands up to
    // ~40% capacity slack on mixed lists.  A piece the pre-count cannot
    // parse is counted as 1; the fill loop below rejects it anyway.
    std::size_t total = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= inner.size(); ++i) {
      if (i == inner.size() || inner[i] == ',') {
        const std::string_view piece = inner.substr(start, i - start);
        start = i + 1;
        const std::size_t dash = piece.find('-');
        if (dash == std::string_view::npos) {
          ++total;
          continue;
        }
        const auto lo = util::parse_u64(piece.substr(0, dash));
        const auto hi = util::parse_u64(piece.substr(dash + 1));
        if (!lo || !hi || *hi < *lo || *hi - *lo > 1'000'000) return std::nullopt;
        total += static_cast<std::size_t>(*hi - *lo + 1);
      }
    }
    out.reserve(total);
    start = 0;
    for (std::size_t i = 0; i <= inner.size(); ++i) {
      if (i == inner.size() || inner[i] == ',') {
        if (!parse_one(inner.substr(start, i - start))) return std::nullopt;
        start = i + 1;
      }
    }
    return out;
  }
  if (!parse_one(rest)) return std::nullopt;
  return out;
}

}  // namespace hpcfail::loggen
