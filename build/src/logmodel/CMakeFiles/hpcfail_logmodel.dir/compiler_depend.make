# Empty compiler generated dependencies file for hpcfail_logmodel.
# This may be replaced when dependencies are built.
