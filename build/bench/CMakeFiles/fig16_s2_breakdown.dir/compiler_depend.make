# Empty compiler generated dependencies file for fig16_s2_breakdown.
# This may be replaced when dependencies are built.
