#pragma once

namespace hpcfail::logmodel {

enum class EventType : unsigned char {
  KernelPanic,
  KernelOops,
  MachineCheckException,
  kCount
};

}  // namespace hpcfail::logmodel
