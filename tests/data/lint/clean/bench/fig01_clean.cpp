// Fixture: a figure bench that routes through the shared pipeline.
#include "bench_common.hpp"

int main() {
  const auto p = bench::run_pipeline(make_scenario());
  return p.failures.empty() ? 1 : 0;
}
