# Empty compiler generated dependencies file for interconnect_report.
# This may be replaced when dependencies are built.
