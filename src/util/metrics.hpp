// Thread-safe metrics registry for pipeline observability: monotonic
// counters, last-write gauges and fixed-bucket histograms, exported as one
// JSON document (schema "hpcfail.metrics.v1", keys sorted, pinned by
// tests/metrics_test.cpp).
//
// Cost model — the registry is designed around "near-zero when dark":
//   - No registry installed: an instrumentation site pays one relaxed
//     atomic load of the global pointer plus a predictable branch.  No
//     clock reads, no allocation, no locking.
//   - Registry installed: instrument lookup (name -> slot) takes a mutex
//     once per site invocation OR once per bind when the caller caches the
//     returned reference (hot paths do; see ThreadPool).  The increments
//     themselves are relaxed atomics — safe from any thread, no lock.
//
// Naming convention, enforced by hpcfail-lint's metric-naming check:
// `hpcfail.<layer>.<snake_case>` (two or more dot segments after the
// `hpcfail` prefix, each lowercase snake_case), e.g.
// `hpcfail.ingest.bytes_read`, `hpcfail.pool.queue_depth`.
//
// Lifetime: instruments live as long as their registry; callers that cache
// Counter*/Gauge*/Histogram* must not outlive it.  install_metrics(nullptr)
// disarms new lookups but does not free anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hpcfail::util {

/// Monotonic counter.  add() of a negative delta is impossible by type.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge with relative adjustment (queue depths etc.).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; an implicit +inf bucket catches the overflow, so
/// counts() has bounds.size() + 1 entries.  observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns every instrument; lookups create on first use.  Thread-safe: the
/// name maps are mutex-protected, the returned references are stable for
/// the registry's lifetime (instruments are never destroyed or moved).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// Re-registering an existing histogram with different bucket bounds is
  /// a programming error and throws std::logic_error (fail loud rather
  /// than silently mis-bucketing).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  /// Snapshot views for tests and reporting (name-sorted).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  /// {"schema":"hpcfail.metrics.v1","counters":{...},"gauges":{...},
  ///  "histograms":{name:{"bounds":[...],"counts":[...],"count":N,"sum":X}}}
  /// Keys sorted; deterministic for identical instrument states.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Installs `registry` as the process-wide sink (nullptr disarms).  The
/// caller keeps ownership and must keep it alive until after the last
/// instrumented operation completes (drain pools before uninstalling).
void install_metrics(MetricsRegistry* registry) noexcept;

/// The installed registry, or nullptr when metrics are dark.  One relaxed
/// atomic load — cheap enough for per-chunk/per-task call sites.
[[nodiscard]] MetricsRegistry* metrics() noexcept;

/// Monotonic count of install_metrics() calls (0 before the first).
/// Long-lived consumers that cache instrument pointers must invalidate on
/// generation change, NOT on registry-address change: a fresh registry can
/// reuse a dead one's address, so address comparison can alias a stale
/// binding to freed instruments.
[[nodiscard]] std::uint64_t metrics_generation() noexcept;

}  // namespace hpcfail::util
