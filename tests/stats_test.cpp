// Unit and property tests for src/stats.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/bootstrap.hpp"
#include "stats/correlation.hpp"
#include "stats/ecdf.hpp"
#include "stats/fit.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "util/rng.hpp"

namespace hpcfail::stats {
namespace {

// ------------------------------------------------------------ summary ----

TEST(SummaryTest, MatchesDirectComputation) {
  StreamingStats s;
  const std::vector<double> data = {1.0, 2.5, -3.0, 7.0, 0.0};
  double sum = 0;
  for (const double x : data) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / data.size();
  double var = 0;
  for (const double x : data) var += (x - mean) * (x - mean);
  var /= data.size() - 1;
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), 7.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(SummaryTest, MergeEqualsSequential) {
  util::Rng rng(1);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
}

TEST(SummaryTest, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(SummaryTest, EmptyIsZero) {
  const StreamingStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

// --------------------------------------------------------------- ecdf ----

TEST(EcdfTest, FractionAndQuantiles) {
  const std::vector<double> v = {3, 1, 2, 4, 5};
  const Ecdf e{v};
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(3.0), 0.6);
  EXPECT_DOUBLE_EQ(e.fraction_at_or_below(100), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 3.0);
}

class EcdfMonotonic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EcdfMonotonic, FractionMonotonicQuantileMonotonic) {
  util::Rng rng(GetParam());
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.lognormal(1.0, 2.0));
  const Ecdf e{sample};
  double prev = -1.0;
  for (double x = 0.0; x < 50.0; x += 0.5) {
    const double f = e.fraction_at_or_below(x);
    ASSERT_GE(f, prev);
    ASSERT_GE(f, 0.0);
    ASSERT_LE(f, 1.0);
    prev = f;
  }
  double prev_q = -1e300;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = e.quantile(q);
    ASSERT_GE(v, prev_q);
    prev_q = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfMonotonic, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(EcdfTest, KsDistanceSelfZero) {
  util::Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(rng.uniform());
  const Ecdf e{sample};
  EXPECT_DOUBLE_EQ(e.ks_distance(e), 0.0);
}

TEST(EcdfTest, KsDistanceSeparatesDistributions) {
  util::Rng rng(10);
  std::vector<double> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.normal(0, 1));
    b.push_back(rng.normal(5, 1));
  }
  EXPECT_GT(Ecdf{a}.ks_distance(Ecdf{b}), 0.9);
}

// ---------------------------------------------------------- histogram ----

TEST(HistogramTest, LinearBinningAndOverflow) {
  Histogram h = Histogram::linear(0, 10, 5);
  h.add(-1);
  h.add(0);
  h.add(9.99);
  h.add(10);
  h.add(5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(4), 0.8);  // everything but overflow
}

TEST(HistogramTest, MassConservationProperty) {
  util::Rng rng(12);
  Histogram h = Histogram::logarithmic(0.1, 1000, 30);
  const int n = 10000;
  for (int i = 0; i < n; ++i) h.add(rng.lognormal(2, 2));
  std::uint64_t total = h.underflow() + h.overflow();
  for (std::size_t b = 0; b < h.bin_count(); ++b) total += h.count(b);
  EXPECT_EQ(total, static_cast<std::uint64_t>(n));
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(n));
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a = Histogram::linear(0, 10, 2);
  Histogram b = Histogram::linear(0, 10, 2);
  a.add(1);
  b.add(2);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.total(), 3u);
  Histogram c = Histogram::linear(0, 5, 2);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(HistogramTest, BadArguments) {
  EXPECT_THROW(Histogram::linear(5, 5, 3), std::invalid_argument);
  EXPECT_THROW(Histogram::logarithmic(0, 10, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0}), std::invalid_argument);
}

// -------------------------------------------------------- correlation ----

TEST(CorrelationTest, PearsonKnownValues) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yneg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yneg), -1.0, 1e-12);
  const std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(x, constant), 0.0);
}

TEST(CorrelationTest, SpearmanMonotoneNonlinear) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.1 * i));  // nonlinear but monotone
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(CorrelationTest, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(ContingencyTest, ChiSquareIndependence) {
  // Perfectly independent table: chi2 == 0.
  ContingencyTable t(2, 2);
  t.add(0, 0, 10);
  t.add(0, 1, 20);
  t.add(1, 0, 30);
  t.add(1, 1, 60);
  EXPECT_NEAR(t.chi_square(), 0.0, 1e-9);
  EXPECT_NEAR(t.p_value(), 1.0, 1e-6);
  EXPECT_NEAR(t.cramers_v(), 0.0, 1e-6);
}

TEST(ContingencyTest, StrongAssociation) {
  ContingencyTable t(2, 2);
  t.add(0, 0, 50);
  t.add(1, 1, 50);
  EXPECT_GT(t.chi_square(), 90.0);
  EXPECT_LT(t.p_value(), 1e-6);
  EXPECT_NEAR(t.cramers_v(), 1.0, 1e-6);
}

TEST(ContingencyTest, Margins) {
  ContingencyTable t(2, 3);
  t.add(0, 2, 4);
  t.add(1, 0, 6);
  EXPECT_EQ(t.row_total(0), 4u);
  EXPECT_EQ(t.col_total(0), 6u);
  EXPECT_EQ(t.grand_total(), 10u);
  EXPECT_EQ(t.dof(), 2u);
  EXPECT_THROW(t.add(2, 0), std::out_of_range);
}

TEST(GammaTest, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - e^-x.
  for (const double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10) << x;
  }
  // Chi-square with 2 dof: SF(x) = e^{-x/2}.
  EXPECT_NEAR(chi_square_sf(4.0, 2), std::exp(-2.0), 1e-10);
  EXPECT_EQ(chi_square_sf(0.0, 3), 1.0);
}

// ---------------------------------------------------------------- fit ----

TEST(FitTest, ExponentialRecoversRate) {
  util::Rng rng(21);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.exponential(0.25));
  const auto fit = fit_exponential(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->rate, 0.25, 0.01);
  EXPECT_LT(ks_statistic_exponential(sample, *fit), 0.02);
}

class WeibullRecovery : public ::testing::TestWithParam<double> {};

TEST_P(WeibullRecovery, RecoversShape) {
  const double shape = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(shape * 1000));
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.weibull(shape, 7.0));
  const auto fit = fit_weibull(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape, shape, shape * 0.05);
  EXPECT_NEAR(fit->scale, 7.0, 0.5);
  EXPECT_LT(ks_statistic_weibull(sample, *fit), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, WeibullRecovery, ::testing::Values(0.5, 0.8, 1.0, 1.5, 3.0));

TEST(FitTest, LogNormalRecoversParams) {
  util::Rng rng(23);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.lognormal(1.5, 0.75));
  const auto fit = fit_lognormal(sample);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mu, 1.5, 0.03);
  EXPECT_NEAR(fit->sigma, 0.75, 0.03);
}

TEST(FitTest, DegenerateSamplesRejected) {
  EXPECT_FALSE(fit_exponential(std::vector<double>{}).has_value());
  EXPECT_FALSE(fit_exponential(std::vector<double>{-1.0, 0.0}).has_value());
  EXPECT_FALSE(fit_weibull(std::vector<double>{2.0, 2.0, 2.0}).has_value());
  EXPECT_FALSE(fit_lognormal(std::vector<double>{1.0}).has_value());
}

// ----------------------------------------------------------- bootstrap ----

TEST(BootstrapTest, MeanCiCoversTruth) {
  util::Rng rng(29);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.normal(10.0, 2.0));
  const auto ci = bootstrap_mean_ci(sample, 600, 0.95);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 10.0);
  EXPECT_GT(ci.hi, 10.0);
  EXPECT_LT(ci.hi - ci.lo, 1.0);  // ~4 * 2/sqrt(500)
}

TEST(BootstrapTest, DegenerateCases) {
  const auto empty = bootstrap_mean_ci(std::vector<double>{});
  EXPECT_EQ(empty.point, 0.0);
  const auto single = bootstrap_mean_ci(std::vector<double>{3.0});
  EXPECT_EQ(single.point, 3.0);
  EXPECT_EQ(single.lo, 3.0);
  EXPECT_EQ(single.hi, 3.0);
}

TEST(BootstrapTest, CustomStatistic) {
  const std::vector<double> sample = {1, 2, 3, 4, 100};
  const auto ci = bootstrap_ci(
      sample, [](std::span<const double> s) { return Ecdf{s}.quantile(0.5); }, 300);
  EXPECT_EQ(ci.point, 3.0);
}

}  // namespace
}  // namespace hpcfail::stats
