# Empty dependencies file for fig19_job_mtbf.
# This may be replaced when dependencies are built.
