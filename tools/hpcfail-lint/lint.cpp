#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>

#include "cxx_model.hpp"

namespace hpcfail::lint {

namespace fs = std::filesystem;

std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
    case Severity::Error: break;
  }
  return "error";
}

std::string Diagnostic::to_string() const {
  std::ostringstream out;
  out << file << ':' << line << ": " << lint::to_string(severity) << ": [" << check
      << "] " << message;
  return out.str();
}

bool Report::ok() const noexcept {
  return std::none_of(diagnostics.begin(), diagnostics.end(),
                      [](const Diagnostic& d) { return d.severity == Severity::Error; });
}

void Report::add(std::string file, std::size_t line, std::string check,
                 std::string message, Severity severity) {
  diagnostics.push_back(Diagnostic{std::move(file), line, std::move(check),
                                   std::move(message), severity});
}

namespace {

// ---------------------------------------------------------------------------
// Source-file plumbing (all reads go through the shared SourceTree cache)
// ---------------------------------------------------------------------------

const SourceFile* load(SourceTree& tree, const std::string& rel_path,
                       const std::string& check, Report& report) {
  const SourceFile* f = tree.source(rel_path);
  if (f == nullptr) {
    report.add(rel_path, 0, check, "cannot read file (tree layout drifted?)");
  }
  return f;
}

struct LineRange {
  std::size_t begin = 0;  ///< 1-based first line inside the braces
  std::size_t end = 0;    ///< 1-based line of the closing brace (inclusive)
};

/// Brace-balanced body of the first function/enum whose defining line
/// contains `marker`.  Line-oriented: good enough for the table-shaped code
/// this lint inspects (no braces inside string literals there).
std::optional<LineRange> body_of(const SourceFile& f, std::string_view marker) {
  std::size_t i = 0;
  while (i < f.lines.size() && f.lines[i].find(marker) == std::string::npos) ++i;
  if (i == f.lines.size()) return std::nullopt;
  int depth = 0;
  bool entered = false;
  for (std::size_t j = i; j < f.lines.size(); ++j) {
    for (const char c : f.lines[j]) {
      if (c == '{') {
        ++depth;
        entered = true;
      } else if (c == '}') {
        --depth;
        if (entered && depth == 0) return LineRange{i + 1, j + 1};
      }
    }
  }
  return std::nullopt;
}

struct TableEntry {
  std::string key;
  std::string value;
  std::size_t line = 0;
};

/// All single-line regex matches in [range.begin, range.end]; group 1 -> key,
/// group 2 (if present) -> value.
std::vector<TableEntry> scan(const SourceFile& f, const LineRange& range,
                             const std::regex& re) {
  std::vector<TableEntry> out;
  for (std::size_t n = range.begin; n <= range.end && n <= f.lines.size(); ++n) {
    const std::string& text = f.lines[n - 1];
    for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
         it != std::sregex_iterator(); ++it) {
      TableEntry e;
      e.key = (*it)[1].str();
      if (it->size() > 2 && (*it)[2].matched) e.value = (*it)[2].str();
      e.line = n;
      out.push_back(std::move(e));
    }
  }
  return out;
}

LineRange whole_file(const SourceFile& f) { return LineRange{1, f.lines.size()}; }

/// The Classified{EventType::X} rule constructions reachable from
/// `classify_fn`.  The single-pass SignatureSet classifier keeps the public
/// classify_* function as a thin wrapper and builds every Classified inside
/// a resolve_* helper, so when the wrapper body holds no rules the scan
/// follows the resolver body instead (cascade-style trees keep everything
/// in the wrapper and never reach the fallback).
std::vector<TableEntry> classified_rules(const SourceFile& classifier,
                                         std::string_view classify_fn,
                                         std::string_view resolve_fn) {
  static const std::regex classified_re(R"(Classified\{EventType::(\w+))");
  if (const auto body = body_of(classifier, classify_fn)) {
    auto rules = scan(classifier, *body, classified_re);
    if (!rules.empty()) return rules;
  }
  if (const auto body = body_of(classifier, resolve_fn)) {
    return scan(classifier, *body, classified_re);
  }
  return {};
}

// Repo-relative paths of the cross-checked tables.  Fixture trees used by
// the lint's own tests mirror this layout.
constexpr const char* kRendererCpp = "src/loggen/renderer.cpp";
constexpr const char* kClassifierCpp = "src/parsers/line_classifier.cpp";
constexpr const char* kEventTypeHpp = "src/logmodel/event_type.hpp";
constexpr const char* kEventTypeCpp = "src/logmodel/event_type.cpp";
constexpr const char* kCorpusCpp = "src/loggen/corpus.cpp";
constexpr const char* kFaultCpp = "src/util/fault.cpp";
constexpr const char* kSnapshotHpp = "src/util/snapshot.hpp";
constexpr const char* kServeProtocolCpp = "src/serve/protocol.cpp";
constexpr const char* kFormatsMd = "FORMATS.md";

/// EventType enumerators of event_type.hpp, in declaration order.
std::vector<TableEntry> enum_entries(SourceTree& tree, const std::string& check,
                                     Report& report) {
  const auto* hpp = load(tree, kEventTypeHpp, check, report);
  if (hpp == nullptr) return {};
  const auto body = body_of(*hpp, "enum class EventType");
  if (!body) {
    report.add(kEventTypeHpp, 0, check, "no `enum class EventType` block found");
    return {};
  }
  // Enumerators start with an uppercase letter and end with ','; this skips
  // comments, blank lines and the trailing kCount sentinel.
  static const std::regex re(R"(^\s*([A-Z]\w*)\s*,)");
  return scan(*hpp, *body, re);
}

// ---------------------------------------------------------------------------
// Pairwise table comparison
// ---------------------------------------------------------------------------

/// Reports entries of `ours` whose key is absent from `theirs`, or mapped to
/// a different value.  `direction` phrases the message.
void cross_check(const std::vector<TableEntry>& ours, const std::string& our_file,
                 const std::vector<TableEntry>& theirs, const std::string& their_file,
                 const std::string& check, const std::string& direction, Report& report) {
  std::map<std::string, std::string> other;
  for (const auto& e : theirs) other.emplace(e.key, e.value);
  for (const auto& e : ours) {
    const auto it = other.find(e.key);
    if (it == other.end()) {
      report.add(our_file, e.line, check,
                 "'" + e.key + "' " + direction + " has no counterpart in " + their_file);
    } else if (!e.value.empty() && !it->second.empty() && it->second != e.value) {
      report.add(our_file, e.line, check,
                 "'" + e.key + "' maps to " + e.value + " here but to " + it->second +
                     " in " + their_file);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Check: erd-table
// ---------------------------------------------------------------------------

void check_erd_tables(SourceTree& tree, Report& report) {
  const std::string check = "erd-table";
  const auto* renderer = load(tree, kRendererCpp, check, report);
  const auto* classifier = load(tree, kClassifierCpp, check, report);
  if (renderer == nullptr || classifier == nullptr) return;

  const auto rbody = body_of(*renderer, "erd_event_name(");
  const auto cbody = body_of(*classifier, "erd_event_type(");
  if (!rbody) {
    report.add(kRendererCpp, 0, check, "no erd_event_name() definition found");
  }
  if (!cbody) {
    report.add(kClassifierCpp, 0, check, "no erd_event_type() definition found");
  }
  if (!rbody || !cbody) return;

  // case EventType::NodeHeartbeatFault: return "ec_node_failed";
  static const std::regex rrex(
      R"(case\s+EventType::(\w+)\s*:\s*return\s+\"([a-z0-9_]+)\";)");
  // if (name == "ec_node_failed") return EventType::NodeHeartbeatFault;
  static const std::regex crex(
      R"(if\s*\(name\s*==\s*\"([a-z0-9_]+)\"\)\s*return\s+EventType::(\w+);)");

  // Normalize both to name -> EventType.
  std::vector<TableEntry> emit;
  for (auto& e : scan(*renderer, *rbody, rrex)) {
    emit.push_back(TableEntry{e.value, e.key, e.line});
  }
  const auto parse = scan(*classifier, *cbody, crex);

  if (emit.empty()) {
    report.add(kRendererCpp, rbody->begin, check,
               "erd_event_name() has no `case EventType::X: return \"name\";` entries");
  }
  if (parse.empty()) {
    report.add(kClassifierCpp, cbody->begin, check,
               "erd_event_type() has no `if (name == \"...\") return EventType::X;` entries");
  }

  cross_check(emit, kRendererCpp, parse, kClassifierCpp, check,
              "(emitted ERD event name)", report);
  cross_check(parse, kClassifierCpp, emit, kRendererCpp, check,
              "(parsed ERD event name)", report);

  // Every EventType referenced must exist in the enum.
  std::set<std::string> enum_names;
  for (const auto& e : enum_entries(tree, check, report)) enum_names.insert(e.key);
  if (enum_names.empty()) return;
  for (const auto& e : emit) {
    if (enum_names.count(e.value) == 0) {
      report.add(kRendererCpp, e.line, check,
                 "EventType::" + e.value + " is not an enumerator of EventType");
    }
  }
  for (const auto& e : parse) {
    if (enum_names.count(e.value) == 0) {
      report.add(kClassifierCpp, e.line, check,
                 "EventType::" + e.value + " is not an enumerator of EventType");
    }
  }
}

// ---------------------------------------------------------------------------
// Check: event-names
// ---------------------------------------------------------------------------

void check_event_names(SourceTree& tree, Report& report) {
  const std::string check = "event-names";
  const auto enums = enum_entries(tree, check, report);
  const auto* cpp = load(tree, kEventTypeCpp, check, report);
  if (enums.empty() || cpp == nullptr) return;

  const auto body = body_of(*cpp, "kEventNames");
  if (!body) {
    report.add(kEventTypeCpp, 0, check, "no kEventNames array found");
    return;
  }
  static const std::regex re(R"(^\s*\"(\w+)\",)");
  const auto names = scan(*cpp, *body, re);

  if (names.size() != enums.size()) {
    report.add(kEventTypeCpp, body->begin, check,
               "kEventNames has " + std::to_string(names.size()) + " entries but EventType has " +
                   std::to_string(enums.size()) +
                   " enumerators (to_string/event_type_from_string will misreport)");
  }
  const std::size_t n = std::min(names.size(), enums.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (names[i].key != enums[i].key) {
      report.add(kEventTypeCpp, names[i].line, check,
                 "kEventNames[" + std::to_string(i) + "] is \"" + names[i].key +
                     "\" but enumerator #" + std::to_string(i) + " is " + enums[i].key +
                     " (declared at " + std::string(kEventTypeHpp) + ":" +
                     std::to_string(enums[i].line) + ")");
      break;  // one misalignment cascades; report the first only
    }
  }
}

// ---------------------------------------------------------------------------
// Check: payload-coverage
// ---------------------------------------------------------------------------

namespace {

void coverage_pair(const SourceFile& renderer, std::string_view render_fn,
                   const SourceFile& classifier, std::string_view classify_fn,
                   std::string_view resolve_fn, const std::string& check,
                   Report& report) {
  const auto rbody = body_of(renderer, render_fn);
  const auto cbody = body_of(classifier, classify_fn);
  if (!rbody) {
    report.add(renderer.rel_path, 0, check,
               "no " + std::string(render_fn) + " definition found");
  }
  if (!cbody) {
    report.add(classifier.rel_path, 0, check,
               "no " + std::string(classify_fn) + " definition found");
  }
  if (!rbody || !cbody) return;

  static const std::regex case_re(R"(case\s+EventType::(\w+)\s*:)");
  const auto rendered = scan(renderer, *rbody, case_re);
  const auto classified = classified_rules(classifier, classify_fn, resolve_fn);

  std::set<std::string> classified_set;
  for (const auto& e : classified) classified_set.insert(e.key);
  std::set<std::string> rendered_set;
  for (const auto& e : rendered) rendered_set.insert(e.key);

  for (const auto& e : rendered) {
    if (classified_set.count(e.key) == 0) {
      report.add(renderer.rel_path, e.line, check,
                 std::string(render_fn) + " renders EventType::" + e.key + " but " +
                     std::string(classify_fn) + " (" + classifier.rel_path +
                     ") never classifies it: emitted lines would be skipped on parse");
    }
  }
  for (const auto& e : classified) {
    if (rendered_set.count(e.key) == 0) {
      report.add(classifier.rel_path, e.line, check,
                 std::string(classify_fn) + " recovers EventType::" + e.key + " but " +
                     std::string(render_fn) + " (" + renderer.rel_path +
                     ") has no template for it: rule is dead or the emitter drifted");
    }
  }
}

}  // namespace

void check_payload_coverage(SourceTree& tree, Report& report) {
  const std::string check = "payload-coverage";
  const auto* renderer = load(tree, kRendererCpp, check, report);
  const auto* classifier = load(tree, kClassifierCpp, check, report);
  if (renderer == nullptr || classifier == nullptr) return;

  coverage_pair(*renderer, "internal_payload(", *classifier, "classify_kernel_payload(",
                "resolve_kernel(", check, report);
  coverage_pair(*renderer, "controller_payload(", *classifier,
                "classify_controller_payload(", "resolve_controller(", check, report);
}

// ---------------------------------------------------------------------------
// Check: formats-doc
// ---------------------------------------------------------------------------

void check_formats_doc(SourceTree& tree, Report& report) {
  const std::string check = "formats-doc";
  const auto* doc = load(tree, kFormatsMd, check, report);
  const auto* renderer = load(tree, kRendererCpp, check, report);
  const auto* classifier = load(tree, kClassifierCpp, check, report);
  if (doc == nullptr || renderer == nullptr || classifier == nullptr) return;

  std::set<std::string> enum_names;
  for (const auto& e : enum_entries(tree, check, report)) enum_names.insert(e.key);

  // --- console signature table: | EventName | `signature` | -----------------
  static const std::regex row_re(R"(^\|\s*([A-Z]\w+)\s*\|.*`)");
  const auto rows = scan(*doc, whole_file(*doc), row_re);

  const auto ibody = body_of(*renderer, "internal_payload(");
  const auto kbody = body_of(*classifier, "classify_kernel_payload(");
  std::set<std::string> rendered_set;
  std::set<std::string> classified_set;
  std::vector<TableEntry> rendered;
  if (ibody) {
    static const std::regex case_re(R"(case\s+EventType::(\w+)\s*:)");
    rendered = scan(*renderer, *ibody, case_re);
    for (const auto& e : rendered) rendered_set.insert(e.key);
  }
  if (kbody) {
    for (const auto& e :
         classified_rules(*classifier, "classify_kernel_payload(", "resolve_kernel(")) {
      classified_set.insert(e.key);
    }
  }

  std::set<std::string> documented;
  for (const auto& row : rows) {
    documented.insert(row.key);
    if (!enum_names.empty() && enum_names.count(row.key) == 0) {
      report.add(kFormatsMd, row.line, check,
                 "console table documents '" + row.key + "' which is not an EventType");
      continue;
    }
    if (ibody && rendered_set.count(row.key) == 0) {
      report.add(kFormatsMd, row.line, check,
                 "console table documents " + row.key + " but " + kRendererCpp +
                     " internal_payload() has no template for it");
    }
    if (kbody && classified_set.count(row.key) == 0) {
      report.add(kFormatsMd, row.line, check,
                 "console table documents " + row.key + " but " + kClassifierCpp +
                     " classify_kernel_payload() never produces it");
    }
  }
  if (!rows.empty()) {
    for (const auto& e : rendered) {
      if (documented.count(e.key) == 0) {
        report.add(kRendererCpp, e.line, check,
                   "internal_payload() renders EventType::" + e.key +
                       " but the FORMATS.md console table does not document it");
      }
    }
  }

  // --- ERD vocabulary: backticked `ec_*` names in the "## erd" section ------
  std::size_t erd_begin = 0;
  std::size_t erd_end = doc->lines.size();
  for (std::size_t i = 0; i < doc->lines.size(); ++i) {
    if (erd_begin == 0 && doc->lines[i].rfind("## erd", 0) == 0) {
      erd_begin = i + 1;
    } else if (erd_begin != 0 && doc->lines[i].rfind("## ", 0) == 0) {
      erd_end = i;
      break;
    }
  }
  const auto rbody = body_of(*renderer, "erd_event_name(");
  if (erd_begin != 0 && rbody) {
    static const std::regex doc_name_re(R"(`(ec_\w+)`)");
    const auto doc_names = scan(*doc, LineRange{erd_begin, erd_end}, doc_name_re);
    static const std::regex rrex(
        R"(case\s+EventType::(\w+)\s*:\s*return\s+\"([a-z0-9_]+)\";)");
    const auto table = scan(*renderer, *rbody, rrex);
    std::set<std::string> in_code;
    for (const auto& e : table) in_code.insert(e.value);
    std::set<std::string> in_doc;
    for (const auto& e : doc_names) in_doc.insert(e.key);
    for (const auto& e : doc_names) {
      if (in_code.count(e.key) == 0) {
        report.add(kFormatsMd, e.line, check,
                   "erd section documents event name '" + e.key + "' which " +
                       kRendererCpp + " erd_event_name() never emits");
      }
    }
    for (const auto& e : table) {
      if (in_doc.count(e.value) == 0) {
        report.add(kRendererCpp, e.line, check,
                   "ERD event name '" + e.value +
                       "' is not documented in the FORMATS.md erd section");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check: corpus-files
// ---------------------------------------------------------------------------

void check_corpus_files(SourceTree& tree, Report& report) {
  const std::string check = "corpus-files";
  const auto* corpus = load(tree, kCorpusCpp, check, report);
  const auto* doc = load(tree, kFormatsMd, check, report);
  if (corpus == nullptr || doc == nullptr) return;

  const auto body = body_of(*corpus, "kFileNames");
  if (!body) {
    report.add(kCorpusCpp, 0, check, "no kFileNames array found");
    return;
  }
  static const std::regex code_re(R"#("([A-Za-z0-9._-]+\.log)")#");
  const auto code = scan(*corpus, *body, code_re);
  if (code.empty()) {
    report.add(kCorpusCpp, body->begin, check, "kFileNames lists no .log file names");
  }

  // The documented layout is the fenced block whose first entry is
  // manifest.txt; entries are `<name>.log` at the start of a line.
  std::size_t layout_begin = 0;
  std::size_t layout_end = 0;
  for (std::size_t i = 0; i < doc->lines.size(); ++i) {
    if (layout_begin == 0 && doc->lines[i].rfind("manifest.txt", 0) == 0) {
      layout_begin = i + 1;
    } else if (layout_begin != 0 && doc->lines[i].rfind("```", 0) == 0) {
      layout_end = i + 1;
      break;
    }
  }
  if (layout_begin == 0) {
    report.add(kFormatsMd, 0, check,
               "no corpus layout block found (fenced block starting with manifest.txt)");
    return;
  }
  if (layout_end == 0) layout_end = doc->lines.size();
  static const std::regex doc_re(R"(^([A-Za-z0-9._-]+\.log)\b)");
  const auto documented = scan(*doc, LineRange{layout_begin, layout_end}, doc_re);
  if (documented.empty()) {
    report.add(kFormatsMd, layout_begin, check,
               "corpus layout block documents no .log file names");
  }

  cross_check(code, kCorpusCpp, documented, kFormatsMd, check, "(corpus file name)",
              report);
  cross_check(documented, kFormatsMd, code, kCorpusCpp, check, "(documented corpus file)",
              report);
}

// ---------------------------------------------------------------------------
// Check: snapshot-version
// ---------------------------------------------------------------------------

void check_snapshot_version(SourceTree& tree, Report& report) {
  const std::string check = "snapshot-version";
  const auto* header = load(tree, kSnapshotHpp, check, report);
  const auto* doc = load(tree, kFormatsMd, check, report);
  if (header == nullptr || doc == nullptr) return;

  static const std::regex code_re(R"(kSnapshotFormatVersion\s*=\s*(\d+)\s*;)");
  const auto code = scan(*header, whole_file(*header), code_re);
  if (code.empty()) {
    report.add(kSnapshotHpp, 0, check,
               "no `kSnapshotFormatVersion = N;` definition found");
    return;
  }
  if (code.size() > 1) {
    report.add(kSnapshotHpp, code[1].line, check,
               "kSnapshotFormatVersion is defined more than once");
  }

  static const std::regex doc_re(R"(^Format version:\s*\*\*(\d+)\*\*)");
  const auto documented = scan(*doc, whole_file(*doc), doc_re);
  if (documented.empty()) {
    report.add(kFormatsMd, 0, check,
               "no `Format version: **N**` line found; the hpcfail.store.v1 "
               "section must document the version kSnapshotFormatVersion pins");
    return;
  }
  if (documented.size() > 1) {
    report.add(kFormatsMd, documented[1].line, check,
               "multiple `Format version:` lines; FORMATS.md must pin exactly one");
  }
  if (documented.front().key != code.front().key) {
    report.add(kFormatsMd, documented.front().line, check,
               "documented snapshot format version **" + documented.front().key +
                   "** does not match kSnapshotFormatVersion = " + code.front().key +
                   " in " + kSnapshotHpp +
                   "; bump the doc (and its layout section) with the constant");
  }
}

// ---------------------------------------------------------------------------
// Check: serve-protocol
// ---------------------------------------------------------------------------

void check_serve_protocol(SourceTree& tree, Report& report) {
  const std::string check = "serve-protocol";
  const auto* protocol = load(tree, kServeProtocolCpp, check, report);
  const auto* doc = load(tree, kFormatsMd, check, report);
  if (protocol == nullptr || doc == nullptr) return;

  const auto body = body_of(*protocol, "kVerbs[]");
  if (!body) {
    report.add(kServeProtocolCpp, 0, check, "no kVerbs array found");
    return;
  }
  static const std::regex code_re(R"#(\{"([a-z_]+)",\s*"([^"]*)"\})#");
  const auto code = scan(*protocol, *body, code_re);
  if (code.empty()) {
    report.add(kServeProtocolCpp, body->begin, check, "kVerbs lists no verbs");
  }

  // The documented table lives under the `## serve protocol` heading, one
  // row per verb, and runs until the next section heading.
  std::size_t section_begin = 0;
  std::size_t section_end = 0;
  for (std::size_t i = 0; i < doc->lines.size(); ++i) {
    if (section_begin == 0 && doc->lines[i].rfind("## serve protocol", 0) == 0) {
      section_begin = i + 1;
    } else if (section_begin != 0 && doc->lines[i].rfind("## ", 0) == 0) {
      section_end = i;
      break;
    }
  }
  if (section_begin == 0) {
    report.add(kFormatsMd, 0, check,
               "no `## serve protocol` section found; the daemon's verb table "
               "must be documented");
    return;
  }
  if (section_end == 0) section_end = doc->lines.size();
  static const std::regex doc_re(R"(^\| `([a-z_]+)` \| ([^|]*[^| ]) \|\s*$)");
  const auto documented = scan(*doc, LineRange{section_begin, section_end}, doc_re);
  if (documented.empty()) {
    report.add(kFormatsMd, section_begin, check,
               "serve protocol section documents no verb rows");
  }

  cross_check(code, kServeProtocolCpp, documented, kFormatsMd, check,
              "(serve verb)", report);
  cross_check(documented, kFormatsMd, code, kServeProtocolCpp, check,
              "(documented verb)", report);
}

// ---------------------------------------------------------------------------
// Check: hot-path-scan
// ---------------------------------------------------------------------------

void check_hot_path_scan(SourceTree& tree, Report& report) {
  const std::string check = "hot-path-scan";
  // The streaming ingest earns its MB/s from the util::scan kernels; these
  // two idioms are exactly what the SWAR/SIMD rewrite removed from the hot
  // path, and both creep back easily because they are the "natural" C++.
  static const std::regex raw_find(R"(\.\s*r?find(_first_of|_last_of)?\s*\(\s*(['"])\\n)");
  static const std::regex split_call(R"(\bsplit_lines\s*\()");

  std::vector<std::string> files;
  if (tree.exists("src/parsers")) {
    const auto& under = tree.files_under("src/parsers");
    files.insert(files.end(), under.begin(), under.end());
  } else {
    report.add("src/parsers", 0, check, "no src/parsers directory under repo root");
  }
  // The chunked reader is the one util file on the per-byte path; util/scan
  // itself is exempt by construction (it IS the sanctioned implementation).
  if (tree.exists("src/util/chunked_reader.cpp")) {
    files.push_back("src/util/chunked_reader.cpp");
  }

  for (const auto& rel : files) {
    const auto* file = load(tree, rel, check, report);
    if (file == nullptr) continue;
    for (std::size_t n = 1; n <= file->lines.size(); ++n) {
      const std::string& text = file->lines[n - 1];
      if (std::regex_search(text, raw_find)) {
        emit(*file, n, check,
             "raw newline scan on the ingest hot path; use util::scan::find_byte/"
             "rfind_byte (SWAR/SIMD dispatched) or util::scan::LineCursor",
             report);
      }
      if (std::regex_search(text, split_call)) {
        emit(*file, n, check,
             "split_lines allocates a per-line vector on the ingest hot path; "
             "iterate with util::scan::LineCursor (zero allocation)",
             report);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check: banned-pattern
// ---------------------------------------------------------------------------

void check_banned_patterns(SourceTree& tree, Report& report) {
  const std::string check = "banned-pattern";
  struct Banned {
    std::regex re;
    std::string why;
  };
  // The simulator must be bit-reproducible across machines and runs; any
  // libc/libstdc++ RNG or wall-clock seeding silently breaks golden tests.
  static const std::vector<Banned> banned = {
      {std::regex(R"(\b(s?rand)\s*\()"),
       "libc rand()/srand() is banned; use util::Rng (deterministic xoshiro256**)"},
      {std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0)\s*\))"),
       "wall-clock seeding is banned; simulation time comes from the scenario config"},
      {std::regex(R"(std::random_device)"),
       "std::random_device is banned; seeds must be explicit for reproducibility"},
      {std::regex(R"(\b(mt19937(_64)?|default_random_engine|minstd_rand0?)\b)"),
       "std <random> engines are banned; use util::Rng so sequences are portable"},
      {std::regex(R"(\brandom_shuffle\b)"),
       "random_shuffle is banned; use util::Rng::shuffle"},
  };

  if (!tree.exists("src")) {
    report.add("src", 0, check, "no src/ directory under repo root");
    return;
  }
  for (const auto& rel : tree.files_under("src")) {
    const auto* file = load(tree, rel, check, report);
    if (file == nullptr) continue;
    for (std::size_t n = 1; n <= file->lines.size(); ++n) {
      const std::string& text = file->lines[n - 1];
      if (text.find("hpcfail-lint: allow(banned-pattern)") != std::string::npos) continue;
      for (const auto& b : banned) {
        if (std::regex_search(text, b.re)) {
          report.add(rel, n, check, b.why);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check: header-hygiene
// ---------------------------------------------------------------------------

void check_header_hygiene(SourceTree& tree, Report& report) {
  const std::string check = "header-hygiene";
  if (!tree.exists("src")) {
    report.add("src", 0, check, "no src/ directory under repo root");
    return;
  }

  static const std::regex using_ns(R"(^\s*using\s+namespace\b)");
  for (const auto& rel : tree.files_under("src")) {
    if (rel.size() < 4 || rel.compare(rel.size() - 4, 4, ".hpp") != 0) continue;
    const auto* file = load(tree, rel, check, report);
    if (file == nullptr) continue;
    bool pragma_once = false;
    const std::size_t probe = std::min<std::size_t>(file->lines.size(), 30);
    for (std::size_t n = 0; n < probe; ++n) {
      if (file->lines[n].rfind("#pragma once", 0) == 0) {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      report.add(rel, 1, check, "header lacks #pragma once in its first 30 lines");
    }
    for (std::size_t n = 1; n <= file->lines.size(); ++n) {
      if (std::regex_search(file->lines[n - 1], using_ns)) {
        report.add(rel, n, check,
                   "`using namespace` in a header leaks into every includer");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check: bench-pipeline
// ---------------------------------------------------------------------------

void check_bench_pipeline(SourceTree& tree, Report& report) {
  const std::string check = "bench-pipeline";
  if (!tree.exists("bench")) {
    report.add("bench", 0, check, "no bench/ directory under repo root");
    return;
  }

  static const std::regex direct_call(R"(\banalyze_failures\s*\()");
  static const std::regex pipeline_use(
      R"(\b(run_pipeline|run_system)\s*\(|\bAnalysisEngine\b)");
  for (const auto& rel : tree.files_under("bench")) {
    const std::string name = fs::path(rel).filename().string();
    if (fs::path(rel).extension() != ".cpp") continue;
    if (name.rfind("fig", 0) != 0 && name.rfind("tab", 0) != 0) continue;
    const auto* file = load(tree, rel, check, report);
    if (file == nullptr) continue;
    bool uses_pipeline = false;
    bool allowed = false;
    for (std::size_t n = 1; n <= file->lines.size(); ++n) {
      const std::string& text = file->lines[n - 1];
      if (text.find("hpcfail-lint: allow(bench-pipeline)") != std::string::npos) {
        allowed = true;
        continue;
      }
      if (std::regex_search(text, pipeline_use)) uses_pipeline = true;
      if (std::regex_search(text, direct_call)) {
        report.add(rel, n, check,
                   "figure bench calls analyze_failures() directly; route it through "
                   "bench::run_pipeline or core::AnalysisEngine");
      }
    }
    if (!uses_pipeline && !allowed) {
      report.add(rel, 1, check,
                 "figure bench never uses bench::run_pipeline/run_system or "
                 "core::AnalysisEngine; hand-wired analysis drifts from the shared "
                 "pipeline");
    }
  }
}

// ---------------------------------------------------------------------------
// Check: metric-naming
// ---------------------------------------------------------------------------

void check_metric_naming(SourceTree& tree, Report& report) {
  const std::string check = "metric-naming";
  // A complete instrument name: hpcfail root plus at least two lowercase
  // snake_case dot-segments (hpcfail.<layer>.<name>...).
  static const std::regex full_name(R"(^hpcfail(\.[a-z0-9]+(_[a-z0-9]+)*){2,}$)");
  // A literal completed at runtime ("hpcfail.pool.worker" + i + ...): every
  // segment present in the literal must already be lowercase snake_case, and
  // it may end on a dangling '.' or '_' that the runtime suffix continues.
  static const std::regex prefix_name(R"(^hpcfail(\.[a-z0-9]+(_[a-z0-9]+)*)+[._]?$)");
  // Any string literal rooted at "hpcfail."; capture 2 is a trailing '+'
  // that marks the literal as a runtime-completed prefix.  Literals with
  // escapes (e.g. names embedded in hand-written JSON) are skipped — names
  // never contain backslashes.
  static const std::regex rooted_literal(R"#("(hpcfail\.[^"\\]*)"\s*(\+)?)#");
  // Instrument call sites, so names that forgot the hpcfail root are still
  // caught: registry lookups and span constructions taking a name literal.
  static const std::regex call_site(
      R"#(\b(?:counter|gauge|histogram|TraceSpan(?:\s+\w+)?|PhaseScope(?:\s+\w+)?)\s*\(\s*"([^"\\]+)")#");

  if (!tree.exists("src")) {
    report.add("src", 0, check, "no src/ directory under repo root");
    return;
  }
  for (const char* top : {"src", "tools", "bench"}) {
    for (const auto& rel : tree.files_under(top)) {
      // The linter's own sources quote drifted names in messages and tests.
      if (rel.rfind("tools/hpcfail-lint/", 0) == 0) continue;
      const auto* file = load(tree, rel, check, report);
      if (file == nullptr) continue;
      for (std::size_t n = 1; n <= file->lines.size(); ++n) {
        const std::string& text = file->lines[n - 1];
        if (text.find("hpcfail-lint: allow(metric-naming)") != std::string::npos) continue;

        // Collect each candidate name once per line; a name seen with a
        // trailing '+' anywhere on the line is validated as a prefix.
        std::map<std::string, bool> names;  // name -> is_prefix
        for (auto it = std::sregex_iterator(text.begin(), text.end(), rooted_literal);
             it != std::sregex_iterator(); ++it) {
          bool& is_prefix = names[(*it)[1].str()];
          is_prefix = is_prefix || (*it)[2].matched;
        }
        for (auto it = std::sregex_iterator(text.begin(), text.end(), call_site);
             it != std::sregex_iterator(); ++it) {
          names.emplace((*it)[1].str(), false);
        }

        for (const auto& [name, is_prefix] : names) {
          if (name.rfind("hpcfail.", 0) != 0) {
            report.add(rel, n, check,
                       "instrument name '" + name +
                           "' is not rooted under 'hpcfail.'; metric and span names "
                           "follow hpcfail.<layer>.<snake_case>");
          } else if (is_prefix) {
            std::string head = name;
            if (!head.empty() && (head.back() == '.' || head.back() == '_')) head.pop_back();
            if (!std::regex_match(head, prefix_name)) {
              report.add(rel, n, check,
                         "metric/span name prefix '" + name +
                             "' drifts from hpcfail.<layer>.<snake_case> (complete "
                             "segments before the runtime suffix must be lowercase "
                             "snake_case)");
            }
          } else if (!std::regex_match(name, full_name)) {
            report.add(rel, n, check,
                       "metric/span name '" + name +
                           "' drifts from hpcfail.<layer>.<snake_case> (lowercase "
                           "snake_case segments, at least two after 'hpcfail')");
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check: fault-sites
// ---------------------------------------------------------------------------

void check_fault_sites(SourceTree& tree, Report& report) {
  const std::string check = "fault-sites";
  // <layer>.<component>.<kind>: lowercase snake_case dot segments, >= 3.
  static const std::regex name_re(
      R"(^[a-z0-9]+(_[a-z0-9]+)*(\.[a-z0-9]+(_[a-z0-9]+)*){2,}$)");
  static const std::regex site_use(R"#(HPCFAIL_FAULT_SITE\(\s*"([^"\\]+)"\s*\))#");
  // Doc comments quote example sites (util/fault.hpp's header comment).
  static const std::regex comment_line(R"(^\s*//)");

  // The inventory side: the kSites table in src/util/fault.cpp.
  const auto* fault_cpp = load(tree, kFaultCpp, check, report);
  if (fault_cpp == nullptr) return;
  const auto body = body_of(*fault_cpp, "kSites");
  if (!body) {
    report.add(kFaultCpp, 0, check, "no kSites inventory array found");
    return;
  }
  static const std::regex entry_re(R"#("([^"\\]+)")#");
  const auto inventory = scan(*fault_cpp, *body, entry_re);
  std::set<std::string> inventoried;
  for (const auto& e : inventory) inventoried.insert(e.key);

  // The code side: every HPCFAIL_FAULT_SITE literal under src/tools/bench.
  struct Use {
    std::string file;
    std::size_t line = 0;
  };
  std::map<std::string, Use> first_use;
  for (const char* top : {"src", "tools", "bench"}) {
    if (!tree.exists(top)) continue;
    for (const auto& rel : tree.files_under(top)) {
      // The linter's own sources and tests quote drifted names.
      if (rel.rfind("tools/hpcfail-lint/", 0) == 0) continue;
      const auto* file = load(tree, rel, check, report);
      if (file == nullptr) continue;
      for (std::size_t n = 1; n <= file->lines.size(); ++n) {
        const std::string& text = file->lines[n - 1];
        if (std::regex_search(text, comment_line)) continue;
        if (text.find("hpcfail-lint: allow(fault-sites)") != std::string::npos) continue;
        for (auto it = std::sregex_iterator(text.begin(), text.end(), site_use);
             it != std::sregex_iterator(); ++it) {
          const std::string name = (*it)[1].str();
          const auto [slot, inserted] = first_use.emplace(name, Use{rel, n});
          if (!inserted) {
            report.add(rel, n, check,
                       "fault site '" + name + "' is already declared at " +
                           slot->second.file + ":" + std::to_string(slot->second.line) +
                           "; site names must be unique across the tree");
            continue;
          }
          if (!std::regex_match(name, name_re)) {
            report.add(rel, n, check,
                       "fault site '" + name +
                           "' drifts from <layer>.<component>.<kind> (lowercase "
                           "snake_case dot segments, at least three)");
          }
          if (inventoried.count(name) == 0) {
            report.add(rel, n, check,
                       "fault site '" + name + "' is not listed in the kSites inventory (" +
                           std::string(kFaultCpp) + "); the sweep harness cannot arm it");
          }
        }
      }
    }
  }

  // Inventory entries must be live and stay sorted (the sweep enumerates
  // them in order; a stale entry makes the sweep arm a site nothing hits).
  for (std::size_t i = 0; i < inventory.size(); ++i) {
    const auto& e = inventory[i];
    if (first_use.count(e.key) == 0) {
      report.add(kFaultCpp, e.line, check,
                 "kSites entry '" + e.key +
                     "' has no HPCFAIL_FAULT_SITE use in the tree; remove it or wire "
                     "the site");
    }
    if (i > 0 && !(inventory[i - 1].key < e.key)) {
      report.add(kFaultCpp, e.line, check,
                 "kSites entry '" + e.key +
                     "' is out of order; the inventory stays sorted so the sweep "
                     "enumeration is stable");
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

namespace {

struct CheckDef {
  CheckInfo info;
  void (*fn)(SourceTree&, Report&);
};

const std::vector<CheckDef>& registry() {
  static const std::vector<CheckDef> defs = {
      {{"erd-table", Severity::Error,
        "Renderer erd_event_name() and classifier erd_event_type() must be exact "
        "inverses"},
       &check_erd_tables},
      {{"event-names", Severity::Error,
        "kEventNames must list the EventType enumerators in declaration order"},
       &check_event_names},
      {{"payload-coverage", Severity::Error,
        "Every rendered payload template needs a matching classifier rule and vice "
        "versa"},
       &check_payload_coverage},
      {{"formats-doc", Severity::Error,
        "FORMATS.md tables must match the emitter and parser tables in code"},
       &check_formats_doc},
      {{"corpus-files", Severity::Error,
        "Corpus file names in code and the FORMATS.md layout block must agree"},
       &check_corpus_files},
      {{"snapshot-version", Severity::Error,
        "kSnapshotFormatVersion and the FORMATS.md `Format version` line must "
        "agree"},
       &check_snapshot_version},
      {{"banned-pattern", Severity::Error,
        "No nondeterministic RNG or wall-clock seeding outside util::Rng"},
       &check_banned_patterns},
      {{"header-hygiene", Severity::Error,
        "Headers carry #pragma once and never `using namespace` at top level"},
       &check_header_hygiene},
      {{"bench-pipeline", Severity::Error,
        "Figure/table benches route analysis through run_pipeline/AnalysisEngine"},
       &check_bench_pipeline},
      {{"metric-naming", Severity::Error,
        "Instrument names follow hpcfail.<layer>.<snake_case>"},
       &check_metric_naming},
      {{"fault-sites", Severity::Error,
        "HPCFAIL_FAULT_SITE names are unique, well-formed and in sync with the "
        "kSites inventory"},
       &check_fault_sites},
      {{"capture-lifetime", Severity::Error,
        "Lambdas queued on the ThreadPool must not capture by reference (PR 1 "
        "use-after-scope class)"},
       &check_capture_lifetime},
      {{"dangling-view", Severity::Error,
        "No std::span/std::string_view derived from locals or temporaries (PR 5 "
        "dangling-view class)"},
       &check_dangling_view},
      {{"finalize-protocol", Severity::Error,
        "Public LogStore/AnalysisContext accessors guard non-finalized state with "
        "std::logic_error or carry a reasoned allow"},
       &check_finalize_protocol},
      {{"raw-sync", Severity::Error,
        "No bare std::thread/detach()/raw new/const_cast outside src/util; "
        "concurrency goes through util::ThreadPool"},
       &check_raw_sync},
      {{"hot-path-scan", Severity::Error,
        "Ingest hot-path files scan bytes through util::scan, never raw "
        "find('\\n') or per-chunk split_lines vectors"},
       &check_hot_path_scan},
      {{"serve-protocol", Severity::Error,
        "The serve verb table (kVerbs) and the FORMATS.md serve protocol "
        "section must agree verb-for-verb, summary-for-summary"},
       &check_serve_protocol},
  };
  return defs;
}

}  // namespace

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> infos = [] {
    std::vector<CheckInfo> v;
    v.reserve(registry().size());
    for (const auto& def : registry()) v.push_back(def.info);
    return v;
  }();
  return infos;
}

const std::vector<std::string>& all_check_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    v.reserve(registry().size());
    for (const auto& def : registry()) v.push_back(def.info.name);
    return v;
  }();
  return names;
}

Report run_checks(SourceTree& tree, const std::vector<std::string>& checks) {
  Report report;
  const std::vector<std::string>& selected = checks.empty() ? all_check_names() : checks;
  for (const auto& name : selected) {
    const auto it =
        std::find_if(registry().begin(), registry().end(),
                     [&](const CheckDef& def) { return def.info.name == name; });
    if (it == registry().end()) {
      report.add("<args>", 0, "usage", "unknown check '" + name + "'");
      continue;
    }
    it->fn(tree, report);
  }
  return report;
}

Report run_checks(const fs::path& root, const std::vector<std::string>& checks) {
  SourceTree tree(root);
  return run_checks(tree, checks);
}

}  // namespace hpcfail::lint
