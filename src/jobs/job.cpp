#include "jobs/job.hpp"

namespace hpcfail::jobs {

std::string_view to_string(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::Completed: return "Completed";
    case JobOutcome::NonZeroExit: return "NonZeroExit";
    case JobOutcome::ConfigError: return "ConfigError";
    case JobOutcome::UserCancelled: return "UserCancelled";
    case JobOutcome::OomKilled: return "OomKilled";
    case JobOutcome::NodeFailure: return "NodeFailure";
    case JobOutcome::Overallocated: return "Overallocated";
  }
  return "?";
}

int exit_code_for(JobOutcome o) noexcept {
  switch (o) {
    case JobOutcome::Completed: return 0;
    case JobOutcome::NonZeroExit: return 1;
    case JobOutcome::ConfigError: return 2;
    case JobOutcome::UserCancelled: return 130;  // SIGINT convention
    case JobOutcome::OomKilled: return 137;      // SIGKILL convention
    case JobOutcome::NodeFailure: return 143;    // SIGTERM convention
    case JobOutcome::Overallocated: return 137;
  }
  return -1;
}

}  // namespace hpcfail::jobs
