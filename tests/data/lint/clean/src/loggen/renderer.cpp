#include "loggen/renderer.hpp"

namespace hpcfail::loggen {

std::string_view erd_event_name(EventType t) noexcept {
  switch (t) {
    case EventType::NodeHeartbeatFault: return "ec_node_failed";
    case EventType::NodeVoltageFault: return "ec_node_voltage_fault";
    default: return "ec_event";
  }
}

}  // namespace hpcfail::loggen
