// Synthetic workload generation: Poisson job arrivals, heavy-tailed sizes
// and durations, app sampling from the catalog, and node placement through
// the allocator.  The generator only decides *what runs where and when*;
// outcomes are provisional (Completed / benign errors) until the fault
// simulator overlays failure chains.
#pragma once

#include <cstdint>
#include <vector>

#include "jobs/allocator.hpp"
#include "jobs/app_catalog.hpp"
#include "jobs/job.hpp"
#include "platform/topology.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpcfail::jobs {

struct WorkloadConfig {
  double arrivals_per_hour = 40.0;
  /// Weights over size classes {1, 2-4, 8-32, 64-256, 512-2048} nodes.
  std::vector<double> size_class_weights = {30, 25, 25, 15, 5};
  double duration_lognorm_mu = 4.0;     ///< ln(minutes); e^4 ~ 55 min median
  double duration_lognorm_sigma = 1.1;
  double blade_packed_fraction = 0.55;  ///< remainder scattered
  util::Duration default_walltime = util::Duration::hours(12);
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const platform::Topology& topo, AppCatalog catalog,
                    WorkloadConfig config, util::Rng rng);

  /// Generates jobs with start times in [begin, end), sorted by start.
  /// Provisional outcomes cover only scheduler-side phenomena (benign
  /// non-zero exits, configuration errors, user cancels) per the catalog.
  [[nodiscard]] std::vector<Job> generate(util::TimePoint begin, util::TimePoint end);

  [[nodiscard]] const AppCatalog& catalog() const noexcept { return catalog_; }

 private:
  [[nodiscard]] std::uint32_t sample_size(util::Rng& rng) const;

  const platform::Topology& topo_;
  AppCatalog catalog_;
  WorkloadConfig config_;
  util::Rng rng_;
  std::int64_t next_job_id_ = 100000;
};

}  // namespace hpcfail::jobs
