#include "core/online_monitor.hpp"

#include <limits>

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

std::string_view to_string(AlertKind k) noexcept {
  switch (k) {
    case AlertKind::PatternWarning: return "PatternWarning";
    case AlertKind::ExternalEarlyWarning: return "ExternalEarlyWarning";
    case AlertKind::FailureConfirmed: return "FailureConfirmed";
    case AlertKind::NodeRecovered: return "NodeRecovered";
  }
  return "?";
}

Evidence OnlineMonitor::evidence_for(const NodeView& node, platform::BladeId blade,
                                     util::TimePoint now) const {
  Evidence ev;
  for (const auto& e : node.recent) {
    switch (e.type) {
      case EventType::MachineCheckException: ev.mce = true; break;
      case EventType::HardwareError: ev.hw_error = true; break;
      case EventType::CpuCorruption: ev.cpu_corruption = true; break;
      case EventType::OomKill: ev.oom = true; break;
      case EventType::PageAllocationFailure: ev.page_alloc_failure = true; break;
      case EventType::LustreError: ev.lustre_error = true; break;
      case EventType::LustreBug: ev.lustre_bug = true; break;
      case EventType::DvsError: ev.dvs_error = true; break;
      case EventType::KernelOops: ev.kernel_oops = true; break;
      case EventType::InvalidOpcode: ev.invalid_opcode = true; break;
      case EventType::CpuStall: ev.cpu_stall = true; break;
      case EventType::SegFault: ev.seg_fault = true; break;
      case EventType::NhcTestFail: ev.nhc_test_fail = true; break;
      case EventType::AppExitAbnormal: ev.app_exit_abnormal = true; break;
      case EventType::BiosError: ev.bios_error = true; break;
      case EventType::L0SysdMce: ev.l0_sysd_mce = true; break;
      case EventType::CallTrace: ev.stack_modules.push_back(e.detail); break;
      default: break;
    }
  }
  if (blade.valid()) {
    const auto it = blade_external_.find(blade.value);
    if (it != blade_external_.end()) {
      for (const auto& e : it->second) {
        if (now - e.time > config_.external_memory) continue;
        switch (e.type) {
          case EventType::EcHwError: ev.ec_hw_errors = true; break;
          case EventType::LinkError: ev.link_errors = true; break;
          case EventType::NodeVoltageFault: ev.node_voltage_fault = true; break;
          case EventType::SedcVoltageWarning: ev.sedc_voltage = true; break;
          default: break;
        }
      }
    }
  }
  return ev;
}

std::vector<Alert> OnlineMonitor::ingest(const LogRecord& record, std::string_view detail) {
  std::vector<Alert> alerts;

  // Remember blade-scoped external indicators.
  if (logmodel::is_external_indicator(record.type) &&
      record.type != EventType::NodeHeartbeatFault && record.has_blade()) {
    auto& mem = blade_external_[record.blade.value];
    mem.push_back({record.time, record.type, {}});
    while (!mem.empty() && record.time - mem.front().time > config_.external_memory) {
      mem.pop_front();
    }
  }

  if (!record.has_node()) return alerts;
  NodeView& node = nodes_[record.node.value];

  // Failure markers confirm; diagnosis from accumulated evidence.
  if (logmodel::is_failure_marker(record.type)) {
    if (!node.down) {
      node.down = true;
      const RootCauseEngine engine;
      const Inference inference =
          engine.infer(evidence_for(node, record.blade, record.time), record.type);
      alerts.push_back({AlertKind::FailureConfirmed, record.time, record.node,
                        inference.cause,
                        "failure confirmed: " + inference.rationale});
    }
    return alerts;
  }
  if (record.type == EventType::NodeBoot) {
    if (node.down) {
      node.down = false;
      node.recent.clear();
      alerts.push_back({AlertKind::NodeRecovered, record.time, record.node,
                        logmodel::RootCause::Unknown, "node rebooted and returned"});
    }
    return alerts;
  }
  if (!logmodel::is_internal_indicator(record.type) &&
      record.type != EventType::CallTrace) {
    return alerts;
  }

  // Pattern detection over the remembered internal events.
  bool pattern = false;
  for (const auto& e : node.recent) {
    if (e.type != record.type && record.time - e.time <= config_.pattern_window &&
        e.type != EventType::CallTrace && record.type != EventType::CallTrace) {
      pattern = true;
      break;
    }
  }
  node.recent.push_back({record.time, record.type, std::string(detail)});
  while (!node.recent.empty() &&
         record.time - node.recent.front().time > config_.evidence_memory) {
    node.recent.pop_front();
  }

  if (pattern && record.time - node.last_warning >= config_.warning_cooldown) {
    node.last_warning = record.time;
    const Evidence ev = evidence_for(node, record.blade, record.time);
    const bool external = ev.ec_hw_errors || ev.node_voltage_fault || ev.link_errors ||
                          ev.sedc_voltage;
    const RootCauseEngine engine;
    const Inference inference = engine.infer(ev, EventType::NodeShutdown);
    alerts.push_back({external ? AlertKind::ExternalEarlyWarning
                               : AlertKind::PatternWarning,
                      record.time, record.node, inference.cause,
                      external ? "indicative pattern with external corroboration"
                               : "indicative internal pattern"});
  }
  return alerts;
}

std::vector<Alert> OnlineMonitor::ingest_all(const logmodel::LogStore& store) {
  std::vector<Alert> all;
  for (const auto& r : store.records()) {
    for (auto& alert : ingest(r, store.detail(r))) all.push_back(std::move(alert));
  }
  return all;
}

}  // namespace hpcfail::core
