// One-call operator report: everything the pipeline knows about a log
// window, rendered as Markdown — failure breakdown, temporal and external
// correlation statistics, lead times, fleet availability and per-failure
// mitigation advice.  This is the artifact a site operator would attach to
// a weekly review; corpus_tool's `report` subcommand writes it.
#pragma once

#include <string>

#include "core/root_cause.hpp"
#include "jobs/job_table.hpp"
#include "logmodel/log_store.hpp"
#include "platform/topology.hpp"

namespace hpcfail::core {

struct ReportInputs {
  const logmodel::LogStore* store = nullptr;
  const jobs::JobTable* jobs = nullptr;         ///< may be null
  const platform::Topology* topology = nullptr;
  std::string system_label = "?";
  util::TimePoint begin;
  util::TimePoint end;
};

/// Runs the full analysis over the inputs and renders the report.
[[nodiscard]] std::string markdown_report(const ReportInputs& inputs);

}  // namespace hpcfail::core
