// Unit tests for logmodel::SymbolTable: dedup, view stability across arena
// growth and moves, deep copies, and the absorb() shard-merge remap —
// including the parallel-producer pattern the ingestion pipeline uses
// (per-worker tables built concurrently, absorbed serially at retire time).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "logmodel/symbol_table.hpp"

namespace hpcfail::logmodel {
namespace {

TEST(SymbolTableTest, EmptyStringIsSymbolZero) {
  SymbolTable table;
  EXPECT_EQ(table.size(), 1u);  // "" pre-interned
  EXPECT_EQ(table.intern("").id, 0u);
  EXPECT_EQ(table.view(Symbol{}), "");
  EXPECT_EQ(Symbol{}.id, 0u);  // default-constructed records resolve to ""
}

TEST(SymbolTableTest, InternDeduplicates) {
  SymbolTable table;
  const Symbol a = table.intern("Fatal machine check");
  const Symbol b = table.intern("Fatal machine check");
  const Symbol c = table.intern("Fatal exception");
  EXPECT_EQ(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_EQ(table.view(a), "Fatal machine check");
  EXPECT_EQ(table.view(c), "Fatal exception");
  EXPECT_EQ(table.size(), 3u);  // "", and the two distinct strings
}

TEST(SymbolTableTest, InternCopiesTheText) {
  SymbolTable table;
  std::string text = "transient buffer";
  const Symbol s = table.intern(text);
  text.assign(text.size(), 'x');  // clobber the source
  EXPECT_EQ(table.view(s), "transient buffer");
}

TEST(SymbolTableTest, OutOfRangeSymbolResolvesEmpty) {
  SymbolTable table;
  EXPECT_EQ(table.view(Symbol{12345}), "");
}

TEST(SymbolTableTest, ViewsStableAcrossArenaGrowth) {
  SymbolTable table;
  const Symbol first = table.intern("pinned-early");
  const std::string_view early = table.view(first);
  const char* early_data = early.data();
  // Far more than one 64 KiB arena block worth of distinct strings.
  for (int i = 0; i < 20000; ++i) {
    table.intern("filler-string-number-" + std::to_string(i));
  }
  EXPECT_EQ(table.view(first).data(), early_data);  // no reallocation moved it
  EXPECT_EQ(table.view(first), "pinned-early");
}

TEST(SymbolTableTest, OversizedStringGetsOwnBlock) {
  SymbolTable table;
  const std::string big(200000, 'q');  // larger than the arena block size
  const Symbol s = table.intern(big);
  const Symbol after = table.intern("small-after-big");
  EXPECT_EQ(table.view(s), big);
  EXPECT_EQ(table.view(after), "small-after-big");
  EXPECT_GE(table.bytes(), big.size());
}

TEST(SymbolTableTest, MoveKeepsViewsValid) {
  SymbolTable table;
  const Symbol s = table.intern("survives the move");
  const char* data = table.view(s).data();
  SymbolTable moved = std::move(table);
  EXPECT_EQ(moved.view(s).data(), data);
  EXPECT_EQ(moved.view(s), "survives the move");
  EXPECT_EQ(moved.intern("survives the move").id, s.id);  // map moved too
}

TEST(SymbolTableTest, DeepCopyPreservesIdsIndependently) {
  SymbolTable table;
  const Symbol a = table.intern("alpha");
  const Symbol b = table.intern("beta");
  const SymbolTable copy = table;
  EXPECT_EQ(copy.view(a), "alpha");
  EXPECT_EQ(copy.view(b), "beta");
  EXPECT_EQ(copy.size(), table.size());
  // Growth after the copy is independent.
  table.intern("gamma");
  EXPECT_EQ(table.size(), copy.size() + 1);
  EXPECT_EQ(copy.view(Symbol{static_cast<std::uint32_t>(copy.size())}), "");
}

TEST(SymbolTableTest, AbsorbRemapsOverlappingAndNewStrings) {
  SymbolTable dst;
  const Symbol shared_dst = dst.intern("shared detail");

  SymbolTable src;
  const Symbol src_new = src.intern("only in src");
  const Symbol src_shared = src.intern("shared detail");

  const std::vector<Symbol> remap = dst.absorb(src);
  ASSERT_EQ(remap.size(), src.size());
  EXPECT_EQ(remap[0].id, 0u);  // "" maps to ""
  EXPECT_EQ(remap[src_shared.id].id, shared_dst.id);  // dedup across tables
  EXPECT_EQ(dst.view(remap[src_new.id]), "only in src");
  // Absorbing again is idempotent on the table contents.
  const std::size_t size_before = dst.size();
  const std::vector<Symbol> again = dst.absorb(src);
  EXPECT_EQ(dst.size(), size_before);
  EXPECT_EQ(again[src_new.id].id, remap[src_new.id].id);
}

/// The ingestion pattern: N workers intern concurrently into worker-local
/// tables (no shared state), then the tables are absorbed serially in a
/// fixed order.  Every worker symbol must resolve to the same text through
/// its remap, and shared strings must collapse to one merged id.
TEST(SymbolTableTest, ParallelShardTablesMergeConsistently) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<SymbolTable> shard(kThreads);
  std::vector<std::vector<Symbol>> produced(kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &shard, &produced] {
      produced[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        // Every third string is shared across all threads; the rest are
        // thread-unique.
        const std::string text =
            i % 3 == 0 ? "common-" + std::to_string(i)
                       : "thread-" + std::to_string(t) + "-" + std::to_string(i);
        produced[t].push_back(shard[t].intern(text));
      }
    });
  }
  for (auto& w : workers) w.join();

  SymbolTable merged;
  std::vector<std::vector<Symbol>> remap(kThreads);
  for (int t = 0; t < kThreads; ++t) remap[t] = merged.absorb(shard[t]);

  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const std::string want =
          i % 3 == 0 ? "common-" + std::to_string(i)
                     : "thread-" + std::to_string(t) + "-" + std::to_string(i);
      const Symbol m = remap[t][produced[t][i].id];
      ASSERT_EQ(merged.view(m), want) << "thread " << t << " item " << i;
      // Shared strings collapse: every thread's remap lands on thread 0's id.
      if (i % 3 == 0) {
        EXPECT_EQ(m.id, remap[0][shard[0].intern(want).id].id);
      }
    }
  }
  // Merged size: "", the shared strings, and kThreads * unique strings.
  const std::size_t shared_count = (kPerThread + 2) / 3;
  const std::size_t unique_count =
      static_cast<std::size_t>(kThreads) * (kPerThread - shared_count);
  EXPECT_EQ(merged.size(), 1 + shared_count + unique_count);
}

}  // namespace
}  // namespace hpcfail::logmodel
