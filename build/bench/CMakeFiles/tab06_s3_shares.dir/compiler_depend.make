# Empty compiler generated dependencies file for tab06_s3_shares.
# This may be replaced when dependencies are built.
