// Drifted hot-path file: reintroduces the raw scans the scan layer removed.
#include <string>
#include <vector>

namespace hpcfail::parsers {

std::size_t next_line(const std::string& chunk, std::size_t from) {
  return chunk.find('\n', from);
}

std::size_t count_lines(const std::string& chunk) {
  const auto lines = split_lines(chunk);
  return lines.size();
}

std::size_t last_line(const std::string& chunk) {
  // hpcfail-lint: allow(hot-path-scan)
  return chunk.rfind('\n');
}

std::size_t tolerated(const std::string& chunk) {
  // hpcfail-lint: allow(hot-path-scan) -- cold error-reporting path, runs once per malformed file
  return chunk.find('\n');
}

}  // namespace hpcfail::parsers
