// Time-sorted in-memory store of structured log records with secondary
// indexes by node, blade and event type.  Range queries are binary-searched
// over a structure-of-arrays time column (so the search never drags full
// records through cache); the per-key indexes keep the correlation passes
// (which repeatedly ask "events of type T for node N in window W")
// sub-linear.  The store owns the SymbolTable that resolves every record's
// interned detail Symbol; string_views returned by detail() stay valid for
// the store's lifetime.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "logmodel/record.hpp"
#include "logmodel/symbol_table.hpp"
#include "util/csr.hpp"
#include "util/snapshot.hpp"

namespace hpcfail::logmodel {

struct StoreLoadResult;

class LogStore {
 public:
  LogStore() = default;

  /// Takes ownership of the records (and the table their detail Symbols
  /// point into), sorts by time and builds indexes.
  explicit LogStore(std::vector<LogRecord> records, SymbolTable symbols = {});

  /// Builds a store from records already stably sorted by time (e.g. the
  /// k-way merge of StoreBuilder), skipping the O(n log n) global sort.
  /// Throws std::logic_error when the records are not time-ordered —
  /// accepting them would silently break every binary search over the
  /// time column, so the contract violation fails loud in every build.
  [[nodiscard]] static LogStore from_sorted(std::vector<LogRecord> records,
                                            SymbolTable symbols = {});

  void add(LogRecord r);

  /// Sorts and (re)builds indexes. Must be called after the last add()
  /// and before any query. Idempotent.
  void finalize();

  // The accessors below are deliberately unguarded: they are noexcept
  // hot-path reads whose results (sizes, raw rows, interned text) are
  // well-defined on a non-finalized store too — only ORDER and the derived
  // indexes need finalize(), and everything order-dependent goes through
  // require_finalized() in log_store.cpp.  Each carries a reasoned
  // allow(finalize-protocol) so a new accessor cannot join them silently.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  // hpcfail-lint: allow(finalize-protocol) -- count is order-independent; noexcept hot path
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  // hpcfail-lint: allow(finalize-protocol) -- raw row read, order-independent; noexcept hot path
  [[nodiscard]] const LogRecord& operator[](std::size_t i) const noexcept { return records_[i]; }
  // hpcfail-lint: allow(finalize-protocol) -- raw row access, order-independent; noexcept hot path
  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept { return records_; }

  /// The table resolving every record's detail Symbol.
  // hpcfail-lint: allow(finalize-protocol) -- symbol table is valid before finalize()
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }

  /// Columnar views over the sorted records: times()[i] is
  /// records()[i].time.usec, types()[i] is records()[i].type.  Dense
  /// arrays for scans that only need one field.
  // hpcfail-lint: allow(finalize-protocol) -- empty until finalize() rebuilds the column; never stale
  [[nodiscard]] std::span<const std::int64_t> times() const noexcept { return times_; }
  // hpcfail-lint: allow(finalize-protocol) -- empty until finalize() rebuilds the column; never stale
  [[nodiscard]] std::span<const EventType> types() const noexcept { return types_; }

  /// Interns text into this store's table (for records about to be add()ed).
  // hpcfail-lint: allow(finalize-protocol) -- interning is part of building, pre-finalize by design
  Symbol intern(std::string_view text) { return symbols_.intern(text); }

  /// Resolves a record's detail Symbol; the view is valid while the store
  /// lives.  The record must belong to this store.
  // hpcfail-lint: allow(finalize-protocol) -- symbol lookup is order-independent; noexcept hot path
  [[nodiscard]] std::string_view detail(const LogRecord& r) const noexcept {
    return symbols_.view(r.detail);
  }
  // hpcfail-lint: allow(finalize-protocol) -- symbol lookup is order-independent; noexcept hot path
  [[nodiscard]] std::string_view detail(std::size_t i) const noexcept {
    return symbols_.view(records_[i].detail);
  }

  /// Cheap row accessor bundling a record with its resolved detail — the
  /// `records()[i]`-plus-text view for consumers that want both.
  class Row {
   public:
    Row(const LogStore& store, std::size_t index) noexcept : store_(&store), index_(index) {}
    [[nodiscard]] const LogRecord& record() const noexcept { return store_->records_[index_]; }
    [[nodiscard]] std::string_view detail() const noexcept { return store_->detail(index_); }
    [[nodiscard]] std::size_t index() const noexcept { return index_; }

   private:
    const LogStore* store_;
    std::size_t index_;
  };
  // hpcfail-lint: allow(finalize-protocol) -- bundles two order-independent reads; noexcept hot path
  [[nodiscard]] Row row(std::size_t i) const noexcept { return Row(*this, i); }

  [[nodiscard]] util::TimePoint first_time() const;
  [[nodiscard]] util::TimePoint last_time() const;

  /// All records with begin <= time < end, as a contiguous span.
  [[nodiscard]] std::span<const LogRecord> range(util::TimePoint begin,
                                                 util::TimePoint end) const;

  /// Indexes (into records()) of this node's records within [begin, end).
  /// The span aliases the store's index and is valid while the store lives
  /// and is not re-finalized.
  [[nodiscard]] std::span<const std::uint32_t> node_range(platform::NodeId node,
                                                          util::TimePoint begin,
                                                          util::TimePoint end) const;

  /// Indexes of this blade's records (records carrying that blade id,
  /// including node-scoped records resolved to the blade) within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> blade_range(platform::BladeId blade,
                                                           util::TimePoint begin,
                                                           util::TimePoint end) const;

  /// Indexes of this cabinet's records within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> cabinet_range(platform::CabinetId cabinet,
                                                             util::TimePoint begin,
                                                             util::TimePoint end) const;

  /// Indexes of records of `type` within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> type_range(EventType type, util::TimePoint begin,
                                                          util::TimePoint end) const;

  /// Total count of records of `type`.
  [[nodiscard]] std::size_t count_of_type(EventType type) const;

  /// All record indexes for a node (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> node_index(platform::NodeId node) const;

  /// All record indexes for an event type (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> type_index(EventType type) const;

  /// Distinct node ids appearing in the store, sorted (cached at finalize).
  [[nodiscard]] const std::vector<platform::NodeId>& nodes() const;

  // --- Persistence (store_snapshot.cpp) -----------------------------------
  // Every persistent member — record rows, symbol table, time/type columns,
  // the four CSR indexes, the cached node list — serializes as flat
  // sections under the "store." prefix (util/serialize.hpp); the
  // hpcfail.store.v1 container (util/snapshot.hpp) adds the on-disk
  // framing.  See FORMATS.md "snapshot — hpcfail.store.v1".

  /// Registers this store's sections (borrowed views into live columns
  /// plus a normalized owned copy of the record rows).  The store must be
  /// finalized and must outlive `out`.
  void append_sections(util::Sections& out) const;

  /// Rebuilds a finalized store from its sections, validating every
  /// invariant the query paths rely on (column lengths, monotone times,
  /// index entries in range, symbol ids resolvable) so corrupt input can
  /// never produce a store that reads out of bounds.  Throws
  /// util::SectionError.
  [[nodiscard]] static LogStore from_sections(const util::SectionMap& in);

  /// Writes this finalized store to `path` as a store-only
  /// hpcfail.store.v1 snapshot.  Failures come back as a structured
  /// SnapshotError, never an exception or a torn-but-valid file.
  [[nodiscard]] std::optional<util::SnapshotError> save(const std::string& path) const;

  /// Bulk-reads and validates a snapshot written by save() (or the store
  /// sections of a corpus-level snapshot) into a finalized store.
  // hpcfail-lint: allow(finalize-protocol) -- static factory, no store state to guard; from_sections() re-establishes the invariant
  [[nodiscard]] static StoreLoadResult load(const std::string& path);

 private:
  /// Every query funnels through this: querying between add() and
  /// finalize() would silently binary-search unsorted records and read
  /// stale indexes, so it throws std::logic_error instead.  A
  /// default-constructed store is trivially finalized (empty).
  void require_finalized() const;

  void build_indexes();

  /// CSR indexes (util::CsrIndex): entries are record indexes, grouped by
  /// id and time-ordered within each run because the fill pass walks the
  /// sorted records.
  using CsrIndex = util::CsrIndex<std::uint32_t>;

  [[nodiscard]] std::span<const std::uint32_t> filter_window(
      std::span<const std::uint32_t> index, util::TimePoint begin,
      util::TimePoint end) const;

  std::vector<LogRecord> records_;
  SymbolTable symbols_;
  // Query-hot columns, split out of records_ so binary searches touch a
  // dense array of the compared field only (structure-of-arrays).
  std::vector<std::int64_t> times_;  ///< records_[i].time.usec
  std::vector<EventType> types_;    ///< records_[i].type
  CsrIndex by_node_;
  CsrIndex by_blade_;
  CsrIndex by_cabinet_;
  CsrIndex by_type_;  ///< keyed by EventType value; offsets empty only when n == 0
  std::vector<platform::NodeId> nodes_;  ///< sorted distinct node ids
  bool finalized_ = true;
};

/// LogStore::load's result: exactly one of `store` / `error` is set.
struct StoreLoadResult {
  std::optional<LogStore> store;
  std::optional<util::SnapshotError> error;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

}  // namespace hpcfail::logmodel
