#include "serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hpcfail::serve {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::optional<std::uint64_t> JsonValue::uint_member(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double n = v->as_number();
  // 2^53 bounds the integers a double represents exactly; protocol ids
  // beyond that could alias, so they are rejected rather than rounded.
  if (n < 0.0 || n > 9007199254740992.0 || n != std::floor(n)) return std::nullopt;
  return static_cast<std::uint64_t>(n);
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::Number;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

/// Recursive-descent parser over a string_view; depth-limited so a
/// pathological request cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        out.kind_ = JsonValue::Kind::String;
        return parse_string(out.string_);
      }
      case 't':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = true;
        return eat_word("true");
      case 'f':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = false;
        return eat_word("false");
      case 'n':
        out.kind_ = JsonValue::Kind::Null;
        return eat_word("null");
      default:
        out.kind_ = JsonValue::Kind::Number;
        return parse_number(out.number_);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      if (out.find(key) == nullptr) {
        out.members_.emplace_back(std::move(key), std::move(value));
      }
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items_.push_back(std::move(value));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4U;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            pos_ += 4;
            // UTF-8 encode the code point; surrogate pairs are not needed
            // by the protocol (verbs and node names are ASCII) but basic
            // multilingual plane escapes round-trip correctly.
            if (code < 0x80U) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800U) {
              out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
              out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
            } else {
              out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
              out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
              out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
            }
            break;
          }
          default: return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20U) return false;  // bare control char
      out.push_back(c);
      ++pos_;
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    return ec == std::errc{} && ptr == text_.data() + pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= 9007199254740992.0) {
    append_json_number(out, static_cast<std::int64_t>(v));
    return;
  }
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN; handlers never produce them
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_json_number(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

void append_json_number(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

}  // namespace hpcfail::serve
