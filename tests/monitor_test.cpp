// Unit tests for core/online_monitor: streaming alerts, cooldowns, and
// agreement with the offline pipeline on a simulated corpus.
#include <gtest/gtest.h>

#include "core/analysis_context.hpp"
#include "core/online_monitor.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"

namespace hpcfail::core {
namespace {

using logmodel::EventType;
using logmodel::LogRecord;

const util::TimePoint kBase = util::make_time(2015, 3, 2);

LogRecord rec(util::Duration offset, EventType type, std::uint32_t node) {
  LogRecord r;
  r.time = kBase + offset;
  r.type = type;
  r.node = platform::NodeId{node};
  r.blade = platform::BladeId{node / 4};
  return r;
}

/// None of the synthetic records carries detail text, so the resolved
/// detail fed to the monitor is always empty.
std::vector<Alert> feed(OnlineMonitor& monitor, const LogRecord& r) {
  return monitor.ingest(r, {});
}

TEST(MonitorTest, PatternWarningThenConfirmation) {
  OnlineMonitor monitor;
  EXPECT_TRUE(feed(monitor, rec(util::Duration::minutes(1), EventType::HardwareError, 1))
                  .empty());
  const auto warn =
      feed(monitor, rec(util::Duration::minutes(3), EventType::MachineCheckException, 1));
  ASSERT_EQ(warn.size(), 1u);
  EXPECT_EQ(warn[0].kind, AlertKind::PatternWarning);

  const auto confirmed =
      feed(monitor, rec(util::Duration::minutes(6), EventType::KernelPanic, 1));
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].kind, AlertKind::FailureConfirmed);
  EXPECT_EQ(confirmed[0].suspected, logmodel::RootCause::HardwareMce);

  // Duplicate markers do not re-alert; the reboot closes the episode.
  EXPECT_TRUE(feed(monitor, rec(util::Duration::minutes(7), EventType::NodeShutdown, 1))
                  .empty());
  const auto recovered =
      feed(monitor, rec(util::Duration::minutes(30), EventType::NodeBoot, 1));
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].kind, AlertKind::NodeRecovered);
}

TEST(MonitorTest, ExternalUpgradesWarning) {
  OnlineMonitor monitor;
  LogRecord ec = rec(util::Duration::minutes(0), EventType::EcHwError, 1);
  ec.node = platform::NodeId{};  // blade-scoped
  (void)feed(monitor, ec);
  (void)feed(monitor, rec(util::Duration::minutes(5), EventType::HardwareError, 1));
  const auto alerts =
      feed(monitor, rec(util::Duration::minutes(7), EventType::MachineCheckException, 1));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::ExternalEarlyWarning);
  EXPECT_EQ(alerts[0].suspected, logmodel::RootCause::FailSlowHardware);
}

TEST(MonitorTest, WarningCooldownSuppressesRepeats) {
  OnlineMonitor monitor;
  (void)feed(monitor, rec(util::Duration::minutes(0), EventType::LustreError, 2));
  const auto first =
      feed(monitor, rec(util::Duration::minutes(1), EventType::DvsError, 2));
  ASSERT_EQ(first.size(), 1u);
  // More pattern hits within the cooldown stay silent.
  EXPECT_TRUE(
      feed(monitor, rec(util::Duration::minutes(2), EventType::LustreError, 2)).empty());
  EXPECT_TRUE(
      feed(monitor, rec(util::Duration::minutes(3), EventType::DvsError, 2)).empty());
}

TEST(MonitorTest, SingleTypeBurstNeverWarns) {
  OnlineMonitor monitor;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        feed(monitor, rec(util::Duration::minutes(i), EventType::LustreError, 3)).empty());
  }
}

TEST(MonitorTest, EvidenceMemoryExpires) {
  OnlineMonitor monitor;
  (void)feed(monitor, rec(util::Duration::minutes(0), EventType::HardwareError, 4));
  // 40 minutes later (beyond evidence memory AND pattern window): the
  // earlier record cannot pair into a pattern.
  EXPECT_TRUE(
      feed(monitor, rec(util::Duration::minutes(40), EventType::MachineCheckException, 4))
          .empty());
}

TEST(MonitorTest, ExternalMemoryExpires) {
  OnlineMonitor monitor;
  LogRecord ec = rec(util::Duration::minutes(0), EventType::EcHwError, 5);
  ec.node = platform::NodeId{};
  (void)feed(monitor, ec);
  // Two hours later the external indicator has aged out: the pattern only
  // rates a plain warning.
  (void)feed(monitor, rec(util::Duration::minutes(125), EventType::HardwareError, 5));
  const auto alerts = feed(
      monitor, rec(util::Duration::minutes(127), EventType::MachineCheckException, 5));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::PatternWarning);
}

TEST(MonitorTest, DiagnosisUsesAccumulatedEvidence) {
  OnlineMonitor monitor;
  (void)feed(monitor, rec(util::Duration::minutes(1), EventType::PageAllocationFailure, 6));
  (void)feed(monitor, rec(util::Duration::minutes(2), EventType::OomKill, 6));
  const auto confirmed =
      feed(monitor, rec(util::Duration::minutes(5), EventType::NodeHalt, 6));
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].suspected, logmodel::RootCause::MemoryExhaustion);
}

TEST(MonitorTest, AgreesWithOfflinePipeline) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S3, 7, 2024)).run();
  const auto store = sim.make_store();

  OnlineMonitor monitor;
  const auto alerts = monitor.ingest_all(store);
  std::size_t confirmed = 0, warnings = 0;
  for (const auto& a : alerts) {
    confirmed += a.kind == AlertKind::FailureConfirmed;
    warnings += a.kind == AlertKind::PatternWarning ||
                a.kind == AlertKind::ExternalEarlyWarning;
  }
  const AnalysisContext offline_ctx(
      store, nullptr, store.first_time(),
      store.last_time() + util::Duration::microseconds(1));
  const auto& offline = offline_ctx.failures();
  // Streaming confirmations track offline detections (SWO exclusion is an
  // offline-only post-pass, so allow a margin).
  EXPECT_NEAR(static_cast<double>(confirmed), static_cast<double>(offline.size()),
              static_cast<double>(offline.size()) * 0.15 + 3.0);
  EXPECT_GT(warnings, 0u);

  // Warnings precede most hardware confirmations (lead time exists).
  std::size_t hw_confirmed = 0, hw_pre_warned = 0;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const auto& a = alerts[i];
    if (a.kind != AlertKind::FailureConfirmed) continue;
    if (a.suspected != logmodel::RootCause::HardwareMce &&
        a.suspected != logmodel::RootCause::FailSlowHardware) {
      continue;
    }
    ++hw_confirmed;
    for (std::size_t j = 0; j < i; ++j) {
      if (alerts[j].node == a.node &&
          (alerts[j].kind == AlertKind::PatternWarning ||
           alerts[j].kind == AlertKind::ExternalEarlyWarning) &&
          a.time - alerts[j].time <= util::Duration::hours(1)) {
        ++hw_pre_warned;
        break;
      }
    }
  }
  if (hw_confirmed > 0) {
    EXPECT_GT(static_cast<double>(hw_pre_warned) / static_cast<double>(hw_confirmed), 0.6);
  }
}

}  // namespace
}  // namespace hpcfail::core
