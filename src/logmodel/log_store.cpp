#include "logmodel/log_store.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hpcfail::logmodel {

namespace {
bool time_less(const LogRecord& a, const LogRecord& b) noexcept { return a.time < b.time; }
}  // namespace

LogStore::LogStore(std::vector<LogRecord> records) : records_(std::move(records)) {
  finalized_ = false;
  finalize();
}

LogStore LogStore::from_sorted(std::vector<LogRecord> records) {
  assert(std::is_sorted(records.begin(), records.end(), time_less));
  LogStore store;
  store.records_ = std::move(records);
  store.build_indexes();
  store.finalized_ = true;
  return store;
}

void LogStore::add(LogRecord r) {
  finalized_ = false;
  records_.push_back(std::move(r));
}

void LogStore::finalize() {
  if (finalized_) return;
  std::stable_sort(records_.begin(), records_.end(), time_less);
  build_indexes();
  finalized_ = true;
}

void LogStore::build_indexes() {
  by_node_.clear();
  by_blade_.clear();
  by_cabinet_.clear();
  by_type_.assign(kEventTypeCount, {});
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const LogRecord& r = records_[i];
    if (r.has_node()) by_node_[r.node.value].push_back(i);
    if (r.has_blade()) by_blade_[r.blade.value].push_back(i);
    if (r.has_cabinet()) by_cabinet_[r.cabinet.value].push_back(i);
    by_type_[static_cast<std::size_t>(r.type)].push_back(i);
  }
}

void LogStore::require_finalized() const {
  if (!finalized_) {
    throw std::logic_error(
        "LogStore: query on a non-finalized store (call finalize() after add(); "
        "records are unsorted and indexes stale until then)");
  }
}

util::TimePoint LogStore::first_time() const {
  require_finalized();
  return records_.empty() ? util::TimePoint{} : records_.front().time;
}

util::TimePoint LogStore::last_time() const {
  require_finalized();
  return records_.empty() ? util::TimePoint{} : records_.back().time;
}

std::span<const LogRecord> LogStore::range(util::TimePoint begin,
                                           util::TimePoint end) const {
  require_finalized();
  LogRecord probe;
  probe.time = begin;
  const auto lo = std::lower_bound(records_.begin(), records_.end(), probe, time_less);
  probe.time = end;
  const auto hi = std::lower_bound(lo, records_.end(), probe, time_less);
  return {records_.data() + (lo - records_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::vector<std::uint32_t> LogStore::filter_window(const std::vector<std::uint32_t>& index,
                                                   util::TimePoint begin,
                                                   util::TimePoint end) const {
  // The index is time-ordered because records_ is; binary search on it.
  const auto lo = std::lower_bound(index.begin(), index.end(), begin,
                                   [this](std::uint32_t i, util::TimePoint t) {
                                     return records_[i].time < t;
                                   });
  const auto hi = std::lower_bound(lo, index.end(), end,
                                   [this](std::uint32_t i, util::TimePoint t) {
                                     return records_[i].time < t;
                                   });
  return {lo, hi};
}

std::vector<std::uint32_t> LogStore::node_range(platform::NodeId node, util::TimePoint begin,
                                                util::TimePoint end) const {
  require_finalized();
  const auto it = by_node_.find(node.value);
  if (it == by_node_.end()) return {};
  return filter_window(it->second, begin, end);
}

std::vector<std::uint32_t> LogStore::blade_range(platform::BladeId blade, util::TimePoint begin,
                                                 util::TimePoint end) const {
  require_finalized();
  const auto it = by_blade_.find(blade.value);
  if (it == by_blade_.end()) return {};
  return filter_window(it->second, begin, end);
}

std::vector<std::uint32_t> LogStore::cabinet_range(platform::CabinetId cabinet,
                                                   util::TimePoint begin,
                                                   util::TimePoint end) const {
  require_finalized();
  const auto it = by_cabinet_.find(cabinet.value);
  if (it == by_cabinet_.end()) return {};
  return filter_window(it->second, begin, end);
}

std::vector<std::uint32_t> LogStore::type_range(EventType type, util::TimePoint begin,
                                                util::TimePoint end) const {
  require_finalized();
  // A default-constructed (empty) store never ran build_indexes(); without
  // this guard the subscript below is UB, unlike count_of_type/type_index
  // which always guarded it.
  if (by_type_.empty()) return {};
  return filter_window(by_type_[static_cast<std::size_t>(type)], begin, end);
}

std::size_t LogStore::count_of_type(EventType type) const {
  require_finalized();
  return by_type_.empty() ? 0 : by_type_[static_cast<std::size_t>(type)].size();
}

std::span<const std::uint32_t> LogStore::node_index(platform::NodeId node) const {
  require_finalized();
  const auto it = by_node_.find(node.value);
  if (it == by_node_.end()) return {};
  return it->second;
}

std::span<const std::uint32_t> LogStore::type_index(EventType type) const {
  require_finalized();
  if (by_type_.empty()) return {};
  return by_type_[static_cast<std::size_t>(type)];
}

std::vector<platform::NodeId> LogStore::nodes() const {
  require_finalized();
  std::vector<platform::NodeId> out;
  out.reserve(by_node_.size());
  for (const auto& [id, _] : by_node_) out.push_back(platform::NodeId{id});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hpcfail::logmodel
