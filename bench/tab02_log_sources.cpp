// Table II: the log sources consulted by the study. Generates a short S1
// corpus and reports per-source volume, verifying every universe the paper
// mines (node-internal, controller/ERD, scheduler) is populated.
#include "bench_common.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table II: log sources");

  const auto p = bench::run_system(platform::SystemName::S1, 3, 2001);

  util::TextTable table({"Source", "Role (paper Table II)", "Lines", "KiB"});
  struct Row {
    logmodel::LogSource source;
    const char* role;
  };
  const Row rows[] = {
      {logmodel::LogSource::Console, "compute node internals (p0 console)"},
      {logmodel::LogSource::Messages, "compute node internals (p0 messages)"},
      {logmodel::LogSource::Consumer, "compute node internals (p0 consumer)"},
      {logmodel::LogSource::Controller, "blade/cabinet controller + SEDC"},
      {logmodel::LogSource::Erd, "event router daemon (ERD)"},
      {logmodel::LogSource::Scheduler, "job scheduler (Slurm/Torque)"},
  };
  for (const auto& row : rows) {
    const std::string& text = p.corpus.of(row.source);
    std::size_t lines = 0;
    for (const char c : text) lines += c == '\n';
    table.row()
        .cell(std::string(to_string(row.source)))
        .cell(row.role)
        .cell(static_cast<std::int64_t>(lines))
        .cell(static_cast<std::int64_t>(text.size() / 1024));
  }
  std::cout << table.render() << '\n';

  check.greater("console universe populated",
                static_cast<double>(p.corpus.of(logmodel::LogSource::Console).size()), 1.0);
  check.greater("controller universe populated",
                static_cast<double>(p.corpus.of(logmodel::LogSource::Controller).size()), 1.0);
  check.greater("ERD universe populated",
                static_cast<double>(p.corpus.of(logmodel::LogSource::Erd).size()), 1.0);
  check.greater("scheduler universe populated",
                static_cast<double>(p.corpus.of(logmodel::LogSource::Scheduler).size()), 1.0);
  check.in_range("parse fidelity: skipped == routine chatter",
                 static_cast<double>(p.parsed.skipped_lines),
                 static_cast<double>(p.corpus.chatter_lines),
                 static_cast<double>(p.corpus.chatter_lines));
  return check.exit_code();
}
