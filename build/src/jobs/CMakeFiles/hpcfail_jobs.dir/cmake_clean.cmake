file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_jobs.dir/allocator.cpp.o"
  "CMakeFiles/hpcfail_jobs.dir/allocator.cpp.o.d"
  "CMakeFiles/hpcfail_jobs.dir/app_catalog.cpp.o"
  "CMakeFiles/hpcfail_jobs.dir/app_catalog.cpp.o.d"
  "CMakeFiles/hpcfail_jobs.dir/job.cpp.o"
  "CMakeFiles/hpcfail_jobs.dir/job.cpp.o.d"
  "CMakeFiles/hpcfail_jobs.dir/job_table.cpp.o"
  "CMakeFiles/hpcfail_jobs.dir/job_table.cpp.o.d"
  "CMakeFiles/hpcfail_jobs.dir/workload.cpp.o"
  "CMakeFiles/hpcfail_jobs.dir/workload.cpp.o.d"
  "libhpcfail_jobs.a"
  "libhpcfail_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
