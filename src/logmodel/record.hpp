// The structured log record every parser produces and every analyzer
// consumes.  A record is a flat, value-type row: timestamp, source, event
// type, severity, location (node/blade/cabinet, any may be absent), an
// optional job id, an optional numeric value (sensor reading, exit code)
// and a short detail string (stack module, reason, sensor name).
#pragma once

#include <cstdint>
#include <string>

#include "logmodel/event_type.hpp"
#include "platform/ids.hpp"
#include "util/time.hpp"

namespace hpcfail::logmodel {

inline constexpr std::int64_t kNoJob = -1;

struct LogRecord {
  util::TimePoint time;
  LogSource source = LogSource::Console;
  EventType type = EventType::NodeBoot;
  Severity severity = Severity::Info;
  platform::NodeId node;        ///< invalid when the event is blade/cabinet scoped
  platform::BladeId blade;      ///< invalid when unknown
  platform::CabinetId cabinet;  ///< invalid when unknown
  std::int64_t job_id = kNoJob;
  double value = 0.0;           ///< sensor reading / exit code / count
  std::string detail;           ///< module name, reason, sensor label, ...

  [[nodiscard]] bool has_node() const noexcept { return node.valid(); }
  [[nodiscard]] bool has_blade() const noexcept { return blade.valid(); }
  [[nodiscard]] bool has_cabinet() const noexcept { return cabinet.valid(); }
  [[nodiscard]] bool has_job() const noexcept { return job_id != kNoJob; }
};

}  // namespace hpcfail::logmodel
