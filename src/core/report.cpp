#include "core/report.hpp"

#include <algorithm>
#include <map>

#include "util/table.hpp"

namespace hpcfail::core {

using logmodel::CauseLayer;
using logmodel::RootCause;

CauseBreakdown cause_breakdown(const std::vector<AnalyzedFailure>& failures) {
  CauseBreakdown out;
  // Empty input is a pinned no-op: all-zero counts, total 0, and share()
  // stays 0.0 for every cause (never NaN) so callers can print percentages
  // of a failure-free window unconditionally.
  if (failures.empty()) return out;
  for (const auto& f : failures) {
    ++out.counts[static_cast<std::size_t>(f.inference.cause)];
    ++out.total;
  }
  return out;
}

LayerShares layer_shares(const std::vector<AnalyzedFailure>& failures) {
  LayerShares out;
  // Pinned empty-input behaviour: every share is 0.0 (the struct default),
  // never 0/0 = NaN.
  if (failures.empty()) return out;
  std::size_t hw = 0, sw = 0, app = 0, unknown = 0, mem = 0, app_trig = 0;
  for (const auto& f : failures) {
    switch (logmodel::layer_of(f.inference.cause)) {
      case CauseLayer::Hardware: ++hw; break;
      case CauseLayer::Software: ++sw; break;
      case CauseLayer::Application: ++app; break;
      case CauseLayer::Unknown: ++unknown; break;
    }
    if (f.inference.cause == RootCause::MemoryExhaustion) ++mem;
    if (f.inference.application_triggered) ++app_trig;
  }
  const auto n = static_cast<double>(failures.size());
  out.hardware = static_cast<double>(hw) / n;
  out.software = static_cast<double>(sw) / n;
  out.application = static_cast<double>(app) / n;
  out.unknown = static_cast<double>(unknown) / n;
  out.memory_exhaustion = static_cast<double>(mem) / n;
  out.application_triggered = static_cast<double>(app_trig) / n;
  return out;
}

std::vector<ModuleUsage> stack_module_usage(const std::vector<AnalyzedFailure>& failures) {
  // Pinned empty-input behaviour: no failures (or none with call traces)
  // yields an empty table, not a row of empty module lists.
  if (failures.empty()) return {};
  std::map<RootCause, std::map<std::string, std::size_t>> usage;
  for (const auto& f : failures) {
    if (f.inference.evidence.stack_modules.empty()) continue;
    // The lead module of the first call trace is the Table IV signal.
    ++usage[f.inference.cause][f.inference.evidence.stack_modules.front()];
  }
  std::vector<ModuleUsage> out;
  for (auto& [cause, modules] : usage) {
    ModuleUsage row;
    row.cause = cause;
    for (auto& [module, count] : modules) row.modules.emplace_back(module, count);
    std::sort(row.modules.begin(), row.modules.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    out.push_back(std::move(row));
  }
  return out;
}

std::string render_cause_table(const CauseBreakdown& breakdown, std::string_view title) {
  util::TextTable table({"Root cause", "Failures", "Share"});
  table.set_title(std::string(title));
  for (std::size_t i = 0; i < breakdown.counts.size(); ++i) {
    if (breakdown.counts[i] == 0) continue;
    const auto cause = static_cast<RootCause>(i);
    table.row()
        .cell(to_string(cause))
        .cell(static_cast<std::int64_t>(breakdown.counts[i]))
        .pct(breakdown.share(cause));
  }
  table.row().cell("total").cell(static_cast<std::int64_t>(breakdown.total)).cell("");
  return table.render();
}

}  // namespace hpcfail::core
