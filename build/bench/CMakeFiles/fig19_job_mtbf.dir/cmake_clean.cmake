file(REMOVE_RECURSE
  "CMakeFiles/fig19_job_mtbf.dir/fig19_job_mtbf.cpp.o"
  "CMakeFiles/fig19_job_mtbf.dir/fig19_job_mtbf.cpp.o.d"
  "fig19_job_mtbf"
  "fig19_job_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_job_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
