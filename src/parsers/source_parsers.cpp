#include "parsers/source_parsers.hpp"

#include <array>

#include "loggen/nid_ranges.hpp"
#include "parsers/line_classifier.hpp"
#include "platform/cname.hpp"
#include "util/scan.hpp"
#include "util/strings.hpp"

namespace hpcfail::parsers {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;
using logmodel::Severity;

namespace {

/// Consumes the first whitespace-separated token.
std::string_view take_token(std::string_view& rest) noexcept {
  rest = util::trim(rest);
  std::size_t end = util::scan::find_byte(rest, ' ');
  if (end == util::scan::npos) end = rest.size();
  const std::string_view token = rest.substr(0, end);
  rest = end < rest.size() ? rest.substr(end + 1) : std::string_view{};
  return token;
}

/// Strips a trailing " jobid=N" from the payload, returning the id.
std::int64_t extract_job_id(std::string_view& payload) noexcept {
  const auto value = util::find_kv(payload, "jobid");
  if (!value) return logmodel::kNoJob;
  const auto id = util::parse_i64(*value);
  if (!id) return logmodel::kNoJob;
  const auto pos = payload.rfind(" jobid=");
  if (pos != std::string_view::npos) payload = payload.substr(0, pos);
  return *id;
}

void fill_location(LogRecord& r, const platform::Topology& topo) noexcept {
  if (r.node.valid()) {
    r.blade = topo.blade_of(r.node);
    r.cabinet = topo.cabinet_of(r.node);
  } else if (r.blade.valid()) {
    r.cabinet = topo.cabinet_of_blade(r.blade);
  }
}

/// First floating-point number following "reading " in a payload.
double extract_reading(std::string_view payload) noexcept {
  const auto pos = payload.find("reading ");
  if (pos == std::string_view::npos) return 0.0;
  std::string_view rest = payload.substr(pos + 8);
  std::size_t end = 0;
  while (end < rest.size() &&
         ((rest[end] >= '0' && rest[end] <= '9') || rest[end] == '.' || rest[end] == '-')) {
    ++end;
  }
  return util::parse_double(rest.substr(0, end)).value_or(0.0);
}

}  // namespace

std::optional<LogRecord> parse_console_line(std::string_view line,
                                            const ParseContext& ctx) noexcept {
  if (ctx.topo == nullptr || ctx.symbols == nullptr) return std::nullopt;
  std::string_view rest = line;
  const auto ts_token = take_token(rest);
  const auto time = util::parse_iso(ts_token);
  if (!time) return std::nullopt;

  const auto node_token = take_token(rest);
  const auto node = ctx.topo->node_from_name(node_token);
  if (!node) return std::nullopt;

  if (ctx.topo->config().naming == platform::NamingScheme::CrayCname) {
    const auto cname_token = take_token(rest);  // redundant with the nid
    if (!platform::parse_cname(cname_token)) return std::nullopt;
  }

  const auto daemon = take_token(rest);
  LogSource source = LogSource::Console;
  if (daemon == "hwerrd:") {
    source = LogSource::Consumer;
  } else if (daemon != "kernel:") {
    return std::nullopt;
  }

  std::string_view payload = util::trim(rest);
  const std::int64_t job_id = extract_job_id(payload);
  const auto classified = classify_kernel_payload(payload);
  if (!classified) return std::nullopt;

  LogRecord r;
  r.time = *time;
  r.source = source;
  r.type = classified->type;
  r.severity = classified->severity;
  r.node = *node;
  r.job_id = job_id;
  r.detail = ctx.symbols->intern(classified->detail);
  fill_location(r, *ctx.topo);
  return r;
}

std::optional<LogRecord> parse_messages_line(std::string_view line,
                                             const ParseContext& ctx) noexcept {
  if (ctx.topo == nullptr || ctx.symbols == nullptr || line.size() < 16) return std::nullopt;
  const auto time = util::parse_syslog(line.substr(0, 15), ctx.base_year, ctx.base_month);
  if (!time) return std::nullopt;
  std::string_view rest = util::trim(line.substr(15));

  const auto node_token = take_token(rest);
  const auto node = ctx.topo->node_from_name(node_token);
  if (!node) return std::nullopt;

  const auto daemon = take_token(rest);
  if (!util::starts_with(daemon, "nhc[")) return std::nullopt;

  std::string_view payload = util::trim(rest);
  const std::int64_t job_id = extract_job_id(payload);
  const auto classified = classify_nhc_payload(payload);
  if (!classified) return std::nullopt;

  LogRecord r;
  r.time = *time;
  r.source = LogSource::Messages;
  r.type = classified->type;
  r.severity = classified->severity;
  r.node = *node;
  r.job_id = job_id;
  r.detail = ctx.symbols->intern(classified->detail);
  fill_location(r, *ctx.topo);
  return r;
}

std::optional<LogRecord> parse_controller_line(std::string_view line,
                                               const ParseContext& ctx) noexcept {
  if (ctx.topo == nullptr || ctx.symbols == nullptr) return std::nullopt;
  std::string_view rest = line;
  const auto ts_token = take_token(rest);
  const auto time = util::parse_iso(ts_token);
  if (!time) return std::nullopt;

  const auto cname_token = take_token(rest);
  const auto cname = platform::parse_cname(cname_token);
  if (!cname) return std::nullopt;

  const auto daemon = take_token(rest);
  if (daemon != "cc:" && daemon != "bc:") return std::nullopt;

  const std::string_view payload = util::trim(rest);
  const auto classified = classify_controller_payload(payload);
  if (!classified) return std::nullopt;

  LogRecord r;
  r.time = *time;
  r.source = LogSource::Controller;
  r.type = classified->type;
  r.severity = classified->severity;
  switch (cname->level()) {
    case platform::CnameLevel::Node:
      if (const auto node = ctx.topo->node_from_cname(*cname)) r.node = *node;
      break;
    case platform::CnameLevel::Blade:
      if (const auto blade = ctx.topo->blade_from_cname(*cname)) r.blade = *blade;
      break;
    default:
      if (const auto cab = ctx.topo->cabinet_from_cname(*cname)) r.cabinet = *cab;
      break;
  }
  fill_location(r, *ctx.topo);

  if (r.type == EventType::SedcReading) {
    // "sedc: <sensor> value=V" — detail is the sensor, value after "value=".
    const auto value = util::find_kv(payload, "value");
    if (value) r.value = util::parse_double(*value).value_or(0.0);
    std::string_view d = classified->detail;
    const auto sp = d.find(' ');
    r.detail = ctx.symbols->intern(sp == std::string_view::npos ? d : d.substr(0, sp));
  } else {
    r.value = extract_reading(payload);
    r.detail = ctx.symbols->intern(classified->detail);
  }
  return r;
}

std::optional<LogRecord> parse_erd_line(std::string_view line,
                                        const ParseContext& ctx) noexcept {
  if (ctx.topo == nullptr || ctx.symbols == nullptr) return std::nullopt;
  std::string_view rest = line;
  const auto ts_token = take_token(rest);
  const auto time = util::parse_iso(ts_token);
  if (!time) return std::nullopt;
  if (take_token(rest) != "erd") return std::nullopt;

  const auto ev = util::find_kv(rest, "ev");
  const auto src = util::find_kv(rest, "src");
  if (!ev || !src) return std::nullopt;
  const auto type = erd_event_type(*ev);
  if (!type) return std::nullopt;
  const auto cname = platform::parse_cname(*src);
  if (!cname) return std::nullopt;

  LogRecord r;
  r.time = *time;
  r.source = LogSource::Erd;
  r.type = *type;
  r.severity = logmodel::is_health_fault(*type) ? Severity::Error : Severity::Warning;

  if (const auto node_token = util::find_kv(rest, "node")) {
    if (const auto node = ctx.topo->node_from_name(*node_token)) r.node = *node;
  }
  if (!r.node.valid()) {
    switch (cname->level()) {
      case platform::CnameLevel::Node:
        if (const auto node = ctx.topo->node_from_cname(*cname)) r.node = *node;
        break;
      case platform::CnameLevel::Blade:
        if (const auto blade = ctx.topo->blade_from_cname(*cname)) r.blade = *blade;
        break;
      default:
        if (const auto cab = ctx.topo->cabinet_from_cname(*cname)) r.cabinet = *cab;
        break;
    }
  }
  fill_location(r, *ctx.topo);

  // Detail is everything after the last kv token we understand.
  const auto node_pos = rest.find(" node=");
  const auto src_pos = rest.find("src=");
  std::string_view detail;
  if (node_pos != std::string_view::npos) {
    const auto sp = rest.find(' ', node_pos + 1);
    detail = sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
  } else if (src_pos != std::string_view::npos) {
    const auto sp = rest.find(' ', src_pos);
    detail = sp == std::string_view::npos ? std::string_view{} : rest.substr(sp + 1);
  }
  r.detail = ctx.symbols->intern(util::trim(detail));
  return r;
}

std::optional<LogRecord> SchedulerLogParser::parse_line(std::string_view line) {
  if (ctx_.symbols == nullptr) return std::nullopt;
  // Torque/PBS dialect: MM/DD/YYYY HH:MM:SS;0008;PBS_Server;Job;<id>.sdb;<payload>
  if (line.size() > 20 && line[2] == '/' && line[19] == ';') {
    return parse_torque_line(line);
  }
  std::string_view rest = line;
  const auto ts_token = take_token(rest);
  const auto time = util::parse_iso(ts_token);
  if (!time) return std::nullopt;
  const auto daemon = take_token(rest);
  if (daemon != "slurmctld:" && daemon != "pbs_server:") return std::nullopt;
  rest = util::trim(rest);

  LogRecord r;
  r.time = *time;
  r.source = LogSource::Scheduler;
  r.severity = Severity::Info;

  auto kv_i64 = [&rest](std::string_view key) -> std::optional<std::int64_t> {
    const auto v = util::find_kv(rest, key);
    return v ? util::parse_i64(*v) : std::nullopt;
  };

  if (util::starts_with(rest, "sched: Allocate ")) {
    const auto job_id = kv_i64("JobId");
    if (!job_id) return std::nullopt;
    return register_allocation(rest, *job_id, *time, r);
  }
  if (util::contains(rest, "Ended ExitCode=")) {
    const auto job_id = kv_i64("JobId");
    const auto exit_field = util::find_kv(rest, "ExitCode");
    const auto reason = util::find_kv(rest, "Reason");
    if (!job_id || !exit_field) return std::nullopt;
    const auto colon = exit_field->find(':');
    const int exit_code = static_cast<int>(
        util::parse_i64(exit_field->substr(0, colon)).value_or(-1));
    r.type = EventType::JobEnd;
    r.job_id = *job_id;
    r.value = exit_code;
    const std::string_view reason_text = reason.value_or(std::string_view{});
    r.detail = ctx_.symbols->intern(reason_text);
    r.severity = exit_code == 0 ? Severity::Info : Severity::Error;
    table_.add_end(*job_id, *time, exit_code, std::string(reason_text));
    return r;
  }
  if (util::starts_with(rest, "scancel ")) {
    const auto job_id = kv_i64("JobId");
    if (!job_id) return std::nullopt;
    r.type = EventType::JobCancelled;
    r.job_id = *job_id;
    r.detail = ctx_.symbols->intern(rest);
    table_.mark_cancelled(*job_id);
    return r;
  }
  if (util::contains(rest, "allocated memory exceeds node capacity")) {
    const auto job_id = kv_i64("JobId");
    if (!job_id) return std::nullopt;
    r.type = EventType::JobOverallocation;
    r.job_id = *job_id;
    r.severity = Severity::Warning;
    r.detail = ctx_.symbols->intern("allocated memory exceeds node capacity");
    r.value = static_cast<double>(kv_i64("OverallocCnt").value_or(0));
    table_.mark_overallocated(*job_id,
                              static_cast<std::uint32_t>(kv_i64("OverallocCnt").value_or(0)));
    return r;
  }
  if (util::starts_with(rest, "epilog complete ")) {
    const auto job_id = kv_i64("JobId");
    if (!job_id) return std::nullopt;
    r.type = EventType::EpilogueRun;
    r.job_id = *job_id;
    r.detail = ctx_.symbols->intern("epilogue complete");
    return r;
  }
  return std::nullopt;
}

std::optional<LogRecord> SchedulerLogParser::register_allocation(std::string_view payload,
                                                                 std::int64_t job_id,
                                                                 util::TimePoint time,
                                                                 LogRecord r) {
  // One left-to-right token walk instead of five find_kv() scans: the
  // NodeList value on wide allocations runs to kilobytes, and rescanning
  // it per key dominated the sequential scheduler parse.
  std::string_view node_list, apid, user, app, mem;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    while (pos < payload.size() && payload[pos] == ' ') ++pos;
    std::size_t end = util::scan::find_byte(payload, ' ', pos);
    if (end == util::scan::npos) end = payload.size();
    const std::string_view token = payload.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = util::scan::find_byte(token, '=');
    if (eq == util::scan::npos) continue;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "NodeList") {
      node_list = value;
    } else if (key == "Apid") {
      apid = value;
    } else if (key == "User") {
      user = value;
    } else if (key == "App") {
      app = value;
    } else if (key == "MemPerNode") {
      mem = value;
    }
  }
  if (node_list.empty()) return std::nullopt;
  jobs::JobInfo info;
  info.job_id = job_id;
  if (!apid.empty()) info.apid = util::parse_i64(apid).value_or(0);
  if (!user.empty()) info.user = std::string(user);
  if (!app.empty()) info.app_name = std::string(app);
  info.start = time;
  info.end = time + util::Duration::days(36500);  // open until the end record
  if (!mem.empty()) {
    std::string_view m = mem;
    if (util::ends_with(m, "G")) m.remove_suffix(1);
    info.mem_per_node_gb = util::parse_double(m).value_or(0.0);
  }
  auto nodes = loggen::expand_node_list(node_list);
  if (!nodes) return std::nullopt;
  info.nodes = std::move(*nodes);
  r.type = EventType::JobStart;
  r.job_id = info.job_id;
  r.detail = ctx_.symbols->intern(info.app_name);
  table_.add_start(std::move(info));
  return r;
}

std::optional<LogRecord> SchedulerLogParser::parse_torque_line(std::string_view line) {
  const auto time = util::parse_torque(line.substr(0, 19));
  if (!time) return std::nullopt;
  // ;<code>;PBS_Server;Job;<id>.sdb;<payload> — split into the five fixed
  // fields in place (the payload keeps any further ';') without the
  // per-line vector a split_n() call would allocate.
  std::array<std::string_view, 5> fields;
  {
    std::string_view rest = line.substr(20);
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t semi = rest.find(';');
      if (semi == std::string_view::npos) return std::nullopt;
      fields[i] = rest.substr(0, semi);
      rest.remove_prefix(semi + 1);
    }
    fields[4] = rest;
  }
  if (fields[1] != "PBS_Server" || fields[2] != "Job") {
    return std::nullopt;
  }
  std::string_view id_field = fields[3];
  const auto dot = id_field.find('.');
  if (dot != std::string_view::npos) id_field = id_field.substr(0, dot);
  const auto job_id = util::parse_i64(id_field);
  if (!job_id) return std::nullopt;
  const std::string_view payload = util::trim(fields[4]);

  LogRecord r;
  r.time = *time;
  r.source = LogSource::Scheduler;
  r.severity = Severity::Info;
  r.job_id = *job_id;

  if (util::starts_with(payload, "Job Run ")) {
    return register_allocation(payload, *job_id, *time, r);
  }
  if (const auto exit_field = util::find_kv(payload, "Exit_status")) {
    const int exit_code = static_cast<int>(util::parse_i64(*exit_field).value_or(-1));
    const auto reason = util::find_kv(payload, "Reason");
    r.type = EventType::JobEnd;
    r.value = exit_code;
    const std::string_view reason_text = reason.value_or(std::string_view{});
    r.detail = ctx_.symbols->intern(reason_text);
    r.severity = exit_code == 0 ? Severity::Info : Severity::Error;
    table_.add_end(*job_id, *time, exit_code, std::string(reason_text));
    return r;
  }
  if (util::starts_with(payload, "Job deleted")) {
    r.type = EventType::JobCancelled;
    r.detail = ctx_.symbols->intern(payload);
    table_.mark_cancelled(*job_id);
    return r;
  }
  if (util::contains(payload, "allocated memory exceeds node capacity")) {
    r.type = EventType::JobOverallocation;
    r.severity = Severity::Warning;
    r.detail = ctx_.symbols->intern("allocated memory exceeds node capacity");
    const auto count = util::find_kv(payload, "OverallocCnt");
    const auto n = count ? util::parse_i64(*count).value_or(0) : 0;
    r.value = static_cast<double>(n);
    table_.mark_overallocated(*job_id, static_cast<std::uint32_t>(n));
    return r;
  }
  if (util::starts_with(payload, "Epilogue complete")) {
    r.type = EventType::EpilogueRun;
    r.detail = ctx_.symbols->intern("epilogue complete");
    return r;
  }
  return std::nullopt;
}

}  // namespace hpcfail::parsers
