// Concurrency battery for the serve layer: client tasks hammer mixed
// queries while the single writer advances the tail, and every individual
// response must be internally consistent with exactly one published epoch
// — the status verb's record count is a per-epoch invariant (base + one
// record per advance), so a torn read between two epochs cannot pass.  CI
// reruns this suite under ASan and TSan.  The serve fault sites get their
// dedicated sweep in faultinject_test; here a focused pass checks the two
// sites stay structured under concurrent load.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail {
namespace {

class ScopedInjector {
 public:
  explicit ScopedInjector(util::FaultInjector& inj) {
    util::install_fault_injector(&inj);
  }
  ~ScopedInjector() { util::install_fault_injector(nullptr); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;
};

struct Booted {
  loggen::Corpus corpus;
  std::string tail_line;  ///< console line guaranteed to parse into a record
  std::size_t base_records = 0;
  std::unique_ptr<serve::Server> server;
};

/// Last console line that parses into a record (console text interleaves
/// chatter the parsers skip), so a tail append deterministically yields
/// one record at a non-decreasing time.
std::string last_parsable_line(const parsers::ParsedCorpus& parsed,
                               const loggen::Corpus& corpus) {
  const parsers::LineParseFn parse =
      parsers::line_parser_for(logmodel::LogSource::Console);
  logmodel::SymbolTable scratch;
  parsers::ParseContext ctx;
  ctx.topo = &parsed.topology;
  ctx.symbols = &scratch;
  const util::CivilTime civil = util::civil_time(corpus.begin);
  ctx.base_year = civil.year;
  ctx.base_month = civil.month;

  const std::string& text = corpus.of(logmodel::LogSource::Console);
  std::size_t end = text.size();
  while (end > 0) {
    while (end > 0 && text[end - 1] == '\n') --end;
    const std::size_t nl = text.rfind('\n', end == 0 ? 0 : end - 1);
    const std::size_t begin = nl == std::string::npos ? 0 : nl + 1;
    std::string line = text.substr(begin, end - begin);
    if (parse != nullptr && parse(line, ctx).has_value()) return line;
    end = begin;
  }
  return {};
}

Booted boot() {
  Booted out;
  const auto sim =
      faultsim::Simulator(
          faultsim::scenario_preset(platform::SystemName::S2, 1, 4242))
          .run();
  out.corpus = loggen::build_corpus(sim);
  auto parsed = parsers::parse_corpus(out.corpus);
  out.base_records = parsed.store.size();
  out.tail_line = last_parsable_line(parsed, out.corpus);
  out.server = std::make_unique<serve::Server>(std::move(parsed));
  return out;
}

TEST(ServeConcurrencyTest, ResponsesConsistentWithSomeEpochDuringIngest) {
  Booted booted = boot();
  serve::Server& server = *booted.server;
  const std::string tail_path = "/tmp/hpcfail_serve_concurrency_tail.log";
  std::filesystem::remove(tail_path);
  server.attach_tail(tail_path, logmodel::LogSource::Console);
  const std::string line = booted.tail_line;
  ASSERT_FALSE(line.empty());

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 60;
  constexpr std::uint64_t kAdvances = 8;

  std::atomic<bool> stop{false};
  util::ThreadPool pool(kClients);
  std::vector<std::future<std::vector<std::string>>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(pool.submit([srv = &server, &stop, c] {
      // Mixed load: cheap verbs, cached-analysis verbs, and the status
      // verb whose payload the main thread cross-checks per epoch.
      static constexpr const char* kVerbs[] = {"status", "ping", "causes",
                                               "lead_time", "status"};
      std::vector<std::string> responses;
      responses.reserve(kQueriesPerClient);
      for (int i = 0; i < kQueriesPerClient && !stop.load(); ++i) {
        std::string request = R"({"id":)" + std::to_string(c * 1000 + i) +
                              R"(,"verb":")" + kVerbs[i % 5] + R"("})";
        responses.push_back(srv->handle_line(request));
      }
      return responses;
    }));
  }

  // The single writer: advance the tail while the clients are in flight.
  for (std::uint64_t advance = 1; advance <= kAdvances; ++advance) {
    {
      std::ofstream tail(tail_path, std::ios::app | std::ios::binary);
      tail << line << "\n";
    }
    const auto poll = server.poll_tail();
    ASSERT_TRUE(poll.ok());
    ASSERT_EQ(poll.records, 1u);
    ASSERT_EQ(server.epoch(), advance);
  }
  stop.store(true);

  // Every response must carry a published epoch and, for status, a record
  // count equal to base + epoch — the invariant a torn read would break.
  std::size_t checked_status = 0;
  for (auto& client : clients) {
    for (const std::string& response : client.get()) {
      const auto doc = serve::JsonValue::parse(response);
      ASSERT_TRUE(doc.has_value()) << response;
      const auto epoch = doc->uint_member("epoch");
      ASSERT_TRUE(epoch.has_value()) << response;
      ASSERT_LE(*epoch, kAdvances) << response;
      const serve::JsonValue* ok = doc->find("ok");
      ASSERT_NE(ok, nullptr);
      ASSERT_TRUE(ok->is_bool() && ok->as_bool()) << response;
      const serve::JsonValue* data = doc->find("data");
      ASSERT_NE(data, nullptr) << response;
      if (const serve::JsonValue* records = data->find("records")) {
        EXPECT_EQ(static_cast<std::uint64_t>(records->as_number()),
                  booted.base_records + *epoch)
            << "status torn across epochs: " << response;
        ++checked_status;
      }
    }
  }
  EXPECT_GT(checked_status, 0u) << "the mixed load must include status queries";

  // The analysis cache recomputed at most once per published epoch even
  // under concurrent first-queries (call_once), and at least once overall
  // (causes/lead_time were queried).
  EXPECT_GE(server.analysis_recomputes(), 1u);
  EXPECT_LE(server.analysis_recomputes(), kAdvances + 1);
  std::filesystem::remove(tail_path);
}

TEST(ServeConcurrencyTest, ServeFaultSitesStayStructuredUnderLoad) {
  Booted booted = boot();
  serve::Server& server = *booted.server;
  const std::string tail_path = "/tmp/hpcfail_serve_concurrency_fault_tail.log";
  std::filesystem::remove(tail_path);
  server.attach_tail(tail_path, logmodel::LogSource::Console);
  const std::string line = booted.tail_line;
  ASSERT_FALSE(line.empty());

  util::FaultInjector inj;
  inj.arm("serve.request.parse", 3);
  inj.arm("serve.tail.read_io", 2);
  const ScopedInjector scope(inj);

  // Concurrent requests: exactly one of them absorbs the parse fault as a
  // structured bad_request; the rest answer normally.
  util::ThreadPool pool(4);
  std::vector<std::future<std::string>> responses;
  responses.reserve(8);
  for (int i = 0; i < 8; ++i) {
    responses.push_back(pool.submit([srv = &server, i] {
      return srv->handle_line(R"({"id":)" + std::to_string(i) +
                              R"(,"verb":"ping"})");
    }));
  }
  int errors = 0;
  for (auto& response : responses) {
    const std::string text = response.get();
    if (text.find("\"ok\":false") != std::string::npos) {
      ++errors;
      EXPECT_NE(text.find("\"kind\":\"bad_request\""), std::string::npos) << text;
    } else {
      EXPECT_NE(text.find("\"pong\":true"), std::string::npos) << text;
    }
  }
  EXPECT_EQ(errors, 1) << "the armed parse fault fires exactly once";
  EXPECT_EQ(inj.fires("serve.request.parse"), 1u);

  // Two data-bearing polls: the second absorbs the read fault as a
  // structured TailError with the offset intact, the retry drains it.
  for (int advance = 0; advance < 2; ++advance) {
    {
      std::ofstream tail(tail_path, std::ios::app | std::ios::binary);
      tail << line << "\n";
    }
    const auto poll = server.poll_tail();
    if (!poll.ok()) {
      EXPECT_EQ(poll.error->file, tail_path);
      EXPECT_FALSE(poll.error->message.empty());
      const auto retry = server.poll_tail();
      EXPECT_TRUE(retry.ok());
      EXPECT_EQ(retry.records, 1u) << "offset must not advance past the fault";
    }
  }
  EXPECT_EQ(inj.fires("serve.tail.read_io"), 1u);
  EXPECT_EQ(server.epoch(), 2u) << "both tail lines landed despite the fault";
  std::filesystem::remove(tail_path);
}

}  // namespace
}  // namespace hpcfail
