#include "baseline.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include "lint.hpp"

namespace hpcfail::lint {

std::string baseline_key(const Diagnostic& diagnostic) {
  return diagnostic.file + "|" + diagnostic.check + "|" + diagnostic.message;
}

std::vector<BaselineEntry> load_baseline(const std::filesystem::path& path) {
  std::vector<BaselineEntry> entries;
  std::ifstream in(path);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line.front() == '#') continue;
    BaselineEntry e;
    const std::size_t first = line.find('|');
    const std::size_t second = first == std::string::npos
                                   ? std::string::npos
                                   : line.find('|', first + 1);
    if (second == std::string::npos) {
      // Malformed: keep as an unmatchable entry so it shows up stale instead
      // of silently suppressing something.
      e.file = line;
      entries.push_back(std::move(e));
      continue;
    }
    e.file = line.substr(0, first);
    e.check = line.substr(first + 1, second - first - 1);
    e.message = line.substr(second + 1);
    entries.push_back(std::move(e));
  }
  return entries;
}

BaselineResult apply_baseline(Report& report, const std::vector<BaselineEntry>& baseline) {
  BaselineResult result;
  if (baseline.empty()) return result;

  std::set<std::string> keys;
  for (const auto& e : baseline) {
    keys.insert(e.file + "|" + e.check + "|" + e.message);
  }

  std::set<std::string> matched;
  auto& diags = report.diagnostics;
  const auto is_baselined = [&](const Diagnostic& d) {
    const std::string key = baseline_key(d);
    if (keys.count(key) == 0) return false;
    matched.insert(key);
    return true;
  };
  const std::size_t before = diags.size();
  diags.erase(std::remove_if(diags.begin(), diags.end(), is_baselined), diags.end());
  result.suppressed = before - diags.size();

  for (const auto& key : keys) {
    if (matched.count(key) == 0) result.stale_keys.push_back(key);
  }
  return result;
}

std::string render_baseline(const Report& report) {
  std::set<std::string> keys;
  for (const auto& d : report.diagnostics) keys.insert(baseline_key(d));

  std::ostringstream out;
  out << "# hpcfail-lint baseline: accepted findings, one per line as\n"
         "#   file|check|message\n"
         "# Line numbers are not part of the key so entries survive unrelated\n"
         "# edits.  Regenerate with: hpcfail-lint --write-baseline <this file>\n"
         "# Stale entries (no longer matching any finding) are reported by\n"
         "# --baseline runs and should be deleted.\n";
  for (const auto& key : keys) out << key << "\n";
  return std::move(out).str();
}

}  // namespace hpcfail::lint
