file(REMOVE_RECURSE
  "CMakeFiles/leadtime_explorer.dir/leadtime_explorer.cpp.o"
  "CMakeFiles/leadtime_explorer.dir/leadtime_explorer.cpp.o.d"
  "leadtime_explorer"
  "leadtime_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leadtime_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
