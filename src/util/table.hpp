// Plain-text and CSV table rendering for the benchmark harnesses.
//
// Every figure/table bench prints a "paper vs measured" table; this class
// keeps those outputs aligned and uniform.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::util {

class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }

  /// Optional title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience for mixed-type rows.
  class RowBuilder {
   public:
    explicit RowBuilder(TextTable& t) : table_(t) {}
    ~RowBuilder() { table_.add_row(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string_view v) {
      cells_.emplace_back(v);
      return *this;
    }
    RowBuilder& cell(double v, int precision = 2);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(std::size_t v) { return cell(static_cast<std::int64_t>(v)); }
    RowBuilder& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
    /// Percentage with a '%' suffix.
    RowBuilder& pct(double fraction, int precision = 2);

   private:
    TextTable& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder{*this}; }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders the table with aligned columns and a header rule.
  [[nodiscard]] std::string render() const;

  /// Renders as RFC-4180-ish CSV (quotes fields containing comma/quote/NL).
  [[nodiscard]] std::string render_csv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string fmt_double(double v, int precision = 2);

/// Formats a fraction as "12.34%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 2);

}  // namespace hpcfail::util
