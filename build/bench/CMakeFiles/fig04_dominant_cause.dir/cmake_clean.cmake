file(REMOVE_RECURSE
  "CMakeFiles/fig04_dominant_cause.dir/fig04_dominant_cause.cpp.o"
  "CMakeFiles/fig04_dominant_cause.dir/fig04_dominant_cause.cpp.o.d"
  "fig04_dominant_cause"
  "fig04_dominant_cause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_dominant_cause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
