// Fixture: views escaping their owning storage must be rejected.
#include <span>
#include <string>
#include <string_view>
#include <vector>

struct LogStore {
  std::span<const int> times() const { return {}; }
};

std::string_view bad_name() {
  std::string name = "nid00001";
  return name;
}

std::span<const int> bad_ids(std::vector<int> ids) {
  return ids;
}

std::span<const int> bad_times() {
  return LogStore().times();
}

std::string_view tolerated() {
  static const std::string name = "nid00001";
  // hpcfail-lint: allow(dangling-view) -- static storage outlives every caller
  return name;
}

std::string_view rejected() {
  static const std::string name = "nid00001";
  // hpcfail-lint: allow(dangling-view)
  return name;
}
