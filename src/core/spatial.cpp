#include "core/spatial.hpp"

#include <algorithm>
#include <map>

namespace hpcfail::core {

using logmodel::LogRecord;

bool SpatialAnalyzer::blade_faulty_near(platform::BladeId blade, util::TimePoint t) const {
  for (const std::uint32_t idx :
       store_.blade_range(blade, t - config_.fault_window, t + config_.fault_window)) {
    const LogRecord& r = store_[idx];
    // Only controller/ERD-visible health signals count; the failing node's
    // own internal records (and its post-mortem NHF) must not make the
    // blade trivially "faulty".
    if (r.type == logmodel::EventType::NodeHeartbeatFault) continue;
    if (logmodel::is_health_fault(r.type) || logmodel::is_sedc_warning(r.type)) return true;
  }
  return false;
}

bool SpatialAnalyzer::cabinet_faulty_near(platform::CabinetId cabinet,
                                          util::TimePoint t) const {
  for (const std::uint32_t idx :
       store_.cabinet_range(cabinet, t - config_.fault_window, t + config_.fault_window)) {
    const LogRecord& r = store_[idx];
    if (r.has_blade() || r.has_node()) continue;  // count cabinet-scoped faults only
    if (logmodel::is_health_fault(r.type) || logmodel::is_sedc_warning(r.type)) return true;
  }
  return false;
}

SpatialAttribution SpatialAnalyzer::attribute(const std::vector<AnalyzedFailure>& failures,
                                              util::TimePoint begin,
                                              util::TimePoint end) const {
  SpatialAttribution out;
  for (const auto& f : failures) {
    if (f.event.time < begin || f.event.time >= end) continue;
    ++out.failures;
    if (blade_faulty_near(f.event.blade, f.event.time)) ++out.on_faulty_blade;
    if (cabinet_faulty_near(f.event.cabinet, f.event.time)) ++out.on_faulty_cabinet;
  }
  return out;
}

std::vector<BladeFailureGroup> SpatialAnalyzer::blade_groups(
    const std::vector<AnalyzedFailure>& failures, std::size_t min_failures) const {
  std::map<std::pair<std::uint32_t, std::int64_t>,
           std::array<std::size_t, logmodel::kRootCauseCount>>
      counts;
  for (const auto& f : failures) {
    if (!f.event.blade.valid()) continue;
    auto& c = counts[{f.event.blade.value, f.event.time.day_index()}];
    ++c[static_cast<std::size_t>(f.inference.cause)];
  }
  std::vector<BladeFailureGroup> out;
  for (const auto& [key, c] : counts) {
    BladeFailureGroup g;
    g.blade = platform::BladeId{key.first};
    g.day = key.second;
    std::size_t distinct = 0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      g.failures += c[i];
      if (c[i] > 0) ++distinct;
      if (c[i] > best) {
        best = c[i];
        g.dominant = static_cast<logmodel::RootCause>(i);
      }
    }
    g.same_reason = distinct == 1;
    if (g.failures >= min_failures) out.push_back(g);
  }
  return out;
}

double SpatialAnalyzer::same_reason_fraction(
    const std::vector<BladeFailureGroup>& groups) noexcept {
  if (groups.empty()) return 0.0;
  const auto same = static_cast<double>(
      std::count_if(groups.begin(), groups.end(),
                    [](const BladeFailureGroup& g) { return g.same_reason; }));
  return same / static_cast<double>(groups.size());
}

double SpatialAnalyzer::mean_cabinet_distance_of_close_failures(
    const std::vector<AnalyzedFailure>& failures, util::Duration within) const {
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 1; i < failures.size(); ++i) {
    const auto& a = failures[i - 1].event;
    const auto& b = failures[i].event;
    if (b.time - a.time > within) continue;
    total += topo_.cabinet_distance(a.node, b.node);
    ++pairs;
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace hpcfail::core
