// Fixture: every public accessor guards the finalize protocol (clean).
#pragma once
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hpcfail::logmodel {

class LogStore {
 public:
  void add(int r) { finalized_ = false; records_.push_back(r); }
  void finalize() { finalized_ = true; }
  bool finalized() const { return finalized_; }
  std::size_t size() const { require_finalized(); return records_.size(); }

 private:
  void require_finalized() const {
    if (!finalized_) throw std::logic_error("LogStore: non-finalized query");
  }
  std::vector<int> records_;
  bool finalized_ = false;
};

}  // namespace hpcfail::logmodel
