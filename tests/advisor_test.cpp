// Unit tests for core/advisor: cause -> action mapping, repeat offenders,
// and the quarantine-waste summary.
#include <gtest/gtest.h>

#include "core/advisor.hpp"

namespace hpcfail::core {
namespace {

using logmodel::RootCause;

AnalyzedFailure failure_with(RootCause cause, std::int64_t job = logmodel::kNoJob) {
  AnalyzedFailure f;
  f.event.node = platform::NodeId{1};
  f.event.time = util::make_time(2015, 3, 2, 12);
  f.event.job_id = job;
  f.inference.cause = cause;
  f.inference.application_triggered = logmodel::is_application_triggered(cause);
  return f;
}

class AdvisorMapping : public ::testing::TestWithParam<std::pair<RootCause, Action>> {};

TEST_P(AdvisorMapping, CauseMapsToPrimaryAction) {
  const MitigationAdvisor advisor;
  const auto rec = advisor.advise_one(failure_with(GetParam().first), nullptr);
  EXPECT_EQ(rec.primary, GetParam().second);
  EXPECT_FALSE(rec.explanation.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Causes, AdvisorMapping,
    ::testing::Values(std::pair{RootCause::FailSlowHardware, Action::ScheduleHwService},
                      std::pair{RootCause::HardwareMce, Action::QuarantineNode},
                      std::pair{RootCause::KernelBug, Action::RebootOnly},
                      std::pair{RootCause::LustreBug, Action::RebootOnly},
                      std::pair{RootCause::MemoryExhaustion, Action::NotifyUser},
                      std::pair{RootCause::AppAbnormalExit, Action::NotifyUser},
                      std::pair{RootCause::BiosUnknown, Action::EscalateVendor},
                      std::pair{RootCause::L0SysdMceUnknown, Action::EscalateVendor},
                      std::pair{RootCause::OperatorError, Action::RebootOnly}));

TEST(AdvisorTest, OverallocatedJobGetsMemoryCap) {
  const MitigationAdvisor advisor;
  jobs::JobInfo job;
  job.job_id = 5;
  job.overallocated = true;
  const auto rec = advisor.advise_one(failure_with(RootCause::MemoryExhaustion, 5), &job);
  EXPECT_EQ(rec.primary, Action::CapJobMemory);
  EXPECT_FALSE(rec.checkpoint_restart_useful);
}

TEST(AdvisorTest, RepeatOffenderBlocked) {
  MitigationAdvisor advisor(AdvisorConfig{.repeat_offender_failures = 3});
  std::vector<AnalyzedFailure> failures;
  for (int i = 0; i < 4; ++i) failures.push_back(failure_with(RootCause::LustreBug, 77));
  failures.push_back(failure_with(RootCause::LustreBug, 88));  // only one failure
  const auto recs = advisor.advise(failures, nullptr);
  ASSERT_EQ(recs.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(recs[static_cast<std::size_t>(i)].primary, Action::BlockApplication);
  }
  EXPECT_EQ(recs[4].primary, Action::RebootOnly);
}

TEST(AdvisorTest, CheckpointRestartFlag) {
  const MitigationAdvisor advisor;
  EXPECT_TRUE(
      advisor.advise_one(failure_with(RootCause::HardwareMce), nullptr).checkpoint_restart_useful);
  // Restarting from checkpoint reproduces an application-caused failure.
  EXPECT_FALSE(advisor.advise_one(failure_with(RootCause::AppAbnormalExit), nullptr)
                   .checkpoint_restart_useful);
}

TEST(AdvisorTest, SummaryCountsAndWasteFraction) {
  const MitigationAdvisor advisor;
  std::vector<AnalyzedFailure> failures = {
      failure_with(RootCause::HardwareMce),
      failure_with(RootCause::MemoryExhaustion, 1),
      failure_with(RootCause::AppAbnormalExit, 2),
      failure_with(RootCause::LustreBug, 3),
  };
  const auto recs = advisor.advise(failures, nullptr);
  const auto summary = summarize_actions(recs, failures);
  EXPECT_EQ(summary.total, 4u);
  EXPECT_EQ(summary.counts[static_cast<std::size_t>(Action::QuarantineNode)], 1u);
  EXPECT_EQ(summary.counts[static_cast<std::size_t>(Action::NotifyUser)], 2u);
  // 3 of 4 were application-triggered: quarantining them would waste nodes.
  EXPECT_DOUBLE_EQ(summary.quarantine_waste_fraction, 0.75);
}

TEST(AdvisorTest, ActionNames) {
  for (int a = 0; a < 8; ++a) {
    EXPECT_NE(to_string(static_cast<Action>(a)), "?");
  }
}

}  // namespace
}  // namespace hpcfail::core
