// corpus_tool: the command-line face of the library.
//
//   corpus_tool generate --system S1 --days 7 --seed 42 --out DIR
//       Simulate a system and write the raw multi-source log corpus.
//   corpus_tool generate --config scenario.txt --out DIR
//       Same, with every calibration knob taken from a scenario file
//       (see `corpus_tool dump-scenario S1` for a template).
//   corpus_tool dump-scenario S1..S5
//       Print a system's full scenario definition.
//   corpus_tool analyze DIR
//       Parse a corpus directory and print the full failure diagnosis.
//   corpus_tool summarize DIR
//       Print per-source volumes and the event-type inventory.
//   corpus_tool report DIR [OUT.md]
//       Write the full Markdown operator report (stdout by default).
//
// The analyze path is exactly what a site operator would run on their own
// (suitably formatted) logs: it never touches the simulator.
#include <cstring>
#include <iostream>
#include <string>

#include <fstream>
#include <sstream>

#include "core/advisor.hpp"
#include "core/engine.hpp"
#include "core/markdown_report.hpp"
#include "core/timeline.hpp"
#include "faultsim/scenario_io.hpp"
#include "core/root_cause.hpp"
#include "core/temporal.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/table.hpp"

namespace {

using namespace hpcfail;

int usage() {
  std::cerr << "usage:\n"
               "  corpus_tool generate --system S1..S5 --days N --seed N --out DIR\n"
               "  corpus_tool generate --config scenario.txt --out DIR\n"
               "  corpus_tool analyze DIR\n"
               "  corpus_tool summarize DIR\n"
               "  corpus_tool report DIR [OUT.md]\n"
               "  corpus_tool dump-scenario S1..S5\n";
  return 2;
}

std::optional<platform::SystemName> parse_system(const std::string& s) {
  for (const auto name : {platform::SystemName::S1, platform::SystemName::S2,
                          platform::SystemName::S3, platform::SystemName::S4,
                          platform::SystemName::S5}) {
    if (platform::to_string(name) == s) return name;
  }
  return std::nullopt;
}

int cmd_generate(int argc, char** argv) {
  platform::SystemName system = platform::SystemName::S1;
  int days = 7;
  std::uint64_t seed = 42;
  std::string out;
  std::string config_path;
  for (int i = 2; i < argc - 1; ++i) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--system") {
      const auto parsed = parse_system(value);
      if (!parsed) {
        std::cerr << "unknown system " << value << "\n";
        return 2;
      }
      system = *parsed;
    } else if (flag == "--days") {
      days = std::atoi(value.c_str());
    } else if (flag == "--seed") {
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--out") {
      out = value;
    } else if (flag == "--config") {
      config_path = value;
    }
  }
  if (out.empty() || days <= 0) return usage();

  faultsim::ScenarioConfig scenario = faultsim::scenario_preset(system, days, seed);
  if (!config_path.empty()) {
    std::ifstream file(config_path);
    if (!file) {
      std::cerr << "cannot open " << config_path << "\n";
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    scenario = faultsim::scenario_from_string(text.str());
  }
  const auto sim = faultsim::Simulator(scenario).run();
  const auto corpus = loggen::build_corpus(sim);
  loggen::write_corpus(corpus, out);
  std::cout << "wrote " << corpus.bytes() / 1024 << " KiB (" << sim.records.size()
            << " events, " << sim.jobs.size() << " jobs, " << sim.truth.failure_count()
            << " failures) to " << out << "\n";
  return 0;
}

int cmd_analyze(const std::string& dir) {
  const auto corpus = loggen::read_corpus(dir);
  const auto parsed = parsers::parse_corpus(corpus);
  std::cout << "parsed " << parsed.parsed_records << " records from " << parsed.total_lines
            << " lines (" << parsed.skipped_lines << " skipped)\n";

  // One engine run over the corpus window covers causes, lead times and
  // everything else the summary lines below print.
  const core::AnalysisEngine engine;
  const auto analysis =
      engine.analyze(parsed.store, &parsed.jobs, corpus.begin,
                     corpus.begin + util::Duration::days(corpus.days));
  const auto& failures = analysis.failures;
  std::cout << '\n'
            << core::render_cause_table(analysis.breakdown,
                                        "Diagnosed failures (" + corpus.system.label + ")");

  util::TextTable table({"time", "node", "cause", "conf", "job", "rationale"});
  for (const auto& f : failures) {
    table.row()
        .cell(util::format_iso(f.event.time))
        .cell(parsed.topology.node_name(f.event.node))
        .cell(std::string(to_string(f.inference.cause)))
        .cell(f.inference.confidence, 2)
        .cell(f.event.job_id == logmodel::kNoJob ? std::string("-")
                                                 : std::to_string(f.event.job_id))
        .cell(f.inference.rationale);
  }
  std::cout << '\n' << table.render();

  const auto& summary = analysis.lead_time_summary;
  std::cout << "\nlead times: " << util::fmt_pct(summary.enhanceable_fraction())
            << " enhanceable via external indicators, mean factor "
            << util::fmt_double(summary.enhancement_factor(), 1) << "x\n";

  // Fleet availability and recommended mitigations.
  const core::TimelineBuilder timeline(parsed.store, parsed.topology.node_count());
  const auto fleet = timeline.fleet_availability(
      corpus.begin, corpus.begin + util::Duration::days(corpus.days));
  std::cout << "fleet availability: " << util::fmt_pct(fleet.availability, 3) << " ("
            << util::fmt_double(fleet.node_hours_lost, 1) << " node-hours lost, mean repair "
            << util::fmt_double(fleet.repair_minutes.mean(), 0) << " min)\n";

  const core::MitigationAdvisor advisor;
  const auto actions =
      core::summarize_actions(advisor.advise(failures, &parsed.jobs), failures);
  std::cout << "recommended actions:";
  for (std::size_t a = 0; a < actions.counts.size(); ++a) {
    if (actions.counts[a] == 0) continue;
    std::cout << ' ' << to_string(static_cast<core::Action>(a)) << "=" << actions.counts[a];
  }
  std::cout << '\n';
  return 0;
}

int cmd_summarize(const std::string& dir) {
  const auto corpus = loggen::read_corpus(dir);
  const auto parsed = parsers::parse_corpus(corpus);

  std::cout << "system " << corpus.system.label << " (" << corpus.system.machine_type
            << "), " << corpus.days << " days from " << util::format_iso(corpus.begin)
            << "\n\n";
  util::TextTable sources({"source", "bytes", "records"});
  std::array<std::size_t, logmodel::kLogSourceCount> counts{};
  for (const auto& r : parsed.store.records()) {
    ++counts[static_cast<std::size_t>(r.source)];
  }
  for (std::size_t s = 0; s < logmodel::kLogSourceCount; ++s) {
    sources.row()
        .cell(std::string(to_string(static_cast<logmodel::LogSource>(s))))
        .cell(static_cast<std::int64_t>(corpus.text[s].size()))
        .cell(static_cast<std::int64_t>(counts[s]));
  }
  std::cout << sources.render() << '\n';

  util::TextTable types({"event type", "count"});
  for (std::size_t t = 0; t < logmodel::kEventTypeCount; ++t) {
    const auto count = parsed.store.count_of_type(static_cast<logmodel::EventType>(t));
    if (count == 0) continue;
    types.row()
        .cell(std::string(to_string(static_cast<logmodel::EventType>(t))))
        .cell(static_cast<std::int64_t>(count));
  }
  std::cout << types.render();
  return 0;
}

int cmd_report(const std::string& dir, const char* out_path) {
  const auto corpus = loggen::read_corpus(dir);
  const auto parsed = parsers::parse_corpus(corpus);
  core::ReportInputs inputs;
  inputs.store = &parsed.store;
  inputs.jobs = &parsed.jobs;
  inputs.topology = &parsed.topology;
  inputs.system_label = corpus.system.label;
  inputs.begin = corpus.begin;
  inputs.end = corpus.begin + util::Duration::days(corpus.days);
  const std::string report = core::markdown_report(inputs);
  if (out_path != nullptr) {
    std::ofstream file(out_path);
    if (!file) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    file << report;
    std::cout << "wrote report to " << out_path << "\n";
  } else {
    std::cout << report;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "analyze" && argc >= 3) return cmd_analyze(argv[2]);
    if (cmd == "summarize" && argc >= 3) return cmd_summarize(argv[2]);
    if (cmd == "report" && argc >= 3) {
      return cmd_report(argv[2], argc >= 4 ? argv[3] : nullptr);
    }
    if (cmd == "dump-scenario" && argc >= 3) {
      const auto system = parse_system(argv[2]);
      if (!system) {
        std::cerr << "unknown system " << argv[2] << "\n";
        return 2;
      }
      std::cout << faultsim::scenario_to_string(faultsim::scenario_preset(*system, 7, 42));
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
