// Survival analysis over time-between-failure data: Kaplan-Meier survivor
// estimation (with right-censoring for open intervals at the end of the
// observation window) and a discrete hazard summary.  A decreasing hazard
// confirms the burstiness of the failure process (Observation 1): having
// just seen a failure makes another one soon MORE likely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcfail::stats {

struct SurvivalPoint {
  double time = 0.0;        ///< event time
  double survival = 1.0;    ///< S(t) just after this time
  std::size_t at_risk = 0;  ///< subjects at risk just before this time
  std::size_t events = 0;   ///< events at this time
};

class KaplanMeier {
 public:
  /// `durations[i]` with `observed[i]` != 0 is an event; 0 means the
  /// subject was censored at that time.  Sizes must match.
  KaplanMeier(std::span<const double> durations, std::span<const std::uint8_t> observed);

  /// Uncensored convenience constructor.
  explicit KaplanMeier(std::span<const double> durations);

  [[nodiscard]] const std::vector<SurvivalPoint>& curve() const noexcept { return curve_; }

  /// S(t): probability of surviving past t.
  [[nodiscard]] double survival_at(double t) const noexcept;

  /// Median survival time; infinity if S never drops below 0.5.
  [[nodiscard]] double median() const noexcept;

  /// Restricted mean survival time up to `horizon` (area under S(t)).
  [[nodiscard]] double restricted_mean(double horizon) const noexcept;

 private:
  std::vector<SurvivalPoint> curve_;
};

/// Discrete hazard over time bins: h_i = events in bin / at-risk entering
/// the bin.  Bins are [edges[i], edges[i+1]).
struct HazardBin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t events = 0;
  std::size_t at_risk = 0;
  [[nodiscard]] double hazard() const noexcept {
    return at_risk ? static_cast<double>(events) / static_cast<double>(at_risk) : 0.0;
  }
};

[[nodiscard]] std::vector<HazardBin> discrete_hazard(std::span<const double> durations,
                                                     std::span<const double> edges);

}  // namespace hpcfail::stats
