// Per-line parsers for each raw log source; exact inverses of the grammars
// in loggen/renderer.cpp.  Every parser is total: any malformed line yields
// nullopt, never an exception (the property suite fuzzes this).
#pragma once

#include <optional>
#include <string_view>

#include "jobs/job_table.hpp"
#include "logmodel/record.hpp"
#include "logmodel/symbol_table.hpp"
#include "platform/topology.hpp"

namespace hpcfail::parsers {

struct ParseContext {
  const platform::Topology* topo = nullptr;
  /// Table detail strings are interned into, straight from the line's
  /// string_views (no per-record allocation).  Parsers yield nullopt when
  /// unset, like topo.  On the streaming path each chunk task points this
  /// at its chunk-local table; StoreBuilder remaps at retire time.
  logmodel::SymbolTable* symbols = nullptr;
  /// Year of the corpus window's first day; syslog timestamps carry none.
  int base_year = 1970;
  /// Month (1..12) of the window's first day.  Syslog months calendar-
  /// earlier than this belong to base_year + 1, so a corpus straddling
  /// New Year dates its post-rollover lines correctly (valid for windows
  /// shorter than 12 months; stateless, hence shard-order independent).
  int base_month = 1;
};

/// console / consumer: ISO_TS <nodename> [<cname>] (kernel|hwerrd): <payload>
[[nodiscard]] std::optional<logmodel::LogRecord> parse_console_line(
    std::string_view line, const ParseContext& ctx) noexcept;

/// messages: SYSLOG_TS <nodename> nhc[pid]: <payload>
[[nodiscard]] std::optional<logmodel::LogRecord> parse_messages_line(
    std::string_view line, const ParseContext& ctx) noexcept;

/// controller: ISO_TS <cname> cc: <payload>
[[nodiscard]] std::optional<logmodel::LogRecord> parse_controller_line(
    std::string_view line, const ParseContext& ctx) noexcept;

/// erd: ISO_TS erd ev=<event> src=<cname> [node=<nodename>] <detail>
[[nodiscard]] std::optional<logmodel::LogRecord> parse_erd_line(
    std::string_view line, const ParseContext& ctx) noexcept;

/// Stateful scheduler-log parser: emits records and incrementally fills a
/// JobTable (allocations, ends, cancellations, over-allocation marks).
class SchedulerLogParser {
 public:
  SchedulerLogParser(const ParseContext& ctx, jobs::JobTable& table)
      : ctx_(ctx), table_(table) {}

  /// Parses one line (Slurm or Torque dialect, auto-detected); updates the
  /// table as a side effect.
  [[nodiscard]] std::optional<logmodel::LogRecord> parse_line(std::string_view line);

 private:
  [[nodiscard]] std::optional<logmodel::LogRecord> parse_torque_line(std::string_view line);
  [[nodiscard]] std::optional<logmodel::LogRecord> register_allocation(
      std::string_view payload, std::int64_t job_id, util::TimePoint time,
      logmodel::LogRecord r);

  ParseContext ctx_;
  jobs::JobTable& table_;
};

}  // namespace hpcfail::parsers
