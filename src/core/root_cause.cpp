#include "core/root_cause.hpp"

#include <algorithm>

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogStore;
using logmodel::RootCause;

Evidence RootCauseEngine::collect_evidence(const LogStore& store, const FailureEvent& failure,
                                           const jobs::JobTable* jobs) const {
  Evidence ev;
  const util::TimePoint t = failure.time;

  // Internal window on the failing node.
  for (const std::uint32_t idx :
       store.node_range(failure.node, t - config_.internal_lookback,
                        t + util::Duration::minutes(1))) {
    const LogRecord& r = store[idx];
    switch (r.type) {
      case EventType::MachineCheckException: ev.mce = true; break;
      case EventType::HardwareError: ev.hw_error = true; break;
      case EventType::CpuCorruption: ev.cpu_corruption = true; break;
      case EventType::OomKill: ev.oom = true; break;
      case EventType::PageAllocationFailure: ev.page_alloc_failure = true; break;
      case EventType::LustreError: ev.lustre_error = true; break;
      case EventType::LustreBug: ev.lustre_bug = true; break;
      case EventType::DvsError: ev.dvs_error = true; break;
      case EventType::KernelOops: ev.kernel_oops = true; break;
      case EventType::InvalidOpcode: ev.invalid_opcode = true; break;
      case EventType::CpuStall: ev.cpu_stall = true; break;
      case EventType::SegFault: ev.seg_fault = true; break;
      case EventType::NhcTestFail: ev.nhc_test_fail = true; break;
      case EventType::AppExitAbnormal: ev.app_exit_abnormal = true; break;
      case EventType::BiosError: ev.bios_error = true; break;
      case EventType::L0SysdMce: ev.l0_sysd_mce = true; break;
      case EventType::CallTrace: ev.stack_modules.emplace_back(store.detail(r)); break;
      default: break;
    }
  }

  // External window: node-scoped and blade-scoped indicators.
  const util::TimePoint ext_begin = t - config_.external_lookback;
  for (const std::uint32_t idx :
       store.blade_range(failure.blade, ext_begin, t + util::Duration::minutes(1))) {
    const LogRecord& r = store[idx];
    // Node-scoped indicators must match the failing node; blade-scoped
    // ones apply to every node of the blade.
    if (r.has_node() && r.node != failure.node) continue;
    switch (r.type) {
      case EventType::EcHwError: ev.ec_hw_errors = true; break;
      case EventType::LinkError: ev.link_errors = true; break;
      case EventType::NodeVoltageFault: ev.node_voltage_fault = true; break;
      case EventType::SedcVoltageWarning: ev.sedc_voltage = true; break;
      default: break;
    }
  }

  ev.job_attributed = failure.job_id != logmodel::kNoJob;
  if (!ev.job_attributed && jobs != nullptr) {
    ev.job_attributed =
        jobs->job_on_node_at(failure.node, t, util::Duration::minutes(3)) != nullptr;
  }
  return ev;
}

namespace {
bool has_module(const Evidence& ev, std::string_view needle) {
  return std::any_of(ev.stack_modules.begin(), ev.stack_modules.end(),
                     [needle](const std::string& m) {
                       return m.find(needle) != std::string::npos;
                     });
}
}  // namespace

Inference RootCauseEngine::infer(const Evidence& ev, EventType marker) const {
  Inference out;
  out.evidence = ev;

  const bool hardware_signals = ev.mce || ev.cpu_corruption || has_module(ev, "mce_log");
  const bool external_signals = ev.ec_hw_errors || ev.node_voltage_fault ||
                                (ev.link_errors && ev.sedc_voltage);
  const bool memory_signals = ev.oom || ev.page_alloc_failure || has_module(ev, "xpmem");
  const bool lustre_signals =
      ev.lustre_bug || has_module(ev, "ldlm") || has_module(ev, "dvs_ipc") ||
      (ev.lustre_error && ev.kernel_oops);
  const bool kernel_bug_signals =
      ev.invalid_opcode || ev.cpu_stall || has_module(ev, "rwsem");

  // Ordered rules: fault ORIGIN wins over manifestation (Observation 7).
  if (memory_signals) {
    out.cause = RootCause::MemoryExhaustion;
    out.confidence = ev.oom ? 0.9 : 0.6;
    out.application_triggered = true;
    out.rationale = "oom-killer/page-allocation chain; memory exhausted by the job";
  } else if (ev.l0_sysd_mce && !hardware_signals && !lustre_signals) {
    out.cause = RootCause::L0SysdMceUnknown;
    out.confidence = 0.4;
    out.rationale = "L0_sysd_mce without corroborating internal evidence";
  } else if (ev.bios_error && !hardware_signals && !lustre_signals && !kernel_bug_signals) {
    out.cause = RootCause::BiosUnknown;
    out.confidence = 0.4;
    out.rationale = "BIOS HEST pattern also seen on healthy nodes; cause unclear";
  } else if (lustre_signals) {
    out.cause = RootCause::LustreBug;
    out.confidence = ev.lustre_bug ? 0.9 : 0.7;
    out.application_triggered = ev.job_attributed;
    out.rationale = "Lustre/DVS assertion with file-system stack modules";
  } else if (hardware_signals) {
    if (external_signals) {
      out.cause = RootCause::FailSlowHardware;
      out.confidence = 0.85;
      out.rationale = "MCE chain with early external ec_hw/voltage indicators (fail-slow)";
    } else {
      out.cause = RootCause::HardwareMce;
      out.confidence = 0.85;
      out.rationale = "machine check chain without external precursors (fail-stop)";
    }
  } else if (kernel_bug_signals) {
    out.cause = RootCause::KernelBug;
    out.confidence = 0.75;
    out.application_triggered = ev.job_attributed;
    out.rationale = "invalid opcode / CPU stall with kernel stack modules";
  } else if (ev.app_exit_abnormal || (ev.nhc_test_fail && marker == EventType::NodeHalt)) {
    out.cause = RootCause::AppAbnormalExit;
    out.confidence = 0.8;
    out.application_triggered = true;
    out.rationale = "NHC abnormal application exit turned node to admindown";
  } else if (marker == EventType::NodeShutdown && !ev.kernel_oops) {
    out.cause = RootCause::OperatorError;
    out.confidence = 0.3;
    out.rationale = "bare shutdown without anomaly symptoms; likely operator action";
  } else {
    out.cause = RootCause::Unknown;
    out.confidence = 0.1;
    out.rationale = "insufficient evidence for causal inference";
  }
  return out;
}

Inference RootCauseEngine::diagnose(const LogStore& store, const FailureEvent& failure,
                                    const jobs::JobTable* jobs) const {
  return infer(collect_evidence(store, failure, jobs), failure.marker);
}

}  // namespace hpcfail::core
