// Fixture: fault-site uses that drift from the inventory and naming rules.
#include "util/fault.hpp"

bool stage() {
  if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) return false;
  if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) return false;
  if (HPCFAIL_FAULT_SITE("ingest.Read.torn")) return false;
  if (HPCFAIL_FAULT_SITE("parse.oops")) return false;
  if (HPCFAIL_FAULT_SITE("ingest.retire.bad_alloc")) return false;
  if (HPCFAIL_FAULT_SITE("legacy.shim")) return false;  // hpcfail-lint: allow(fault-sites) -- migration shim, removed with the v0 reader
  return true;
}
