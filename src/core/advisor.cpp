#include "core/advisor.hpp"

#include <map>

namespace hpcfail::core {

using logmodel::RootCause;

std::string_view to_string(Action a) noexcept {
  switch (a) {
    case Action::QuarantineNode: return "QuarantineNode";
    case Action::ScheduleHwService: return "ScheduleHwService";
    case Action::RebootOnly: return "RebootOnly";
    case Action::NotifyUser: return "NotifyUser";
    case Action::BlockApplication: return "BlockApplication";
    case Action::CapJobMemory: return "CapJobMemory";
    case Action::EscalateVendor: return "EscalateVendor";
    case Action::TuneHealthChecker: return "TuneHealthChecker";
  }
  return "?";
}

Recommendation MitigationAdvisor::advise_one(const AnalyzedFailure& failure,
                                             const jobs::JobInfo* job) const {
  Recommendation rec;
  switch (failure.inference.cause) {
    case RootCause::FailSlowHardware:
      rec.primary = Action::ScheduleHwService;
      rec.secondary = {Action::QuarantineNode};
      rec.explanation =
          "fail-slow hardware: external indicators gave warning; replace the part "
          "before the next hard failure";
      break;
    case RootCause::HardwareMce:
      rec.primary = Action::QuarantineNode;
      rec.secondary = {Action::ScheduleHwService};
      rec.explanation = "fail-stop machine check: keep the node out until serviced";
      break;
    case RootCause::KernelBug:
      rec.primary = Action::RebootOnly;
      rec.secondary = {Action::TuneHealthChecker};
      rec.explanation = "kernel bug trips only under the triggering workload; reboot and "
                        "track the signature";
      break;
    case RootCause::LustreBug:
      rec.primary = Action::RebootOnly;
      rec.secondary = {Action::NotifyUser, Action::TuneHealthChecker};
      rec.checkpoint_restart_useful = true;
      rec.explanation = "application-triggered file-system bug: the node recovers once a "
                        "new job runs; no quarantine";
      break;
    case RootCause::MemoryExhaustion:
      rec.primary = job != nullptr && job->overallocated ? Action::CapJobMemory
                                                         : Action::NotifyUser;
      rec.secondary = {Action::RebootOnly};
      rec.checkpoint_restart_useful = false;
      rec.explanation = job != nullptr && job->overallocated
                            ? "scheduler over-committed memory: fix limits, do not blame "
                              "the node"
                            : "job exhausted node memory: inform the user; restarting the "
                              "same job reproduces the failure";
      break;
    case RootCause::AppAbnormalExit:
      rec.primary = Action::NotifyUser;
      rec.secondary = {Action::RebootOnly};
      rec.checkpoint_restart_useful = false;
      rec.explanation = "abnormal application exit turned the node down; the node is "
                        "healthy — the job is not";
      break;
    case RootCause::BiosUnknown:
    case RootCause::L0SysdMceUnknown:
      rec.primary = Action::EscalateVendor;
      rec.secondary = {Action::QuarantineNode};
      rec.explanation = "pattern with no deducible cause (Observation 9): needs "
                        "vendor/operator support";
      break;
    case RootCause::OperatorError:
      rec.primary = Action::RebootOnly;
      rec.explanation = "bare shutdown without anomaly; likely manual action";
      break;
    default:
      rec.primary = Action::EscalateVendor;
      rec.explanation = "insufficient evidence";
      break;
  }
  return rec;
}

std::vector<Recommendation> MitigationAdvisor::advise(
    const std::vector<AnalyzedFailure>& failures, const jobs::JobTable* jobs) const {
  // Repeat-offender detection: job ids with many failures get their
  // application blocked (Table VI: "buggy jobs can be blocked by NHC").
  std::map<std::int64_t, std::size_t> failures_per_job;
  for (const auto& f : failures) {
    if (f.event.job_id != logmodel::kNoJob) ++failures_per_job[f.event.job_id];
  }

  std::vector<Recommendation> out;
  out.reserve(failures.size());
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto& f = failures[i];
    const jobs::JobInfo* job =
        jobs != nullptr && f.event.job_id != logmodel::kNoJob ? jobs->find(f.event.job_id)
                                                              : nullptr;
    Recommendation rec = advise_one(f, job);
    rec.failure_index = i;
    if (f.inference.application_triggered && f.event.job_id != logmodel::kNoJob &&
        failures_per_job[f.event.job_id] >= config_.repeat_offender_failures) {
      rec.secondary.insert(rec.secondary.begin(), rec.primary);
      rec.primary = Action::BlockApplication;
      rec.explanation += "; repeat offender (" +
                         std::to_string(failures_per_job[f.event.job_id]) +
                         " failures under this job id)";
    }
    out.push_back(std::move(rec));
  }
  return out;
}

ActionSummary summarize_actions(const std::vector<Recommendation>& recs,
                                const std::vector<AnalyzedFailure>& failures) {
  ActionSummary out;
  std::size_t app_triggered = 0;
  for (const auto& rec : recs) {
    ++out.counts[static_cast<std::size_t>(rec.primary)];
    ++out.total;
    if (rec.failure_index < failures.size() &&
        failures[rec.failure_index].inference.application_triggered) {
      ++app_triggered;
    }
  }
  out.quarantine_waste_fraction =
      out.total ? static_cast<double>(app_triggered) / static_cast<double>(out.total) : 0.0;
  return out;
}

}  // namespace hpcfail::core
