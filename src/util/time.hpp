// Time representation for log timestamps.
//
// All timestamps are UTC microseconds since the Unix epoch, wrapped in a
// strong type so that raw integers cannot be confused with durations or
// counts.  Formatting/parsing covers the two formats the synthetic corpora
// use: ISO-8601 ("2015-03-02T14:05:01.123456") as written by Cray console
// logs, and classic syslog ("Mar  2 14:05:01") as written by /var/log style
// messages files.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hpcfail::util {

/// Signed duration in microseconds.
struct Duration {
  std::int64_t usec = 0;

  [[nodiscard]] static constexpr Duration microseconds(std::int64_t v) { return {v}; }
  [[nodiscard]] static constexpr Duration milliseconds(std::int64_t v) { return {v * 1000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000}; }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t v) { return {v * 60'000'000}; }
  [[nodiscard]] static constexpr Duration hours(std::int64_t v) { return {v * 3'600'000'000LL}; }
  [[nodiscard]] static constexpr Duration days(std::int64_t v) { return {v * 86'400'000'000LL}; }

  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(usec) / 1e6; }
  [[nodiscard]] constexpr double to_minutes() const { return static_cast<double>(usec) / 60e6; }
  [[nodiscard]] constexpr double to_hours() const { return static_cast<double>(usec) / 3600e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return {usec + o.usec}; }
  constexpr Duration operator-(Duration o) const { return {usec - o.usec}; }
  constexpr Duration operator-() const { return {-usec}; }
  constexpr Duration operator*(std::int64_t k) const { return {usec * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {usec / k}; }
};

/// UTC instant, microseconds since the Unix epoch.
struct TimePoint {
  std::int64_t usec = 0;

  [[nodiscard]] static constexpr TimePoint from_unix_seconds(std::int64_t s) {
    return {s * 1'000'000};
  }
  [[nodiscard]] constexpr std::int64_t unix_seconds() const { return usec / 1'000'000; }

  constexpr auto operator<=>(const TimePoint&) const = default;
  constexpr TimePoint operator+(Duration d) const { return {usec + d.usec}; }
  constexpr TimePoint operator-(Duration d) const { return {usec - d.usec}; }
  constexpr Duration operator-(TimePoint o) const { return {usec - o.usec}; }

  /// Days since the epoch (UTC midnight boundaries). Negative-safe.
  [[nodiscard]] constexpr std::int64_t day_index() const {
    const std::int64_t day_usec = 86'400'000'000LL;
    std::int64_t d = usec / day_usec;
    if (usec % day_usec < 0) --d;
    return d;
  }

  /// Hour of day in [0, 24).
  [[nodiscard]] constexpr int hour_of_day() const {
    const std::int64_t day_usec = 86'400'000'000LL;
    std::int64_t in_day = usec % day_usec;
    if (in_day < 0) in_day += day_usec;
    return static_cast<int>(in_day / 3'600'000'000LL);
  }
};

/// Calendar date/time decomposition (UTC, proleptic Gregorian).
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59
  int usec = 0;    ///< 0..999999
};

/// Days since epoch for a civil date (Howard Hinnant's algorithm).
[[nodiscard]] std::int64_t days_from_civil(int y, int m, int d) noexcept;

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept;

[[nodiscard]] TimePoint make_time(const CivilTime& c) noexcept;
[[nodiscard]] TimePoint make_time(int y, int mo, int d, int h = 0, int mi = 0,
                                  int s = 0, int us = 0) noexcept;
[[nodiscard]] CivilTime civil_time(TimePoint t) noexcept;

/// "2015-03-02T14:05:01.123456"
[[nodiscard]] std::string format_iso(TimePoint t);
/// "2015-03-02 14:05:01" (scheduler-log style, seconds precision)
[[nodiscard]] std::string format_sql(TimePoint t);
/// "Mar  2 14:05:01" (syslog style; day is space-padded)
[[nodiscard]] std::string format_syslog(TimePoint t);

/// Parses the ISO format produced by format_iso. Fractional seconds of any
/// length 0..6 and an optional trailing 'Z' are accepted.
[[nodiscard]] std::optional<TimePoint> parse_iso(std::string_view s) noexcept;

/// Parses format_sql output.
[[nodiscard]] std::optional<TimePoint> parse_sql(std::string_view s) noexcept;

/// Parses syslog timestamps. Syslog lines carry no year, so the caller
/// supplies one.
[[nodiscard]] std::optional<TimePoint> parse_syslog(std::string_view s, int year) noexcept;

/// Year-rollover-aware syslog parse for a log window starting in
/// (base_year, base_month): months earlier in the calendar than base_month
/// belong to base_year + 1 (a Dec 31 -> Jan 1 window dates "Jan  1" lines
/// into the next year).  Stateless, so parallel shards agree with a
/// sequential month-regression scan for any window shorter than 12 months.
[[nodiscard]] std::optional<TimePoint> parse_syslog(std::string_view s, int base_year,
                                                    int base_month) noexcept;

/// "03/02/2015 14:05:01" (Torque/PBS server-log style).
[[nodiscard]] std::string format_torque(TimePoint t);
[[nodiscard]] std::optional<TimePoint> parse_torque(std::string_view s) noexcept;

/// Human-readable duration, e.g. "2.5 min", "3.1 h", "45 s".
[[nodiscard]] std::string format_duration(Duration d);

}  // namespace hpcfail::util
