#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hpcfail::stats {

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2 || x.size() != y.size()) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> mid_ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&v](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto rx = mid_ranks(x);
  const auto ry = mid_ranks(y);
  return pearson(rx, ry);
}

ContingencyTable::ContingencyTable(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0) {
  if (rows < 2 || cols < 2) throw std::invalid_argument("ContingencyTable: need >=2x2");
}

void ContingencyTable::add(std::size_t row, std::size_t col, std::uint64_t n) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("ContingencyTable::add");
  cells_[row * cols_ + col] += n;
  total_ += n;
}

std::uint64_t ContingencyTable::row_total(std::size_t row) const noexcept {
  std::uint64_t s = 0;
  for (std::size_t c = 0; c < cols_; ++c) s += at(row, c);
  return s;
}

std::uint64_t ContingencyTable::col_total(std::size_t col) const noexcept {
  std::uint64_t s = 0;
  for (std::size_t r = 0; r < rows_; ++r) s += at(r, col);
  return s;
}

double ContingencyTable::chi_square() const noexcept {
  if (total_ == 0) return 0.0;
  double stat = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double rt = static_cast<double>(row_total(r));
    if (rt == 0.0) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      const double ct = static_cast<double>(col_total(c));
      if (ct == 0.0) continue;
      const double expected = rt * ct / static_cast<double>(total_);
      const double diff = static_cast<double>(at(r, c)) - expected;
      stat += diff * diff / expected;
    }
  }
  return stat;
}

double ContingencyTable::p_value() const noexcept { return chi_square_sf(chi_square(), dof()); }

double ContingencyTable::cramers_v() const noexcept {
  if (total_ == 0) return 0.0;
  const double k = static_cast<double>(std::min(rows_, cols_)) - 1.0;
  if (k <= 0.0) return 0.0;
  return std::sqrt(chi_square() / (static_cast<double>(total_) * k));
}

double regularized_gamma_p(double a, double x) noexcept {
  if (x < 0.0 || a <= 0.0) return 0.0;
  if (x == 0.0) return 0.0;
  const double lg = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
  }
  // Continued fraction for Q, then P = 1 - Q (Lentz's algorithm).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - lg) * h;
  return 1.0 - q;
}

double chi_square_sf(double x, std::size_t dof) noexcept {
  if (dof == 0 || x <= 0.0) return 1.0;
  return 1.0 - regularized_gamma_p(static_cast<double>(dof) / 2.0, x / 2.0);
}

}  // namespace hpcfail::stats
