# Empty compiler generated dependencies file for tab02_log_sources.
# This may be replaced when dependencies are built.
