// Fixture: by-reference captures queued into the pool must be rejected.
#include <cstddef>

struct Pool {
  template <typename F> int submit(F f) { return f(), 0; }
  template <typename F> void parallel_for_ranges(std::size_t n, F f) { f(0, n); }
};

void drifted(Pool& pool) {
  int total = 0;
  pool.submit([&total] { total += 1; });
  pool.parallel_for_ranges(4, [&](std::size_t b, std::size_t e) { total += int(e - b); });
}

void tolerated(Pool& pool) {
  int total = 0;
  // hpcfail-lint: allow(capture-lifetime) -- joined before return in this fixture
  pool.submit([&total] { total += 1; });
}

void rejected(Pool& pool) {
  int total = 0;
  // hpcfail-lint: allow(capture-lifetime)
  pool.submit([&total] { total += 1; });
}
