// Performance benchmarks and ablations for the DESIGN.md design choices:
//   1. regex-free line classification vs a std::regex reference,
//   2. indexed LogStore range queries vs linear scans,
//   3. serial vs pooled corpus parsing,
//   4. end-to-end stage throughputs (simulate / render / parse / analyze).
//
// Besides the google-benchmark suite, `--json[=PATH]` runs the canonical
// pipeline baseline (S2 week, seed 42, single thread) and writes
// BENCH_pipeline.json — the committed perf trajectory CI compares against.
#include <benchmark/benchmark.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string_view>

#include "core/engine.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"
#include "parsers/line_classifier.hpp"
#include "parsers/snapshot.hpp"
#include "parsers/source_parsers.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace {

using namespace hpcfail;

/// One simulated week of S1, shared by the benchmarks (built once).
const faultsim::SimulationResult& shared_sim() {
  static const faultsim::SimulationResult sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 7, 9090)).run();
  return sim;
}

const loggen::Corpus& shared_corpus() {
  static const loggen::Corpus corpus = loggen::build_corpus(shared_sim());
  return corpus;
}

std::vector<std::string> sample_console_lines(std::size_t max_lines) {
  std::vector<std::string> lines;
  for (const auto line :
       util::split(shared_corpus().of(logmodel::LogSource::Console), '\n')) {
    if (line.empty()) continue;
    lines.emplace_back(line);
    if (lines.size() >= max_lines) break;
  }
  return lines;
}

void BM_ClassifyKernelPayload(benchmark::State& state) {
  const auto lines = sample_console_lines(4096);
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const auto& line : lines) {
      // Classify just the payload part (after "kernel: ").
      const auto pos = line.find("kernel: ");
      if (pos == std::string::npos) continue;
      if (parsers::classify_kernel_payload(std::string_view(line).substr(pos + 8))) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * lines.size()));
}
BENCHMARK(BM_ClassifyKernelPayload);

/// Ablation: the same classification via std::regex alternation.
void BM_ClassifyKernelPayloadRegex(benchmark::State& state) {
  static const std::regex pattern(
      "Kernel panic|LBUG|LustreError|Machine check|EDAC|rcu_sched|HEST:|Firmware Bug|"
      "segfault at|invalid opcode|page allocation failure|Out of memory|"
      "blocked for more than|paging request|DVS:|bad inode|link error|"
      "Shutdown: system going down|System halted|Booting Linux",
      std::regex::optimize);
  const auto lines = sample_console_lines(4096);
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const auto& line : lines) {
      if (std::regex_search(line, pattern)) ++hits;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * lines.size()));
}
BENCHMARK(BM_ClassifyKernelPayloadRegex);

void BM_ParseConsoleLine(benchmark::State& state) {
  const auto lines = sample_console_lines(4096);
  const platform::Topology topo(shared_corpus().system.topology);
  logmodel::SymbolTable symbols;
  parsers::ParseContext ctx;
  ctx.topo = &topo;
  ctx.symbols = &symbols;
  ctx.base_year = 2015;
  std::size_t parsed = 0;
  for (auto _ : state) {
    for (const auto& line : lines) {
      if (parsers::parse_console_line(line, ctx)) ++parsed;
    }
  }
  benchmark::DoNotOptimize(parsed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * lines.size()));
}
BENCHMARK(BM_ParseConsoleLine);

/// Whole-corpus parse with a pool of `state.range(0)` threads.
void BM_ParseCorpus(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::size_t records = 0;
  for (auto _ : state) {
    const auto parsed = parsers::parse_corpus(shared_corpus(), &pool);
    records = parsed.parsed_records;
  }
  benchmark::DoNotOptimize(records);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_ParseCorpus)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The shared corpus written to disk once, for the file-ingestion bench.
const std::string& shared_corpus_dir() {
  static const std::string dir = [] {
    const std::string d = "/tmp/hpcfail_bench_corpus";
    std::filesystem::remove_all(d);
    loggen::write_corpus(shared_corpus(), d);
    return d;
  }();
  return dir;
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux reports KiB
}

/// Streaming file ingestion (chunked read -> pooled parse -> sharded
/// store build) with a pool of `state.range(0)` threads.  Contrast with
/// BM_ParseCorpus, which parses an already-resident corpus.
void BM_IngestFiles(benchmark::State& state) {
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  parsers::IngestOptions options;
  options.pool = &pool;
  const auto bytes = static_cast<std::int64_t>(shared_corpus().bytes());
  std::size_t records = 0;
  for (auto _ : state) {
    const auto parsed = parsers::ingest_files(shared_corpus_dir(), options);
    if (!parsed.ok()) {
      state.SkipWithError(parsed.error->to_string().c_str());
      break;
    }
    records = parsed.parsed_records;
  }
  benchmark::DoNotOptimize(records);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_IngestFiles)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// The shared corpus parsed and persisted once, for the snapshot bench.
const std::string& shared_snapshot_path() {
  static const std::string path = [] {
    const std::string p = "/tmp/hpcfail_bench_corpus.snap";
    util::ThreadPool pool;
    parsers::IngestOptions options;
    options.pool = &pool;
    const auto parsed = parsers::ingest_files(shared_corpus_dir(), options);
    if (!parsed.ok()) throw std::runtime_error(parsed.error->to_string());
    if (const auto err = parsers::save_snapshot(parsed, p)) {
      throw std::runtime_error(err->to_string());
    }
    return p;
  }();
  return path;
}

/// Binary snapshot load (bulk read + CRC validation + structural rebuild).
/// Contrast with BM_IngestFiles Arg(1): same corpus, text parse replaced by
/// hpcfail.store.v1.  Bytes processed uses the *log text* size so the MB/s
/// figure is directly comparable to the ingest one.
void BM_SnapshotLoad(benchmark::State& state) {
  const auto& path = shared_snapshot_path();
  const auto bytes = static_cast<std::int64_t>(shared_corpus().bytes());
  std::size_t records = 0;
  for (auto _ : state) {
    const auto loaded = parsers::load_snapshot(path);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.error->to_string().c_str());
      break;
    }
    records = loaded.store.size();
  }
  benchmark::DoNotOptimize(records);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_SnapshotLoad);

void BM_LogStoreIndexedQuery(benchmark::State& state) {
  static const logmodel::LogStore store = shared_sim().make_store();
  const auto nodes = store.nodes();
  const auto begin = store.first_time();
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 64 && i < nodes.size(); ++i) {
      total += store
                   .node_range(nodes[i], begin + util::Duration::hours(i),
                               begin + util::Duration::hours(i + 6))
                   .size();
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_LogStoreIndexedQuery);

/// Ablation: the same 64 queries as full scans over the record vector.
void BM_LogStoreLinearScan(benchmark::State& state) {
  static const logmodel::LogStore store = shared_sim().make_store();
  const auto nodes = store.nodes();
  const auto begin = store.first_time();
  std::size_t total = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 64 && i < nodes.size(); ++i) {
      const auto lo = begin + util::Duration::hours(i);
      const auto hi = begin + util::Duration::hours(i + 6);
      for (const auto& r : store.records()) {
        if (r.node == nodes[i] && r.time >= lo && r.time < hi) ++total;
      }
    }
  }
  benchmark::DoNotOptimize(total);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_LogStoreLinearScan);

void BM_SimulateDay(benchmark::State& state) {
  std::uint64_t seed = 1;
  std::size_t records = 0;
  for (auto _ : state) {
    faultsim::Simulator sim(faultsim::scenario_preset(platform::SystemName::S1, 1, seed++));
    records = sim.run().records.size();
  }
  benchmark::DoNotOptimize(records);
}
BENCHMARK(BM_SimulateDay);

void BM_RenderCorpus(benchmark::State& state) {
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = loggen::build_corpus(shared_sim()).bytes();
  }
  benchmark::DoNotOptimize(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_RenderCorpus);

/// One simulated week of S2 — the thread-scaling corpus for the analysis
/// engine (S2 is the mid-size system; ~20x the nodes of S1's week).
const faultsim::SimulationResult& shared_sim_s2() {
  static const faultsim::SimulationResult sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 7, 9090)).run();
  return sim;
}

/// Thread-scaling of the unified AnalysisEngine on the S2-sized corpus:
/// the per-failure stages (root-cause evidence collection, lead-time
/// attribution) shard over the pool, everything else is the shared
/// context build.  Acceptance tracks Arg(4) vs Arg(1) (>=1.5x in CI).
void BM_AnalyzeFailures(benchmark::State& state) {
  static const logmodel::LogStore store = shared_sim_s2().make_store();
  static const jobs::JobTable table = jobs::JobTable::from_jobs(shared_sim_s2().jobs);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  core::AnalysisConfig config;
  config.pool = &pool;
  const core::AnalysisEngine engine(config);
  const auto begin = shared_sim_s2().config.begin;
  const auto end = shared_sim_s2().config.end();
  std::size_t failures = 0;
  for (auto _ : state) {
    failures = engine.analyze(store, &table, begin, end).failures.size();
  }
  benchmark::DoNotOptimize(failures);
  state.counters["failures"] = static_cast<double>(failures);
}
BENCHMARK(BM_AnalyzeFailures)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- canonical pipeline baseline (--json) --------------------------------
//
// The committed BENCH_pipeline.json pins the single-thread pipeline
// numbers on a fixed corpus (one simulated S2 week, seed 42).  Each
// measurement runs in a freshly exec'd child (`--json-measure=DIR`) so
// peak RSS reflects only the ingest under test, not the parent's
// simulation; the parent takes the best of `kJsonRepeats` children.

struct MeasureSample {
  std::size_t bytes = 0;
  std::size_t records = 0;
  std::size_t snapshot_bytes = 0;
  double ingest_seconds = 0.0;
  double ingest_rss_mb = 0.0;
  double analyze_seconds = 0.0;
  double snapshot_seconds = 0.0;
};

constexpr int kJsonRepeats = 5;

std::size_t dir_log_bytes(const std::string& dir) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < logmodel::kLogSourceCount; ++i) {
    const auto path = std::filesystem::path(dir) /
                      loggen::source_file_name(static_cast<logmodel::LogSource>(i));
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) total += static_cast<std::size_t>(size);
  }
  return total;
}

/// Child mode: one single-thread ingest + one engine run, key=value lines
/// on stdout.  RSS is sampled right after ingest, before analysis allocates.
int run_json_measure(const std::string& dir) {
  const std::size_t bytes = dir_log_bytes(dir);
  util::ThreadPool pool(1);
  parsers::IngestOptions options;
  options.pool = &pool;

  const auto t0 = std::chrono::steady_clock::now();
  const auto parsed = parsers::ingest_files(dir, options);
  if (!parsed.ok()) throw std::runtime_error(parsed.error->to_string());
  const auto t1 = std::chrono::steady_clock::now();
  const double ingest_rss = peak_rss_mb();

  const core::AnalysisEngine engine;
  const auto result =
      engine.analyze(parsed.store, &parsed.jobs, parsed.store.first_time(),
                     parsed.store.last_time() + util::Duration::microseconds(1));
  const auto t2 = std::chrono::steady_clock::now();

  // Snapshot load of the same corpus, persisted by the parent next to the
  // log files.  The first load warms the page cache (the committed figure
  // tracks the steady-state load rate, the regime a snapshot exists for);
  // the best of three timed loads is reported.
  const std::string snap = dir + "/corpus.snap";
  double snapshot_seconds = 0.0;
  std::size_t snapshot_bytes = 0;
  for (int i = 0; i < 4; ++i) {
    const auto s0 = std::chrono::steady_clock::now();
    const auto loaded = parsers::load_snapshot(snap);
    const auto s1 = std::chrono::steady_clock::now();
    if (!loaded.ok()) throw std::runtime_error(loaded.error->to_string());
    if (loaded.store.size() != parsed.parsed_records) {
      throw std::runtime_error("snapshot record count diverges from ingest");
    }
    const double seconds = std::chrono::duration<double>(s1 - s0).count();
    if (i == 0) continue;  // warm-up iteration
    if (snapshot_seconds == 0.0 || seconds < snapshot_seconds) {
      snapshot_seconds = seconds;
    }
  }
  {
    std::error_code ec;
    const auto size = std::filesystem::file_size(snap, ec);
    if (!ec) snapshot_bytes = static_cast<std::size_t>(size);
  }

  std::printf("bytes=%zu\n", bytes);
  std::printf("records=%zu\n", parsed.parsed_records);
  std::printf("ingest_seconds=%.6f\n", std::chrono::duration<double>(t1 - t0).count());
  std::printf("ingest_rss_mb=%.3f\n", ingest_rss);
  std::printf("analyze_seconds=%.6f\n", std::chrono::duration<double>(t2 - t1).count());
  std::printf("snapshot_seconds=%.6f\n", snapshot_seconds);
  std::printf("snapshot_bytes=%zu\n", snapshot_bytes);
  std::printf("failures=%zu\n", result.failures.size());
  return 0;
}

/// Parent mode: simulate + write the fixed corpus, measure in exec'd
/// children, write the canonical JSON.
int run_json_baseline(const std::string& out_path) {
  const std::string dir = "/tmp/hpcfail_perf_pipeline_corpus";
  std::fprintf(stderr, "perf_pipeline --json: simulating S2 week (seed 42)...\n");
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 7, 42)).run();
  std::filesystem::remove_all(dir);
  loggen::write_corpus(loggen::build_corpus(sim), dir);

  // Persist the corpus once so every measurement child can time the binary
  // snapshot load against the same text ingest.
  {
    util::ThreadPool pool;
    parsers::IngestOptions options;
    options.pool = &pool;
    const auto parsed = parsers::ingest_files(dir, options);
    if (!parsed.ok()) {
      std::fprintf(stderr, "perf_pipeline --json: ingest failed: %s\n",
                   parsed.error->to_string().c_str());
      return 1;
    }
    if (const auto err = parsers::save_snapshot(parsed, dir + "/corpus.snap")) {
      std::fprintf(stderr, "perf_pipeline --json: snapshot save failed: %s\n",
                   err->to_string().c_str());
      return 1;
    }
  }

  char exe[4096] = {};
  if (::readlink("/proc/self/exe", exe, sizeof(exe) - 1) <= 0) {
    std::fprintf(stderr, "perf_pipeline --json: cannot resolve /proc/self/exe\n");
    return 1;
  }

  MeasureSample best;
  for (int i = 0; i < kJsonRepeats; ++i) {
    const std::string cmd = std::string(exe) + " --json-measure=" + dir;
    std::FILE* child = ::popen(cmd.c_str(), "r");
    if (child == nullptr) {
      std::fprintf(stderr, "perf_pipeline --json: popen failed\n");
      return 1;
    }
    MeasureSample s;
    char line[256];
    while (std::fgets(line, sizeof(line), child) != nullptr) {
      std::sscanf(line, "bytes=%zu", &s.bytes);
      std::sscanf(line, "records=%zu", &s.records);
      std::sscanf(line, "ingest_seconds=%lf", &s.ingest_seconds);
      std::sscanf(line, "ingest_rss_mb=%lf", &s.ingest_rss_mb);
      std::sscanf(line, "analyze_seconds=%lf", &s.analyze_seconds);
      std::sscanf(line, "snapshot_seconds=%lf", &s.snapshot_seconds);
      std::sscanf(line, "snapshot_bytes=%zu", &s.snapshot_bytes);
    }
    if (::pclose(child) != 0 || s.ingest_seconds <= 0.0 || s.snapshot_seconds <= 0.0) {
      std::fprintf(stderr, "perf_pipeline --json: measurement child failed\n");
      return 1;
    }
    std::fprintf(stderr,
                 "  run %d: ingest %.3fs, rss %.1f MB, analyze %.3fs, "
                 "snapshot load %.4fs\n",
                 i + 1, s.ingest_seconds, s.ingest_rss_mb, s.analyze_seconds,
                 s.snapshot_seconds);
    if (best.ingest_seconds == 0.0 || s.ingest_seconds < best.ingest_seconds) {
      best.bytes = s.bytes;
      best.records = s.records;
      best.ingest_seconds = s.ingest_seconds;
    }
    if (best.ingest_rss_mb == 0.0 || s.ingest_rss_mb < best.ingest_rss_mb) {
      best.ingest_rss_mb = s.ingest_rss_mb;
    }
    if (best.analyze_seconds == 0.0 || s.analyze_seconds < best.analyze_seconds) {
      best.analyze_seconds = s.analyze_seconds;
    }
    if (best.snapshot_seconds == 0.0 || s.snapshot_seconds < best.snapshot_seconds) {
      best.snapshot_seconds = s.snapshot_seconds;
      best.snapshot_bytes = s.snapshot_bytes;
    }
  }
  std::filesystem::remove_all(dir);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "perf_pipeline --json: cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"perf_pipeline\",\n"
      << "  \"corpus\": {\"system\": \"S2\", \"days\": 7, \"seed\": 42, \"log_bytes\": "
      << best.bytes << ", \"records\": " << best.records << "},\n"
      << "  \"threads\": 1,\n"
      << "  \"repeats\": " << kJsonRepeats << ",\n";
  char buf[512];
  // snapshot_load_mb_per_s divides the same log-text byte count as
  // ingest_mb_per_s, so the two rows compare directly (CI tracks this
  // ratio staying >= 5x).
  std::snprintf(buf, sizeof(buf),
                "  \"ingest_mb_per_s\": %.1f,\n"
                "  \"ingest_records_per_s\": %.0f,\n"
                "  \"peak_rss_mb\": %.1f,\n"
                "  \"analyze_seconds\": %.3f,\n"
                "  \"snapshot_file_mb\": %.1f,\n"
                "  \"snapshot_load_mb_per_s\": %.1f\n",
                static_cast<double>(best.bytes) / 1e6 / best.ingest_seconds,
                static_cast<double>(best.records) / best.ingest_seconds,
                best.ingest_rss_mb, best.analyze_seconds,
                static_cast<double>(best.snapshot_bytes) / 1e6,
                static_cast<double>(best.bytes) / 1e6 / best.snapshot_seconds);
  out << buf << "}\n";
  std::fprintf(stderr, "perf_pipeline --json: wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects unknown
// flags, so --metrics-out=/--trace-out= are stripped here before
// benchmark::Initialize sees argv.  With either flag the whole benchmark
// run is observed (sinks installed for its duration) and the JSON exports
// are written after the last benchmark finishes.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kJsonFlag = "--json";
    constexpr std::string_view kMeasureFlag = "--json-measure=";
    if (arg.rfind(kMeasureFlag, 0) == 0) {
      return run_json_measure(std::string(arg.substr(kMeasureFlag.size())));
    }
    if (arg == kJsonFlag) return run_json_baseline("BENCH_pipeline.json");
    if (arg.rfind("--json=", 0) == 0) {
      return run_json_baseline(std::string(arg.substr(7)));
    }
  }

  std::string metrics_path;
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kMetricsFlag = "--metrics-out=";
    constexpr std::string_view kTraceFlag = "--trace-out=";
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      metrics_path = arg.substr(kMetricsFlag.size());
    } else if (arg.rfind(kTraceFlag, 0) == 0) {
      trace_path = arg.substr(kTraceFlag.size());
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);  // benchmark expects argv[argc] == nullptr
  int filtered_argc = static_cast<int>(args.size()) - 1;

  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  util::MetricsRegistry registry;
  util::TraceRecorder recorder;
  if (!metrics_path.empty()) util::install_metrics(&registry);
  if (!trace_path.empty()) util::install_trace(&recorder);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  util::install_metrics(nullptr);
  util::install_trace(nullptr);
  if (!metrics_path.empty()) std::ofstream(metrics_path) << registry.to_json() << '\n';
  if (!trace_path.empty()) std::ofstream(trace_path) << recorder.to_chrome_json() << '\n';
  return 0;
}
