#include "stats/summary.hpp"

#include <cmath>

namespace hpcfail::stats {

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace hpcfail::stats
