// Fixture: name table dropped an entry and drifted out of order.
#include "logmodel/event_type.hpp"

namespace hpcfail::logmodel {

constexpr const char* kEventNames[] = {
    "KernelPanic",
    "MachineCheckException",
};

}  // namespace hpcfail::logmodel
