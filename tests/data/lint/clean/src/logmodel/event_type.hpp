#pragma once

namespace hpcfail::logmodel {

enum class EventType : unsigned char {
  NodeHeartbeatFault,
  NodeVoltageFault,
  kCount
};

}  // namespace hpcfail::logmodel
