// The structured log record every parser produces and every analyzer
// consumes.  A record is a flat, value-type row: timestamp, source, event
// type, severity, location (node/blade/cabinet, any may be absent), an
// optional job id, an optional numeric value (sensor reading, exit code)
// and an interned detail Symbol (stack module, reason, sensor name) that
// resolves to text through the SymbolTable owned by the record's store.
#pragma once

#include <cstdint>
#include <type_traits>

#include "logmodel/event_type.hpp"
#include "logmodel/symbol_table.hpp"
#include "platform/ids.hpp"
#include "util/time.hpp"

namespace hpcfail::logmodel {

inline constexpr std::int64_t kNoJob = -1;

struct LogRecord {
  util::TimePoint time;
  LogSource source = LogSource::Console;
  EventType type = EventType::NodeBoot;
  Severity severity = Severity::Info;
  platform::NodeId node;        ///< invalid when the event is blade/cabinet scoped
  platform::BladeId blade;      ///< invalid when unknown
  platform::CabinetId cabinet;  ///< invalid when unknown
  std::int64_t job_id = kNoJob;
  double value = 0.0;           ///< sensor reading / exit code / count
  Symbol detail;                ///< module name, reason, sensor label, ...

  [[nodiscard]] bool has_node() const noexcept { return node.valid(); }
  [[nodiscard]] bool has_blade() const noexcept { return blade.valid(); }
  [[nodiscard]] bool has_cabinet() const noexcept { return cabinet.valid(); }
  [[nodiscard]] bool has_job() const noexcept { return job_id != kNoJob; }
};

// The ingest hot path depends on records being flat memcpy-able rows that
// fit a cache line; a reintroduced heap member or padding blowup should
// fail the build, not a benchmark three PRs later.
static_assert(std::is_trivially_copyable_v<LogRecord>);
static_assert(sizeof(LogRecord) <= 64);

}  // namespace hpcfail::logmodel
