// Unit tests for src/core on hand-crafted record sets: detector semantics,
// inference rules, temporal/spatial/external/lead-time/job analyses.
#include <gtest/gtest.h>

#include "core/analysis_context.hpp"
#include "core/benign_faults.hpp"
#include "core/clusters.hpp"
#include "core/external_correlator.hpp"
#include "core/markdown_report.hpp"
#include "core/failure_detector.hpp"
#include "core/job_analysis.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/root_cause.hpp"
#include "core/spatial.hpp"
#include "core/temporal.hpp"

namespace hpcfail::core {
namespace {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;
using logmodel::RootCause;
using logmodel::Severity;

/// Detection + diagnosis over the store's full extent, through the same
/// AnalysisContext substrate the unified engine shares.
std::vector<AnalyzedFailure> analyze_all(const logmodel::LogStore& store,
                                         const jobs::JobTable* jobs,
                                         util::ThreadPool* pool = nullptr) {
  const AnalysisContext ctx(store, jobs, store.first_time(),
                            store.last_time() + util::Duration::microseconds(1), {}, {},
                            pool);
  return ctx.failures();
}

const util::TimePoint kBase = util::make_time(2015, 3, 2);

/// Shared interner for the synthetic records; each store gets a copy.
logmodel::SymbolTable& test_symbols() {
  static logmodel::SymbolTable table;
  return table;
}

LogRecord rec(util::Duration offset, EventType type, std::uint32_t node,
              std::string detail = {}, std::int64_t job = logmodel::kNoJob) {
  LogRecord r;
  r.time = kBase + offset;
  r.type = type;
  r.severity = Severity::Error;
  r.node = platform::NodeId{node};
  r.blade = platform::BladeId{node / 4};
  r.cabinet = platform::CabinetId{0};
  r.detail = test_symbols().intern(detail);
  r.job_id = job;
  return r;
}

// -------------------------------------------------------------- detector ----

TEST(DetectorTest, MarkerClusterIsOneFailure) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(10), EventType::KernelPanic, 1));
  records.push_back(rec(util::Duration::minutes(10) + util::Duration::seconds(5),
                        EventType::NodeShutdown, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = FailureDetector().detect(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].marker, EventType::KernelPanic);
  EXPECT_EQ(failures[0].node.value, 1u);
}

TEST(DetectorTest, SeparateEpisodesSeparateFailures) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(10), EventType::KernelPanic, 1));
  records.push_back(rec(util::Duration::minutes(60), EventType::KernelPanic, 1));
  records.push_back(rec(util::Duration::minutes(10), EventType::NodeHalt, 2));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = FailureDetector().detect(store, nullptr);
  EXPECT_EQ(failures.size(), 3u);
}

TEST(DetectorTest, ChainAndFirstInternal) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(5), EventType::HardwareError, 1));
  records.push_back(rec(util::Duration::minutes(8), EventType::MachineCheckException, 1));
  records.push_back(rec(util::Duration::minutes(9), EventType::KernelPanic, 1));
  // Unrelated node noise must not leak into the chain.
  records.push_back(rec(util::Duration::minutes(6), EventType::LustreError, 2));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = FailureDetector().detect(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].chain.size(), 2u);
  EXPECT_EQ((failures[0].time - failures[0].first_internal).to_minutes(), 4.0);
}

TEST(DetectorTest, LookbackBoundary) {
  std::vector<LogRecord> records;
  // Indicator 31 minutes before the marker: outside the 30-min lookback.
  records.push_back(rec(util::Duration::minutes(29), EventType::HardwareError, 1));
  records.push_back(rec(util::Duration::minutes(55), EventType::MachineCheckException, 1));
  records.push_back(rec(util::Duration::minutes(60), EventType::KernelPanic, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = FailureDetector().detect(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].chain.size(), 1u);  // only the MCE is in the window
  EXPECT_EQ((failures[0].time - failures[0].first_internal).to_minutes(), 5.0);
}

TEST(DetectorTest, JobAttributionFromRecordAndTable) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(9), EventType::KernelPanic, 1, "", 42));
  records.push_back(rec(util::Duration::minutes(20), EventType::KernelPanic, 5));
  const logmodel::LogStore store{std::move(records), test_symbols()};

  jobs::Job job;
  job.job_id = 99;
  job.start = kBase;
  job.end = kBase + util::Duration::hours(1);
  job.nodes = {platform::NodeId{5}};
  const jobs::JobTable table = jobs::JobTable::from_jobs({job});

  const auto failures = FailureDetector().detect(store, &table);
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].job_id, 42);  // from the record itself
  EXPECT_EQ(failures[1].job_id, 99);  // from the table lookup
}

// ---------------------------------------------------------------- engine ----

TEST(EngineTest, RuleOrderingOriginWins) {
  const RootCauseEngine engine;
  Evidence ev;
  ev.oom = true;
  ev.lustre_error = true;
  ev.kernel_oops = true;
  ev.stack_modules = {"lustre"};
  // OOM chain touching the file system is still memory exhaustion.
  EXPECT_EQ(engine.infer(ev, EventType::NodeHalt).cause, RootCause::MemoryExhaustion);
  EXPECT_TRUE(engine.infer(ev, EventType::NodeHalt).application_triggered);
}

TEST(EngineTest, FailSlowNeedsExternalEvidence) {
  const RootCauseEngine engine;
  Evidence ev;
  ev.mce = true;
  ev.hw_error = true;
  EXPECT_EQ(engine.infer(ev, EventType::NodeShutdown).cause, RootCause::HardwareMce);
  ev.ec_hw_errors = true;
  EXPECT_EQ(engine.infer(ev, EventType::NodeShutdown).cause, RootCause::FailSlowHardware);
}

TEST(EngineTest, UnknownPatterns) {
  const RootCauseEngine engine;
  Evidence l0;
  l0.l0_sysd_mce = true;
  EXPECT_EQ(engine.infer(l0, EventType::NodeShutdown).cause, RootCause::L0SysdMceUnknown);
  Evidence bios;
  bios.bios_error = true;
  EXPECT_EQ(engine.infer(bios, EventType::NodeShutdown).cause, RootCause::BiosUnknown);
  // But corroborated hardware evidence overrides the unknown bucket.
  bios.mce = true;
  EXPECT_EQ(engine.infer(bios, EventType::NodeShutdown).cause, RootCause::HardwareMce);
}

TEST(EngineTest, BareShutdownIsOperatorError) {
  const RootCauseEngine engine;
  const Evidence empty;
  const auto inference = engine.infer(empty, EventType::NodeShutdown);
  EXPECT_EQ(inference.cause, RootCause::OperatorError);
  EXPECT_LT(inference.confidence, 0.5);
}

TEST(EngineTest, LustreAndKernelRules) {
  const RootCauseEngine engine;
  Evidence lustre;
  lustre.lustre_bug = true;
  EXPECT_EQ(engine.infer(lustre, EventType::NodeHalt).cause, RootCause::LustreBug);
  Evidence kernel;
  kernel.invalid_opcode = true;
  kernel.kernel_oops = true;
  kernel.stack_modules = {"rwsem_down_failed"};
  EXPECT_EQ(engine.infer(kernel, EventType::NodeShutdown).cause, RootCause::KernelBug);
  Evidence app;
  app.app_exit_abnormal = true;
  app.nhc_test_fail = true;
  EXPECT_EQ(engine.infer(app, EventType::NodeHalt).cause, RootCause::AppAbnormalExit);
}

TEST(EngineTest, CollectEvidenceWindows) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(50), EventType::MachineCheckException, 1));
  records.push_back(rec(util::Duration::minutes(55), EventType::CallTrace, 1, "mce_log"));
  records.push_back(rec(util::Duration::minutes(60), EventType::KernelPanic, 1));
  // External ec_hw_error on the node's blade, 30 min before the failure.
  LogRecord ec = rec(util::Duration::minutes(30), EventType::EcHwError, 1);
  ec.source = LogSource::Erd;
  records.push_back(ec);
  // An MCE on another node of the same blade must NOT count.
  records.push_back(rec(util::Duration::minutes(59), EventType::OomKill, 2));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = FailureDetector().detect(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  const RootCauseEngine engine;
  const Evidence ev = engine.collect_evidence(store, failures[0], nullptr);
  EXPECT_TRUE(ev.mce);
  EXPECT_TRUE(ev.ec_hw_errors);
  EXPECT_FALSE(ev.oom);
  ASSERT_EQ(ev.stack_modules.size(), 1u);
  EXPECT_EQ(ev.stack_modules[0], "mce_log");
  EXPECT_EQ(engine.infer(ev, failures[0].marker).cause, RootCause::FailSlowHardware);
}

// -------------------------------------------------------------- temporal ----

std::vector<AnalyzedFailure> synthetic_failures(
    std::initializer_list<std::pair<int, RootCause>> minute_and_cause) {
  std::vector<AnalyzedFailure> out;
  std::uint32_t node = 0;
  for (const auto& [minute, cause] : minute_and_cause) {
    AnalyzedFailure f;
    f.event.node = platform::NodeId{node};
    f.event.blade = platform::BladeId{node / 4};
    f.event.cabinet = platform::CabinetId{0};
    f.event.time = kBase + util::Duration::minutes(minute);
    f.inference.cause = cause;
    f.inference.application_triggered = logmodel::is_application_triggered(cause);
    ++node;
    out.push_back(std::move(f));
  }
  return out;
}

TEST(TemporalTest, InterFailureGaps) {
  const auto failures = synthetic_failures({{0, RootCause::HardwareMce},
                                            {5, RootCause::HardwareMce},
                                            {65, RootCause::LustreBug}});
  const TemporalAnalyzer analyzer(failures);
  const auto gaps = analyzer.inter_failure_minutes(kBase, kBase + util::Duration::days(1));
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 5.0);
  EXPECT_DOUBLE_EQ(gaps[1], 60.0);
}

TEST(TemporalTest, WeeklyStatsBucketsByWeek) {
  const auto failures = synthetic_failures({{0, RootCause::HardwareMce},
                                            {10, RootCause::HardwareMce},
                                            {7 * 24 * 60 + 5, RootCause::LustreBug},
                                            {7 * 24 * 60 + 9, RootCause::LustreBug}});
  const TemporalAnalyzer analyzer(failures);
  const auto weeks = analyzer.weekly_stats(kBase, 2);
  ASSERT_EQ(weeks.size(), 2u);
  EXPECT_EQ(weeks[0].failures, 2u);
  EXPECT_EQ(weeks[1].failures, 2u);
  EXPECT_DOUBLE_EQ(weeks[0].gap_minutes.mean(), 10.0);
  EXPECT_DOUBLE_EQ(weeks[1].gap_minutes.mean(), 4.0);
  EXPECT_DOUBLE_EQ(weeks[0].fraction_within(16.0), 1.0);
}

TEST(TemporalTest, DominantCausePerDay) {
  const auto failures = synthetic_failures({{0, RootCause::LustreBug},
                                            {10, RootCause::LustreBug},
                                            {20, RootCause::HardwareMce},
                                            {24 * 60 + 1, RootCause::KernelBug}});
  const TemporalAnalyzer analyzer(failures);
  const auto days = analyzer.dominant_cause_per_day(kBase, 3);
  ASSERT_EQ(days.size(), 2u);  // day 3 has no failures and is omitted
  EXPECT_EQ(days[0].dominant, RootCause::LustreBug);
  EXPECT_NEAR(days[0].dominant_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(days[1].failures, 1u);
  EXPECT_DOUBLE_EQ(days[1].dominant_share(), 1.0);
}

// --------------------------------------------------------------- spatial ----

TEST(SpatialTest, AttributionFindsPlantedBladeFault) {
  std::vector<LogRecord> records;
  LogRecord fault;
  fault.time = kBase + util::Duration::hours(1);
  fault.type = EventType::BladeHeartbeatFault;
  fault.source = LogSource::Controller;
  fault.blade = platform::BladeId{0};
  fault.cabinet = platform::CabinetId{0};
  records.push_back(fault);
  LogRecord cab_fault;
  cab_fault.time = kBase + util::Duration::hours(2);
  cab_fault.type = EventType::CabinetPowerFault;
  cab_fault.source = LogSource::Controller;
  cab_fault.cabinet = platform::CabinetId{1};
  records.push_back(cab_fault);
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const platform::Topology topo;
  const SpatialAnalyzer spatial(store, topo);

  auto failures = synthetic_failures(
      {{90, RootCause::HardwareMce}, {95, RootCause::HardwareMce}});
  failures[0].event.blade = platform::BladeId{0};   // on the faulty blade
  failures[0].event.cabinet = platform::CabinetId{0};
  failures[1].event.blade = platform::BladeId{20};  // elsewhere
  failures[1].event.cabinet = platform::CabinetId{1};  // faulty cabinet

  const auto attribution =
      spatial.attribute(failures, kBase, kBase + util::Duration::days(1));
  EXPECT_EQ(attribution.failures, 2u);
  EXPECT_EQ(attribution.on_faulty_blade, 1u);
  EXPECT_EQ(attribution.on_faulty_cabinet, 1u);
}

TEST(SpatialTest, BladeGroupsSameReason) {
  auto failures = synthetic_failures({{0, RootCause::LustreBug},
                                      {2, RootCause::LustreBug},
                                      {5, RootCause::HardwareMce},
                                      {6, RootCause::KernelBug}});
  // First two on blade 0, last two on blade 1.
  failures[0].event.blade = failures[1].event.blade = platform::BladeId{0};
  failures[2].event.blade = failures[3].event.blade = platform::BladeId{1};
  const logmodel::LogStore store{std::vector<LogRecord>{}};
  const platform::Topology topo;
  const SpatialAnalyzer spatial(store, topo);
  const auto groups = spatial.blade_groups(failures, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_TRUE(groups[0].same_reason);
  EXPECT_FALSE(groups[1].same_reason);
  EXPECT_DOUBLE_EQ(SpatialAnalyzer::same_reason_fraction(groups), 0.5);
}

// ------------------------------------------------------------- correlator ----

TEST(CorrelatorTest, NvfNhfCorrespondence) {
  std::vector<LogRecord> records;
  // NVF 5 min before the node-1 failure: matched.
  LogRecord nvf = rec(util::Duration::minutes(55), EventType::NodeVoltageFault, 1);
  nvf.source = LogSource::Erd;
  records.push_back(nvf);
  // NHF on node 9 with no failure: benign power-off.
  LogRecord nhf = rec(util::Duration::minutes(30), EventType::NodeHeartbeatFault, 9,
                      "node heartbeat fault: node powered off");
  nhf.source = LogSource::Erd;
  records.push_back(nhf);
  const logmodel::LogStore store{std::move(records), test_symbols()};

  auto failures = synthetic_failures({{60, RootCause::FailSlowHardware}});
  failures[0].event.node = platform::NodeId{1};
  const ExternalCorrelator correlator(store, failures);
  const auto nvf_c = correlator.correspondence(EventType::NodeVoltageFault, kBase,
                                               kBase + util::Duration::days(1));
  EXPECT_EQ(nvf_c.faults, 1u);
  EXPECT_EQ(nvf_c.matched, 1u);
  const auto breakdown = correlator.nhf_breakdown(kBase, kBase + util::Duration::days(1));
  EXPECT_EQ(breakdown.total, 1u);
  EXPECT_EQ(breakdown.failed, 0u);
  EXPECT_EQ(breakdown.power_off, 1u);
}

// --------------------------------------------------------------- leadtime ----

TEST(LeadTimeTest, EnhancementFromExternal) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(57), EventType::HardwareError, 1));
  records.push_back(rec(util::Duration::minutes(60), EventType::KernelPanic, 1));
  LogRecord ec = rec(util::Duration::minutes(40), EventType::EcHwError, 1);
  ec.source = LogSource::Erd;
  records.push_back(ec);
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = analyze_all(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  const LeadTimeAnalyzer analyzer(store);
  const auto lts = analyzer.lead_times(failures);
  ASSERT_EQ(lts.size(), 1u);
  EXPECT_DOUBLE_EQ(lts[0].internal_lead.to_minutes(), 3.0);
  ASSERT_TRUE(lts[0].enhanceable());
  EXPECT_DOUBLE_EQ(lts[0].external_lead->to_minutes(), 20.0);
  const auto summary = analyzer.summarize(failures);
  EXPECT_EQ(summary.enhanceable, 1u);
  EXPECT_NEAR(summary.enhancement_factor(), 20.0 / 3.0, 1e-9);
}

TEST(LeadTimeTest, NoEnhancementWithoutExternal) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(58), EventType::OomKill, 1));
  records.push_back(rec(util::Duration::minutes(60), EventType::NodeHalt, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = analyze_all(store, nullptr);
  ASSERT_EQ(failures.size(), 1u);
  const LeadTimeAnalyzer analyzer(store);
  const auto summary = analyzer.summarize(failures);
  EXPECT_EQ(summary.enhanceable, 0u);
}

TEST(LeadTimeTest, PredictorPatternsAndGate) {
  std::vector<LogRecord> records;
  // True-positive pattern: HW error then MCE then failure.
  records.push_back(rec(util::Duration::minutes(10), EventType::HardwareError, 1));
  records.push_back(rec(util::Duration::minutes(12), EventType::MachineCheckException, 1));
  records.push_back(rec(util::Duration::minutes(20), EventType::KernelPanic, 1));
  // False-positive look-alike on node 2, no external, no failure.
  records.push_back(rec(util::Duration::minutes(10), EventType::HardwareError, 2));
  records.push_back(rec(util::Duration::minutes(12), EventType::MachineCheckException, 2));
  // Single-type burst on node 3: no pattern, never flagged.
  records.push_back(rec(util::Duration::minutes(10), EventType::LustreError, 3));
  records.push_back(rec(util::Duration::minutes(11), EventType::LustreError, 3));
  // External accompaniment for node 1 only.
  LogRecord ec = rec(util::Duration::minutes(5), EventType::EcHwError, 1);
  ec.source = LogSource::Erd;
  records.push_back(ec);
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto failures = analyze_all(store, nullptr);
  const LeadTimeAnalyzer analyzer(store);

  const auto internal_only = analyzer.evaluate_predictor(failures, false);
  EXPECT_EQ(internal_only.flagged, 2u);
  EXPECT_EQ(internal_only.true_positive, 1u);
  EXPECT_EQ(internal_only.false_positive, 1u);

  const auto gated = analyzer.evaluate_predictor(failures, true);
  EXPECT_EQ(gated.flagged, 1u);
  EXPECT_EQ(gated.false_positive, 0u);
}

TEST(ParallelAnalysisTest, MatchesSerialExactly) {
  // Many chains across nodes; parallel diagnosis must equal serial.
  std::vector<LogRecord> records;
  for (std::uint32_t n = 0; n < 40; ++n) {
    const auto base_offset = util::Duration::minutes(10 + n * 7);
    records.push_back(rec(base_offset, EventType::HardwareError, n));
    records.push_back(
        rec(base_offset + util::Duration::minutes(2), EventType::MachineCheckException, n));
    records.push_back(
        rec(base_offset + util::Duration::minutes(3), EventType::KernelPanic, n));
  }
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto serial = analyze_all(store, nullptr);
  util::ThreadPool pool(4);
  const auto parallel = analyze_all(store, nullptr, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].event.node.value, parallel[i].event.node.value);
    EXPECT_EQ(serial[i].inference.cause, parallel[i].inference.cause);
    EXPECT_EQ(serial[i].inference.rationale, parallel[i].inference.rationale);
  }
}

// ------------------------------------------------------------------ jobs ----

TEST(JobAnalysisTest, DailyOutcomesClassification) {
  std::vector<jobs::Job> raw;
  auto add = [&raw](jobs::JobOutcome outcome, int hours_in) {
    jobs::Job j;
    j.job_id = static_cast<std::int64_t>(raw.size()) + 1;
    j.start = kBase;
    j.end = kBase + util::Duration::hours(hours_in);
    j.nodes = {platform::NodeId{static_cast<std::uint32_t>(raw.size())}};
    j.outcome = outcome;
    raw.push_back(j);
  };
  add(jobs::JobOutcome::Completed, 1);
  add(jobs::JobOutcome::Completed, 2);
  add(jobs::JobOutcome::NonZeroExit, 3);
  add(jobs::JobOutcome::ConfigError, 4);
  add(jobs::JobOutcome::UserCancelled, 5);
  add(jobs::JobOutcome::OomKilled, 6);
  add(jobs::JobOutcome::Completed, 30);  // next day
  const jobs::JobTable table = jobs::JobTable::from_jobs(raw);
  const std::vector<AnalyzedFailure> no_failures;
  const JobAnalyzer analyzer(table, no_failures);
  const auto days = analyzer.daily_outcomes(kBase, 2);
  ASSERT_EQ(days.size(), 2u);
  EXPECT_EQ(days[0].jobs, 6u);
  EXPECT_EQ(days[0].success, 2u);
  EXPECT_EQ(days[0].nonzero, 1u);
  EXPECT_EQ(days[0].config_error, 1u);
  EXPECT_EQ(days[0].cancelled, 1u);
  EXPECT_EQ(days[0].node_caused, 1u);
  EXPECT_EQ(days[1].jobs, 1u);
}

TEST(JobAnalysisTest, SharedJobGroups) {
  auto failures = synthetic_failures({{0, RootCause::MemoryExhaustion},
                                      {2, RootCause::MemoryExhaustion},
                                      {4, RootCause::MemoryExhaustion},
                                      {60, RootCause::HardwareMce}});
  failures[0].event.job_id = failures[1].event.job_id = failures[2].event.job_id = 7;
  failures[0].event.blade = platform::BladeId{0};
  failures[1].event.blade = platform::BladeId{5};
  failures[2].event.blade = platform::BladeId{9};
  const jobs::JobTable empty_table;
  const JobAnalyzer analyzer(empty_table, failures);
  const auto groups = analyzer.shared_job_groups(2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].job_id, 7);
  EXPECT_EQ(groups[0].failures, 3u);
  EXPECT_EQ(groups[0].distinct_blades, 3u);
  EXPECT_EQ(groups[0].span.to_minutes(), 4.0);
  EXPECT_DOUBLE_EQ(analyzer.multi_blade_shared_job_fraction(), 1.0);
}

// -------------------------------------------------------------- clusters ----

TEST(ClusterTest, GapSplitsClusters) {
  auto failures = synthetic_failures({{0, RootCause::LustreBug},
                                      {5, RootCause::LustreBug},
                                      {10, RootCause::LustreBug},
                                      {120, RootCause::HardwareMce},
                                      {360, RootCause::KernelBug}});
  failures[0].event.job_id = failures[1].event.job_id = failures[2].event.job_id = 9;
  failures[0].event.blade = platform::BladeId{0};
  failures[1].event.blade = platform::BladeId{7};
  failures[2].event.blade = platform::BladeId{13};
  const auto clusters = cluster_failures(failures, util::Duration::minutes(30));
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0].size, 3u);
  EXPECT_TRUE(clusters[0].same_cause());
  EXPECT_EQ(clusters[0].shared_job, 9);
  EXPECT_EQ(clusters[0].distinct_blades, 3u);
  EXPECT_EQ(clusters[0].span().to_minutes(), 10.0);
  EXPECT_EQ(clusters[1].size, 1u);
  EXPECT_EQ(clusters[2].dominant, RootCause::KernelBug);

  const auto summary = summarize_clusters(clusters);
  EXPECT_EQ(summary.clusters, 3u);
  EXPECT_EQ(summary.multi_failure_clusters, 1u);
  EXPECT_DOUBLE_EQ(summary.same_cause_fraction, 1.0);
  EXPECT_DOUBLE_EQ(summary.shared_job_multi_blade_fraction, 1.0);
  EXPECT_DOUBLE_EQ(summary.max_size, 3.0);
}

TEST(ClusterTest, MixedCauseAndUnattributed) {
  auto failures = synthetic_failures(
      {{0, RootCause::LustreBug}, {5, RootCause::HardwareMce}});
  failures[0].event.job_id = 3;  // second failure unattributed
  const auto clusters = cluster_failures(failures, util::Duration::minutes(30));
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_FALSE(clusters[0].same_cause());
  EXPECT_EQ(clusters[0].shared_job, -1);
  EXPECT_DOUBLE_EQ(clusters[0].dominant_share(), 0.5);
}

TEST(ClusterTest, EmptyInput) {
  const std::vector<AnalyzedFailure> none;
  EXPECT_TRUE(cluster_failures(none).empty());
  const auto summary = summarize_clusters({});
  EXPECT_EQ(summary.clusters, 0u);
  EXPECT_EQ(summary.mean_size, 0.0);
}

// ---------------------------------------------------------------- report ----

TEST(ReportTest, BreakdownAndLayers) {
  const auto failures = synthetic_failures({{0, RootCause::HardwareMce},
                                            {1, RootCause::FailSlowHardware},
                                            {2, RootCause::LustreBug},
                                            {3, RootCause::MemoryExhaustion},
                                            {4, RootCause::BiosUnknown}});
  const auto breakdown = cause_breakdown(failures);
  EXPECT_EQ(breakdown.total, 5u);
  EXPECT_DOUBLE_EQ(breakdown.share(RootCause::HardwareMce), 0.2);
  const auto shares = layer_shares(failures);
  EXPECT_DOUBLE_EQ(shares.hardware, 0.4);
  EXPECT_DOUBLE_EQ(shares.software, 0.2);
  EXPECT_DOUBLE_EQ(shares.application, 0.2);
  EXPECT_DOUBLE_EQ(shares.unknown, 0.2);
  EXPECT_DOUBLE_EQ(shares.memory_exhaustion, 0.2);
  const std::string table = render_cause_table(breakdown, "test");
  EXPECT_NE(table.find("HardwareMce"), std::string::npos);
  EXPECT_NE(table.find("20.00%"), std::string::npos);
}

TEST(ReportTest, MarkdownReportContainsAllSections) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(5), EventType::HardwareError, 1));
  records.push_back(rec(util::Duration::minutes(8), EventType::MachineCheckException, 1));
  records.push_back(rec(util::Duration::minutes(9), EventType::KernelPanic, 1));
  records.push_back(rec(util::Duration::minutes(40), EventType::NodeBoot, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const platform::Topology topo;
  ReportInputs inputs;
  inputs.store = &store;
  inputs.topology = &topo;
  inputs.system_label = "TEST";
  inputs.begin = kBase;
  inputs.end = kBase + util::Duration::days(1);
  const std::string report = markdown_report(inputs);
  for (const char* section :
       {"# Node-failure report — TEST", "## Failures and root causes",
        "## Temporal structure", "## External indicators", "## Fleet availability",
        "## Recommended actions", "HardwareMce", "QuarantineNode"}) {
    EXPECT_NE(report.find(section), std::string::npos) << section;
  }
}

// Pinned: empty failure lists are a no-op for every report helper — zero
// counts, 0.0 shares (never NaN), empty usage — and the rendered table and
// Markdown report stay printable.
TEST(ReportTest, EmptyFailuresArePinned) {
  const std::vector<AnalyzedFailure> none;

  const auto breakdown = cause_breakdown(none);
  EXPECT_EQ(breakdown.total, 0u);
  for (std::size_t i = 0; i < breakdown.counts.size(); ++i) {
    const auto cause = static_cast<RootCause>(i);
    EXPECT_EQ(breakdown.count(cause), 0u);
    EXPECT_EQ(breakdown.share(cause), 0.0);  // exactly 0.0, not 0/0 = NaN
  }

  const auto shares = layer_shares(none);
  EXPECT_EQ(shares.hardware, 0.0);
  EXPECT_EQ(shares.software, 0.0);
  EXPECT_EQ(shares.application, 0.0);
  EXPECT_EQ(shares.unknown, 0.0);
  EXPECT_EQ(shares.memory_exhaustion, 0.0);
  EXPECT_EQ(shares.application_triggered, 0.0);

  EXPECT_TRUE(stack_module_usage(none).empty());

  // Rendering an empty breakdown yields just the total row, no NaN text.
  const std::string table = render_cause_table(breakdown, "empty");
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_EQ(table.find("nan"), std::string::npos);
  EXPECT_EQ(table.find("inf"), std::string::npos);
}

// Pinned: a failure-free window still renders a complete Markdown report
// with 0-valued percentages (the engine's empty guards end-to-end).
TEST(ReportTest, MarkdownReportOnFailureFreeWindow) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::minutes(5), EventType::SedcTemperatureWarning, 1));
  records.push_back(rec(util::Duration::minutes(9), EventType::NodeBoot, 2));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const platform::Topology topo;
  ReportInputs inputs;
  inputs.store = &store;
  inputs.topology = &topo;
  inputs.system_label = "EMPTY";
  inputs.begin = kBase;
  inputs.end = kBase + util::Duration::days(1);
  const std::string report = markdown_report(inputs);
  EXPECT_NE(report.find("0 node failures diagnosed"), std::string::npos);
  EXPECT_EQ(report.find("nan"), std::string::npos);
  EXPECT_EQ(report.find("-nan"), std::string::npos);
}

TEST(ReportTest, StackModuleUsage) {
  auto failures = synthetic_failures(
      {{0, RootCause::LustreBug}, {1, RootCause::LustreBug}, {2, RootCause::HardwareMce}});
  failures[0].inference.evidence.stack_modules = {"dvs_ipc_mesg", "ptlrpc_main"};
  failures[1].inference.evidence.stack_modules = {"dvs_ipc_mesg"};
  failures[2].inference.evidence.stack_modules = {"mce_log"};
  const auto usage = stack_module_usage(failures);
  ASSERT_EQ(usage.size(), 2u);
  bool lustre_found = false;
  for (const auto& row : usage) {
    if (row.cause == RootCause::LustreBug) {
      lustre_found = true;
      ASSERT_FALSE(row.modules.empty());
      EXPECT_EQ(row.modules.front().first, "dvs_ipc_mesg");
      EXPECT_EQ(row.modules.front().second, 2u);
    }
  }
  EXPECT_TRUE(lustre_found);
}

}  // namespace
}  // namespace hpcfail::core
