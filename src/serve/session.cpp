#include "serve/session.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <string_view>

#include "serve/server.hpp"

namespace hpcfail::serve {

namespace {

/// Writes the whole buffer to `fd`, riding out short writes and EINTR.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Pops complete lines off the front of `buffer`, invoking `fn` on each
/// (without the newline; CR stripped).  Returns false when `fn` does.
template <typename Fn>
bool drain_lines(std::string& buffer, Fn&& fn) {
  std::size_t begin = 0;
  for (;;) {
    const std::size_t nl = buffer.find('\n', begin);
    if (nl == std::string::npos) break;
    std::size_t len = nl - begin;
    if (len > 0 && buffer[begin + len - 1] == '\r') --len;
    const bool keep_going = fn(std::string_view(buffer).substr(begin, len));
    begin = nl + 1;
    if (!keep_going) {
      buffer.erase(0, begin);
      return false;
    }
  }
  buffer.erase(0, begin);
  return true;
}

/// RAII close for a raw socket fd.
struct Fd {
  int fd = -1;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
  [[nodiscard]] bool ok() const noexcept { return fd >= 0; }
};

/// Fills `addr` for the unix socket at `path`; false if the path is too
/// long for sockaddr_un.
bool unix_address(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

std::size_t run_session(Server& server, std::istream& in, std::ostream& out,
                        const SessionOptions& options) {
  std::size_t answered = 0;
  if (options.pool == nullptr) {
    std::string line;
    while (std::getline(in, line)) {
      if (options.poll_tail_each_request) (void)server.poll_tail();
      out << server.handle_line(line) << '\n';
      out.flush();
      ++answered;
      if (server.shutdown_requested()) break;
    }
    return answered;
  }

  // Pipelined: submit each line to the pool, retire futures FIFO so the
  // response order matches the request order.  A shutdown answered in
  // flight stops the reader at the next retirement; already-read requests
  // still get their responses.
  std::deque<std::future<std::string>> inflight;
  const auto retire_one = [&] {
    out << inflight.front().get() << '\n';
    out.flush();
    inflight.pop_front();
    ++answered;
  };

  std::string line;
  bool stopping = false;
  Server* const srv = &server;  // outlives every queued task (owned by caller)
  while (!stopping && std::getline(in, line)) {
    // The reader thread is the single tail writer; queries pin whichever
    // epoch is current when the pool picks them up.
    if (options.poll_tail_each_request) (void)server.poll_tail();
    inflight.push_back(options.pool->submit(
        [srv, request = std::string(line)] { return srv->handle_line(request); }));
    while (inflight.size() >= options.max_inflight) retire_one();
    // Retire everything already done so the shutdown flag is observed
    // promptly without blocking the reader on in-flight work.
    while (!inflight.empty() &&
           inflight.front().wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      retire_one();
    }
    if (server.shutdown_requested()) stopping = true;
  }
  while (!inflight.empty()) retire_one();
  return answered;
}

bool run_socket_server(Server& server, const std::string& path,
                       const SessionOptions& options) {
  sockaddr_un addr{};
  if (!unix_address(path, addr)) {
    std::cerr << "hpcfail-serve: socket path too long: " << path << "\n";
    return false;
  }
  ::unlink(path.c_str());

  const Fd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!listener.ok() ||
      ::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listener.fd, 4) != 0) {
    std::cerr << "hpcfail-serve: cannot listen on " << path << ": "
              << std::strerror(errno) << "\n";
    return false;
  }

  while (!server.shutdown_requested()) {
    const Fd conn(::accept(listener.fd, nullptr, nullptr));
    if (!conn.ok()) {
      if (errno == EINTR) continue;
      std::cerr << "hpcfail-serve: accept failed on " << path << ": "
                << std::strerror(errno) << "\n";
      ::unlink(path.c_str());
      return false;
    }

    std::string buffer;
    char chunk[4096];
    bool peer_open = true;
    while (peer_open) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // peer closed (or errored): back to accept
      buffer.append(chunk, static_cast<std::size_t>(n));
      const bool keep_going = drain_lines(buffer, [&](std::string_view request) {
        if (options.poll_tail_each_request) (void)server.poll_tail();
        std::string response = server.handle_line(request);
        response += '\n';
        if (!write_all(conn.fd, response)) {
          peer_open = false;
          return false;
        }
        return !server.shutdown_requested();
      });
      if (!keep_going) break;
    }
  }
  ::unlink(path.c_str());
  return true;
}

bool run_socket_client(const std::string& path, std::istream& in, std::ostream& out) {
  sockaddr_un addr{};
  if (!unix_address(path, addr)) {
    std::cerr << "hpcfail-serve: socket path too long: " << path << "\n";
    return false;
  }
  const Fd conn(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!conn.ok() ||
      ::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "hpcfail-serve: cannot connect to " << path << ": "
              << std::strerror(errno) << "\n";
    return false;
  }

  std::string buffer;
  char chunk[4096];
  std::string line;
  while (std::getline(in, line)) {
    line += '\n';
    if (!write_all(conn.fd, line)) {
      std::cerr << "hpcfail-serve: connection dropped mid-request\n";
      return false;
    }
    // One response line per request, in order.
    bool got_response = false;
    while (!got_response) {
      drain_lines(buffer, [&](std::string_view response) {
        out << response << '\n';
        got_response = true;
        return false;  // stop after one line; keep the rest buffered
      });
      if (got_response) break;
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        std::cerr << "hpcfail-serve: connection dropped mid-response\n";
        return false;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    out.flush();
  }
  return true;
}

}  // namespace hpcfail::serve
