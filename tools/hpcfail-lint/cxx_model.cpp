#include "cxx_model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace hpcfail::lint {

namespace fs = std::filesystem;

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses `hpcfail-lint: allow(<check>) -- <reason>` occurrences out of one
/// comment's text.  Plain string scanning (no regex): this runs on every
/// comment of every loaded file.
void harvest_suppressions(std::string_view comment, std::size_t line,
                          std::vector<Suppression>& out) {
  static constexpr std::string_view kMarker = "hpcfail-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kMarker, pos)) != std::string_view::npos) {
    const std::size_t name_begin = pos + kMarker.size();
    const std::size_t name_end = comment.find(')', name_begin);
    if (name_end == std::string_view::npos) break;
    Suppression s;
    s.line = line;
    s.check = std::string(comment.substr(name_begin, name_end - name_begin));
    std::string_view rest = comment.substr(name_end + 1);
    // The reason is whatever follows the first `--` (end-of-comment scoped;
    // a second allow() on the same comment is not supported and not used).
    const std::size_t dash = rest.find("--");
    if (dash != std::string_view::npos) {
      s.reason = std::string(trim(rest.substr(dash + 2)));
    }
    out.push_back(std::move(s));
    pos = name_end;
  }
}

/// Fuses two-character punctuation the checks care about; everything else
/// lexes one character at a time.
[[nodiscard]] std::size_t punct_len(std::string_view rest) {
  if (rest.size() >= 2) {
    const std::string_view two = rest.substr(0, 2);
    if (two == "::" || two == "->" || two == "&&" || two == "||") return 2;
  }
  return 1;
}

}  // namespace

void lex(SourceFile& file) {
  const std::string_view s = file.content;
  std::size_t i = 0;
  std::size_t line = 1;
  int depth = 0;
  bool line_start = true;  ///< only whitespace seen since the last newline

  const auto push = [&](Token::Kind kind, std::size_t begin, std::size_t end,
                        std::size_t tok_line) {
    file.tokens.push_back(Token{kind, s.substr(begin, end - begin), tok_line, depth});
  };

  while (i < s.size()) {
    const char c = s[i];

    if (c == '\n') {
      ++line;
      ++i;
      line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' first on its line; continuations fold in.
    if (c == '#' && line_start) {
      const std::size_t begin = i;
      const std::size_t tok_line = line;
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        ++i;
      }
      push(Token::Kind::Preprocessor, begin, i, tok_line);
      line_start = false;
      continue;
    }
    line_start = false;

    // Comments (not tokens; suppressions are harvested here).
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      const std::size_t begin = i;
      while (i < s.size() && s[i] != '\n') ++i;
      harvest_suppressions(s.substr(begin, i - begin), line, file.suppressions);
      continue;
    }
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const std::size_t begin = i;
      const std::size_t begin_line = line;
      i += 2;
      while (i + 1 < s.size() && !(s[i] == '*' && s[i + 1] == '/')) {
        if (s[i] == '\n') ++line;
        ++i;
      }
      i = (i + 1 < s.size()) ? i + 2 : s.size();
      harvest_suppressions(s.substr(begin, i - begin), begin_line, file.suppressions);
      continue;
    }

    // Identifier — possibly a string-literal prefix (R"..", u8"..", L'..').
    if (ident_start(c)) {
      const std::size_t begin = i;
      while (i < s.size() && ident_char(s[i])) ++i;
      const std::string_view word = s.substr(begin, i - begin);
      const bool raw_prefix =
          (word == "R" || word == "u8R" || word == "uR" || word == "LR");
      const bool lit_prefix = (word == "u8" || word == "u" || word == "L");
      if (raw_prefix && i < s.size() && s[i] == '"') {
        // Raw string: R"delim( ... )delim".  Tolerant: an unterminated raw
        // string swallows the rest of the file (it would be ill-formed C++
        // anyway; FORMATS.md is not C++ and must not hang the lexer).
        const std::size_t tok_line = line;
        ++i;  // opening quote
        const std::size_t delim_begin = i;
        while (i < s.size() && s[i] != '(' && s[i] != '\n' && i - delim_begin < 16) ++i;
        const std::string delim =
            ")" + std::string(s.substr(delim_begin, i - delim_begin)) + "\"";
        const std::size_t close = s.find(delim, i);
        const std::size_t end = close == std::string::npos ? s.size() : close + delim.size();
        line += static_cast<std::size_t>(
            std::count(s.begin() + static_cast<std::ptrdiff_t>(begin),
                       s.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
        push(Token::Kind::RawString, begin, end, tok_line);
        i = end;
        continue;
      }
      if (lit_prefix && i < s.size() && (s[i] == '"' || s[i] == '\'')) {
        // Fall through to the quote handling below with the prefix attached:
        // rewind so the quoted body lexes as one literal, prefix included.
        // (Handled by not pushing the identifier; the quote branch reuses
        // `begin`.)
        const char quote = s[i];
        const std::size_t tok_line = line;
        ++i;
        while (i < s.size() && s[i] != quote && s[i] != '\n') {
          if (s[i] == '\\' && i + 1 < s.size()) ++i;
          ++i;
        }
        if (i < s.size() && s[i] == quote) ++i;
        push(quote == '"' ? Token::Kind::String : Token::Kind::CharLit, begin, i,
             tok_line);
        continue;
      }
      push(Token::Kind::Identifier, begin, i, line);
      continue;
    }

    // Numbers (digit separators, hex, exponents, suffixes — one blob).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t begin = i;
      while (i < s.size() && (ident_char(s[i]) || s[i] == '.' || s[i] == '\'' ||
                              ((s[i] == '+' || s[i] == '-') && i > begin &&
                               (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                                s[i - 1] == 'P')))) {
        ++i;
      }
      push(Token::Kind::Number, begin, i, line);
      continue;
    }

    // Ordinary string / char literals.
    if (c == '"' || c == '\'') {
      const std::size_t begin = i;
      const std::size_t tok_line = line;
      ++i;
      while (i < s.size() && s[i] != c && s[i] != '\n') {
        if (s[i] == '\\' && i + 1 < s.size()) ++i;
        ++i;
      }
      if (i < s.size() && s[i] == c) ++i;
      push(c == '"' ? Token::Kind::String : Token::Kind::CharLit, begin, i, tok_line);
      continue;
    }

    // Punctuation; braces adjust nesting depth.  A '{' token reports the
    // depth outside it, matching '}' reports the depth inside restored.
    if (c == '{') {
      push(Token::Kind::Punct, i, i + 1, line);
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      depth = std::max(0, depth - 1);
      push(Token::Kind::Punct, i, i + 1, line);
      ++i;
      continue;
    }
    const std::size_t len = punct_len(s.substr(i));
    push(Token::Kind::Punct, i, i + len, line);
    i += len;
  }
}

const SourceFile* SourceTree::source(const std::string& rel_path) {
  const auto it = files_.find(rel_path);
  if (it != files_.end()) return it->second ? &*it->second : nullptr;

  std::ifstream in(root_ / rel_path, std::ios::binary);
  if (!in) {
    files_.emplace(rel_path, std::nullopt);
    return nullptr;
  }
  SourceFile f;
  f.rel_path = rel_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  f.content = std::move(buf).str();

  f.lines.reserve(static_cast<std::size_t>(
      std::count(f.content.begin(), f.content.end(), '\n') + 1));
  std::size_t begin = 0;
  while (begin <= f.content.size()) {
    std::size_t end = f.content.find('\n', begin);
    if (end == std::string::npos) {
      if (begin < f.content.size()) f.lines.emplace_back(f.content.substr(begin));
      break;
    }
    std::size_t len = end - begin;
    if (len > 0 && f.content[begin + len - 1] == '\r') --len;  // CRLF
    f.lines.emplace_back(f.content.substr(begin, len));
    begin = end + 1;
  }

  lex(f);
  ++files_loaded_;
  bytes_loaded_ += f.content.size();
  const auto [pos, inserted] = files_.emplace(rel_path, std::move(f));
  (void)inserted;
  return &*pos->second;
}

const std::vector<std::string>& SourceTree::files_under(const std::string& top_dir) {
  const auto it = listings_.find(top_dir);
  if (it != listings_.end()) return it->second;

  std::vector<std::string> paths;
  const fs::path dir = root_ / top_dir;
  std::error_code ec;
  if (fs::exists(dir, ec)) {
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      paths.push_back(fs::relative(entry.path(), root_).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  return listings_.emplace(top_dir, std::move(paths)).first->second;
}

bool SourceTree::exists(const std::string& rel_path) const {
  std::error_code ec;
  return fs::exists(root_ / rel_path, ec);
}

void emit(const SourceFile& file, std::size_t line, const std::string& check,
          const std::string& message, Report& report, Severity severity) {
  for (const auto& s : file.suppressions) {
    if (s.check != check) continue;
    if (s.line != line && s.line + 1 != line) continue;
    if (!s.reason.empty()) return;  // reasoned allow: suppressed
    report.add(file.rel_path, line, check, message, severity);
    report.add(file.rel_path, s.line, check,
               "allow(" + check + ") suppression is missing its reason; write: " +
                   "// hpcfail-lint: allow(" + check + ") -- <why this is safe>",
               severity);
    return;
  }
  report.add(file.rel_path, line, check, message, severity);
}

std::size_t matching_close(const std::vector<Token>& tokens, std::size_t open) {
  int paren = 0;
  int bracket = 0;
  int brace = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::Punct) continue;
    const std::string_view t = tokens[i].text;
    if (t == "(") ++paren;
    else if (t == ")") --paren;
    else if (t == "[") ++bracket;
    else if (t == "]") --bracket;
    else if (t == "{") ++brace;
    else if (t == "}") --brace;
    else continue;
    if (paren == 0 && bracket == 0 && brace == 0 && i > open) return i;
    if (paren < 0 || bracket < 0 || brace < 0) return tokens.size();
  }
  return tokens.size();
}

}  // namespace hpcfail::lint
