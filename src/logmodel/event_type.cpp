#include "logmodel/event_type.hpp"

#include <array>

namespace hpcfail::logmodel {

namespace {

constexpr std::array<std::string_view, kEventTypeCount> kEventNames = {
    "KernelPanic",
    "KernelOops",
    "MachineCheckException",
    "HardwareError",
    "CpuCorruption",
    "CpuStall",
    "BiosError",
    "L0SysdMce",
    "FirmwareBug",
    "DriverBug",
    "SegFault",
    "InvalidOpcode",
    "PageAllocationFailure",
    "OomKill",
    "HungTaskTimeout",
    "CallTrace",
    "LustreError",
    "LustreBug",
    "DvsError",
    "InodeError",
    "InterconnectError",
    "NhcTestFail",
    "AppExitAbnormal",
    "NodeShutdown",
    "NodeHalt",
    "NodeBoot",
    "NodeHeartbeatFault",
    "NodeVoltageFault",
    "BladeHeartbeatFault",
    "EcHeartbeatStop",
    "EcL0Failed",
    "EcHwError",
    "GetSensorReadingFailed",
    "CabinetPowerFault",
    "CabinetMicroFault",
    "CommunicationFault",
    "ModuleHealthFault",
    "RpmFault",
    "EcbFault",
    "CabinetSensorCheck",
    "LinkError",
    "LaneDegrade",
    "LinkFailover",
    "LinkFailoverFailed",
    "SedcTemperatureWarning",
    "SedcVoltageWarning",
    "SedcAirVelocityWarning",
    "SedcFanSpeedWarning",
    "SedcReading",
    "JobStart",
    "JobEnd",
    "JobCancelled",
    "JobOverallocation",
    "EpilogueRun",
    "NhcSuspectMode",
};

}  // namespace

EventClass event_class(EventType t) noexcept {
  const auto v = static_cast<std::uint8_t>(t);
  if (v <= static_cast<std::uint8_t>(EventType::NodeBoot)) return EventClass::Internal;
  if (v <= static_cast<std::uint8_t>(EventType::SedcReading)) return EventClass::External;
  return EventClass::Job;
}

bool is_health_fault(EventType t) noexcept {
  switch (t) {
    case EventType::NodeHeartbeatFault:
    case EventType::NodeVoltageFault:
    case EventType::BladeHeartbeatFault:
    case EventType::EcHeartbeatStop:
    case EventType::EcL0Failed:
    case EventType::EcHwError:
    case EventType::GetSensorReadingFailed:
    case EventType::CabinetPowerFault:
    case EventType::CabinetMicroFault:
    case EventType::CommunicationFault:
    case EventType::ModuleHealthFault:
    case EventType::RpmFault:
    case EventType::LinkError:
    case EventType::LinkFailoverFailed:
      return true;
    default:
      return false;
  }
}

bool is_sedc_warning(EventType t) noexcept {
  switch (t) {
    case EventType::SedcTemperatureWarning:
    case EventType::SedcVoltageWarning:
    case EventType::SedcAirVelocityWarning:
    case EventType::SedcFanSpeedWarning:
    case EventType::EcbFault:
    case EventType::CabinetSensorCheck:
      return true;
    default:
      return false;
  }
}

bool is_failure_marker(EventType t) noexcept {
  switch (t) {
    case EventType::KernelPanic:
    case EventType::NodeShutdown:
    case EventType::NodeHalt:
      return true;
    default:
      return false;
  }
}

bool is_internal_indicator(EventType t) noexcept {
  switch (t) {
    case EventType::KernelOops:
    case EventType::MachineCheckException:
    case EventType::HardwareError:
    case EventType::CpuCorruption:
    case EventType::CpuStall:
    case EventType::BiosError:
    case EventType::L0SysdMce:
    case EventType::FirmwareBug:
    case EventType::DriverBug:
    case EventType::SegFault:
    case EventType::InvalidOpcode:
    case EventType::PageAllocationFailure:
    case EventType::OomKill:
    case EventType::HungTaskTimeout:
    case EventType::LustreError:
    case EventType::LustreBug:
    case EventType::DvsError:
    case EventType::InodeError:
    case EventType::InterconnectError:
    case EventType::NhcTestFail:
    case EventType::AppExitAbnormal:
      return true;
    default:
      return false;
  }
}

bool is_external_indicator(EventType t) noexcept {
  switch (t) {
    // The paper's lead-time enhancement keys on ec_hw_errors, link errors,
    // heartbeat/voltage faults and blade-level SEDC deviations that
    // accompany fail-slow hardware (Section III-D).
    case EventType::EcHwError:
    case EventType::LinkError:
    case EventType::NodeHeartbeatFault:
    case EventType::NodeVoltageFault:
    case EventType::SedcVoltageWarning:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(EventType t) noexcept {
  const auto v = static_cast<std::size_t>(t);
  return v < kEventNames.size() ? kEventNames[v] : std::string_view{"?"};
}

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "INFO";
    case Severity::Warning: return "WARN";
    case Severity::Error: return "ERROR";
    case Severity::Critical: return "CRIT";
    case Severity::Fatal: return "FATAL";
  }
  return "?";
}

std::string_view to_string(LogSource s) noexcept {
  switch (s) {
    case LogSource::Console: return "console";
    case LogSource::Messages: return "messages";
    case LogSource::Consumer: return "consumer";
    case LogSource::Controller: return "controller";
    case LogSource::Erd: return "erd";
    case LogSource::Scheduler: return "scheduler";
    case LogSource::kCount: break;
  }
  return "?";
}

std::optional<EventType> event_type_from_string(std::string_view s) noexcept {
  for (std::size_t i = 0; i < kEventNames.size(); ++i) {
    if (kEventNames[i] == s) return static_cast<EventType>(i);
  }
  return std::nullopt;
}

}  // namespace hpcfail::logmodel
