// Fixture: a table bench with no failure analysis at all, suppressed via
// the allow comment. hpcfail-lint: allow(bench-pipeline)
#include <cstdio>

int main() {
  std::puts("inventory");
  return 0;
}
