#include "jobs/job_table.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <map>
#include <stdexcept>

namespace hpcfail::jobs {

namespace {

// On-disk job row: every fixed-width JobInfo field plus string-pool ids
// for the three texts, padded explicitly to 64 bytes so rows are
// byte-reproducible.  Pinned like LogRecord's layout in store_snapshot.cpp;
// a change here means a format-version bump.
struct JobFixed {
  std::int64_t job_id = 0;
  std::int64_t apid = 0;
  std::int64_t start_usec = 0;
  std::int64_t end_usec = 0;
  double mem_per_node_gb = 0.0;
  std::uint32_t user = 0;    ///< string-pool id
  std::uint32_t app = 0;     ///< string-pool id
  std::uint32_t reason = 0;  ///< string-pool id
  std::int32_t exit_code = 0;
  std::uint32_t overallocated_nodes = 0;
  std::uint8_t ended = 0;
  std::uint8_t overallocated = 0;
  std::uint8_t cancelled = 0;
  std::uint8_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<JobFixed>);
static_assert(sizeof(JobFixed) == 64);
static_assert(offsetof(JobFixed, mem_per_node_gb) == 32);
static_assert(offsetof(JobFixed, user) == 40);
static_assert(offsetof(JobFixed, ended) == 60);

// Minimal string pool for the job texts (the jobs layer deliberately does
// not link logmodel, so it cannot reuse SymbolTable).  Serialized exactly
// like SymbolTable's sections: concatenated bytes + uint64 fence offsets,
// id 0 reserved for "".
struct StringPool {
  std::vector<std::string> strings{{}};
  std::map<std::string, std::uint32_t, std::less<>> ids{{std::string{}, 0}};

  std::uint32_t intern(const std::string& text) {
    const auto it = ids.find(text);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(strings.size());
    strings.push_back(text);
    ids.emplace(text, id);
    return id;
  }

  void append_sections(util::Sections& out, const std::string& prefix) const {
    std::vector<std::byte> bytes;
    std::vector<std::uint64_t> offsets;
    offsets.reserve(strings.size() + 1);
    offsets.push_back(0);
    for (const std::string& s : strings) {
      const auto* data = reinterpret_cast<const std::byte*>(s.data());
      bytes.insert(bytes.end(), data, data + s.size());
      offsets.push_back(bytes.size());
    }
    out.add_owned(prefix + ".bytes", std::move(bytes));
    std::vector<std::byte> offset_bytes(offsets.size() * sizeof(std::uint64_t));
    std::memcpy(offset_bytes.data(), offsets.data(), offset_bytes.size());
    out.add_owned(prefix + ".offsets", std::move(offset_bytes));
  }

  [[nodiscard]] static std::vector<std::string> strings_from_sections(
      const util::SectionMap& in, const std::string& prefix) {
    const auto offsets = in.vector_of<std::uint64_t>(prefix + ".offsets");
    const auto bytes = in.require(prefix + ".bytes");
    if (offsets.empty() || offsets.front() != 0 || offsets.back() != bytes.size()) {
      throw util::SectionError(prefix + ".offsets",
                               "offsets do not span the string payload exactly");
    }
    std::vector<std::string> out;
    out.reserve(offsets.size() - 1);
    for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
      if (offsets[i + 1] < offsets[i]) {
        throw util::SectionError(prefix + ".offsets",
                                 "offsets decrease at id " + std::to_string(i));
      }
      out.emplace_back(reinterpret_cast<const char*>(bytes.data()) + offsets[i],
                       static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
    }
    if (!out.front().empty()) {
      throw util::SectionError(prefix + ".bytes", "id 0 must be the empty string");
    }
    return out;
  }
};

}  // namespace

JobTable JobTable::from_jobs(const std::vector<Job>& jobs) {
  JobTable table;
  for (const auto& j : jobs) {
    JobInfo info;
    info.job_id = j.job_id;
    info.apid = j.apid;
    info.user = j.user;
    info.app_name = j.app_name;
    info.start = j.start;
    info.end = j.end;
    info.mem_per_node_gb = j.mem_per_node_gb;
    info.nodes = j.nodes;
    info.exit_code = j.exit_code();
    info.end_reason = std::string(to_string(j.outcome));
    info.ended = true;
    info.overallocated = j.outcome == JobOutcome::Overallocated;
    info.overallocated_nodes = j.overallocated_nodes;
    info.cancelled = j.outcome == JobOutcome::UserCancelled;
    table.add_start(std::move(info));
  }
  table.finalize();
  return table;
}

void JobTable::add_start(JobInfo info) {
  finalized_ = false;
  // A week of scheduler log holds thousands of jobs; pre-sizing the id map
  // once is cheaper than letting it rehash its way up through every
  // power-of-two bucket count.
  if (by_id_.bucket_count() < 8192) by_id_.reserve(8192);
  const auto it = by_id_.find(info.job_id);
  if (it != by_id_.end()) {
    jobs_[it->second] = std::move(info);
    return;
  }
  by_id_[info.job_id] = jobs_.size();
  jobs_.push_back(std::move(info));
}

void JobTable::add_end(std::int64_t job_id, util::TimePoint end, int exit_code,
                       std::string reason) {
  const auto it = by_id_.find(job_id);
  if (it == by_id_.end()) return;
  JobInfo& info = jobs_[it->second];
  info.end = end;
  info.exit_code = exit_code;
  info.end_reason = std::move(reason);
  info.ended = true;
}

void JobTable::mark_overallocated(std::int64_t job_id, std::uint32_t node_count) {
  const auto it = by_id_.find(job_id);
  if (it == by_id_.end()) return;
  jobs_[it->second].overallocated = true;
  jobs_[it->second].overallocated_nodes = node_count;
}

void JobTable::mark_cancelled(std::int64_t job_id) {
  const auto it = by_id_.find(job_id);
  if (it != by_id_.end()) jobs_[it->second].cancelled = true;
}

void JobTable::finalize() {
  if (finalized_) return;
  // CSR build: count per node, prefix-sum into offsets, fill job indexes,
  // then sort each node's run by start time (see util/csr.hpp).
  by_node_ = {};
  // Branch-free max pass first (it vectorizes), then the count pass against
  // a correctly-sized table; fusing the two costs a data-dependent branch
  // per (job, node) pair and measures slower.
  std::uint32_t node_keys = 0;
  for (const JobInfo& j : jobs_) {
    for (const auto node : j.nodes) node_keys = std::max(node_keys, node.value + 1);
  }
  if (node_keys != 0) {
    by_node_.offsets.assign(std::size_t{node_keys} + 1, 0);
    for (const JobInfo& j : jobs_) {
      for (const auto node : j.nodes) ++by_node_.offsets[node.value + 1];
    }
    for (std::size_t k = 1; k < by_node_.offsets.size(); ++k) {
      by_node_.offsets[k] += by_node_.offsets[k - 1];
    }
    by_node_.entries.resize(by_node_.offsets.back());
    std::vector<std::uint32_t> cursor = by_node_.offsets;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      for (const auto node : jobs_[i].nodes) {
        by_node_.entries[cursor[node.value]++] = static_cast<std::uint32_t>(i);
      }
    }
    // Scheduler logs are time-ordered, so the fill above (ascending job
    // index) usually leaves every run already start-sorted; detecting that
    // with one linear pass is far cheaper than 5k+ small sorts whose
    // comparator chases cold JobInfo structs.  The flat starts array keeps
    // the comparator on 8-byte rows when a sort IS needed.
    std::vector<std::int64_t> starts;
    starts.reserve(jobs_.size());
    for (const JobInfo& j : jobs_) starts.push_back(j.start.usec);
    const auto start_less = [&starts](std::uint32_t a, std::uint32_t b) {
      return starts[a] < starts[b];
    };
    // When the whole job list is start-ordered (the normal case: allocation
    // records appear in the log at their start time), every run is sorted
    // by construction, and one pass over the job list proves it without
    // touching the (much larger) entries array at all.
    if (std::is_sorted(starts.begin(), starts.end())) {
      finalized_ = true;
      return;
    }
    for (std::uint32_t k = 0; k < node_keys; ++k) {
      const auto begin = by_node_.entries.begin() + by_node_.offsets[k];
      const auto end = by_node_.entries.begin() + by_node_.offsets[k + 1];
      if (!std::is_sorted(begin, end, start_less)) std::sort(begin, end, start_less);
    }
  }
  finalized_ = true;
}

const JobInfo* JobTable::find(std::int64_t job_id) const noexcept {
  const auto it = by_id_.find(job_id);
  return it == by_id_.end() ? nullptr : &jobs_[it->second];
}

const JobInfo* JobTable::job_on_node_at(platform::NodeId node, util::TimePoint t,
                                        util::Duration slack) const noexcept {
  for (const std::uint32_t idx : by_node_.of(node.value)) {
    const JobInfo& j = jobs_[idx];
    if (j.start - slack <= t && t < j.end + slack) return &j;
    if (j.start - slack > t) break;  // sorted by start; no later job matches
  }
  return nullptr;
}

std::vector<const JobInfo*> JobTable::running_at(util::TimePoint t) const {
  std::vector<const JobInfo*> out;
  for (const auto& j : jobs_) {
    if (j.start <= t && t < j.end) out.push_back(&j);
  }
  return out;
}

void JobTable::append_sections(util::Sections& out, const std::string& prefix) const {
  if (!finalized_) {
    throw std::logic_error("JobTable::append_sections: table is not finalized");
  }
  StringPool pool;
  std::vector<JobFixed> fixed;
  fixed.reserve(jobs_.size());
  util::CsrIndex<platform::NodeId> node_lists;
  node_lists.offsets.reserve(jobs_.size() + 1);
  node_lists.offsets.push_back(0);
  for (const JobInfo& j : jobs_) {
    JobFixed row;
    row.job_id = j.job_id;
    row.apid = j.apid;
    row.start_usec = j.start.usec;
    row.end_usec = j.end.usec;
    row.mem_per_node_gb = j.mem_per_node_gb;
    row.user = pool.intern(j.user);
    row.app = pool.intern(j.app_name);
    row.reason = pool.intern(j.end_reason);
    row.exit_code = j.exit_code;
    row.overallocated_nodes = j.overallocated_nodes;
    row.ended = j.ended ? 1 : 0;
    row.overallocated = j.overallocated ? 1 : 0;
    row.cancelled = j.cancelled ? 1 : 0;
    fixed.push_back(row);
    node_lists.entries.insert(node_lists.entries.end(), j.nodes.begin(), j.nodes.end());
    node_lists.offsets.push_back(static_cast<std::uint32_t>(node_lists.entries.size()));
  }

  const auto meta = static_cast<std::uint64_t>(jobs_.size());
  out.add_scalar(prefix + ".meta", meta);
  std::vector<std::byte> fixed_bytes(fixed.size() * sizeof(JobFixed));
  if (!fixed_bytes.empty()) {
    std::memcpy(fixed_bytes.data(), fixed.data(), fixed_bytes.size());
  }
  out.add_owned(prefix + ".fixed", std::move(fixed_bytes));
  pool.append_sections(out, prefix + ".strings");
  // node_lists and by_node_ sections borrow from locals/members; the
  // owned copy below keeps the CSR alive inside `out`.
  {
    std::vector<std::byte> off(node_lists.offsets.size() * sizeof(std::uint32_t));
    std::memcpy(off.data(), node_lists.offsets.data(), off.size());
    out.add_owned(prefix + ".nodes.offsets", std::move(off));
    std::vector<std::byte> ent(node_lists.entries.size() * sizeof(platform::NodeId));
    if (!ent.empty()) std::memcpy(ent.data(), node_lists.entries.data(), ent.size());
    out.add_owned(prefix + ".nodes.entries", std::move(ent));
  }
  by_node_.append_sections(out, prefix + ".by_node");
}

JobTable JobTable::from_sections(const util::SectionMap& in, const std::string& prefix) {
  const auto meta = in.scalar_of<std::uint64_t>(prefix + ".meta");
  const auto fixed = in.vector_of<JobFixed>(prefix + ".fixed");
  if (meta != fixed.size()) {
    throw util::SectionError(prefix + ".fixed",
                             "meta declares " + std::to_string(meta) +
                                 " jobs, section holds " + std::to_string(fixed.size()));
  }
  const auto strings = StringPool::strings_from_sections(in, prefix + ".strings");
  const auto node_lists =
      util::CsrIndex<platform::NodeId>::from_sections(in, prefix + ".nodes");
  if (!node_lists.offsets.empty() && node_lists.offsets.size() != fixed.size() + 1) {
    throw util::SectionError(prefix + ".nodes.offsets",
                             "expected one node run per job");
  }
  if (node_lists.offsets.empty() && !fixed.empty()) {
    throw util::SectionError(prefix + ".nodes.offsets", "missing node runs");
  }

  JobTable table;
  table.jobs_.reserve(fixed.size());
  const auto text_of = [&](std::uint32_t id, const char* field) -> const std::string& {
    if (id >= strings.size()) {
      throw util::SectionError(prefix + ".fixed",
                               std::string(field) + " string id " + std::to_string(id) +
                                   " out of range for " + std::to_string(strings.size()) +
                                   " strings");
    }
    return strings[id];
  };
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    const JobFixed& row = fixed[i];
    JobInfo info;
    info.job_id = row.job_id;
    info.apid = row.apid;
    info.user = text_of(row.user, "user");
    info.app_name = text_of(row.app, "app");
    info.start = util::TimePoint{row.start_usec};
    info.end = util::TimePoint{row.end_usec};
    info.mem_per_node_gb = row.mem_per_node_gb;
    const auto nodes = node_lists.of(static_cast<std::uint32_t>(i));
    info.nodes.assign(nodes.begin(), nodes.end());
    info.exit_code = row.exit_code;
    info.end_reason = text_of(row.reason, "reason");
    info.ended = row.ended != 0;
    info.overallocated = row.overallocated != 0;
    info.overallocated_nodes = row.overallocated_nodes;
    info.cancelled = row.cancelled != 0;
    table.by_id_[info.job_id] = table.jobs_.size();
    table.jobs_.push_back(std::move(info));
  }
  table.by_node_ = util::CsrIndex<std::uint32_t>::from_sections(in, prefix + ".by_node");
  for (const std::uint32_t entry : table.by_node_.entries) {
    if (entry >= table.jobs_.size()) {
      throw util::SectionError(prefix + ".by_node.entries",
                               "entry " + std::to_string(entry) +
                                   " out of range for " +
                                   std::to_string(table.jobs_.size()) + " jobs");
    }
  }
  table.finalized_ = true;
  return table;
}

}  // namespace hpcfail::jobs
