// The `hpcfail.store.v1` on-disk container: a little-endian binary file
// holding the flat sections registered through util::Sections
// (serialize.hpp).  This layer owns only the *container* discipline —
// magic, format version, section table, per-section CRC32, trailing file
// CRC — and knows nothing about what the sections mean; LogStore, JobTable
// and the corpus-level snapshot compose their own section vocabularies on
// top.  The byte layout is specified in FORMATS.md ("snapshot —
// hpcfail.store.v1"); hpcfail-lint's snapshot-version check keeps the
// version constant below and that document in sync.
//
// Failure discipline matches the ingest layer: corruption and I/O failures
// surface as a structured SnapshotError (kind + path + section + message),
// never as an exception, a partial result, or UB.  Two deterministic fault
// sites cover the file boundary: `store.snapshot.write_io` (hit once per
// header/section write) and `store.snapshot.read_io` (hit at the bulk read
// and once per section validated), so torn and truncated snapshots are
// reproducible on demand (HPCFAIL_FAULT, hpcfail-store --fault).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace hpcfail::util {

/// First 16 bytes of every snapshot file (not NUL-terminated on disk).
inline constexpr char kSnapshotMagic[17] = "hpcfail.store.v1";
inline constexpr std::size_t kSnapshotMagicSize = 16;

/// Container format version, bumped on any layout change.  Must match the
/// "Format version" line in FORMATS.md (enforced by hpcfail-lint
/// --check snapshot-version).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Section payloads start on this alignment so a loaded buffer supports
/// direct typed views over any section.
inline constexpr std::size_t kSnapshotAlign = 64;

/// Longest section name the fixed-width table entry can hold (39 chars +
/// NUL in a 40-byte field).
inline constexpr std::size_t kSnapshotMaxName = 39;

/// CRC-32C (Castagnoli, reflected polynomial 0x82f63b38) — the snapshot
/// format's checksum, chosen over the zlib CRC-32 because x86-64 executes
/// it in hardware (SSE4.2; runtime-dispatched with a slice-by-8 software
/// fallback).  `seed` chains incremental updates:
/// crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0) noexcept;

/// Structured description of why a snapshot could not be written or read.
struct SnapshotError {
  enum class Kind : std::uint8_t {
    Io,               ///< open/read/write failed (errno-level, or injected)
    BadMagic,         ///< first 16 bytes are not kSnapshotMagic
    BadVersion,       ///< format version newer than this build understands
    Truncated,        ///< file shorter than its own accounting claims
    SectionChecksum,  ///< a section's stored CRC32 does not match its bytes
    FileChecksum,     ///< the trailing whole-file CRC32 does not match
    MissingSection,   ///< a structure's required section is absent
    BadSection,       ///< a section is internally inconsistent
  };

  Kind kind = Kind::Io;
  std::string path;
  std::string section;  ///< offending section name, when one is known
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] std::string_view to_string(SnapshotError::Kind kind) noexcept;

/// One row of a snapshot's section table, as stored on disk.
struct SnapshotSectionInfo {
  std::string name;
  std::uint64_t offset = 0;  ///< payload start, from file byte 0
  std::uint64_t length = 0;  ///< payload bytes (no padding)
  std::uint32_t crc = 0;     ///< CRC-32 of the payload bytes
};

/// Writes `sections` to `path` in hpcfail.store.v1 layout, replacing any
/// existing file.  Returns the error instead of a file on any failure; a
/// failed write never leaves a file that passes validation (the trailing
/// CRC is written last).
[[nodiscard]] std::optional<SnapshotError> write_snapshot(const std::string& path,
                                                          const Sections& sections);

struct SnapshotReadResult;

/// A fully validated snapshot held in one 64-byte-aligned buffer; the
/// SectionMap views alias that buffer, so keep the Snapshot alive while
/// consuming them.  Obtained via read_snapshot(); every accessor reflects
/// bytes that already passed magic/version/CRC/table validation.
class Snapshot {
 public:
  [[nodiscard]] const SectionMap& sections() const noexcept { return map_; }
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }
  [[nodiscard]] const std::vector<SnapshotSectionInfo>& table() const noexcept {
    return table_;
  }

 private:
  friend SnapshotReadResult read_snapshot(const std::string& path);

  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kSnapshotAlign});
    }
  };

  std::unique_ptr<std::byte[], AlignedDelete> buffer_;
  SectionMap map_;
  std::vector<SnapshotSectionInfo> table_;
  std::uint32_t version_ = 0;
  std::uint64_t file_bytes_ = 0;
};

/// read_snapshot's result: exactly one of `snapshot` / `error` is set.
struct SnapshotReadResult {
  std::optional<Snapshot> snapshot;
  std::optional<SnapshotError> error;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Bulk-reads `path` into an aligned buffer and validates the container in
/// order: size floor, magic, format version (before any checksum, so a
/// future-version file is reported as BadVersion rather than a checksum
/// mismatch), declared vs actual length, trailing file CRC, section table,
/// per-section CRCs and extents.  On success the returned Snapshot's
/// sections alias the buffer — zero further copies.
[[nodiscard]] SnapshotReadResult read_snapshot(const std::string& path);

}  // namespace hpcfail::util
