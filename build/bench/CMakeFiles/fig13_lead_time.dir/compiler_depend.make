# Empty compiler generated dependencies file for fig13_lead_time.
# This may be replaced when dependencies are built.
