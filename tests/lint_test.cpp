// hpcfail-lint self-tests: each check runs against a deliberately drifted
// fixture tree under tests/data/lint/ and must report the exact gcc-style
// diagnostics, byte for byte — the lint's output contract is part of its
// interface (CI annotates from it).  The real tree must come back clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baseline.hpp"
#include "lint.hpp"
#include "sarif.hpp"
#include "support/json.hpp"

namespace {

using hpcfail::lint::apply_baseline;
using hpcfail::lint::BaselineEntry;
using hpcfail::lint::load_baseline;
using hpcfail::lint::render_baseline;
using hpcfail::lint::Report;
using hpcfail::lint::run_checks;
using hpcfail::lint::to_sarif;
using hpcfail::test::JsonValue;
using hpcfail::test::parse_json;

std::filesystem::path fixture(const char* name) {
  return std::filesystem::path(HPCFAIL_LINT_FIXTURES) / name;
}

std::vector<std::string> rendered(const Report& report) {
  std::vector<std::string> out;
  out.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) out.push_back(d.to_string());
  return out;
}

TEST(LintErdTable, DriftedEmitterTemplateIsDiagnosedExactly) {
  const Report report = run_checks(fixture("erd_drift"), {"erd-table"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/loggen/renderer.cpp:9: error: [erd-table] 'ec_node_voltage_falt' "
                "(emitted ERD event name) has no counterpart in "
                "src/parsers/line_classifier.cpp",
                "src/loggen/renderer.cpp:10: error: [erd-table] 'ec_link_error' maps to "
                "LinkError here but to LaneDegrade in src/parsers/line_classifier.cpp",
                "src/parsers/line_classifier.cpp:8: error: [erd-table] "
                "'ec_node_voltage_fault' (parsed ERD event name) has no counterpart in "
                "src/loggen/renderer.cpp",
                "src/parsers/line_classifier.cpp:9: error: [erd-table] 'ec_link_error' "
                "maps to LaneDegrade here but to LinkError in src/loggen/renderer.cpp",
            }));
}

TEST(LintEventNames, DroppedAndReorderedNameTableIsDiagnosed) {
  const Report report = run_checks(fixture("event_drift"), {"event-names"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/logmodel/event_type.cpp:6: error: [event-names] kEventNames has 2 "
                "entries but EventType has 3 enumerators (to_string/"
                "event_type_from_string will misreport)",
                "src/logmodel/event_type.cpp:8: error: [event-names] kEventNames[1] is "
                "\"MachineCheckException\" but enumerator #1 is KernelOops (declared at "
                "src/logmodel/event_type.hpp:7)",
            }));
}

TEST(LintBannedPattern, NondeterministicSeedingIsDiagnosedAndSuppressible) {
  const Report report = run_checks(fixture("banned"), {"banned-pattern"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/faultsim/seeding.cpp:6: error: [banned-pattern] libc rand()/srand() "
                "is banned; use util::Rng (deterministic xoshiro256**)",
                "src/faultsim/seeding.cpp:6: error: [banned-pattern] wall-clock seeding "
                "is banned; simulation time comes from the scenario config",
                "src/faultsim/seeding.cpp:7: error: [banned-pattern] libc rand()/srand() "
                "is banned; use util::Rng (deterministic xoshiro256**)",
            }));
}

TEST(LintHeaderHygiene, MissingPragmaOnceAndUsingNamespaceAreDiagnosed) {
  const Report report = run_checks(fixture("hygiene"), {"header-hygiene"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/core/bad_header.hpp:1: error: [header-hygiene] header lacks "
                "#pragma once in its first 30 lines",
                "src/core/bad_header.hpp:5: error: [header-hygiene] `using namespace` "
                "in a header leaks into every includer",
            }));
}

TEST(LintCorpusFiles, DriftedFileNameTableIsDiagnosedExactly) {
  const Report report = run_checks(fixture("corpus_drift"), {"corpus-files"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/loggen/corpus.cpp:6: error: [corpus-files] 'p0-mesages.log' "
                "(corpus file name) has no counterpart in FORMATS.md",
                "FORMATS.md:6: error: [corpus-files] 'p0-messages.log' (documented "
                "corpus file) has no counterpart in src/loggen/corpus.cpp",
                "FORMATS.md:7: error: [corpus-files] 'erd.log' (documented corpus "
                "file) has no counterpart in src/loggen/corpus.cpp",
            }));
}

TEST(LintServeProtocol, DriftedVerbTableIsDiagnosedExactly) {
  const Report report = run_checks(fixture("serve_drift"), {"serve-protocol"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/serve/protocol.cpp:7: error: [serve-protocol] 'ping' maps to "
                "liveness probe, answers pong here but to liveness probe in "
                "FORMATS.md",
                "src/serve/protocol.cpp:8: error: [serve-protocol] 'statuss' "
                "(serve verb) has no counterpart in FORMATS.md",
                "FORMATS.md:7: error: [serve-protocol] 'lead_time' (documented "
                "verb) has no counterpart in src/serve/protocol.cpp",
                "FORMATS.md:8: error: [serve-protocol] 'ping' maps to liveness "
                "probe here but to liveness probe, answers pong in "
                "src/serve/protocol.cpp",
                "FORMATS.md:9: error: [serve-protocol] 'status' (documented verb) "
                "has no counterpart in src/serve/protocol.cpp",
            }));
}

TEST(LintBenchPipeline, HandWiredFigureBenchIsDiagnosed) {
  const Report report = run_checks(fixture("bench_drift"), {"bench-pipeline"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "bench/fig99_handwired.cpp:7: error: [bench-pipeline] figure bench "
                "calls analyze_failures() directly; route it through "
                "bench::run_pipeline or core::AnalysisEngine",
                "bench/fig99_handwired.cpp:1: error: [bench-pipeline] figure bench "
                "never uses bench::run_pipeline/run_system or core::AnalysisEngine; "
                "hand-wired analysis drifts from the shared pipeline",
            }));
}

TEST(LintBenchPipeline, MissingBenchDirectoryIsDiagnosed) {
  const Report report = run_checks(fixture("hygiene"), {"bench-pipeline"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "bench:0: error: [bench-pipeline] no bench/ directory under repo root",
            }));
}

TEST(LintMetricNaming, DriftedInstrumentNamesAreDiagnosedExactly) {
  const Report report = run_checks(fixture("metric_drift"), {"metric-naming"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/util/instrumented.cpp:8: error: [metric-naming] metric/span name "
                "'hpcfail.Ingest.BytesRead' drifts from hpcfail.<layer>.<snake_case> "
                "(lowercase snake_case segments, at least two after 'hpcfail')",
                "src/util/instrumented.cpp:9: error: [metric-naming] metric/span name "
                "'hpcfail.pool' drifts from hpcfail.<layer>.<snake_case> (lowercase "
                "snake_case segments, at least two after 'hpcfail')",
                "src/util/instrumented.cpp:10: error: [metric-naming] instrument name "
                "'ingest.chunks' is not rooted under 'hpcfail.'; metric and span names "
                "follow hpcfail.<layer>.<snake_case>",
                "src/util/instrumented.cpp:11: error: [metric-naming] metric/span name "
                "prefix 'hpcfail.pool.Worker' drifts from hpcfail.<layer>.<snake_case> "
                "(complete segments before the runtime suffix must be lowercase "
                "snake_case)",
                "src/util/instrumented.cpp:13: error: [metric-naming] metric/span name "
                "'hpcfail.engine.Analyzer' drifts from hpcfail.<layer>.<snake_case> "
                "(lowercase snake_case segments, at least two after 'hpcfail')",
            }));
}

TEST(LintFaultSites, DriftedSitesAndInventoryAreDiagnosedExactly) {
  const Report report = run_checks(fixture("fault_drift"), {"fault-sites"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/parsers/pipeline.cpp:6: error: [fault-sites] fault site "
                "'ingest.read.badbit' is already declared at "
                "src/parsers/pipeline.cpp:5; site names must be unique across the "
                "tree",
                "src/parsers/pipeline.cpp:7: error: [fault-sites] fault site "
                "'ingest.Read.torn' drifts from <layer>.<component>.<kind> "
                "(lowercase snake_case dot segments, at least three)",
                "src/parsers/pipeline.cpp:7: error: [fault-sites] fault site "
                "'ingest.Read.torn' is not listed in the kSites inventory "
                "(src/util/fault.cpp); the sweep harness cannot arm it",
                "src/parsers/pipeline.cpp:8: error: [fault-sites] fault site "
                "'parse.oops' drifts from <layer>.<component>.<kind> (lowercase "
                "snake_case dot segments, at least three)",
                "src/parsers/pipeline.cpp:8: error: [fault-sites] fault site "
                "'parse.oops' is not listed in the kSites inventory "
                "(src/util/fault.cpp); the sweep harness cannot arm it",
                "src/util/fault.cpp:4: error: [fault-sites] kSites entry "
                "'store.gone.bad_alloc' has no HPCFAIL_FAULT_SITE use in the tree; "
                "remove it or wire the site",
                "src/util/fault.cpp:5: error: [fault-sites] kSites entry "
                "'ingest.retire.bad_alloc' is out of order; the inventory stays "
                "sorted so the sweep enumeration is stable",
            }));
}

TEST(LintSnapshotVersion, BumpedConstantWithoutDocUpdateIsDiagnosedExactly) {
  const Report report = run_checks(fixture("snapshot_drift"), {"snapshot-version"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "FORMATS.md:5: error: [snapshot-version] documented snapshot "
                "format version **1** does not match kSnapshotFormatVersion = 2 "
                "in src/util/snapshot.hpp; bump the doc (and its layout "
                "section) with the constant",
            }));
}

TEST(LintCaptureLifetime, ByRefCapturesIntoPoolSinksAreDiagnosedExactly) {
  const Report report = run_checks(fixture("capture_drift"), {"capture-lifetime"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/parsers/pipeline.cpp:11: error: [capture-lifetime] lambda passed "
                "to ThreadPool::submit() captures by reference; a queued task can "
                "outlive the enclosing scope (the PR 1 use-after-scope class) — "
                "capture by value/move or justify with allow(capture-lifetime)",
                "src/parsers/pipeline.cpp:12: error: [capture-lifetime] lambda passed "
                "to ThreadPool::parallel_for_ranges() captures by reference; a queued "
                "task can outlive the enclosing scope (the PR 1 use-after-scope "
                "class) — capture by value/move or justify with "
                "allow(capture-lifetime)",
                "src/parsers/pipeline.cpp:24: error: [capture-lifetime] lambda passed "
                "to ThreadPool::submit() captures by reference; a queued task can "
                "outlive the enclosing scope (the PR 1 use-after-scope class) — "
                "capture by value/move or justify with allow(capture-lifetime)",
                "src/parsers/pipeline.cpp:23: error: [capture-lifetime] "
                "allow(capture-lifetime) suppression is missing its reason; write: "
                "// hpcfail-lint: allow(capture-lifetime) -- <why this is safe>",
            }));
}

TEST(LintDanglingView, EscapingViewsAndTemporaryBindingsAreDiagnosedExactly) {
  const Report report = run_checks(fixture("view_drift"), {"dangling-view"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/logmodel/views.cpp:13: error: [dangling-view] 'bad_name' returns "
                "a std::string_view derived from local/parameter 'name'; the view "
                "dangles when the function returns (the PR 5 hazard class) — return "
                "an owning type or a view of caller-owned data",
                "src/logmodel/views.cpp:17: error: [dangling-view] 'bad_ids' returns "
                "a std::span derived from local/parameter 'ids'; the view dangles "
                "when the function returns (the PR 5 hazard class) — return an owning "
                "type or a view of caller-owned data",
                "src/logmodel/views.cpp:33: error: [dangling-view] 'rejected' returns "
                "a std::string_view derived from local/parameter 'name'; the view "
                "dangles when the function returns (the PR 5 hazard class) — return "
                "an owning type or a view of caller-owned data",
                "src/logmodel/views.cpp:32: error: [dangling-view] "
                "allow(dangling-view) suppression is missing its reason; write: "
                "// hpcfail-lint: allow(dangling-view) -- <why this is safe>",
                "src/logmodel/views.cpp:21: error: [dangling-view] binds 'times()' "
                "off a temporary LogStore; the view dangles at the end of the full "
                "expression (the PR 5 hazard class) — name the LogStore first",
            }));
}

TEST(LintFinalizeProtocol, UnguardedPublicAccessorsAreDiagnosedExactly) {
  const Report report = run_checks(fixture("finalize_drift"), {"finalize-protocol"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/logmodel/log_store.hpp:13: error: [finalize-protocol] public "
                "LogStore::size() reads store state without a "
                "require_finalized()/finalized() guard and LogStore does not fail "
                "loud at construction; throw std::logic_error on non-finalized "
                "access or justify with allow(finalize-protocol)",
                "src/logmodel/log_store.hpp:17: error: [finalize-protocol] public "
                "LogStore::last() reads store state without a "
                "require_finalized()/finalized() guard and LogStore does not fail "
                "loud at construction; throw std::logic_error on non-finalized "
                "access or justify with allow(finalize-protocol)",
                "src/logmodel/log_store.hpp:16: error: [finalize-protocol] "
                "allow(finalize-protocol) suppression is missing its reason; write: "
                "// hpcfail-lint: allow(finalize-protocol) -- <why this is safe>",
            }));
}

TEST(LintRawSync, BareConcurrencyAndOwnershipPrimitivesAreDiagnosedExactly) {
  const Report report = run_checks(fixture("rawsync_drift"), {"raw-sync"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/monitor/watchdog.cpp:5: error: [raw-sync] bare std::thread "
                "outside src/util; route concurrency through util::ThreadPool "
                "(instrumented, exception-joining) or justify with allow(raw-sync)",
                "src/monitor/watchdog.cpp:6: error: [raw-sync] detach() leaves a "
                "task running past its owner's lifetime with no join point; submit "
                "to util::ThreadPool and hold the future instead",
                "src/monitor/watchdog.cpp:7: error: [raw-sync] raw `new` without an "
                "owning smart pointer; use std::make_unique (or a container) so "
                "ownership is explicit",
                "src/monitor/watchdog.cpp:9: error: [raw-sync] const_cast subverts "
                "the const contract of the API it touches; fix constness at the "
                "interface or take an explicit copy",
                "src/monitor/watchdog.cpp:21: error: [raw-sync] raw `new` without an "
                "owning smart pointer; use std::make_unique (or a container) so "
                "ownership is explicit",
                "src/monitor/watchdog.cpp:20: error: [raw-sync] allow(raw-sync) "
                "suppression is missing its reason; write: // hpcfail-lint: "
                "allow(raw-sync) -- <why this is safe>",
            }));
}

TEST(LintHotPathScan, RawNewlineScansAndLineVectorsAreDiagnosedExactly) {
  const Report report = run_checks(fixture("scan_drift"), {"hot-path-scan"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/parsers/chunk_pipeline.cpp:8: error: [hot-path-scan] raw "
                "newline scan on the ingest hot path; use util::scan::find_byte/"
                "rfind_byte (SWAR/SIMD dispatched) or util::scan::LineCursor",
                "src/parsers/chunk_pipeline.cpp:12: error: [hot-path-scan] "
                "split_lines allocates a per-line vector on the ingest hot path; "
                "iterate with util::scan::LineCursor (zero allocation)",
                "src/parsers/chunk_pipeline.cpp:18: error: [hot-path-scan] raw "
                "newline scan on the ingest hot path; use util::scan::find_byte/"
                "rfind_byte (SWAR/SIMD dispatched) or util::scan::LineCursor",
                "src/parsers/chunk_pipeline.cpp:17: error: [hot-path-scan] "
                "allow(hot-path-scan) suppression is missing its reason; write: "
                "// hpcfail-lint: allow(hot-path-scan) -- <why this is safe>",
                "src/util/chunked_reader.cpp:6: error: [hot-path-scan] raw "
                "newline scan on the ingest hot path; use util::scan::find_byte/"
                "rfind_byte (SWAR/SIMD dispatched) or util::scan::LineCursor",
            }));
}

// A reasoned allow suppresses exactly its finding: the tolerated() cases in
// every drift fixture carry `allow(<check>) -- <reason>` and none of the
// pinned diagnostics above mention their lines.  This locks the other half
// of the contract: a reasonless allow never suppresses, and is itself
// diagnosed, in every one of the four fixtures.
TEST(LintSuppressions, ReasonlessAllowNeverSuppresses) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"capture_drift", "capture-lifetime"},
      {"view_drift", "dangling-view"},
      {"finalize_drift", "finalize-protocol"},
      {"rawsync_drift", "raw-sync"},
      {"scan_drift", "hot-path-scan"},
  };
  for (const auto& [name, check] : cases) {
    SCOPED_TRACE(name);
    const Report report = run_checks(fixture(name), {check});
    bool saw_missing_reason = false;
    for (const auto& d : report.diagnostics) {
      if (d.message.find("suppression is missing its reason") != std::string::npos) {
        saw_missing_reason = true;
      }
    }
    EXPECT_TRUE(saw_missing_reason);
  }
}

TEST(LintSarif, ReportRendersAsWellFormedSarif210) {
  const Report report = run_checks(fixture("rawsync_drift"), {"raw-sync"});
  ASSERT_FALSE(report.diagnostics.empty());

  const JsonValue doc = parse_json(to_sarif(report));
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  ASSERT_NE(doc.find("version"), nullptr);
  EXPECT_EQ(doc.find("version")->text, "2.1.0");
  ASSERT_NE(doc.find("$schema"), nullptr);

  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->array.size(), 1u);
  const JsonValue& run = runs->array[0];

  const JsonValue* tool = run.find("tool");
  ASSERT_NE(tool, nullptr);
  const JsonValue* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->find("name")->text, "hpcfail-lint");

  // One rule per registered check, ids matching the registry.
  const JsonValue* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  std::set<std::string> rule_ids;
  for (const auto& rule : rules->array) {
    ASSERT_NE(rule.find("id"), nullptr);
    ASSERT_NE(rule.find("shortDescription"), nullptr);
    rule_ids.insert(rule.find("id")->text);
  }
  for (const auto& name : hpcfail::lint::all_check_names()) {
    EXPECT_TRUE(rule_ids.count(name)) << name;
  }

  // One result per diagnostic, in order, with matching location/level.
  const JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), report.diagnostics.size());
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const auto& d = report.diagnostics[i];
    const JsonValue& r = results->array[i];
    EXPECT_EQ(r.find("ruleId")->text, d.check);
    EXPECT_EQ(r.find("level")->text, "error");
    EXPECT_EQ(r.find("message")->find("text")->text, d.message);
    const JsonValue& loc = r.find("locations")->array.at(0);
    const JsonValue* phys = loc.find("physicalLocation");
    ASSERT_NE(phys, nullptr);
    EXPECT_EQ(phys->find("artifactLocation")->find("uri")->text, d.file);
    EXPECT_EQ(phys->find("region")->find("startLine")->number,
              static_cast<double>(d.line));
  }
}

TEST(LintBaseline, BaselinedFindingsAreSuppressedAndStaleEntriesSurface) {
  Report report = run_checks(fixture("rawsync_drift"), {"raw-sync"});
  const std::size_t total = report.diagnostics.size();
  ASSERT_GE(total, 2u);

  // Baseline the first finding (by its line-free key) plus a stale entry.
  std::vector<BaselineEntry> baseline;
  baseline.push_back({report.diagnostics[0].file, report.diagnostics[0].check,
                      report.diagnostics[0].message});
  baseline.push_back({"src/gone.cpp", "raw-sync", "finding that no longer exists"});

  const auto result = apply_baseline(report, baseline);
  EXPECT_EQ(result.suppressed, 1u);
  EXPECT_EQ(report.diagnostics.size(), total - 1);
  ASSERT_EQ(result.stale_keys.size(), 1u);
  EXPECT_EQ(result.stale_keys[0],
            "src/gone.cpp|raw-sync|finding that no longer exists");
}

TEST(LintBaseline, RoundTripsThroughRenderAndLoad) {
  Report report = run_checks(fixture("capture_drift"), {"capture-lifetime"});
  ASSERT_FALSE(report.diagnostics.empty());

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "hpcfail_lint_baseline.txt";
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << render_baseline(report);
  }

  const auto entries = load_baseline(path);
  EXPECT_FALSE(entries.empty());
  const auto result = apply_baseline(report, entries);
  EXPECT_TRUE(report.diagnostics.empty());  // everything baselined away
  EXPECT_TRUE(result.stale_keys.empty());
  EXPECT_TRUE(report.ok());
  std::filesystem::remove(path);
}

TEST(LintBaseline, MissingBaselineFileIsAnEmptyBaseline) {
  const auto entries = load_baseline("/nonexistent/hpcfail/baseline.txt");
  EXPECT_TRUE(entries.empty());
}

TEST(LintClean, ConsistentFixtureTreePasses) {
  const Report report = run_checks(
      fixture("clean"),
      {"erd-table", "event-names", "corpus-files", "snapshot-version",
       "banned-pattern", "header-hygiene", "bench-pipeline", "metric-naming",
       "fault-sites", "capture-lifetime", "dangling-view", "finalize-protocol",
       "raw-sync", "hot-path-scan", "serve-protocol"});
  EXPECT_TRUE(report.ok()) << (report.ok() ? std::string{}
                                           : rendered(report).front());
}

TEST(LintClean, MissingFilesAreReportedNotFatal) {
  const Report report = run_checks(fixture("hygiene"), {"erd-table"});
  ASSERT_FALSE(report.ok());
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.line, 0u);
    EXPECT_NE(d.message.find("cannot read file"), std::string::npos);
  }
}

TEST(LintDispatch, UnknownCheckNameIsAUsageDiagnostic) {
  const Report report = run_checks(fixture("clean"), {"no-such-check"});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].check, "usage");
}

// The gate the ctest target enforces, exercised in-process as well so a
// plain `ctest` run fails locally the moment the real universes drift.
TEST(LintRealTree, AllChecksPassOnTheRepo) {
  const Report report = run_checks(HPCFAIL_REPO_ROOT);
  EXPECT_TRUE(report.ok()) << (report.ok() ? std::string{}
                                           : report.diagnostics.front().to_string());
}

}  // namespace
