file(REMOVE_RECURSE
  "CMakeFiles/fig09_warning_frequency.dir/fig09_warning_frequency.cpp.o"
  "CMakeFiles/fig09_warning_frequency.dir/fig09_warning_frequency.cpp.o.d"
  "fig09_warning_frequency"
  "fig09_warning_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_warning_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
