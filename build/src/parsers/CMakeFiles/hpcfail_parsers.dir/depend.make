# Empty dependencies file for hpcfail_parsers.
# This may be replaced when dependencies are built.
