#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "core/markdown_report.hpp"
#include "parsers/ingest.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hpcfail::serve {

namespace {

/// Latency bucket edges (microseconds) shared by every request observation
/// — the registry requires identical bounds on re-lookup.
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds = {50,    100,   250,    500,    1000,
                                             2500,  5000,  10000,  25000,  50000,
                                             100000, 250000, 1000000};
  return bounds;
}

}  // namespace

Server::Server(parsers::ParsedCorpus corpus, ServerConfig config)
    : config_(config),
      topology_(std::move(corpus.topology)),
      jobs_(std::move(corpus.jobs)),
      label_(corpus.system.label),
      corpus_begin_(corpus.begin),
      monitor_(config.monitor) {
  util::TraceSpan span("hpcfail.serve.boot");
  parse_ctx_.topo = &topology_;
  const util::CivilTime civil = util::civil_time(corpus_begin_);
  parse_ctx_.base_year = civil.year;
  parse_ctx_.base_month = civil.month;

  auto epoch = std::make_shared<Epoch>();
  epoch->id = 0;
  epoch->store = std::move(corpus.store);
  window_of(epoch->store, epoch->begin, epoch->end);

  // Replay the boot corpus through the monitor so node health covers
  // history, not just the tail.
  boot_alerts_ = monitor_.ingest_all(epoch->store);
  for (const core::Alert& alert : boot_alerts_) apply_alert(alert, health_);
  monitor_watermark_ =
      epoch->store.size() == 0 ? corpus_begin_ : epoch->store.last_time();
  epoch->health = health_;

  publish(std::move(epoch));
}

void Server::attach_tail(std::string path, logmodel::LogSource source,
                         std::uint64_t offset) {
  parsers::LineParseFn parse = parsers::line_parser_for(source);
  if (parse == nullptr) {
    throw std::invalid_argument(
        "Server::attach_tail: source '" + std::string(logmodel::to_string(source)) +
        "' has no stateless line parser (scheduler logs are not tailable)");
  }
  tails_.push_back(AttachedTail{TailReader(std::move(path), source, offset), parse});
}

Server::TailPoll Server::poll_tail() {
  util::TraceSpan span("hpcfail.serve.tail_poll");
  util::MetricsRegistry* reg = util::metrics();
  if (reg != nullptr) reg->counter("hpcfail.serve.tail_polls").increment();

  TailPoll out;
  const std::shared_ptr<Epoch> snap = current();

  logmodel::SymbolTable scratch;
  parsers::ParseContext ctx = parse_ctx_;
  ctx.symbols = &scratch;

  // (record, resolved detail text) in arrival order across the tails.
  std::vector<std::pair<logmodel::LogRecord, std::string>> fresh;
  for (AttachedTail& tail : tails_) {
    TailReader::Poll poll = tail.reader.poll();
    if (!poll.ok()) {
      if (!out.error.has_value()) out.error = poll.error;
      continue;  // offset did not advance; the next poll retries this tail
    }
    for (const std::string& line : poll.lines) {
      ++out.lines;
      if (line.empty()) continue;
      if (const auto record = tail.parse(line, ctx)) {
        fresh.emplace_back(*record, std::string(scratch.view(record->detail)));
      }
    }
  }
  out.records = fresh.size();
  if (reg != nullptr) {
    reg->counter("hpcfail.serve.tail_lines").add(out.lines);
    reg->counter("hpcfail.serve.tail_records").add(out.records);
  }
  if (fresh.empty()) return out;

  // Build the next epoch: previous records + symbols (deep copies; symbol
  // ids are preserved, so old records stay resolvable) plus the fresh tail
  // records interned into the copy.  The LogStore constructor re-sorts, so
  // a tail whose times interleave another source's history still lands in
  // time order.
  auto next = std::make_shared<Epoch>();
  next->id = snap->id + 1;
  std::vector<logmodel::LogRecord> records = snap->store.records();
  logmodel::SymbolTable symbols = snap->store.symbols();
  records.reserve(records.size() + fresh.size());
  for (const auto& [record, detail] : fresh) {
    logmodel::LogRecord r = record;
    r.detail = symbols.intern(detail);
    records.push_back(r);
  }
  next->store = logmodel::LogStore(std::move(records), std::move(symbols));
  window_of(next->store, next->begin, next->end);
  next->tail_records = snap->tail_records + fresh.size();

  // Feed the monitor in arrival order.  It requires non-decreasing times;
  // a tail record older than the watermark (its times interleave another
  // source's already-replayed history) is analyzable but not monitorable.
  for (const auto& [record, detail] : fresh) {
    if (record.time < monitor_watermark_) {
      if (reg != nullptr) reg->counter("hpcfail.serve.monitor_skipped").increment();
      continue;
    }
    monitor_watermark_ = record.time;
    for (core::Alert& alert : monitor_.ingest(record, detail)) {
      apply_alert(alert, health_);
      out.alerts.push_back(std::move(alert));
    }
  }
  next->health = health_;

  publish(std::move(next));
  return out;
}

std::string Server::handle_line(std::string_view line) {
  util::TraceSpan span("hpcfail.serve.request");
  util::MetricsRegistry* reg = util::metrics();
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = reg != nullptr ? Clock::now() : Clock::time_point{};
  if (reg != nullptr) reg->counter("hpcfail.serve.requests").increment();

  const auto finish = [reg, start](std::string response, bool error) {
    if (reg != nullptr) {
      if (error) reg->counter("hpcfail.serve.request_errors").increment();
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - start);
      reg->histogram("hpcfail.serve.request_latency_us", latency_bounds())
          .observe(static_cast<double>(us.count()));
    }
    return response;
  };

  RequestParse parsed = parse_request(line);
  if (!parsed.ok()) {
    return finish(error_response(parsed.id, parsed.error, parsed.message), true);
  }
  const Request& req = *parsed.request;
  const std::shared_ptr<Epoch> snap = current();

  std::string data;
  std::string bad_params;
  try {
    if (req.verb == "ping") {
      data = data_ping();
    } else if (req.verb == "status") {
      data = data_status(*snap);
    } else if (req.verb == "node_health") {
      data = data_node_health(*snap, req.params, bad_params);
    } else if (req.verb == "lead_time") {
      data = data_lead_time(analysis_of(*snap));
    } else if (req.verb == "causes") {
      data = data_causes(analysis_of(*snap));
    } else if (req.verb == "report") {
      data = data_report(*snap, req.params, bad_params);
    } else if (req.verb == "metrics") {
      data = data_metrics();
    } else {  // "shutdown" — parse_request only admits table verbs
      data = data_shutdown();
    }
  } catch (const std::exception& e) {
    return finish(error_response(req.id, ProtocolErrorKind::Internal, e.what()), true);
  }
  if (!bad_params.empty()) {
    return finish(error_response(req.id, ProtocolErrorKind::BadParams, bad_params),
                  true);
  }
  return finish(ok_response(req.id, req.verb, snap->id, data), false);
}

std::uint64_t Server::epoch() const noexcept { return current()->id; }

std::shared_ptr<Server::Epoch> Server::current() const {
  const std::scoped_lock lock(epoch_mutex_);
  return epoch_;
}

void Server::publish(std::shared_ptr<Epoch> next) {
  if (util::MetricsRegistry* reg = util::metrics()) {
    reg->gauge("hpcfail.serve.epoch").set(static_cast<std::int64_t>(next->id));
  }
  const std::scoped_lock lock(epoch_mutex_);
  epoch_ = std::move(next);
}

const core::AnalysisResult& Server::analysis_of(Epoch& epoch) {
  bool computed = false;
  std::call_once(epoch.once, [this, &epoch, &computed] {
    computed = true;
    util::TraceSpan span("hpcfail.serve.analyze_epoch");
    core::AnalysisConfig cfg;
    cfg.detector = config_.detector;
    cfg.root_cause = config_.root_cause;
    cfg.pool = config_.pool;
    const core::AnalysisEngine engine(cfg);
    epoch.analysis = std::make_shared<const core::AnalysisResult>(
        engine.analyze(epoch.store, &jobs_, epoch.begin, epoch.end));
    // The markdown report runs the same engine pipeline internally; render
    // it here so one recompute per epoch covers every analysis-backed verb.
    core::ReportInputs inputs;
    inputs.store = &epoch.store;
    inputs.jobs = &jobs_;
    inputs.topology = &topology_;
    inputs.system_label = label_;
    inputs.begin = epoch.begin;
    inputs.end = epoch.end;
    epoch.report = core::markdown_report(inputs);
    recomputes_.fetch_add(1, std::memory_order_relaxed);
    if (util::MetricsRegistry* reg = util::metrics()) {
      reg->counter("hpcfail.serve.analysis_recomputes").increment();
    }
  });
  if (!computed) {
    if (util::MetricsRegistry* reg = util::metrics()) {
      reg->counter("hpcfail.serve.cache_hits").increment();
    }
  }
  return *epoch.analysis;
}

void Server::apply_alert(const core::Alert& alert,
                         std::unordered_map<std::uint32_t, NodeHealth>& health) {
  NodeHealth& node = health[alert.node.value];
  switch (alert.kind) {
    case core::AlertKind::PatternWarning:
    case core::AlertKind::ExternalEarlyWarning:
      ++node.warnings;
      break;
    case core::AlertKind::FailureConfirmed:
      ++node.failures;
      node.down = true;
      break;
    case core::AlertKind::NodeRecovered:
      ++node.recoveries;
      node.down = false;
      break;
  }
  node.has_alert = true;
  node.last = alert;
}

void Server::window_of(const logmodel::LogStore& store, util::TimePoint& begin,
                       util::TimePoint& end) const {
  if (store.size() == 0) {
    begin = corpus_begin_;
    end = corpus_begin_;
    return;
  }
  end = store.last_time() + util::Duration::microseconds(1);
  begin = store.first_time();
  if (end - begin > config_.window) begin = end - config_.window;
}

// --------------------------------------------------------------- handlers --

std::string Server::data_ping() const { return "{\"pong\":true}"; }

std::string Server::data_status(const Epoch& epoch) const {
  std::size_t down = 0;
  for (const auto& [id, node] : epoch.health) {
    if (node.down) ++down;
  }
  std::string out = "{\"analysis_recomputes\":";
  append_json_number(out, analysis_recomputes());
  out += ",\"epoch\":";
  append_json_number(out, epoch.id);
  out += ",\"nodes\":";
  append_json_number(out, static_cast<std::uint64_t>(epoch.store.nodes().size()));
  out += ",\"nodes_down\":";
  append_json_number(out, static_cast<std::uint64_t>(down));
  out += ",\"records\":";
  append_json_number(out, static_cast<std::uint64_t>(epoch.store.size()));
  out += ",\"system\":";
  append_json_string(out, label_);
  out += ",\"tail_records\":";
  append_json_number(out, static_cast<std::uint64_t>(epoch.tail_records));
  out += ",\"window_begin\":";
  append_json_string(out, util::format_iso(epoch.begin));
  out += ",\"window_end\":";
  append_json_string(out, util::format_iso(epoch.end));
  out += "}";
  return out;
}

std::string Server::data_node_health(const Epoch& epoch, const JsonValue& params,
                                     std::string& bad_params) const {
  const JsonValue* name = params.find("node");
  if (name == nullptr || !name->is_string()) {
    bad_params = "node_health needs params.node (string node name)";
    return {};
  }
  const std::optional<platform::NodeId> node =
      topology_.node_from_name(name->as_string());
  if (!node.has_value()) {
    bad_params = "unknown node name \"" + name->as_string() + "\"";
    return {};
  }

  const auto it = epoch.health.find(node->value);
  const NodeHealth* health = it == epoch.health.end() ? nullptr : &it->second;
  const std::size_t in_window =
      epoch.store.node_range(*node, epoch.begin, epoch.end).size();

  std::string out = "{\"down\":";
  out += (health != nullptr && health->down) ? "true" : "false";
  out += ",\"failures\":";
  append_json_number(out, health != nullptr ? health->failures : 0);
  out += ",\"last_alert\":";
  if (health != nullptr && health->has_alert) {
    out += "{\"kind\":";
    append_json_string(out, core::to_string(health->last.kind));
    out += ",\"message\":";
    append_json_string(out, health->last.message);
    out += ",\"suspected\":";
    append_json_string(out, logmodel::to_string(health->last.suspected));
    out += ",\"time\":";
    append_json_string(out, util::format_iso(health->last.time));
    out += "}";
  } else {
    out += "null";
  }
  out += ",\"node\":";
  append_json_string(out, name->as_string());
  out += ",\"records_in_window\":";
  append_json_number(out, static_cast<std::uint64_t>(in_window));
  out += ",\"recoveries\":";
  append_json_number(out, health != nullptr ? health->recoveries : 0);
  out += ",\"warnings\":";
  append_json_number(out, health != nullptr ? health->warnings : 0);
  out += "}";
  return out;
}

std::string Server::data_lead_time(const core::AnalysisResult& analysis) const {
  const core::LeadTimeSummary& s = analysis.lead_time_summary;
  std::string out = "{\"enhanceable\":";
  append_json_number(out, static_cast<std::uint64_t>(s.enhanceable));
  out += ",\"enhanceable_fraction\":";
  append_json_number(out, s.enhanceable_fraction());
  out += ",\"enhancement_factor\":";
  append_json_number(out, s.enhancement_factor());
  out += ",\"failures\":";
  append_json_number(out, static_cast<std::uint64_t>(s.failures));
  out += ",\"mean_external_minutes\":";
  append_json_number(out, s.external_minutes.mean());
  out += ",\"mean_internal_minutes\":";
  append_json_number(out, s.internal_minutes.mean());
  out += "}";
  return out;
}

std::string Server::data_causes(const core::AnalysisResult& analysis) const {
  // Cause names sorted alphabetically, every cause present (zero counts
  // included) so clients see a fixed schema.
  std::vector<std::pair<std::string_view, std::size_t>> counts;
  counts.reserve(logmodel::kRootCauseCount);
  for (std::size_t i = 0; i < logmodel::kRootCauseCount; ++i) {
    const auto cause = static_cast<logmodel::RootCause>(i);
    counts.emplace_back(logmodel::to_string(cause), analysis.breakdown.count(cause));
  }
  std::sort(counts.begin(), counts.end());

  std::string out = "{\"counts\":{";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += ",";
    append_json_string(out, counts[i].first);
    out += ":";
    append_json_number(out, static_cast<std::uint64_t>(counts[i].second));
  }
  out += "},\"layers\":{\"application\":";
  append_json_number(out, analysis.layers.application);
  out += ",\"application_triggered\":";
  append_json_number(out, analysis.layers.application_triggered);
  out += ",\"hardware\":";
  append_json_number(out, analysis.layers.hardware);
  out += ",\"memory_exhaustion\":";
  append_json_number(out, analysis.layers.memory_exhaustion);
  out += ",\"software\":";
  append_json_number(out, analysis.layers.software);
  out += ",\"unknown\":";
  append_json_number(out, analysis.layers.unknown);
  out += "},\"total\":";
  append_json_number(out, static_cast<std::uint64_t>(analysis.breakdown.total));
  out += "}";
  return out;
}

std::string Server::data_report(Epoch& epoch, const JsonValue& params,
                                std::string& bad_params) {
  analysis_of(epoch);  // renders epoch.report on first use
  const std::string& report = epoch.report;

  // Slice on "## " headings; the heading text names the section.
  struct Section {
    std::string_view title;
    std::size_t begin = 0;  ///< offset of the heading line
    std::size_t end = 0;    ///< offset one past the slice
  };
  std::vector<Section> sections;
  std::size_t pos = 0;
  while (pos < report.size()) {
    const bool at_heading = report.compare(pos, 3, "## ") == 0;
    const std::size_t eol = report.find('\n', pos);
    const std::size_t next = eol == std::string::npos ? report.size() : eol + 1;
    if (at_heading) {
      if (!sections.empty()) sections.back().end = pos;
      const std::size_t title_end = eol == std::string::npos ? report.size() : eol;
      sections.push_back(Section{
          std::string_view(report).substr(pos + 3, title_end - pos - 3), pos, 0});
    }
    pos = next;
  }
  if (!sections.empty()) sections.back().end = report.size();

  const JsonValue* wanted = params.find("section");
  if (wanted == nullptr) {
    std::string out = "{\"sections\":[";
    for (std::size_t i = 0; i < sections.size(); ++i) {
      if (i != 0) out += ",";
      append_json_string(out, sections[i].title);
    }
    out += "]}";
    return out;
  }
  if (!wanted->is_string()) {
    bad_params = "report params.section must be a string section title";
    return {};
  }
  for (const Section& section : sections) {
    if (section.title == wanted->as_string()) {
      std::string out = "{\"section\":";
      append_json_string(out, section.title);
      out += ",\"text\":";
      append_json_string(out, std::string_view(report).substr(
                                  section.begin, section.end - section.begin));
      out += "}";
      return out;
    }
  }
  bad_params = "unknown report section \"" + wanted->as_string() +
               "\"; query report without params to list sections";
  return {};
}

std::string Server::data_metrics() const {
  std::string out = "{\"metrics\":";
  if (util::MetricsRegistry* reg = util::metrics()) {
    out += reg->to_json();
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

std::string Server::data_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  return "{\"stopping\":true}";
}

}  // namespace hpcfail::serve
