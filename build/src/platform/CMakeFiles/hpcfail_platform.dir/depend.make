# Empty dependencies file for hpcfail_platform.
# This may be replaced when dependencies are built.
