// Renders structured records into raw log-file lines in the dialects of the
// system being simulated, and whole jobs into scheduler-log line groups.
//
// Line grammars (all timestamps UTC):
//   console     ISO_TS <nodename> [<cname>] kernel: <payload> [jobid=N]
//   messages    SYSLOG_TS <nodename> nhc[pid]: <payload> [jobid=N]
//   consumer    ISO_TS <nodename> [<cname>] hwerrd: <payload>
//   controller  ISO_TS <cname> cc: <payload> [value=V]
//   erd         ISO_TS erd ev=<event> src=<cname> [node=<nodename>] <detail>
//   scheduler   Slurm:  ISO_TS slurmctld: <payload>
//               Torque: MM/DD/YYYY HH:MM:SS;0008;PBS_Server;Job;<id>.sdb;<payload>
//
// The parsers in src/parsers invert these grammars exactly; the round-trip
// property is tested in tests/roundtrip_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "jobs/job.hpp"
#include "logmodel/record.hpp"
#include "logmodel/symbol_table.hpp"
#include "platform/system_config.hpp"
#include "platform/topology.hpp"

namespace hpcfail::loggen {

class LogRenderer {
 public:
  /// `symbols` resolves every record's detail Symbol and must outlive the
  /// renderer (it is the table the records were emitted through).
  LogRenderer(const platform::Topology& topo, platform::SchedulerKind scheduler,
              const logmodel::SymbolTable& symbols);

  /// Renders one record as a single line (no trailing newline). Scheduler-
  /// source records are rendered via the job grammar without a node list;
  /// prefer render_job_lines for jobs.
  [[nodiscard]] std::string render(const logmodel::LogRecord& r) const;

  /// One scheduler-log line with its event time (Torque timestamps do not
  /// sort lexically, so the corpus writer sorts by this time).
  struct SchedulerLine {
    util::TimePoint time;
    std::string text;
  };

  /// Renders the scheduler-log lines of a complete job (allocation, any
  /// cancellation/over-allocation event, end, epilogue) in time order,
  /// in the dialect of the system's scheduler.
  [[nodiscard]] std::vector<SchedulerLine> render_job_lines(const jobs::Job& job) const;

  [[nodiscard]] const platform::Topology& topology() const noexcept { return topo_; }

 private:
  [[nodiscard]] std::string console_line(const logmodel::LogRecord& r) const;
  [[nodiscard]] std::string messages_line(const logmodel::LogRecord& r) const;
  [[nodiscard]] std::string controller_line(const logmodel::LogRecord& r) const;
  [[nodiscard]] std::string erd_line(const logmodel::LogRecord& r) const;
  [[nodiscard]] std::string scheduler_line(const logmodel::LogRecord& r) const;

  const platform::Topology& topo_;
  platform::SchedulerKind scheduler_;
  const logmodel::SymbolTable& symbols_;
};

/// Kernel payload for an internal event type (shared with the consumer
/// grammar). Exposed for tests.  `symbols` resolves r.detail.
[[nodiscard]] std::string internal_payload(const logmodel::LogRecord& r,
                                           const logmodel::SymbolTable& symbols);

/// ERD event name for an external event type (e.g. "ec_node_failed").
[[nodiscard]] std::string_view erd_event_name(logmodel::EventType t) noexcept;

}  // namespace hpcfail::loggen
