// Fixture: header missing #pragma once and leaking a using-directive.
#ifndef BAD_HEADER_H
#define BAD_HEADER_H

using namespace std;

#endif
