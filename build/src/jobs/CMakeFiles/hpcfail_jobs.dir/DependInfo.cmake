
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jobs/allocator.cpp" "src/jobs/CMakeFiles/hpcfail_jobs.dir/allocator.cpp.o" "gcc" "src/jobs/CMakeFiles/hpcfail_jobs.dir/allocator.cpp.o.d"
  "/root/repo/src/jobs/app_catalog.cpp" "src/jobs/CMakeFiles/hpcfail_jobs.dir/app_catalog.cpp.o" "gcc" "src/jobs/CMakeFiles/hpcfail_jobs.dir/app_catalog.cpp.o.d"
  "/root/repo/src/jobs/job.cpp" "src/jobs/CMakeFiles/hpcfail_jobs.dir/job.cpp.o" "gcc" "src/jobs/CMakeFiles/hpcfail_jobs.dir/job.cpp.o.d"
  "/root/repo/src/jobs/job_table.cpp" "src/jobs/CMakeFiles/hpcfail_jobs.dir/job_table.cpp.o" "gcc" "src/jobs/CMakeFiles/hpcfail_jobs.dir/job_table.cpp.o.d"
  "/root/repo/src/jobs/workload.cpp" "src/jobs/CMakeFiles/hpcfail_jobs.dir/workload.cpp.o" "gcc" "src/jobs/CMakeFiles/hpcfail_jobs.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hpcfail_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
