file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/correlation.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/fit.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/fit.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/histogram.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/logistic.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/logistic.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/summary.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/summary.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/timeseries.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/timeseries.cpp.o.d"
  "libhpcfail_stats.a"
  "libhpcfail_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
