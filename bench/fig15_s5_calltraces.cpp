// Fig 15: call-trace / symptom breakdown on the institutional cluster S5
// (1 month).  Paper: 80.57% of symptomatic nodes hit hung-task timeouts
// (slow I/O, not failing); 10.59% ran low on memory triggering the
// oom-killer; 5.04% saw Lustre errors without call traces; 2.16% software
// errors (page allocation / segfaults); 1.43% hardware (GPU/disk) errors.
// Hung-task kernel oops are S5-only and do not fail nodes.
#include <set>

#include "bench_common.hpp"
#include "core/job_analysis.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 15: S5 symptom breakdown (1 month)");

  const auto p = bench::run_system(platform::SystemName::S5, 30, 1515);

  // Node-day episodes per symptom category.
  std::set<std::pair<std::uint32_t, std::int64_t>> hung, oom, lustre, sw, hw;
  for (const auto& r : p.parsed.store.records()) {
    if (!r.has_node()) continue;
    const std::pair<std::uint32_t, std::int64_t> key{r.node.value, r.time.day_index()};
    switch (r.type) {
      case logmodel::EventType::HungTaskTimeout: hung.insert(key); break;
      case logmodel::EventType::OomKill: oom.insert(key); break;
      case logmodel::EventType::LustreError:
      case logmodel::EventType::LustreBug: lustre.insert(key); break;
      case logmodel::EventType::SegFault:
      case logmodel::EventType::PageAllocationFailure: sw.insert(key); break;
      case logmodel::EventType::HardwareError:
      case logmodel::EventType::MachineCheckException: hw.insert(key); break;
      default: break;
    }
  }
  // OOM implies page-allocation noise; count each episode once, preferring
  // the more specific category (oom over sw, hung over sw).
  for (const auto& key : oom) sw.erase(key);
  for (const auto& key : hung) sw.erase(key);

  const double total = static_cast<double>(hung.size() + oom.size() + lustre.size() +
                                           sw.size() + hw.size());
  util::TextTable table({"Symptom", "node-days", "share", "paper"});
  auto row = [&](const char* name, std::size_t n, const char* paper) {
    table.row().cell(name).cell(static_cast<std::int64_t>(n)).pct(
        total > 0 ? static_cast<double>(n) / total : 0.0).cell(paper);
  };
  row("hung-task timeout (slow I/O)", hung.size(), "80.57%");
  row("oom-killer (low memory)", oom.size(), "10.59%");
  row("Lustre errors", lustre.size(), "5.04%");
  row("software errors", sw.size(), "2.16%");
  row("hardware errors", hw.size(), "1.43%");
  std::cout << table.render() << '\n';

  check.in_range("hung-task share (paper 80.57%)", hung.size() / total, 0.70, 0.90);
  check.in_range("oom share (paper 10.59%)", oom.size() / total, 0.05, 0.18);
  check.in_range("Lustre share (paper 5.04%)", lustre.size() / total, 0.02, 0.10);
  check.in_range("software share (paper 2.16%)", sw.size() / total, 0.005, 0.06);
  check.in_range("hardware share (paper 1.43%)", hw.size() / total, 0.003, 0.05);

  // Hung tasks do not fail nodes: no failure within an hour of a hung-task
  // record on the same node.
  std::size_t hung_failures = 0;
  for (const auto& f : p.failures) {
    if (hung.contains({f.event.node.value, f.event.time.day_index()}) &&
        f.inference.cause == logmodel::RootCause::Unknown) {
      ++hung_failures;
    }
  }
  check.in_range("hung-task-only failures (paper: none)",
                 static_cast<double>(hung_failures), 0, 2);

  // ~11% of jobs fail to complete (affected by node state / interactive
  // cancellations).
  const core::JobAnalyzer jobs(p.parsed.jobs, p.failures);
  const auto days = jobs.daily_outcomes(p.sim.config.begin, 30);
  std::size_t total_jobs = 0, unsuccessful = 0;
  for (const auto& d : days) {
    total_jobs += d.jobs;
    unsuccessful += d.jobs - d.success;
  }
  check.in_range("jobs failing to complete (paper ~11%)",
                 total_jobs ? static_cast<double>(unsuccessful) / total_jobs : 0.0, 0.04,
                 0.20);
  return check.exit_code();
}
