// Scan primitives: the byte-level machinery under the ingest hot path.
//
// Everything the streaming parse does per byte funnels through here —
// newline/delimiter scanning (ChunkedLineReader, split_lines, token
// walks), fixed-width digit-field parsing (ISO/syslog/torque timestamps,
// nid lists) and the single-pass payload signature matcher that replaced
// the sequential contains() cascades in line_classifier.cpp.
//
// Three implementation tiers share one contract:
//   - scalar:  byte-at-a-time reference implementations (scan::ref).
//     Never dispatched in production; retained verbatim as the oracle the
//     differential suite (tests/scan_test.cpp) compares the fast tiers
//     against, byte for byte, on adversarial corpora.
//   - SWAR:    portable 8-bytes-per-step word tricks (no intrinsics).
//     The floor every build ships: selected when the CPU lacks SSE4.2 or
//     when HPCFAIL_NO_SIMD forces it.
//   - SSE/AVX2: 16/32-bytes-per-step x86 paths picked by runtime CPU
//     detection (__builtin_cpu_supports); compiled with target attributes
//     so a generic -O2 build still carries them.
//
// Dispatch policy: active_isa() is resolved once per process from CPUID
// plus the HPCFAIL_NO_SIMD environment variable (set and not "0" ==>
// pure-SWAR fallback, the tier CI re-runs the ingest suites under).
// Tests may pin a tier explicitly with force_isa(); production code never
// does.  All tiers are exact: same results, same out-of-range behaviour,
// no reads past the end of any buffer (the suites run under ASan).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace hpcfail::util::scan {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Implementation tier, ordered weakest to strongest.
enum class Isa : int { Swar = 0, Sse42 = 1, Avx2 = 2 };

/// The tier production calls dispatch to.  Resolved once: HPCFAIL_NO_SIMD
/// (set, not "0") pins Swar; otherwise the strongest tier CPUID reports.
[[nodiscard]] Isa active_isa() noexcept;

[[nodiscard]] std::string_view isa_name(Isa isa) noexcept;

/// Test/bench hook: pin the dispatch tier (clamped to what the CPU
/// supports).  Returns the tier actually installed.
Isa force_isa(Isa isa) noexcept;

// ---------------------------------------------------------------------------
// Byte scanning
// ---------------------------------------------------------------------------

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

namespace detail {

// SWAR building blocks, in the header so the tiny-string fast paths below
// inline into their call sites (token walks call find_byte on 5..15-byte
// views ~20 times per log line; an out-of-line dispatch per call costs
// more than the scan itself).

inline constexpr std::uint64_t kOnes = 0x0101010101010101ull;
inline constexpr std::uint64_t kHighs = 0x8080808080808080ull;

inline std::uint64_t load8(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// High bit of byte i set iff byte i of x is zero.  This is the EXACT
/// per-byte variant (mask-then-add, so no cross-byte borrow): the cheaper
/// (x - kOnes) & ~x & kHighs form can flag non-zero bytes above a real
/// zero, which would break rfind and count.
inline std::uint64_t zero_bytes(std::uint64_t x) noexcept {
  return ~(((x & ~kHighs) + ~kHighs) | x) & kHighs;
}

/// High bit of byte i set iff byte i is NOT an ASCII digit.  The add is
/// carry-safe: t is masked to 7 bits per byte first, and 0x7f + 0x76 fits
/// in a byte.
inline std::uint64_t nondigit_bytes(std::uint64_t v) noexcept {
  const std::uint64_t t = v ^ 0x3030303030303030ull;
  const std::uint64_t u = (t & ~kHighs) + 0x7676767676767676ull;
  return (u | t) & kHighs;
}

/// Out-of-line ISA-dispatched scan for haystacks the inline fast path
/// does not cover.  `from < hay.size()` is the caller's invariant.
[[nodiscard]] std::size_t find_byte_long(std::string_view hay, char needle,
                                         std::size_t from) noexcept;

}  // namespace detail

/// Index of the first `needle` at or after `from`, or npos.  Short
/// remainders (<= 16 bytes) scan inline via SWAR; longer ones dispatch to
/// the active SIMD tier.
[[nodiscard]] inline std::size_t find_byte(std::string_view hay, char needle,
                                           std::size_t from = 0) noexcept {
  const std::size_t n = hay.size();
  if (from >= n) return npos;
  if (n - from > 16) return detail::find_byte_long(hay, needle, from);
  const char* p = hay.data();
  const std::uint64_t pat = detail::kOnes * static_cast<unsigned char>(needle);
  std::size_t i = from;
  while (i + 8 <= n) {
    const std::uint64_t z = detail::zero_bytes(detail::load8(p + i) ^ pat);
    if (z != 0) return i + (static_cast<std::size_t>(std::countr_zero(z)) >> 3);
    i += 8;
  }
  for (; i < n; ++i)
    if (p[i] == needle) return i;
  return npos;
}

/// Index of the last `needle` in `hay`, or npos.
[[nodiscard]] std::size_t rfind_byte(std::string_view hay, char needle) noexcept;

/// Number of occurrences of `needle` in `hay`.
[[nodiscard]] std::size_t count_byte(std::string_view hay, char needle) noexcept;

/// Retained scalar reference implementations (the differential oracle).
namespace ref {
[[nodiscard]] std::size_t find_byte(std::string_view hay, char needle,
                                    std::size_t from = 0) noexcept;
[[nodiscard]] std::size_t rfind_byte(std::string_view hay, char needle) noexcept;
[[nodiscard]] std::size_t count_byte(std::string_view hay, char needle) noexcept;
}  // namespace ref

// ---------------------------------------------------------------------------
// Zero-allocation line iteration
// ---------------------------------------------------------------------------

/// Walks the non-empty lines of a text block without allocating: the exact
/// semantics of util::split_lines ('\n' terminators, a trailing '\r'
/// stripped per line, empty lines skipped, final unterminated line kept),
/// one line view at a time.  This replaced the per-chunk
/// std::vector<std::string_view> in the streaming ingest pipeline.
class LineCursor {
 public:
  explicit constexpr LineCursor(std::string_view text) noexcept : text_(text) {}

  /// Advances to the next non-empty line.  Returns false at end of text.
  [[nodiscard]] bool next(std::string_view& line) noexcept;

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Branchless fixed-width digit fields
// ---------------------------------------------------------------------------
//
// The SWAR multiply trick: mask the ASCII digits to their low nibbles,
// then fold neighbouring pairs with three widening multiplies —
// * 2561 (== 10*256 + 1) pairs single digits into two-digit values,
// * 6553601 (== 100*65536 + 1) pairs those into four-digit values,
// * 42949672960001 (== 10000*2^32 + 1) pairs those into an eight-digit
//   value — so an 8-digit field parses in ~5 arithmetic ops with no
// per-digit branches.  Validity (every byte in '0'..'9') is one masked
// compare folded into the return value, not a loop.

/// Parses exactly 2 ASCII digits at `p` (caller guarantees 2 readable
/// bytes).  Writes the value and returns true iff both bytes are digits.
inline bool parse_digits2(const char* p, int& out) noexcept {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  const bool ok = ((v & 0xF0F0u) | (((v + 0x0606u) & 0xF0F0u) >> 4)) == 0x3333u;
  const std::uint16_t d = v & 0x0F0Fu;
  out = static_cast<int>((d & 0xFF) * 10 + (d >> 8));
  return ok;
}

/// Parses exactly 4 ASCII digits at `p` (caller guarantees 4 readable bytes).
inline bool parse_digits4(const char* p, int& out) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  const bool ok =
      ((v & 0xF0F0F0F0u) | (((v + 0x06060606u) & 0xF0F0F0F0u) >> 4)) == 0x33333333u;
  v &= 0x0F0F0F0Fu;
  v = (v * 2561u) >> 8;
  out = static_cast<int>(((v & 0x00FF00FFu) * 6553601u) >> 16);
  return ok;
}

/// Parses exactly 8 ASCII digits at `p` (caller guarantees 8 readable bytes).
inline bool parse_digits8(const char* p, std::uint32_t& out) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  const bool ok = ((v & 0xF0F0F0F0F0F0F0F0ull) |
                   (((v + 0x0606060606060606ull) & 0xF0F0F0F0F0F0F0F0ull) >> 4)) ==
                  0x3333333333333333ull;
  v &= 0x0F0F0F0F0F0F0F0Full;
  v = (v * 2561ull) >> 8;
  v = ((v & 0x00FF00FF00FF00FFull) * 6553601ull) >> 16;
  out = static_cast<std::uint32_t>(((v & 0x0000FFFF0000FFFFull) * 42949672960001ull) >> 32);
  return ok;
}

/// Length of the run of ASCII digits starting at `from`.
[[nodiscard]] inline std::size_t digit_run(std::string_view s, std::size_t from = 0) noexcept {
  const char* p = s.data();
  const std::size_t n = s.size();
  std::size_t i = from;
  while (i + 8 <= n) {
    const std::uint64_t nd = detail::nondigit_bytes(detail::load8(p + i));
    if (nd != 0) return i + (static_cast<std::size_t>(std::countr_zero(nd)) >> 3) - from;
    i += 8;
  }
  while (i < n && p[i] >= '0' && p[i] <= '9') ++i;
  return i - from;
}

/// Fast path for an unsigned decimal field: succeeds iff `s` is 1..19
/// digits with nothing else (no sign, no whitespace, no overflow
/// possible at 19 digits).  Anything it rejects must take the caller's
/// slow path (std::from_chars), which defines the full semantics.
[[nodiscard]] inline bool parse_u64_digits(std::string_view s, std::uint64_t& out) noexcept {
  const std::size_t n = s.size();
  if (n == 0 || n > 19) return false;
  if (digit_run(s) != n) return false;
  std::uint64_t value = 0;
  std::size_t i = 0;
  while (n - i >= 8) {
    std::uint32_t block = 0;
    (void)parse_digits8(s.data() + i, block);
    value = value * 100'000'000u + block;
    i += 8;
  }
  for (; i < n; ++i) value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
  out = value;
  return true;
}

// ---------------------------------------------------------------------------
// Single-pass signature matching
// ---------------------------------------------------------------------------

/// One classifier signature: a literal to find anywhere in the payload
/// (contains) or only at its start (prefix_only).
struct Signature {
  std::string_view text;
  bool prefix_only = false;
};

class SignatureSet;

namespace detail {
// ISA-specific contains-scan kernels (defined with target attributes in
// scan.cpp); friends of SignatureSet so the nibble/key tables hoist into
// registers once per payload instead of once per 32-byte block.
std::uint32_t scan_contains_avx2(const SignatureSet& set, const char* p, std::size_t n,
                                 std::uint32_t found) noexcept;
std::uint32_t scan_contains_sse(const SignatureSet& set, const char* p, std::size_t n,
                                std::uint32_t found) noexcept;
}  // namespace detail

/// Matches a set of up to 32 literal signatures against a payload in ONE
/// left-to-right pass, returning a bitmask (bit i set iff signatures[i]
/// occurs), instead of one find() pass per signature.
///
/// Each contains-signature is keyed on its rarest byte (by a static log-
/// text frequency table): the scan walks the payload once, and only
/// positions holding some signature's key byte pay a candidate compare,
/// offset back to the signature start.  Prefix signatures are tested once
/// at position 0 before the walk.  The AVX2 tier classifies 32 payload
/// bytes per step into interesting/boring via the nibble-table (pshufb)
/// trick; SWAR falls back to a 256-entry candidate-mask table lookup per
/// byte.  match_ref() is the retained one-find-per-signature oracle.
class SignatureSet {
 public:
  /// `signatures` must outlive the set (use static string literals).
  /// At most 32 entries, each 1..255 bytes, ASCII.
  explicit SignatureSet(std::span<const Signature> signatures);

  /// Bitmask of the signatures occurring in `payload` (single pass).
  [[nodiscard]] std::uint32_t match(std::string_view payload) const noexcept;

  /// Scalar oracle: one contains()/starts_with() per signature.
  [[nodiscard]] std::uint32_t match_ref(std::string_view payload) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  friend std::uint32_t detail::scan_contains_avx2(const SignatureSet&, const char*,
                                                  std::size_t, std::uint32_t) noexcept;
  friend std::uint32_t detail::scan_contains_sse(const SignatureSet&, const char*,
                                                 std::size_t, std::uint32_t) noexcept;

  [[nodiscard]] std::uint32_t match_candidates(const char* data, std::size_t n,
                                               std::size_t i,
                                               std::uint32_t found) const noexcept;

  struct Entry {
    std::string_view text;
    std::uint8_t anchor_offset = 0;  ///< key byte position within the literal
  };

  Entry entries_[32];
  std::size_t count_ = 0;
  std::uint32_t prefix_mask_ = 0;     ///< signatures tested at position 0 only
  std::uint32_t contains_mask_ = 0;   ///< signatures scanned via key bytes
  std::uint32_t key_mask_[256] = {};  ///< byte value -> candidate signatures
  /// pshufb nibble tables: row[lo] & col[hi] != 0 iff some key byte has
  /// that (hi,lo) nibble pair; ASCII-only, so bytes >= 0x80 never match.
  std::uint8_t nibble_lo_[16] = {};
  std::uint8_t nibble_hi_[16] = {};
};

// ---------------------------------------------------------------------------
// Character classes
// ---------------------------------------------------------------------------

/// ASCII whitespace, branch-free (one table load): the class util::trim,
/// split_ws and find_kv agree on (' ', \t, \n, \v, \f, \r).
inline constexpr auto kWsTable = [] {
  std::array<bool, 256> t{};
  for (const char c : {' ', '\t', '\n', '\v', '\f', '\r'})
    t[static_cast<unsigned char>(c)] = true;
  return t;
}();

[[nodiscard]] inline bool is_ws(char c) noexcept {
  return kWsTable[static_cast<unsigned char>(c)];
}

/// Branchless ASCII lower-casing: 'A'..'Z' gain 0x20, every other byte —
/// including non-ASCII — passes through unchanged (no locale).
[[nodiscard]] inline char to_lower_ascii(char c) noexcept {
  const auto u = static_cast<unsigned char>(c);
  return static_cast<char>(u | ((static_cast<unsigned>(u) - 'A' < 26u) << 5));
}

}  // namespace hpcfail::util::scan
