// Golden-corpus regression: a small checked-in corpus
// (testdata/golden_corpus, generated from testdata/golden.scenario) must
// keep parsing to the same structured content and the same diagnosis.
// This pins BOTH the on-disk formats and the analysis behavior across
// releases; if a change legitimately alters either, regenerate the fixture
// with corpus_tool (see the scenario file header) and review the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/analysis_context.hpp"
#include "core/report.hpp"
#include "core/root_cause.hpp"
#include "faultsim/scenario_io.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"

namespace hpcfail {
namespace {

std::string golden_dir() {
  // Tests run from the build tree; the fixture lives in the source tree.
  for (const char* candidate :
       {"../testdata/golden_corpus", "../../testdata/golden_corpus",
        "testdata/golden_corpus", "/root/repo/testdata/golden_corpus"}) {
    if (std::filesystem::exists(std::filesystem::path(candidate) / "manifest.txt")) {
      return candidate;
    }
  }
  return {};
}

class GoldenCorpus : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir = golden_dir();
    if (dir.empty()) GTEST_SKIP() << "golden corpus not found";
    corpus_ = std::make_unique<loggen::Corpus>(loggen::read_corpus(dir));
    parsed_ = std::make_unique<parsers::ParsedCorpus>(parsers::parse_corpus(*corpus_));
  }
  std::unique_ptr<loggen::Corpus> corpus_;
  std::unique_ptr<parsers::ParsedCorpus> parsed_;
};

TEST_F(GoldenCorpus, ManifestPinned) {
  EXPECT_EQ(corpus_->system.label, "S1");
  EXPECT_EQ(corpus_->days, 2);
  EXPECT_EQ(parsed_->topology.node_count(), 192u);
  EXPECT_EQ(util::format_iso(corpus_->begin), "2015-03-02T00:00:00.000000");
}

TEST_F(GoldenCorpus, ParseCountsPinned) {
  EXPECT_EQ(parsed_->total_lines, 1710u);
  EXPECT_EQ(parsed_->parsed_records, 1590u);
  EXPECT_EQ(parsed_->skipped_lines, 120u);  // exactly the routine chatter
  EXPECT_EQ(parsed_->jobs.size(), 260u);
}

TEST_F(GoldenCorpus, DiagnosisPinned) {
  const core::AnalysisContext ctx(
      parsed_->store, &parsed_->jobs, parsed_->store.first_time(),
      parsed_->store.last_time() + util::Duration::microseconds(1));
  const auto& failures = ctx.failures();
  ASSERT_EQ(failures.size(), 8u);
  const auto breakdown = core::cause_breakdown(failures);
  EXPECT_EQ(breakdown.count(logmodel::RootCause::HardwareMce), 4u);
  EXPECT_EQ(breakdown.count(logmodel::RootCause::KernelBug), 2u);
  EXPECT_EQ(breakdown.count(logmodel::RootCause::MemoryExhaustion), 1u);
  EXPECT_EQ(breakdown.count(logmodel::RootCause::AppAbnormalExit), 1u);
}

TEST_F(GoldenCorpus, RegenerationIsExact) {
  // Re-simulating the scenario reproduces the checked-in bytes.
  std::string scenario_path;
  for (const char* candidate :
       {"../testdata/golden.scenario", "../../testdata/golden.scenario",
        "testdata/golden.scenario", "/root/repo/testdata/golden.scenario"}) {
    if (std::filesystem::exists(candidate)) {
      scenario_path = candidate;
      break;
    }
  }
  ASSERT_FALSE(scenario_path.empty());
  std::ifstream file(scenario_path);
  std::ostringstream text;
  text << file.rdbuf();
  const auto scenario = faultsim::scenario_from_string(text.str());
  const auto sim = faultsim::Simulator(scenario).run();
  const auto regenerated = loggen::build_corpus(sim);
  for (std::size_t s = 0; s < regenerated.text.size(); ++s) {
    EXPECT_EQ(regenerated.text[s], corpus_->text[s]) << "source " << s;
  }
}

}  // namespace
}  // namespace hpcfail
