// SEDC (System Environmental Data Collections) sensor simulation.
//
// Each blade carries temperature / voltage / fan-speed / air-velocity
// sensors modelled as mean-reverting Ornstein-Uhlenbeck processes.  The
// cabinet controller samples them periodically and emits ec_sedc_warnings
// when a reading leaves its allowed band — exactly the signal population
// the paper shows to be mostly benign (Figs 8-11, Observation 3).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/rng.hpp"

namespace hpcfail::sensors {

enum class SensorKind : std::uint8_t {
  CpuTemperature,  ///< deg C, nominal ~40
  Voltage,         ///< V, nominal ~12
  FanSpeed,        ///< RPM, nominal ~3000
  AirVelocity,     ///< m/s, nominal ~2.5
  kCount
};

inline constexpr std::size_t kSensorKindCount = static_cast<std::size_t>(SensorKind::kCount);

[[nodiscard]] std::string_view to_string(SensorKind k) noexcept;

/// Mean-reverting process: dX = reversion * (mean - X) dt + sigma dW.
struct OuProcess {
  double mean = 0.0;
  double reversion = 0.1;  ///< per-minute pull toward the mean
  double sigma = 1.0;      ///< per-sqrt(minute) diffusion
  double value = 0.0;

  /// Advances by dt_minutes using exact OU discretization.
  double step(util::Rng& rng, double dt_minutes) noexcept;
};

struct SensorSpec {
  SensorKind kind = SensorKind::CpuTemperature;
  double nominal = 0.0;
  double sigma = 1.0;
  double reversion = 0.2;
  double warn_low = 0.0;   ///< below: SEDC low warning
  double warn_high = 0.0;  ///< above: SEDC high warning
};

/// Paper-calibrated default spec per sensor kind (temperature ~40 C steady,
/// per Fig 11).
[[nodiscard]] SensorSpec default_spec(SensorKind kind) noexcept;

/// The sensors of one blade. Blades can be healthy, "deviant" (persistent
/// benign threshold violations, the Fig 9 warning storms) or powered off.
class BladeSensors {
 public:
  BladeSensors() = default;
  BladeSensors(util::Rng rng, bool deviant);

  /// Advances all sensors by dt_minutes and returns the new readings.
  void step(double dt_minutes) noexcept;

  [[nodiscard]] double reading(SensorKind k) const noexcept {
    return powered_off_ ? 0.0 : state_[static_cast<std::size_t>(k)].value;
  }

  /// True when the current reading is outside [warn_low, warn_high].
  [[nodiscard]] bool violates(SensorKind k) const noexcept;

  void set_powered_off(bool off) noexcept { powered_off_ = off; }
  [[nodiscard]] bool powered_off() const noexcept { return powered_off_; }
  [[nodiscard]] bool deviant() const noexcept { return deviant_; }

  [[nodiscard]] const SensorSpec& spec(SensorKind k) const noexcept {
    return specs_[static_cast<std::size_t>(k)];
  }

 private:
  util::Rng rng_{};
  std::array<SensorSpec, kSensorKindCount> specs_{};
  std::array<OuProcess, kSensorKindCount> state_{};
  bool deviant_ = false;
  bool powered_off_ = false;
};

/// Degradation ramp applied to fail-slow hardware: over the ramp window the
/// affected metric drifts linearly from its nominal value toward
/// `terminal_offset` away from nominal.  Used to raise voltage-fault and
/// ec_hw_error emission rates ahead of the eventual failure (Section III-D).
struct FailSlowRamp {
  double start_minute = 0.0;   ///< simulation minute the drift begins
  double duration_min = 60.0;  ///< ramp length
  double terminal_offset = 0.0;

  /// Offset to add at simulation minute `t`; 0 before the ramp, clamped to
  /// terminal_offset after it completes.
  [[nodiscard]] double offset_at(double t) const noexcept;
};

}  // namespace hpcfail::sensors
