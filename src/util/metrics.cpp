#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hpcfail::util {

namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};
std::atomic<std::uint64_t> g_metrics_generation{0};

/// JSON number rendering: integers stay integral, doubles use ostream
/// default precision (round-trips the values the tests assert on).
void append_double(std::ostringstream& out, double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    out << static_cast<long long>(v);
  } else {
    out << v;
  }
}

void append_quoted(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  // First bucket whose upper edge admits v; past-the-end = +inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    std::vector<double> normalized(std::move(bounds));
    std::sort(normalized.begin(), normalized.end());
    normalized.erase(std::unique(normalized.begin(), normalized.end()),
                     normalized.end());
    if (normalized != slot->bounds()) {
      throw std::logic_error("MetricsRegistry: histogram '" + name +
                             "' re-registered with different bucket bounds");
    }
  }
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::gauges() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> MetricsRegistry::histograms()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::ostringstream out;
  out << "{\"schema\":\"hpcfail.metrics.v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ':' << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ':' << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out << ',';
    first = false;
    append_quoted(out, name);
    out << ":{\"bounds\":[";
    for (std::size_t i = 0; i < h->bounds().size(); ++i) {
      if (i) out << ',';
      append_double(out, h->bounds()[i]);
    }
    out << "],\"counts\":[";
    const auto counts = h->counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out << ',';
      out << counts[i];
    }
    out << "],\"count\":" << h->count() << ",\"sum\":";
    append_double(out, h->sum());
    out << '}';
  }
  out << "}}";
  return out.str();
}

void install_metrics(MetricsRegistry* registry) noexcept {
  g_metrics.store(registry, std::memory_order_release);
  g_metrics_generation.fetch_add(1, std::memory_order_release);
}

std::uint64_t metrics_generation() noexcept {
  return g_metrics_generation.load(std::memory_order_acquire);
}

MetricsRegistry* metrics() noexcept {
  return g_metrics.load(std::memory_order_acquire);
}

}  // namespace hpcfail::util
