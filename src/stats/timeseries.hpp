// Point-process burstiness measures over event timestamps: the index of
// dispersion (Fano factor) of windowed counts and the lag autocorrelation
// of the count series.  A Poisson process has dispersion ~1; the clustered
// failure arrivals of Observation 1 give dispersion >> 1.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

/// Counts events in consecutive windows of `window` length covering
/// [begin, end). Event times outside the range are ignored.
[[nodiscard]] std::vector<double> windowed_counts(std::span<const double> event_times,
                                                  double begin, double end, double window);

/// Index of dispersion (variance / mean) of a count series; 0 when the
/// series is empty or has zero mean.
[[nodiscard]] double index_of_dispersion(std::span<const double> counts);

/// Lag-k autocorrelation of a series; 0 for degenerate input.
[[nodiscard]] double autocorrelation(std::span<const double> series, std::size_t lag);

}  // namespace hpcfail::stats
