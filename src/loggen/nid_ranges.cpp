#include "loggen/nid_ranges.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "util/scan.hpp"
#include "util/strings.hpp"

namespace hpcfail::loggen {

namespace {
constexpr int kNidWidth = 5;
constexpr int kHostWidth = 4;
}  // namespace

std::string compress_node_list(std::vector<platform::NodeId> nodes,
                               platform::NamingScheme naming) {
  const char* prefix = naming == platform::NamingScheme::CrayCname ? "nid" : "node";
  const int width = naming == platform::NamingScheme::CrayCname ? kNidWidth : kHostWidth;
  if (nodes.empty()) return std::string(prefix) + "[]";
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  char buf[32];
  if (nodes.size() == 1) {
    std::snprintf(buf, sizeof buf, "%s%0*u", prefix, width, nodes[0].value);
    return buf;
  }
  std::string out = prefix;
  out += '[';
  std::size_t i = 0;
  bool first = true;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1].value == nodes[j].value + 1) ++j;
    if (!first) out += ',';
    first = false;
    if (j == i) {
      std::snprintf(buf, sizeof buf, "%0*u", width, nodes[i].value);
      out += buf;
    } else {
      std::snprintf(buf, sizeof buf, "%0*u-%0*u", width, nodes[i].value, width,
                    nodes[j].value);
      out += buf;
    }
    i = j + 1;
  }
  out += ']';
  return out;
}

std::optional<std::vector<platform::NodeId>> expand_node_list(std::string_view text) noexcept {
  std::string_view rest;
  if (auto r = util::strip_prefix(text, "nid")) {
    rest = *r;
  } else if (auto r2 = util::strip_prefix(text, "node")) {
    rest = *r2;
  } else {
    return std::nullopt;
  }

  std::vector<platform::NodeId> out;
  // Each piece parses ONCE into a (lo, hi) pair — the old exact-pre-count
  // pass re-parsed every range through parse_u64 a second time, which was
  // the single hottest path of the sequential scheduler parse.  The pair
  // list (one entry per comma piece, tiny next to the expansion) still
  // gives an exact reserve: these vectors live for the whole run inside
  // JobInfo, and capacity slack there is real memory.
  const auto parse_piece = [](std::string_view piece, std::uint64_t& lo,
                              std::uint64_t& hi) -> bool {
    const std::size_t dash = piece.find('-');
    if (dash == std::string_view::npos) {
      const auto v = util::parse_u64(piece);
      if (!v) return false;
      lo = hi = *v;
      return true;
    }
    const auto l = util::parse_u64(piece.substr(0, dash));
    const auto h = util::parse_u64(piece.substr(dash + 1));
    if (!l || !h || *h < *l || *h - *l > 1'000'000) return false;
    lo = *l;
    hi = *h;
    return true;
  };
  // Bulk resize + indexed iota-style writes: the per-element push_back
  // capacity check defeats vectorization, and ranges contribute most of the
  // expanded nodes.
  const auto fill = [&out](std::uint64_t lo, std::uint64_t hi) {
    const std::size_t base = out.size();
    const std::size_t n = static_cast<std::size_t>(hi - lo + 1);
    out.resize(base + n);
    platform::NodeId* dst = out.data() + base;
    for (std::size_t k = 0; k < n; ++k) {
      dst[k] = platform::NodeId{static_cast<std::uint32_t>(lo + k)};
    }
  };

  if (!rest.empty() && rest.front() == '[') {
    if (rest.back() != ']') return std::nullopt;
    const std::string_view inner = rest.substr(1, rest.size() - 2);
    if (inner.empty()) return out;  // explicit empty list
    if (util::scan::find_byte(inner, '-') == util::scan::npos) {
      // All-singles list (the common shape for scattered allocations):
      // every comma piece contributes exactly one node, so the comma count
      // IS the exact reserve and the pieces staging list is dead weight.
      out.reserve(util::scan::count_byte(inner, ',') + 1);
      std::size_t start = 0;
      for (;;) {
        // Width-5 pieces ("00123") are what compress_node_list emits for
        // cname nids, so nearly every piece hits the branchless
        // parse_digits4 + trailing-digit path; anything else (different
        // width, stray bytes) falls through to the generic parse, which
        // accepts exactly what the fast path would have.
        const std::size_t left = inner.size() - start;
        if (int hi4 = 0; left >= 5 && (left == 5 || inner[start + 5] == ',') &&
                         util::scan::parse_digits4(inner.data() + start, hi4)) {
          const unsigned last = static_cast<unsigned char>(inner[start + 4]) - '0';
          if (last <= 9) {
            out.push_back(
                platform::NodeId{static_cast<std::uint32_t>(hi4) * 10u + last});
            if (left == 5) return out;
            start += 6;
            continue;
          }
        }
        std::size_t comma = util::scan::find_byte(inner, ',', start);
        if (comma == util::scan::npos) comma = inner.size();
        const auto v = util::parse_u64(inner.substr(start, comma - start));
        if (!v) return std::nullopt;
        out.push_back(platform::NodeId{static_cast<std::uint32_t>(*v)});
        if (comma == inner.size()) break;
        start = comma + 1;
      }
      return out;
    }
    // Branchless 5-digit nid parse for the two piece shapes compress emits:
    // "00123" and "00100-00475".  Anything else drops to the generic parse.
    const auto nid5 = [](const char* p, std::uint64_t& v) -> bool {
      int hi4 = 0;
      if (!util::scan::parse_digits4(p, hi4)) return false;
      const unsigned last = static_cast<unsigned char>(p[4]) - '0';
      if (last > 9) return false;
      v = static_cast<std::uint64_t>(hi4) * 10u + last;
      return true;
    };
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pieces;
    pieces.reserve(util::scan::count_byte(inner, ',') + 1);
    std::size_t total = 0;
    std::size_t start = 0;
    for (;;) {
      std::size_t comma = util::scan::find_byte(inner, ',', start);
      if (comma == util::scan::npos) comma = inner.size();
      std::uint64_t lo = 0, hi = 0;
      const char* p = inner.data() + start;
      const std::size_t len = comma - start;
      if (len == 5 && nid5(p, lo)) {
        hi = lo;
      } else if (len == 11 && p[5] == '-' && nid5(p, lo) && nid5(p + 6, hi)) {
        if (hi < lo) return std::nullopt;
      } else if (!parse_piece(inner.substr(start, len), lo, hi)) {
        return std::nullopt;
      }
      pieces.emplace_back(lo, hi);
      total += static_cast<std::size_t>(hi - lo + 1);
      if (comma == inner.size()) break;
      start = comma + 1;
    }
    out.reserve(total);
    for (const auto& [lo, hi] : pieces) fill(lo, hi);
    return out;
  }
  std::uint64_t lo = 0, hi = 0;
  if (!parse_piece(rest, lo, hi)) return std::nullopt;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  fill(lo, hi);
  return out;
}

}  // namespace hpcfail::loggen
