# Empty compiler generated dependencies file for tab07_comparative.
# This may be replaced when dependencies are built.
