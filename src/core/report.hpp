// Aggregate reporting helpers: root-cause breakdowns (Fig 16), layer shares
// (Section III-F's S3 hardware/software/application split) and rendering of
// the findings tables the benches print.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/root_cause.hpp"

namespace hpcfail::core {

struct CauseBreakdown {
  std::array<std::size_t, logmodel::kRootCauseCount> counts{};
  std::size_t total = 0;

  [[nodiscard]] std::size_t count(logmodel::RootCause c) const noexcept {
    return counts[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] double share(logmodel::RootCause c) const noexcept {
    return total ? static_cast<double>(count(c)) / static_cast<double>(total) : 0.0;
  }
};

[[nodiscard]] CauseBreakdown cause_breakdown(const std::vector<AnalyzedFailure>& failures);

struct LayerShares {
  double hardware = 0.0;
  double software = 0.0;
  double application = 0.0;
  double unknown = 0.0;
  /// Fraction of all failures involving memory exhaustion (quoted
  /// separately in the paper: 27% for S3).
  double memory_exhaustion = 0.0;
  /// Fraction with an application-triggered origin (Observation 7).
  double application_triggered = 0.0;
};

[[nodiscard]] LayerShares layer_shares(const std::vector<AnalyzedFailure>& failures);

/// Cause -> observed stack modules, the measured Table IV.
struct ModuleUsage {
  logmodel::RootCause cause = logmodel::RootCause::Unknown;
  std::vector<std::pair<std::string, std::size_t>> modules;  ///< module -> count
};

[[nodiscard]] std::vector<ModuleUsage> stack_module_usage(
    const std::vector<AnalyzedFailure>& failures);

/// Aligned text rendering of a cause breakdown.
[[nodiscard]] std::string render_cause_table(const CauseBreakdown& breakdown,
                                             std::string_view title);

}  // namespace hpcfail::core
