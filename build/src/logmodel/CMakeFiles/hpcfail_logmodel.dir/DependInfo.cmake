
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logmodel/event_type.cpp" "src/logmodel/CMakeFiles/hpcfail_logmodel.dir/event_type.cpp.o" "gcc" "src/logmodel/CMakeFiles/hpcfail_logmodel.dir/event_type.cpp.o.d"
  "/root/repo/src/logmodel/log_store.cpp" "src/logmodel/CMakeFiles/hpcfail_logmodel.dir/log_store.cpp.o" "gcc" "src/logmodel/CMakeFiles/hpcfail_logmodel.dir/log_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hpcfail_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
