# Empty compiler generated dependencies file for fig18_blade_same_reason.
# This may be replaced when dependencies are built.
