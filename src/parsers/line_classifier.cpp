#include "parsers/line_classifier.hpp"

#include "util/strings.hpp"

namespace hpcfail::parsers {

using logmodel::EventType;
using logmodel::Severity;
using util::contains;
using util::starts_with;

namespace {

/// Remainder after "<signature>" (and an optional ": ").
std::string_view after(std::string_view payload, std::string_view signature) noexcept {
  const auto pos = payload.find(signature);
  if (pos == std::string_view::npos) return {};
  std::string_view rest = payload.substr(pos + signature.size());
  if (starts_with(rest, ": ")) rest.remove_prefix(2);
  return util::trim(rest);
}

}  // namespace

std::optional<std::string_view> call_trace_module(std::string_view payload) noexcept {
  // " [<ffffffff81234567>] module+0x1a2/0x400"
  const auto close = payload.find(">] ");
  if (close == std::string_view::npos) return std::nullopt;
  std::string_view rest = payload.substr(close + 3);
  const auto plus = rest.find('+');
  if (plus == std::string_view::npos || plus == 0) return std::nullopt;
  return rest.substr(0, plus);
}

std::optional<Classified> classify_kernel_payload(std::string_view payload) noexcept {
  // Order matters: more specific signatures first.
  if (contains(payload, "Kernel panic - not syncing")) {
    return Classified{EventType::KernelPanic, Severity::Fatal,
                      after(payload, "not syncing:")};
  }
  if (contains(payload, "LBUG")) {
    return Classified{EventType::LustreBug, Severity::Critical,
                      after(payload, "ASSERTION failed:")};
  }
  if (contains(payload, "LustreError")) {
    return Classified{EventType::LustreError, Severity::Error, after(payload, "11-0:")};
  }
  if (contains(payload, "processor context corrupt")) {
    return Classified{EventType::CpuCorruption, Severity::Critical,
                      after(payload, "corrupt:")};
  }
  if (contains(payload, "Machine check")) {
    return Classified{EventType::MachineCheckException, Severity::Critical,
                      after(payload, "logged:")};
  }
  if (contains(payload, "EDAC")) {
    return Classified{EventType::HardwareError, Severity::Error, after(payload, "MC0:")};
  }
  if (contains(payload, "rcu_sched self-detected stall")) {
    return Classified{EventType::CpuStall, Severity::Error, after(payload, "CPU:")};
  }
  if (starts_with(payload, "HEST:")) {
    return Classified{EventType::BiosError, Severity::Error, after(payload, "HEST:")};
  }
  if (contains(payload, "[Firmware Bug]")) {
    return Classified{EventType::FirmwareBug, Severity::Error,
                      after(payload, "[Firmware Bug]:")};
  }
  if (contains(payload, "driver bug")) {
    return Classified{EventType::DriverBug, Severity::Error, after(payload, "driver bug:")};
  }
  if (contains(payload, "segfault at")) {
    return Classified{EventType::SegFault, Severity::Error, after(payload, "err 4:")};
  }
  if (contains(payload, "invalid opcode")) {
    return Classified{EventType::InvalidOpcode, Severity::Error, after(payload, "SMP:")};
  }
  if (contains(payload, "page allocation failure")) {
    // Rendered as "<detail>, mode:0x4020" with the signature inside detail.
    std::string_view d = payload;
    const auto comma = d.rfind(", mode:");
    if (comma != std::string_view::npos) d = d.substr(0, comma);
    return Classified{EventType::PageAllocationFailure, Severity::Error, util::trim(d)};
  }
  if (contains(payload, "Out of memory")) {
    std::string_view d = payload;
    const auto score = d.rfind(" score ");
    if (score != std::string_view::npos) d = d.substr(0, score);
    return Classified{EventType::OomKill, Severity::Critical, util::trim(d)};
  }
  if (contains(payload, "blocked for more than")) {
    return Classified{EventType::HungTaskTimeout, Severity::Warning,
                      after(payload, "seconds:")};
  }
  if (contains(payload, "unable to handle kernel paging request")) {
    return Classified{EventType::KernelOops, Severity::Critical, std::string_view{}};
  }
  if (const auto module = call_trace_module(payload)) {
    return Classified{EventType::CallTrace, Severity::Error, *module};
  }
  if (starts_with(payload, "DVS:")) {
    return Classified{EventType::DvsError, Severity::Error, after(payload, "DVS:")};
  }
  if (contains(payload, "bad inode")) {
    return Classified{EventType::InodeError, Severity::Error, after(payload, "bad inode:")};
  }
  if (contains(payload, "link error detected")) {
    return Classified{EventType::InterconnectError, Severity::Error,
                      after(payload, "detected:")};
  }
  if (contains(payload, "Shutdown: system going down")) {
    return Classified{EventType::NodeShutdown, Severity::Fatal,
                      after(payload, "going down:")};
  }
  if (contains(payload, "System halted")) {
    return Classified{EventType::NodeHalt, Severity::Fatal, after(payload, "halted:")};
  }
  if (contains(payload, "Booting Linux")) {
    return Classified{EventType::NodeBoot, Severity::Info, after(payload, "0x0:")};
  }
  return std::nullopt;
}

std::optional<Classified> classify_nhc_payload(std::string_view payload) noexcept {
  if (contains(payload, "abnormal")) {
    return Classified{EventType::AppExitAbnormal, Severity::Error, util::trim(payload)};
  }
  if (contains(payload, "suspect mode")) {
    return Classified{EventType::NhcSuspectMode, Severity::Warning, util::trim(payload)};
  }
  if (contains(payload, "NHC:")) {
    return Classified{EventType::NhcTestFail, Severity::Error, util::trim(payload)};
  }
  return std::nullopt;
}

std::optional<Classified> classify_controller_payload(std::string_view payload) noexcept {
  if (contains(payload, "ec_sedc_warning")) {
    if (contains(payload, "CPU_TEMP")) {
      return Classified{EventType::SedcTemperatureWarning, Severity::Warning, payload};
    }
    if (contains(payload, "VDD")) {
      return Classified{EventType::SedcVoltageWarning, Severity::Warning, payload};
    }
    if (contains(payload, "AIR_VEL")) {
      return Classified{EventType::SedcAirVelocityWarning, Severity::Warning, payload};
    }
    return Classified{EventType::SedcTemperatureWarning, Severity::Warning, payload};
  }
  if (contains(payload, "ec_environment")) {
    return Classified{EventType::SedcFanSpeedWarning, Severity::Warning, payload};
  }
  if (starts_with(payload, "sedc:")) {
    return Classified{EventType::SedcReading, Severity::Info, after(payload, "sedc:")};
  }
  if (contains(payload, "L0_sysd_mce")) {
    return Classified{EventType::L0SysdMce, Severity::Error,
                      after(payload, "L0_sysd_mce:")};
  }
  if (contains(payload, "cabinet power fault")) {
    return Classified{EventType::CabinetPowerFault, Severity::Warning, payload};
  }
  if (contains(payload, "micro controller fault")) {
    return Classified{EventType::CabinetMicroFault, Severity::Warning, payload};
  }
  if (contains(payload, "communication fault")) {
    return Classified{EventType::CommunicationFault, Severity::Warning, payload};
  }
  if (contains(payload, "module health fault")) {
    return Classified{EventType::ModuleHealthFault, Severity::Warning, payload};
  }
  if (contains(payload, "RPM fault")) {
    return Classified{EventType::RpmFault, Severity::Warning, payload};
  }
  if (contains(payload, "ECB fault")) {
    return Classified{EventType::EcbFault, Severity::Warning, payload};
  }
  if (contains(payload, "sensor check failed")) {
    return Classified{EventType::CabinetSensorCheck, Severity::Warning, payload};
  }
  if (contains(payload, "get sensor reading failed")) {
    return Classified{EventType::GetSensorReadingFailed, Severity::Warning, payload};
  }
  if (contains(payload, "bc heartbeat fault")) {
    return Classified{EventType::BladeHeartbeatFault, Severity::Warning, payload};
  }
  return std::nullopt;
}

std::optional<EventType> erd_event_type(std::string_view name) noexcept {
  if (name == "ec_node_failed") return EventType::NodeHeartbeatFault;
  if (name == "ec_node_voltage_fault") return EventType::NodeVoltageFault;
  if (name == "ec_bc_heartbeat_fault") return EventType::BladeHeartbeatFault;
  if (name == "ec_heartbeat_stop") return EventType::EcHeartbeatStop;
  if (name == "ec_l0_failed") return EventType::EcL0Failed;
  if (name == "ec_hw_error") return EventType::EcHwError;
  if (name == "ec_link_error") return EventType::LinkError;
  if (name == "ec_lane_degrade") return EventType::LaneDegrade;
  if (name == "ec_link_failover") return EventType::LinkFailover;
  if (name == "ec_failover_failed") return EventType::LinkFailoverFailed;
  if (name == "ec_get_sensor_failed") return EventType::GetSensorReadingFailed;
  return std::nullopt;
}

}  // namespace hpcfail::parsers
