// Fixture: nondeterministic seeding that hpcfail-lint must reject.
#include <cstdlib>
#include <ctime>

unsigned bad_seed() {
  std::srand(static_cast<unsigned>(time(NULL)));
  return static_cast<unsigned>(rand());
}

unsigned tolerated_seed() {
  return static_cast<unsigned>(rand());  // hpcfail-lint: allow(banned-pattern)
}
