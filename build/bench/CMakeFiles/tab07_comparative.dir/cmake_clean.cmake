file(REMOVE_RECURSE
  "CMakeFiles/tab07_comparative.dir/tab07_comparative.cpp.o"
  "CMakeFiles/tab07_comparative.dir/tab07_comparative.cpp.o.d"
  "tab07_comparative"
  "tab07_comparative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_comparative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
