file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_core.dir/advisor.cpp.o"
  "CMakeFiles/hpcfail_core.dir/advisor.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/benign_faults.cpp.o"
  "CMakeFiles/hpcfail_core.dir/benign_faults.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/clusters.cpp.o"
  "CMakeFiles/hpcfail_core.dir/clusters.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/external_correlator.cpp.o"
  "CMakeFiles/hpcfail_core.dir/external_correlator.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/failure_detector.cpp.o"
  "CMakeFiles/hpcfail_core.dir/failure_detector.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/job_analysis.cpp.o"
  "CMakeFiles/hpcfail_core.dir/job_analysis.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/leadtime.cpp.o"
  "CMakeFiles/hpcfail_core.dir/leadtime.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/markdown_report.cpp.o"
  "CMakeFiles/hpcfail_core.dir/markdown_report.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/online_monitor.cpp.o"
  "CMakeFiles/hpcfail_core.dir/online_monitor.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/prediction.cpp.o"
  "CMakeFiles/hpcfail_core.dir/prediction.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/report.cpp.o"
  "CMakeFiles/hpcfail_core.dir/report.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/root_cause.cpp.o"
  "CMakeFiles/hpcfail_core.dir/root_cause.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/spatial.cpp.o"
  "CMakeFiles/hpcfail_core.dir/spatial.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/temporal.cpp.o"
  "CMakeFiles/hpcfail_core.dir/temporal.cpp.o.d"
  "CMakeFiles/hpcfail_core.dir/timeline.cpp.o"
  "CMakeFiles/hpcfail_core.dir/timeline.cpp.o.d"
  "libhpcfail_core.a"
  "libhpcfail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
