// Scenario configuration: every calibration knob of the synthetic corpus.
//
// The per-system presets encode the statistical structure the paper reports
// for S1-S5 (failure-burst cadence, cause mixes, benign fault populations,
// lead-time geometry).  Benches run the presets; tests run small ad-hoc
// scenarios with targeted knobs.
#pragma once

#include <cstdint>

#include "jobs/workload.hpp"
#include "logmodel/cause.hpp"
#include "platform/system_config.hpp"
#include "util/time.hpp"

namespace hpcfail::faultsim {

struct FailureProcessConfig {
  /// Fraction of days on which any failure occurs.
  double failure_day_fraction = 0.75;
  /// Bursts per failure day: 1 + Poisson(extra_bursts_mean).
  double extra_bursts_mean = 0.6;
  /// Nodes failing in the dominant burst: 2 + Poisson(mean - 2).
  double dominant_burst_mean = 8.0;
  /// Minutes over which a burst's failures are spread (Fig 3's 1-16 min).
  double burst_spread_minutes = 14.0;
  /// Isolated single-node failures per day (Poisson mean), causes drawn
  /// independently of the day's dominant cause.
  double isolated_failures_per_day = 0.9;
  /// Weights over root causes for burst/isolated failure draws.  The
  /// FailSlowHardware weight controls the fraction of failures with
  /// external early indicators (drives Fig 13's 10-28%).
  logmodel::CauseMix cause_weights{};
  /// External lead ahead of the failure, minutes (uniform range).
  double external_lead_min_minutes = 6.0;
  double external_lead_max_minutes = 24.0;
  /// Internal lead ahead of the failure, minutes (uniform range).
  double internal_lead_min_minutes = 1.0;
  double internal_lead_max_minutes = 6.0;
  /// Probability that a blade-level health fault (BCHF / sensor-read
  /// failure) is logged near a failure on that blade — the weak blade
  /// correlation of Fig 7 (23-59% of failures on "faulty" blades).
  double blade_fault_near_failure_p = 0.35;
  /// Probability that a failure's node lands in a cabinet that also shows
  /// chatter that day (Fig 7's 19-58%); implemented by biasing the daily
  /// noisy-cabinet subset toward failure cabinets.
  double cabinet_fault_near_failure_p = 0.25;
  /// For hardware bursts: probability the burst stays within one blade.
  double hw_burst_same_blade_p = 0.45;
};

struct BenignProcessConfig {
  /// NHFs per day that do NOT correspond to failures.
  double benign_nhf_per_day = 4.0;
  /// Fraction of benign NHFs caused by powered-off nodes (rest are skipped
  /// heartbeats); drives the Fig 6 breakdown.
  double nhf_power_off_fraction = 0.45;
  /// Benign NVFs per 30 days (NVFs are rare and mostly real, Fig 5).
  double benign_nvf_per_month = 1.2;
  /// Blades whose sensors sit just outside a threshold (warning storms).
  double deviant_blade_fraction = 0.015;
  /// Controller sampling cadence for deviant-blade sensors.  Warnings are
  /// emitted when a sampled OU-process reading crosses its SEDC band, so
  /// the warning volume is (samples/day x violation probability) — about
  /// 110/day per deviant blade at the default 10-minute cadence.
  double sedc_sample_interval_minutes = 10.0;
  /// Additional transient SEDC warnings across healthy blades per day.
  double transient_sedc_warnings_per_day = 9.0;
  /// Cabinet-level fault chatter per day across the machine (Fig 8/9's
  /// >1400 mean daily counts).
  double cabinet_faults_per_day = 1500.0;
  /// Non-failing nodes per day with hardware errors / MCE log triggers /
  /// Lustre I/O errors (Fig 10's benign error population).
  double benign_hw_error_nodes_per_day = 25.0;
  double benign_mce_nodes_per_day = 16.0;
  double benign_lustre_nodes_per_day = 35.0;
  /// Non-failing nodes per day whose oom-killer fires (common on the
  /// institutional cluster; Fig 15's 10.59% "running low on memory").
  double benign_oom_nodes_per_day = 0.0;
  /// Non-failing nodes per day with software errors (segfaults / page
  /// allocation faults; Fig 15's 2.16%).
  double benign_sw_error_nodes_per_day = 0.0;
  /// Nodes per day showing a hardware-error -> MCE pattern that looks like
  /// an impending failure but recovers — the healthy-node look-alikes that
  /// drive the predictor's false positives (Fig 14).
  double multi_error_episode_nodes_per_day = 3.0;
  /// Scheduled maintenance windows per 30 days: a whole cabinet is shut
  /// down intentionally and rebooted hours later.  The paper recognizes and
  /// excludes these intended shutdowns.
  double maintenance_windows_per_month = 1.0;
  /// System-wide outages per 30 days: a file-system incident takes down a
  /// large fraction of the machine at once (<3% of anomalous failures in
  /// the paper; excluded from node-failure statistics).
  double swo_per_month = 0.5;
  /// Fraction of nodes shut down by an SWO.
  double swo_node_fraction = 0.3;
  /// Routine, fault-irrelevant log chatter (systemd/cron/ssh noise) lines
  /// per day, rendered directly into the raw console/messages text.  Real
  /// parsers spend most of their time skipping such lines; this keeps the
  /// parse path honest.
  double routine_chatter_lines_per_day = 1200.0;
  /// HSN lane degrades per day across the machine.  The adaptive routing
  /// usually fails over cleanly; only a small fraction of failovers fail
  /// and surface interconnect errors on the blade's nodes (cf. the
  /// interconnect studies of Table VII — another weak failure correlate).
  double lane_degrades_per_day = 6.0;
  double failover_failure_fraction = 0.1;
  /// Fraction of those episodes accompanied by a blade ec_hw_error; the
  /// external-correlation gate removes the rest (Fig 14's FP reduction —
  /// healthy nodes rarely show the full multi-universe correlation).
  double multi_error_external_fraction = 0.05;
  /// Background ec_hw_errors during healthy times, per day.
  double background_ec_hw_errors_per_day = 3.0;
  /// Nodes per day entering hung-task timeouts with call traces but not
  /// failing (institutional cluster S5; zero on the Cray systems).
  double hung_task_nodes_per_day = 0.0;
};

struct SensorProcessConfig {
  /// Emit periodic SedcReading samples (heavy; off unless a bench needs
  /// raw temperature series, e.g. Fig 11).
  bool emit_readings = false;
  double reading_interval_minutes = 10.0;
  /// Only the first `reading_blade_count` blades emit readings.
  std::uint32_t reading_blade_count = 0;
  /// When >= 0, this node is forced into the powered-off set (its readings
  /// are 0 C — the turned-off node of Fig 11).
  std::int64_t force_power_off_node = -1;
};

struct ScenarioConfig {
  platform::SystemConfig system;
  std::uint64_t seed = 42;
  util::TimePoint begin;
  int days = 7;
  FailureProcessConfig failures;
  BenignProcessConfig benign;
  SensorProcessConfig sensors;
  jobs::WorkloadConfig workload;
  /// Generate the scheduler workload at all (off for pure-environment runs).
  bool enable_jobs = true;

  [[nodiscard]] util::TimePoint end() const noexcept {
    return begin + util::Duration::days(days);
  }
};

/// Paper-calibrated preset for one of the five systems, with the given
/// window.  The default start date falls in the paper's 2014-2016 window.
[[nodiscard]] ScenarioConfig scenario_preset(platform::SystemName name, int days,
                                             std::uint64_t seed);

/// Cause mix helper: zero-initialized mix with the given entries set.
[[nodiscard]] logmodel::CauseMix make_cause_mix(
    std::initializer_list<std::pair<logmodel::RootCause, double>> entries);

}  // namespace hpcfail::faultsim
