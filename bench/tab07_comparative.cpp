// Tables VII & VIII: the literature-comparison tables.  These are survey
// tables in the paper; here the "Our work" row is backed by measurements
// from the reproduced pipeline, and the quantitative contrasts the paper
// draws against prior work (Blue Waters' >6 h SWO spacing, Google's 12-13 h
// server MTBF, LANL's >5 h MTBFs, prior work's 2% NHF-failure rate) are
// checked against our measured values.
#include "bench_common.hpp"
#include "core/external_correlator.hpp"
#include "core/leadtime.hpp"
#include "core/temporal.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Tables VII/VIII: comparison with prior studies");

  const auto p = bench::run_system(platform::SystemName::S1, 28, 708);
  const core::TemporalAnalyzer temporal(p.failures);
  const auto gaps = temporal.inter_failure_minutes(p.sim.config.begin, p.sim.config.end());
  stats::Ecdf gap_ecdf{gaps};
  const double median_gap_min = gap_ecdf.empty() ? 0.0 : gap_ecdf.quantile(0.5);

  const core::ExternalCorrelator correlator(p.parsed.store, p.failures);
  const auto nhf = correlator.correspondence(logmodel::EventType::NodeHeartbeatFault,
                                             p.sim.config.begin, p.sim.config.end());

  const core::LeadTimeAnalyzer leadtime(p.parsed.store);
  const auto lt = leadtime.summarize(p.failures);

  util::TextTable table({"Study", "Focus", "Quantitative anchor", "Ours (measured)"});
  table.row()
      .cell("Blue Waters [28]")
      .cell("SWOs + node failures")
      .cell("SWOs >6 h apart")
      .cell("median node-failure gap " + util::fmt_double(median_gap_min, 1) + " min");
  table.row()
      .cell("Google fleet [15]")
      .cell("server failures")
      .cell("MTBF 12-13 h")
      .cell("failure gaps minutes-scale (bursty)");
  table.row()
      .cell("LANL studies [11],[36]")
      .cell("power/temp, node failures")
      .cell("MTBF >5 h")
      .cell("job-triggered bursts spread over <32 min");
  table.row()
      .cell("Prior NHF study [35]")
      .cell("heartbeat faults")
      .cell("2% of NHFs fail")
      .cell(util::fmt_pct(nhf.fraction()) + " of NHFs fail");
  table.row()
      .cell("Our work (Table VIII row)")
      .cell("node failures, holistic")
      .cell("lead-time gains for 10-28%")
      .cell(util::fmt_pct(lt.enhanceable_fraction()) + ", factor " +
            util::fmt_double(lt.enhancement_factor(), 1) + "x");
  std::cout << table.render() << '\n';

  check.greater("failure spacing is minutes, far below prior work's hours "
                "(median gap < 60 min)",
                60.0, median_gap_min);
  check.greater("NHF-failure correspondence well above prior work's 2%", nhf.fraction(),
                0.02);
  check.in_range("holistic lead-time gains exist (Table VIII 'our work' row)",
                 lt.enhanceable_fraction(), 0.08, 0.32);
  check.greater("external-correlation analysis is the differentiator "
                "(factor > 1)",
                lt.enhancement_factor(), 1.0);
  return check.exit_code();
}
