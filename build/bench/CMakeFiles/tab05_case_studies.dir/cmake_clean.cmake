file(REMOVE_RECURSE
  "CMakeFiles/tab05_case_studies.dir/tab05_case_studies.cpp.o"
  "CMakeFiles/tab05_case_studies.dir/tab05_case_studies.cpp.o.d"
  "tab05_case_studies"
  "tab05_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
