#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hpcfail::stats {

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  if (!(lo < hi) || bins == 0) throw std::invalid_argument("Histogram::linear: bad range");
  std::vector<double> edges(bins + 1);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(bins);
  }
  return Histogram(std::move(edges));
}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  if (!(0 < lo && lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram::logarithmic: bad range");
  }
  std::vector<double> edges(bins + 1);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) / static_cast<double>(bins));
  }
  return Histogram(std::move(edges));
}

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.size() < 2 || !std::is_sorted(edges_.begin(), edges_.end())) {
    throw std::invalid_argument("Histogram: need >=2 ascending edges");
  }
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  total_ += weight;
  if (x < edges_.front()) {
    underflow_ += weight;
    return;
  }
  if (x >= edges_.back()) {
    overflow_ += weight;
    return;
  }
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  counts_[static_cast<std::size_t>(it - edges_.begin()) - 1] += weight;
}

double Histogram::cumulative_fraction(std::size_t bin) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t i = 0; i <= bin && i < counts_.size(); ++i) below += counts_[i];
  return static_cast<double>(below) / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  if (other.edges_ != edges_) throw std::invalid_argument("Histogram::merge: edge mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof buf, "[%10.3f, %10.3f) %8llu ", edges_[i], edges_[i + 1],
                  static_cast<unsigned long long>(counts_[i]));
    out += buf;
    const auto bars = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    out.append(bars, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hpcfail::stats
