// Differential tests for the scan primitive layer (src/util/scan.hpp):
// every dispatched tier (SWAR, SSE4.2, AVX2 — whatever the host supports)
// must agree byte-for-byte with the retained scalar references on seeded
// randomized corpora stuffed with the nasty cases: CRLF, NUL bytes, empty
// lines, missing trailing newlines, and lines longer than a chunk.  The
// suite runs under ASan/UBSan in CI, so any out-of-bounds vector load
// fails loudly here.
#include <gtest/gtest.h>

#include <charconv>
#include <string>
#include <string_view>
#include <vector>

#include "parsers/line_classifier.hpp"
#include "util/rng.hpp"
#include "util/scan.hpp"
#include "util/strings.hpp"

namespace hpcfail::util::scan {
namespace {

/// Runs `body` once per tier the host can execute, with dispatch pinned to
/// that tier; restores the original tier afterwards.
template <typename Fn>
void for_each_isa(Fn&& body) {
  const Isa original = active_isa();
  for (const Isa isa : {Isa::Swar, Isa::Sse42, Isa::Avx2}) {
    if (force_isa(isa) != isa) continue;  // host can't execute this tier
    body(isa);
  }
  force_isa(original);
}

/// A corpus generator biased toward scanner edge cases.  Deterministic for
/// a seed, so failures reproduce.
std::string random_corpus(Rng& rng, std::size_t target_bytes) {
  std::string out;
  out.reserve(target_bytes + 64);
  while (out.size() < target_bytes) {
    switch (rng.uniform_int(0, 9)) {
      case 0:
        out += '\n';  // empty line
        break;
      case 1:
        out += "\r\n";  // empty CRLF line
        break;
      case 2: {  // line longer than any chunk the tests use
        const auto len = static_cast<std::size_t>(rng.uniform_int(300, 5000));
        for (std::size_t i = 0; i < len; ++i)
          out += static_cast<char>('a' + rng.uniform_int(0, 25));
        out += '\n';
        break;
      }
      case 3: {  // line with embedded NUL and high bytes
        out += "abc";
        out += '\0';
        out += static_cast<char>(0x80 + rng.uniform_int(0, 0x7f));
        out += "def\n";
        break;
      }
      case 4:
        out += "interior\rcarriage return kept\n";
        break;
      default: {  // plain log-ish line, randomly CRLF-terminated
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 90));
        for (std::size_t i = 0; i < len; ++i) {
          const int c = static_cast<int>(rng.uniform_int(32, 126));
          out += static_cast<char>(c);
        }
        out += rng.uniform_int(0, 3) == 0 ? "\r\n" : "\n";
        break;
      }
    }
  }
  if (rng.uniform_int(0, 1) == 0) out += "tail without newline";
  return out;
}

// ------------------------------------------------------- byte scanning ----

TEST(ScanFindByte, MatchesReferenceOnRandomCorpora) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const std::string corpus = random_corpus(rng, 4096);
    for (const char needle : {'\n', '\r', '\0', 'a', ' ', '\x80'}) {
      const std::size_t want = ref::find_byte(corpus, needle);
      const std::size_t want_count = ref::count_byte(corpus, needle);
      const std::size_t want_last = ref::rfind_byte(corpus, needle);
      for_each_isa([&](Isa isa) {
        EXPECT_EQ(find_byte(corpus, needle), want) << isa_name(isa);
        EXPECT_EQ(rfind_byte(corpus, needle), want_last) << isa_name(isa);
        EXPECT_EQ(count_byte(corpus, needle), want_count) << isa_name(isa);
        // Every occurrence, not just the first: walk the chain.
        std::size_t from = 0;
        std::size_t hits = 0;
        while (true) {
          const std::size_t got = find_byte(corpus, needle, from);
          ASSERT_EQ(got, ref::find_byte(corpus, needle, from)) << isa_name(isa);
          if (got == npos) break;
          ++hits;
          from = got + 1;
        }
        EXPECT_EQ(hits, want_count) << isa_name(isa);
      });
    }
  }
}

TEST(ScanFindByte, EdgeLengthsAndOffsets) {
  // Lengths straddling every SIMD width boundary, needle at every position.
  for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{15}, std::size_t{16},
                                std::size_t{17}, std::size_t{31}, std::size_t{32},
                                std::size_t{33}, std::size_t{63}, std::size_t{64},
                                std::size_t{65}}) {
    std::string s(len, 'x');
    for_each_isa([&](Isa isa) {
      EXPECT_EQ(find_byte(s, 'y'), npos) << isa_name(isa) << " len=" << len;
      EXPECT_EQ(rfind_byte(s, 'y'), npos) << isa_name(isa) << " len=" << len;
      EXPECT_EQ(count_byte(s, 'x'), len) << isa_name(isa) << " len=" << len;
    });
    for (std::size_t pos = 0; pos < len; ++pos) {
      std::string t = s;
      t[pos] = 'y';
      for_each_isa([&](Isa isa) {
        EXPECT_EQ(find_byte(t, 'y'), pos) << isa_name(isa) << " len=" << len;
        EXPECT_EQ(rfind_byte(t, 'y'), pos) << isa_name(isa) << " len=" << len;
        for (std::size_t from = 0; from <= len; ++from)
          ASSERT_EQ(find_byte(t, 'y', from), ref::find_byte(t, 'y', from))
              << isa_name(isa) << " len=" << len << " from=" << from;
      });
    }
  }
}

TEST(ScanFindByte, FromPastEndIsNpos) {
  for_each_isa([&](Isa) {
    EXPECT_EQ(find_byte("abc", 'a', 3), npos);
    EXPECT_EQ(find_byte("abc", 'a', 99), npos);
    EXPECT_EQ(find_byte("", 'a'), npos);
    EXPECT_EQ(rfind_byte("", 'a'), npos);
    EXPECT_EQ(count_byte("", 'a'), 0u);
  });
}

// ---------------------------------------------------------- LineCursor ----

TEST(LineCursor, MatchesSplitLinesOnRandomCorpora) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const std::string corpus = random_corpus(rng, 2048);
    const auto want = split_lines(corpus);
    for_each_isa([&](Isa isa) {
      std::vector<std::string_view> got;
      LineCursor cursor(corpus);
      std::string_view line;
      while (cursor.next(line)) got.push_back(line);
      ASSERT_EQ(got.size(), want.size()) << isa_name(isa) << " round=" << round;
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << isa_name(isa) << " round=" << round;
        // Zero-copy: the views must alias the corpus, not a copy.
        ASSERT_GE(got[i].data(), corpus.data());
        ASSERT_LE(got[i].data() + got[i].size(), corpus.data() + corpus.size());
      }
    });
  }
}

TEST(LineCursor, HandPickedEdgeCases) {
  const struct {
    std::string_view text;
    std::vector<std::string_view> lines;
  } cases[] = {
      {"", {}},
      {"\n\n\r\n", {}},
      {"a", {"a"}},
      {"a\r", {"a"}},
      {"a\r\nb\nc", {"a", "b", "c"}},
      {"a\rb\n", {"a\rb"}},
      {std::string_view("a\0b\nc", 5), {std::string_view("a\0b", 3), "c"}},
  };
  for (const auto& c : cases) {
    std::vector<std::string_view> got;
    LineCursor cursor(c.text);
    std::string_view line;
    while (cursor.next(line)) got.push_back(line);
    EXPECT_EQ(got, c.lines);
  }
}

// -------------------------------------------------------- digit fields ----

TEST(ScanDigits, FixedWidthAgainstScalar) {
  Rng rng(11);
  const auto scalar_parse = [](const char* p, std::size_t len, std::uint64_t& out) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (p[i] < '0' || p[i] > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(p[i] - '0');
    }
    out = v;
    return true;
  };
  for (int round = 0; round < 5000; ++round) {
    char buf[8];
    for (char& c : buf) {
      // Mostly digits, sometimes near-miss bytes ('/' and ':' bracket '0'-'9').
      const int r = static_cast<int>(rng.uniform_int(0, 12));
      c = r <= 9 ? static_cast<char>('0' + r) : (r == 10 ? '/' : (r == 11 ? ':' : 'x'));
    }
    std::uint64_t want = 0;
    int got2 = -1, got4 = -1;
    std::uint32_t got8 = 0;
    EXPECT_EQ(parse_digits2(buf, got2), scalar_parse(buf, 2, want));
    if (scalar_parse(buf, 2, want)) {
      EXPECT_EQ(static_cast<std::uint64_t>(got2), want);
    }
    EXPECT_EQ(parse_digits4(buf, got4), scalar_parse(buf, 4, want));
    if (scalar_parse(buf, 4, want)) {
      EXPECT_EQ(static_cast<std::uint64_t>(got4), want);
    }
    EXPECT_EQ(parse_digits8(buf, got8), scalar_parse(buf, 8, want));
    if (scalar_parse(buf, 8, want)) {
      EXPECT_EQ(static_cast<std::uint64_t>(got8), want);
    }
  }
}

TEST(ScanDigits, DigitRun) {
  EXPECT_EQ(digit_run(""), 0u);
  EXPECT_EQ(digit_run("abc"), 0u);
  EXPECT_EQ(digit_run("123abc"), 3u);
  EXPECT_EQ(digit_run("12345678901234567890x"), 20u);
  EXPECT_EQ(digit_run("ab123", 2), 3u);
  EXPECT_EQ(digit_run("1/2:3"), 1u);
  const std::string long_digits(1000, '7');
  EXPECT_EQ(digit_run(long_digits), 1000u);
  EXPECT_EQ(digit_run(long_digits + "\x80"), 1000u);
}

TEST(ScanDigits, ParseU64AgreesWithFromChars) {
  const auto from_chars_ref = [](std::string_view s) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
    return v;
  };
  Rng rng(13);
  for (int round = 0; round < 20000; ++round) {
    std::string s;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 24));
    for (std::size_t i = 0; i < len; ++i) {
      const int r = static_cast<int>(rng.uniform_int(0, 11));
      s += r <= 9 ? static_cast<char>('0' + r) : (r == 10 ? ' ' : '-');
    }
    std::uint64_t got = 0;
    if (parse_u64_digits(s, got)) {
      // The fast path may only accept what from_chars accepts, with the
      // same value.
      const auto want = from_chars_ref(s);
      ASSERT_TRUE(want.has_value()) << '"' << s << '"';
      ASSERT_EQ(got, *want) << '"' << s << '"';
    }
  }
  // It must accept the full clean-digit range it claims (1..19 digits).
  std::uint64_t v = 0;
  ASSERT_TRUE(parse_u64_digits("0", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(parse_u64_digits("9999999999999999999", v));
  EXPECT_EQ(v, 9999999999999999999ull);
  EXPECT_FALSE(parse_u64_digits("", v));
  EXPECT_FALSE(parse_u64_digits("12345678901234567890", v));  // 20 digits: slow path
  EXPECT_FALSE(parse_u64_digits(" 1", v));
  EXPECT_FALSE(parse_u64_digits("+1", v));
}

// -------------------------------------------------------- SignatureSet ----

constexpr Signature kTestSignatures[] = {
    {"Kernel panic - not syncing", false},
    {"LustreError", false},
    {"Machine check", false},
    {"EDAC", false},
    {"segfault at", false},
    {"Out of memory", false},
    {"HEST:", true},
    {"DVS:", true},
    {"ec_sedc_warning", false},
    {"x", false},  // single-byte signature
};

std::string random_payload(Rng& rng) {
  std::string out;
  const auto pieces = static_cast<std::size_t>(rng.uniform_int(0, 6));
  for (std::size_t i = 0; i < pieces; ++i) {
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // a whole signature
        const auto& sig =
            kTestSignatures[rng.uniform_int(0, std::ssize(kTestSignatures) - 1)];
        out += sig.text;
        break;
      }
      case 1: {  // a truncated signature (near-miss)
        const auto& sig =
            kTestSignatures[rng.uniform_int(0, std::ssize(kTestSignatures) - 1)];
        out += sig.text.substr(0, sig.text.size() - 1);
        break;
      }
      case 2:
        out += '\0';
        out += static_cast<char>(0x80 + rng.uniform_int(0, 0x7f));
        break;
      default: {
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 40));
        for (std::size_t j = 0; j < len; ++j)
          out += static_cast<char>(rng.uniform_int(32, 126));
        break;
      }
    }
    out += ' ';
  }
  return out;
}

TEST(SignatureSet, MatchesReferenceOnRandomPayloads) {
  const SignatureSet set{kTestSignatures};
  ASSERT_EQ(set.size(), std::size(kTestSignatures));
  Rng rng(17);
  for (int round = 0; round < 20000; ++round) {
    const std::string payload = random_payload(rng);
    const std::uint32_t want = set.match_ref(payload);
    for_each_isa([&](Isa isa) {
      ASSERT_EQ(set.match(payload), want)
          << isa_name(isa) << " payload=\"" << payload << '"';
    });
  }
}

TEST(SignatureSet, PrefixSignaturesOnlyMatchAtStart) {
  const SignatureSet set{kTestSignatures};
  for_each_isa([&](Isa) {
    EXPECT_NE(set.match("HEST: something") & (1u << 6), 0u);
    EXPECT_EQ(set.match("prefix HEST: not at start") & (1u << 6), 0u);
    EXPECT_NE(set.match("prefix HEST: not at start"), 0u);  // 'x' contains-sig hits
  });
}

TEST(SignatureSet, EmptyAndBoundaryPayloads) {
  const SignatureSet set{kTestSignatures};
  for_each_isa([&](Isa) {
    EXPECT_EQ(set.match(""), set.match_ref(""));
    EXPECT_EQ(set.match("E"), set.match_ref("E"));
    EXPECT_EQ(set.match("EDAC"), set.match_ref("EDAC"));
    // Signature ending exactly at a 32-byte block boundary.
    std::string s(32 - 4, ' ');
    s += "EDAC";
    EXPECT_EQ(set.match(s), set.match_ref(s));
    // Signature straddling the boundary.
    std::string t(30, ' ');
    t += "EDAC";
    EXPECT_EQ(set.match(t), set.match_ref(t));
  });
}

// ------------------------------------------- production classifiers -------

/// Fragments biased toward the real classifier cascades, including near
/// misses, overlap cases (LBUG inside LustreError lines) and validation
/// fall-throughs (">] " frames without a '+').
std::string random_classifier_payload(Rng& rng) {
  static constexpr std::string_view kFragments[] = {
      "Kernel panic - not syncing: Fatal exception",
      "LustreError: 11-0: lustre-OST0001",
      "ASSERTION failed: LBUG",
      "Machine check events logged: bank 5",
      "EDAC MC0: CE row 2",
      "rcu_sched self-detected stall on CPU: 3",
      "HEST: Table parsing disabled",
      "[Firmware Bug]: cpu 4",
      "segfault at 7f3b err 4: in libc",
      "page allocation failure, mode:0x4020",
      "Out of memory: Kill process 1234 score 887",
      "task kworker blocked for more than 120 seconds:",
      "BUG: unable to handle kernel paging request",
      " [<ffffffff81234567>] bad_module+0x1a2/0x400",
      " [<ffffffff81234567>] no_plus_frame ",
      "DVS: file system failure",
      "bad inode: 12345",
      "link error detected: port 3",
      "Shutdown: system going down: halt",
      "System halted",
      "Booting Linux on physical CPU 0x0: rev 4",
      "health check abnormal exit",
      "node in suspect mode",
      "NHC: check_fs failed",
      "ec_sedc_warning CPU_TEMP high",
      "ec_sedc_warning VDD out of range",
      "ec_sedc_warning AIR_VEL low",
      "ec_sedc_warning unspecified channel",
      "ec_environment fan speed",
      "sedc: cabinet c0-0 reading",
      "L0_sysd_mce: bank 2",
      "cabinet power fault",
      "micro controller fault",
      "communication fault on blade",
      "module health fault",
      "RPM fault fan 3",
      "ECB fault",
      "sensor check failed",
      "get sensor reading failed",
      "bc heartbeat fault",
      "Kernel panic - not",  // truncations / near misses from here down
      "LustreErro",
      "EDA-C",
      "HEST",
      "ec_sedc_warnin",
  };
  std::string out;
  const auto pieces = static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t i = 0; i < pieces; ++i) {
    if (rng.uniform_int(0, 2) == 0) {
      const auto len = static_cast<std::size_t>(rng.uniform_int(0, 30));
      for (std::size_t j = 0; j < len; ++j)
        out += static_cast<char>(rng.uniform_int(32, 126));
    } else {
      out += kFragments[rng.uniform_int(0, std::ssize(kFragments) - 1)];
    }
    out += ' ';
  }
  return out;
}

TEST(ClassifierDifferential, AllCascadesMatchScalarReferenceOnEveryIsa) {
  using parsers::Classified;
  const auto same = [](const std::optional<Classified>& a,
                       const std::optional<Classified>& b) {
    if (a.has_value() != b.has_value()) return false;
    if (!a.has_value()) return true;
    return a->type == b->type && a->severity == b->severity && a->detail == b->detail;
  };
  Rng rng(23);
  for (int round = 0; round < 30000; ++round) {
    const std::string payload = random_classifier_payload(rng);
    const auto kernel_want = parsers::classify_kernel_payload_ref(payload);
    const auto nhc_want = parsers::classify_nhc_payload_ref(payload);
    const auto ctrl_want = parsers::classify_controller_payload_ref(payload);
    for_each_isa([&](Isa isa) {
      ASSERT_TRUE(same(parsers::classify_kernel_payload(payload), kernel_want))
          << isa_name(isa) << " payload=\"" << payload << '"';
      ASSERT_TRUE(same(parsers::classify_nhc_payload(payload), nhc_want))
          << isa_name(isa) << " payload=\"" << payload << '"';
      ASSERT_TRUE(same(parsers::classify_controller_payload(payload), ctrl_want))
          << isa_name(isa) << " payload=\"" << payload << '"';
    });
  }
}

// ------------------------------------------------------------ dispatch ----

TEST(ScanDispatch, IsaNamesAndForceRoundTrip) {
  EXPECT_EQ(isa_name(Isa::Swar), "swar");
  EXPECT_EQ(isa_name(Isa::Sse42), "sse4.2");
  EXPECT_EQ(isa_name(Isa::Avx2), "avx2");
  const Isa original = active_isa();
  EXPECT_EQ(force_isa(Isa::Swar), Isa::Swar);  // always executable
  EXPECT_EQ(active_isa(), Isa::Swar);
  force_isa(original);
  EXPECT_EQ(active_isa(), original);
}

TEST(ScanCharClasses, WhitespaceAndLower) {
  for (int c = 0; c < 256; ++c) {
    const char ch = static_cast<char>(c);
    const bool want_ws =
        ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == '\f' || ch == '\v';
    EXPECT_EQ(is_ws(ch), want_ws) << c;
    const char want_lower = (ch >= 'A' && ch <= 'Z') ? static_cast<char>(ch + 32) : ch;
    EXPECT_EQ(to_lower_ascii(ch), want_lower) << c;
  }
}

}  // namespace
}  // namespace hpcfail::util::scan
