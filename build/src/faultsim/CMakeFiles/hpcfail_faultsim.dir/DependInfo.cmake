
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/chain_emitter.cpp" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/chain_emitter.cpp.o" "gcc" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/chain_emitter.cpp.o.d"
  "/root/repo/src/faultsim/scenario.cpp" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/scenario.cpp.o" "gcc" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/scenario.cpp.o.d"
  "/root/repo/src/faultsim/scenario_io.cpp" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/scenario_io.cpp.o" "gcc" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/scenario_io.cpp.o.d"
  "/root/repo/src/faultsim/simulator.cpp" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/simulator.cpp.o" "gcc" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/simulator.cpp.o.d"
  "/root/repo/src/faultsim/special_scenarios.cpp" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/special_scenarios.cpp.o" "gcc" "src/faultsim/CMakeFiles/hpcfail_faultsim.dir/special_scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jobs/CMakeFiles/hpcfail_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/logmodel/CMakeFiles/hpcfail_logmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hpcfail_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/hpcfail_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
