// Online (streaming) failure monitor: ingest records in time order and emit
// alerts as the evidence accumulates — the deployable face of the offline
// pipeline.  It implements the paper's recommended health-checker upgrades:
// flag indicative internal patterns, upgrade the warning when correlated
// external indicators exist (lead-time enhancement, Observation 5), confirm
// failures with a root-cause hypothesis, and report recoveries.
#pragma once

#include <deque>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/record.hpp"

namespace hpcfail::core {

enum class AlertKind : std::uint8_t {
  PatternWarning,       ///< >=2 indicative internal types within the window
  ExternalEarlyWarning, ///< the pattern is backed by external indicators
  FailureConfirmed,     ///< failure marker observed; diagnosis attached
  NodeRecovered,        ///< NodeBoot after a confirmed failure
};

[[nodiscard]] std::string_view to_string(AlertKind k) noexcept;

struct Alert {
  AlertKind kind = AlertKind::PatternWarning;
  util::TimePoint time;
  platform::NodeId node;
  logmodel::RootCause suspected = logmodel::RootCause::Unknown;
  std::string message;
};

struct MonitorConfig {
  /// Two indicative internal records of different types within this window
  /// form a warning pattern.
  util::Duration pattern_window = util::Duration::minutes(10);
  /// How long node-internal evidence is remembered.
  util::Duration evidence_memory = util::Duration::minutes(30);
  /// How long blade-external indicators are remembered.
  util::Duration external_memory = util::Duration::hours(1);
  /// Minimum spacing between warnings for the same node.
  util::Duration warning_cooldown = util::Duration::hours(1);
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(MonitorConfig config = {}) : config_(config) {}

  /// Feeds one record (records must arrive in non-decreasing time order)
  /// and returns any alerts it triggers.  `detail` is the record's resolved
  /// detail text (records carry interned Symbols; the monitor has no table
  /// of its own, so the caller resolves — e.g. store.detail(r)).  The text
  /// is copied into the evidence memory, so it need not outlive the call.
  [[nodiscard]] std::vector<Alert> ingest(const logmodel::LogRecord& record,
                                          std::string_view detail);

  /// Convenience: feed a whole time-sorted store.
  [[nodiscard]] std::vector<Alert> ingest_all(const logmodel::LogStore& store);

  [[nodiscard]] std::size_t nodes_tracked() const noexcept { return nodes_.size(); }

 private:
  struct RememberedEvent {
    util::TimePoint time;
    logmodel::EventType type;
    std::string detail;
  };
  struct NodeView {
    std::deque<RememberedEvent> recent;  ///< indicative internal records
    util::TimePoint last_warning{std::numeric_limits<std::int64_t>::min() / 2};
    bool down = false;
  };

  [[nodiscard]] Evidence evidence_for(const NodeView& node, platform::BladeId blade,
                                      util::TimePoint now) const;

  MonitorConfig config_;
  std::unordered_map<std::uint32_t, NodeView> nodes_;
  /// blade id -> recent external indicator times/types.
  std::unordered_map<std::uint32_t, std::deque<RememberedEvent>> blade_external_;
};

}  // namespace hpcfail::core
