// Table V: the five root-cause case studies.  Each case is an isolated
// corpus with the paper's internal/external indicator pattern; the engine's
// inference is compared with the case's documented root cause.
#include "bench_common.hpp"
#include "faultsim/special_scenarios.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table V: case studies");

  auto cases = faultsim::build_case_studies(2105);
  util::TextTable table({"Case", "expected cause", "inferred cause", "confidence",
                         "rationale"});
  std::size_t correct = 0;
  for (auto& cs : cases) {
    const auto p = bench::run_pipeline(std::move(cs.sim));
    const auto& failures = p.failures;

    // The inference shown is the modal cause over the case's failures.
    std::array<std::size_t, logmodel::kRootCauseCount> counts{};
    double confidence = 0.0;
    std::string rationale = "(no failures detected)";
    for (const auto& f : failures) {
      ++counts[static_cast<std::size_t>(f.inference.cause)];
    }
    auto inferred = logmodel::RootCause::Unknown;
    std::size_t best = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > best) {
        best = counts[i];
        inferred = static_cast<logmodel::RootCause>(i);
      }
    }
    for (const auto& f : failures) {
      if (f.inference.cause == inferred) {
        confidence = f.inference.confidence;
        rationale = f.inference.rationale;
        break;
      }
    }
    if (inferred == cs.expected) ++correct;
    table.row()
        .cell(cs.title)
        .cell(std::string(to_string(cs.expected)))
        .cell(std::string(to_string(inferred)))
        .cell(confidence, 2)
        .cell(rationale);
  }
  std::cout << table.render() << '\n';

  check.in_range("case studies diagnosed correctly", static_cast<double>(correct), 4, 5);
  return check.exit_code();
}
