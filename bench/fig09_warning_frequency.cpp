// Fig 9: frequency of recurring BC/CC warning types throughout one day on
// S2.  Paper: blades 1, 5 and 8 saw more than 1400 mean recurring warnings;
// one storm blade stopped seeing them after a certain hour; cabinet-level
// faults are logged even more frequently (>1400 mean daily counts); none of
// the failed nodes belonged to the storm blades.
#include "bench_common.hpp"
#include "core/benign_faults.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 9: per-hour warning storms (S2, 1 day)");

  // The paper's storm blades log >1400 warnings/day; the default preset
  // keeps SEDC volume moderate, so this bench switches the storm knob to
  // the Fig 9 profile.
  faultsim::ScenarioConfig scenario =
      faultsim::scenario_preset(platform::SystemName::S2, 1, 909);
  scenario.benign.sedc_sample_interval_minutes = 1.0;  // ~1100-1400 warnings/day
  scenario.benign.deviant_blade_fraction = 0.006;
  const auto p = bench::run_pipeline(scenario);

  const core::BenignFaultAnalyzer benign(p.parsed.store);
  const auto storms = benign.top_warning_blades(p.sim.config.begin, 8);

  util::TextTable table({"Blade", "total", "h00-05", "h06-11", "h12-17", "h18-23"});
  for (const auto& blade : storms) {
    auto bucket = [&blade](int from) {
      std::size_t s = 0;
      for (int h = from; h < from + 6; ++h) s += blade.hourly[static_cast<std::size_t>(h)];
      return static_cast<std::int64_t>(s);
    };
    table.row()
        .cell(static_cast<std::int64_t>(blade.blade))
        .cell(static_cast<std::int64_t>(blade.total))
        .cell(bucket(0))
        .cell(bucket(6))
        .cell(bucket(12))
        .cell(bucket(18));
  }
  std::cout << table.render() << '\n';

  check.in_range("storm blades found", static_cast<double>(storms.size()), 3, 8);
  if (storms.size() >= 3) {
    check.in_range("top storm blade daily warnings (paper >1400)",
                   static_cast<double>(storms[0].total), 1000, 3000);
    check.in_range("third storm blade daily warnings (paper >1400)",
                   static_cast<double>(storms[2].total), 800, 3000);
  }

  // No failed node belongs to a storm blade (paper: over 3 weeks the
  // failed nodes did not belong to any violating blade).
  std::size_t failures_on_storm_blades = 0;
  for (const auto& f : p.failures) {
    for (const auto& blade : storms) {
      if (f.event.blade.value == blade.blade) ++failures_on_storm_blades;
    }
  }
  check.in_range("failures on storm blades (paper: none)",
                 static_cast<double>(failures_on_storm_blades), 0, 1);
  return check.exit_code();
}
