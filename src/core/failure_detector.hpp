// Failure detection over the structured log store: finds confirmed node
// failures from internal failure markers (kernel panic / anomalous shutdown
// / admindown halt), deduplicates marker clusters into single failure
// events, and attaches the indicative internal chain preceding each event.
//
// This is step (1) of the paper's methodology (Section II-A): tracking
// confirmed failure indications in the node-specific logs.  Ground-truth
// validation, which the paper obtained from cluster administrators, is done
// in the tests against the injector's ledger.
#pragma once

#include <cstdint>
#include <vector>

#include "jobs/job_table.hpp"
#include "logmodel/log_store.hpp"
#include "platform/ids.hpp"
#include "util/time.hpp"

namespace hpcfail::core {

struct FailureEvent {
  platform::NodeId node;
  platform::BladeId blade;
  platform::CabinetId cabinet;
  util::TimePoint time;                  ///< first failure marker of the cluster
  logmodel::EventType marker = logmodel::EventType::NodeShutdown;  ///< first marker type
  std::int64_t job_id = logmodel::kNoJob;///< job on the node at failure time
  /// Earliest fault-indicative internal record within the lookback window;
  /// equals `time` when the failure had no internal precursor.
  util::TimePoint first_internal;
  /// Store indexes of the indicative internal records (time-ordered).
  std::vector<std::uint32_t> chain;
};

struct DetectorConfig {
  /// How far before a marker the indicative chain may start.
  util::Duration lookback = util::Duration::minutes(30);
  /// Markers on the same node within this window merge into one failure.
  util::Duration dedup_window = util::Duration::minutes(10);
  /// Slack for job attribution around the failure time.
  util::Duration job_slack = util::Duration::minutes(3);
  /// A run of failures with consecutive gaps <= swo_gap covering at least
  /// swo_min_nodes distinct nodes is a system-wide outage, not node
  /// failures (the paper excludes SWOs: <3% of anomalous failures).
  util::Duration swo_gap = util::Duration::seconds(20);
  std::size_t swo_min_nodes = 50;
};

/// A detected system-wide outage (excluded from node-failure statistics).
struct SwoCluster {
  util::TimePoint begin;
  util::TimePoint end;
  std::size_t nodes = 0;
};

struct Detection {
  std::vector<FailureEvent> failures;  ///< node failures, SWOs excluded
  std::vector<SwoCluster> swos;
  std::size_t intended_shutdowns_excluded = 0;
};

class FailureDetector {
 public:
  explicit FailureDetector(DetectorConfig config = {}) : config_(config) {}

  /// Full detection: node failures with intended shutdowns and SWO
  /// clusters recognized and excluded. Failures sorted by time.
  [[nodiscard]] Detection detect_full(const logmodel::LogStore& store,
                                      const jobs::JobTable* jobs) const;

  /// Convenience: just the node failures.
  [[nodiscard]] std::vector<FailureEvent> detect(const logmodel::LogStore& store,
                                                 const jobs::JobTable* jobs) const {
    return detect_full(store, jobs).failures;
  }

  [[nodiscard]] const DetectorConfig& config() const noexcept { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace hpcfail::core
