// Discrete-event synthesis of a full multi-source log corpus for one
// scenario: workload, failure bursts with propagation chains, benign fault
// populations and (optionally) raw sensor readings.
//
// The output is structured records plus the ground-truth ledger; the loggen
// module renders the records to raw text and the parsers re-ingest that
// text, so the analysis pipeline exercises the same path it would on
// production logs.
#pragma once

#include <vector>

#include "faultsim/chain_emitter.hpp"
#include "faultsim/ground_truth.hpp"
#include "faultsim/scenario.hpp"
#include "jobs/job.hpp"
#include "logmodel/log_store.hpp"
#include "platform/topology.hpp"

namespace hpcfail::faultsim {

struct SimulationResult {
  ScenarioConfig config;
  platform::Topology topology;
  std::vector<logmodel::LogRecord> records;  ///< unsorted; LogStore sorts
  logmodel::SymbolTable symbols;             ///< resolves records[i].detail
  std::vector<jobs::Job> jobs;
  GroundTruth truth;

  /// Builds a finalized LogStore over a copy of the records (and of the
  /// symbol table resolving their details).
  [[nodiscard]] logmodel::LogStore make_store() const {
    return logmodel::LogStore{std::vector<logmodel::LogRecord>(records), symbols};
  }
};

class Simulator {
 public:
  explicit Simulator(ScenarioConfig config);

  /// Runs the whole scenario. Deterministic in the config (seed included).
  [[nodiscard]] SimulationResult run();

 private:
  struct RunState;

  void generate_workload(RunState& st);
  void generate_failures(RunState& st);
  void generate_benign(RunState& st);
  void generate_sensor_readings(RunState& st);

  /// Picks a job running at `t` suitable for an application-triggered
  /// chain; nullptr when none is running.
  [[nodiscard]] jobs::Job* pick_running_job(RunState& st, util::TimePoint t,
                                            std::uint32_t min_nodes);

  ScenarioConfig config_;
};

}  // namespace hpcfail::faultsim
