// The resident query daemon's engine: boots from a ParsedCorpus (text
// parse, streaming ingest or snapshot load all produce one), follows
// attached log tails through TailReader + OnlineMonitor, and answers
// protocol requests against an immutable per-epoch view of the world.
//
// Epoch model (DESIGN.md §14): the server holds a shared_ptr to the
// current Epoch — a finalized LogStore over base + tail records, the
// sliding analysis window clipped to ServerConfig::window, and a snapshot
// of per-node monitor health.  poll_tail() is the single writer: when new
// records arrive it builds the next Epoch and swaps the pointer; queries
// (any thread) copy the pointer once and answer entirely from that Epoch,
// so every response is consistent with exactly one epoch — no torn reads.
//
// Analysis results are cached per epoch: the first query that needs the
// AnalysisEngine (causes, lead_time, report) computes it once under
// std::call_once and every later query in that epoch reuses it.  A tail
// advance invalidates nothing in place — the old Epoch simply stops being
// current, and in-flight queries against it stay valid until their
// shared_ptr drops.  hpcfail.serve.analysis_recomputes counts the compute
// path, hpcfail.serve.cache_hits the reuse path; the epoch-cache test
// pins "repeated queries within an epoch never recompute" on those.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "core/online_monitor.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"
#include "parsers/source_parsers.hpp"
#include "serve/protocol.hpp"
#include "serve/tail.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail::serve {

/// Per-node rollup of every monitor alert seen so far.
struct NodeHealth {
  std::uint64_t warnings = 0;    ///< PatternWarning + ExternalEarlyWarning
  std::uint64_t failures = 0;    ///< FailureConfirmed
  std::uint64_t recoveries = 0;  ///< NodeRecovered
  bool down = false;
  bool has_alert = false;
  core::Alert last;  ///< most recent alert; meaningful when has_alert
};

struct ServerConfig {
  /// Sliding analysis window: queries analyze [last record - window,
  /// last record], clipped to the store extent.
  util::Duration window = util::Duration::days(30);
  core::DetectorConfig detector;
  core::RootCauseConfig root_cause;
  core::MonitorConfig monitor;
  /// Shards the per-failure analysis stages; null = serial (results are
  /// byte-identical either way, per the engine's determinism contract).
  util::ThreadPool* pool = nullptr;
};

class Server {
 public:
  /// Boots over the corpus: replays the store through the OnlineMonitor
  /// (boot_alerts() keeps the replay's alerts) and publishes epoch 0.
  explicit Server(parsers::ParsedCorpus corpus, ServerConfig config = {});

  /// Follows `path` as a live tail of `source` starting at `offset` (pass
  /// the ingested prefix size; 0 re-reads the whole file).  Scheduler
  /// tails are rejected with std::invalid_argument — scheduler lines
  /// mutate the JobTable statefully and are not tailable.
  void attach_tail(std::string path, logmodel::LogSource source,
                   std::uint64_t offset = 0);

  struct TailPoll {
    std::size_t lines = 0;    ///< complete lines consumed across all tails
    std::size_t records = 0;  ///< records parsed from them
    std::vector<core::Alert> alerts;
    std::optional<TailError> error;  ///< first tail error, if any

    [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
  };

  /// Polls every attached tail and, when records arrived, publishes the
  /// next epoch.  Single-writer: call from one thread at a time (queries
  /// may run concurrently).  A tail error leaves that tail's offset where
  /// it was — the next poll retries — and never tears the current epoch.
  TailPoll poll_tail();

  /// Parses and answers one request line; always returns exactly one
  /// response line (no trailing newline).  Thread-safe.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Current epoch id: 0 at boot, +1 per record-bearing poll.
  [[nodiscard]] std::uint64_t epoch() const noexcept;

  /// Times the analysis cache was filled (at most once per epoch).
  [[nodiscard]] std::uint64_t analysis_recomputes() const noexcept {
    return recomputes_.load(std::memory_order_relaxed);
  }

  /// True once a shutdown request was answered; serve loops stop on it.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// Alerts emitted while replaying the boot corpus through the monitor.
  [[nodiscard]] const std::vector<core::Alert>& boot_alerts() const noexcept {
    return boot_alerts_;
  }

  [[nodiscard]] const platform::Topology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] std::string_view system_label() const noexcept { return label_; }

 private:
  /// One immutable published view; queries pin it with a shared_ptr.
  struct Epoch {
    std::uint64_t id = 0;
    logmodel::LogStore store;  ///< finalized: base + every tail record so far
    util::TimePoint begin;     ///< analysis window start
    util::TimePoint end;       ///< analysis window end (exclusive)
    std::size_t tail_records = 0;  ///< cumulative tail records in the store
    std::unordered_map<std::uint32_t, NodeHealth> health;  ///< by node id

    // Lazy per-epoch analysis cache, filled at most once under `once`.
    std::once_flag once;
    std::shared_ptr<const core::AnalysisResult> analysis;
    std::string report;  ///< markdown_report over the epoch window
  };

  struct AttachedTail {
    TailReader reader;
    parsers::LineParseFn parse = nullptr;
  };

  [[nodiscard]] std::shared_ptr<Epoch> current() const;
  void publish(std::shared_ptr<Epoch> next);

  /// Fills the epoch's analysis cache on first use; counts recompute vs
  /// cache hit.
  const core::AnalysisResult& analysis_of(Epoch& epoch);

  void apply_alert(const core::Alert& alert,
                   std::unordered_map<std::uint32_t, NodeHealth>& health);

  /// Window bounds for a store extent under config_.window.
  void window_of(const logmodel::LogStore& store, util::TimePoint& begin,
                 util::TimePoint& end) const;

  // --- per-verb handlers; each returns the serialized "data" object ------
  [[nodiscard]] std::string data_ping() const;
  [[nodiscard]] std::string data_status(const Epoch& epoch) const;
  [[nodiscard]] std::string data_node_health(const Epoch& epoch,
                                             const JsonValue& params,
                                             std::string& bad_params) const;
  [[nodiscard]] std::string data_lead_time(const core::AnalysisResult& analysis) const;
  [[nodiscard]] std::string data_causes(const core::AnalysisResult& analysis) const;
  [[nodiscard]] std::string data_report(Epoch& epoch, const JsonValue& params,
                                        std::string& bad_params);
  [[nodiscard]] std::string data_metrics() const;
  [[nodiscard]] std::string data_shutdown();

  ServerConfig config_;
  platform::Topology topology_;
  jobs::JobTable jobs_;  ///< immutable after boot (tails never carry scheduler lines)
  std::string label_;
  util::TimePoint corpus_begin_;
  parsers::ParseContext parse_ctx_;  ///< topo set; symbols rebound per poll

  mutable std::mutex epoch_mutex_;
  std::shared_ptr<Epoch> epoch_;  ///< guarded by epoch_mutex_ (pointer only)

  // Tail state: single-writer (poll_tail), so unguarded by design.
  std::vector<AttachedTail> tails_;
  core::OnlineMonitor monitor_;
  util::TimePoint monitor_watermark_;  ///< last time fed to the monitor
  std::unordered_map<std::uint32_t, NodeHealth> health_;  ///< writer's copy
  std::vector<core::Alert> boot_alerts_;

  std::atomic<std::uint64_t> recomputes_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace hpcfail::serve
