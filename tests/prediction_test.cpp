// Tests for stats/logistic, stats/survival and core/prediction: the learned
// failure predictor trained on one corpus and evaluated on another.
#include <gtest/gtest.h>

#include "core/analysis_context.hpp"
#include "core/prediction.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "stats/logistic.hpp"
#include "stats/survival.hpp"
#include "util/rng.hpp"

namespace hpcfail {
namespace {

/// Detection + diagnosis over the store's full extent.
std::vector<core::AnalyzedFailure> diagnose_all(const logmodel::LogStore& store) {
  const core::AnalysisContext ctx(store, nullptr, store.first_time(),
                                  store.last_time() + util::Duration::microseconds(1));
  return ctx.failures();
}

// ------------------------------------------------------------- logistic ----

TEST(LogisticTest, SeparableDataLearned) {
  // y = 1 iff x0 > 2.
  util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  for (int i = 0; i < 400; ++i) {
    const double v = rng.uniform(0.0, 4.0);
    x.push_back({v, rng.uniform()});
    y.push_back(v > 2.0 ? 1 : 0);
  }
  const auto model = stats::train_logistic(x, y);
  const auto metrics = stats::evaluate_logistic(model, x, y);
  EXPECT_GT(metrics.accuracy(), 0.95);
  EXPECT_GT(metrics.auc, 0.98);
  EXPECT_GT(model.predict(std::vector<double>{3.5, 0.5}), 0.8);
  EXPECT_LT(model.predict(std::vector<double>{0.5, 0.5}), 0.2);
}

TEST(LogisticTest, InvalidInputsThrow) {
  EXPECT_THROW(stats::train_logistic({}, {}), std::invalid_argument);
  EXPECT_THROW(stats::train_logistic({{1.0}}, {1}), std::invalid_argument);  // one class
  EXPECT_THROW(stats::train_logistic({{1.0}, {1.0, 2.0}}, {0, 1}), std::invalid_argument);
}

TEST(LogisticTest, ConstantFeatureHandled) {
  std::vector<std::vector<double>> x = {{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}, {4.0, 5.0}};
  std::vector<int> y = {0, 0, 1, 1};
  const auto model = stats::train_logistic(x, y);
  EXPECT_GT(model.predict(std::vector<double>{4.0, 5.0}), 0.5);
}

// ------------------------------------------------------------- survival ----

TEST(SurvivalTest, KaplanMeierUncensoredMatchesEcdf) {
  const std::vector<double> durations = {1, 2, 3, 4, 5};
  const stats::KaplanMeier km(durations);
  EXPECT_DOUBLE_EQ(km.survival_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km.survival_at(1.0), 0.8);
  EXPECT_DOUBLE_EQ(km.survival_at(3.0), 0.4);
  EXPECT_DOUBLE_EQ(km.survival_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(km.median(), 3.0);
}

TEST(SurvivalTest, CensoringRaisesSurvival) {
  const std::vector<double> durations = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> observed = {1, 0, 1, 0, 1};  // 2 and 4 censored
  const stats::KaplanMeier km(durations, observed);
  // After t=3: S = (1 - 1/5) * (1 - 1/3) = 0.5333...
  EXPECT_NEAR(km.survival_at(3.0), 0.8 * (2.0 / 3.0), 1e-12);
  // Censored times are not event points.
  for (const auto& p : km.curve()) {
    EXPECT_NE(p.time, 2.0);
    EXPECT_NE(p.time, 4.0);
  }
}

TEST(SurvivalTest, RestrictedMean) {
  const std::vector<double> durations = {2.0, 2.0};
  const stats::KaplanMeier km(durations);
  // S=1 until t=2 then 0: RMST(4) == 2.
  EXPECT_NEAR(km.restricted_mean(4.0), 2.0, 1e-12);
  EXPECT_NEAR(km.restricted_mean(1.0), 1.0, 1e-12);
}

TEST(SurvivalTest, DiscreteHazardDecreasingForBurstyData) {
  // Mixture: many short gaps (bursts) + few long gaps => hazard decreases.
  util::Rng rng(7);
  std::vector<double> gaps;
  for (int i = 0; i < 2000; ++i) {
    gaps.push_back(rng.bernoulli(0.8) ? rng.exponential(1.0)        // ~1 min
                                      : 60.0 + rng.exponential(0.01));  // hours
  }
  const std::vector<double> edges = {0, 2, 10, 60, 600};
  const auto hazard = stats::discrete_hazard(gaps, edges);
  ASSERT_EQ(hazard.size(), 4u);
  EXPECT_GT(hazard[0].hazard(), hazard[2].hazard());
}

TEST(SurvivalTest, SizeMismatchThrows) {
  const std::vector<double> d = {1.0};
  const std::vector<std::uint8_t> o = {1, 0};
  EXPECT_THROW(stats::KaplanMeier(d, o), std::invalid_argument);
}

// ------------------------------------------------------------ prediction ----

struct PredictionFixture : public ::testing::Test {
  void SetUp() override {
    train_sim = std::make_unique<faultsim::SimulationResult>(
        faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 14, 501))
            .run());
    test_sim = std::make_unique<faultsim::SimulationResult>(
        faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 14, 502))
            .run());
    train_store = std::make_unique<logmodel::LogStore>(train_sim->make_store());
    test_store = std::make_unique<logmodel::LogStore>(test_sim->make_store());
    train_failures = diagnose_all(*train_store);
    test_failures = diagnose_all(*test_store);
  }

  std::unique_ptr<faultsim::SimulationResult> train_sim, test_sim;
  std::unique_ptr<logmodel::LogStore> train_store, test_store;
  std::vector<core::AnalyzedFailure> train_failures, test_failures;
};

TEST_F(PredictionFixture, CrossCorpusGeneralization) {
  core::DatasetConfig cfg;
  const auto train = core::build_dataset(*train_store, train_failures,
                                         train_sim->topology.node_count(), cfg);
  ASSERT_GT(train.positives, 20u);
  ASSERT_GT(train.features.size(), train.positives * 2);

  const auto predictor = core::train_predictor(train, cfg.features);
  const auto test = core::build_dataset(*test_store, test_failures,
                                        test_sim->topology.node_count(), cfg);
  const auto metrics = core::evaluate_predictor_model(predictor, test);
  // Positives include precursor-less failures (bare shutdowns, BIOS
  // patterns) that nothing can predict, bounding AUC below 1.
  EXPECT_GT(metrics.auc, 0.85) << "learned predictor should separate failures";
  EXPECT_GT(metrics.recall(), 0.65);
  EXPECT_GT(metrics.precision(), 0.7);
}

TEST_F(PredictionFixture, ExternalFeaturesHelp) {
  core::DatasetConfig with;
  core::DatasetConfig without;
  without.features.include_external = false;
  const auto train_with = core::build_dataset(*train_store, train_failures,
                                              train_sim->topology.node_count(), with);
  const auto train_without = core::build_dataset(*train_store, train_failures,
                                                 train_sim->topology.node_count(), without);
  const auto test_with = core::build_dataset(*test_store, test_failures,
                                             test_sim->topology.node_count(), with);
  const auto test_without = core::build_dataset(*test_store, test_failures,
                                                test_sim->topology.node_count(), without);

  const auto model_with = core::train_predictor(train_with, with.features);
  const auto model_without = core::train_predictor(train_without, without.features);
  const auto metrics_with = core::evaluate_predictor_model(model_with, test_with);
  const auto metrics_without = core::evaluate_predictor_model(model_without, test_without);
  // The paper's thesis in learned form: external correlations should not
  // hurt, and typically help, the predictor.
  EXPECT_GE(metrics_with.auc + 0.02, metrics_without.auc);
}

TEST_F(PredictionFixture, FeatureVectorShape) {
  core::FeatureConfig cfg;
  const core::FeatureExtractor extractor(*train_store, cfg);
  const auto names = core::feature_names(cfg);
  const auto features = extractor.extract(platform::NodeId{0}, platform::BladeId{0},
                                          train_store->first_time());
  EXPECT_EQ(features.size(), names.size());
  cfg.include_external = false;
  const core::FeatureExtractor internal_only(*train_store, cfg);
  EXPECT_EQ(internal_only.extract(platform::NodeId{0}, platform::BladeId{0},
                                  train_store->first_time())
                .size(),
            core::feature_names(cfg).size());
}

}  // namespace
}  // namespace hpcfail
