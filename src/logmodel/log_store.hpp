// Time-sorted in-memory store of structured log records with secondary
// indexes by node, blade and event type.  Range queries are binary-searched;
// the per-key indexes keep the correlation passes (which repeatedly ask
// "events of type T for node N in window W") sub-linear.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "logmodel/record.hpp"

namespace hpcfail::logmodel {

class LogStore {
 public:
  LogStore() = default;

  /// Takes ownership of the records, sorts by time and builds indexes.
  explicit LogStore(std::vector<LogRecord> records);

  /// Builds a store from records already stably sorted by time (e.g. the
  /// k-way merge of StoreBuilder), skipping the O(n log n) global sort.
  /// Precondition (asserted in debug builds): records are time-ordered.
  [[nodiscard]] static LogStore from_sorted(std::vector<LogRecord> records);

  void add(LogRecord r);

  /// Sorts and (re)builds indexes. Must be called after the last add()
  /// and before any query. Idempotent.
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] const LogRecord& operator[](std::size_t i) const noexcept { return records_[i]; }
  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept { return records_; }

  [[nodiscard]] util::TimePoint first_time() const;
  [[nodiscard]] util::TimePoint last_time() const;

  /// All records with begin <= time < end, as a contiguous span.
  [[nodiscard]] std::span<const LogRecord> range(util::TimePoint begin,
                                                 util::TimePoint end) const;

  /// Indexes (into records()) of this node's records within [begin, end).
  [[nodiscard]] std::vector<std::uint32_t> node_range(platform::NodeId node,
                                                      util::TimePoint begin,
                                                      util::TimePoint end) const;

  /// Indexes of this blade's records (records carrying that blade id,
  /// including node-scoped records resolved to the blade) within [begin, end).
  [[nodiscard]] std::vector<std::uint32_t> blade_range(platform::BladeId blade,
                                                       util::TimePoint begin,
                                                       util::TimePoint end) const;

  /// Indexes of this cabinet's records within [begin, end).
  [[nodiscard]] std::vector<std::uint32_t> cabinet_range(platform::CabinetId cabinet,
                                                         util::TimePoint begin,
                                                         util::TimePoint end) const;

  /// Indexes of records of `type` within [begin, end).
  [[nodiscard]] std::vector<std::uint32_t> type_range(EventType type, util::TimePoint begin,
                                                      util::TimePoint end) const;

  /// Total count of records of `type`.
  [[nodiscard]] std::size_t count_of_type(EventType type) const;

  /// All record indexes for a node (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> node_index(platform::NodeId node) const;

  /// All record indexes for an event type (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> type_index(EventType type) const;

  /// Distinct node ids appearing in the store.
  [[nodiscard]] std::vector<platform::NodeId> nodes() const;

 private:
  /// Every query funnels through this: querying between add() and
  /// finalize() would silently binary-search unsorted records and read
  /// stale indexes, so it throws std::logic_error instead.  A
  /// default-constructed store is trivially finalized (empty).
  void require_finalized() const;

  void build_indexes();

  [[nodiscard]] std::vector<std::uint32_t> filter_window(
      const std::vector<std::uint32_t>& index, util::TimePoint begin,
      util::TimePoint end) const;

  std::vector<LogRecord> records_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_node_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_blade_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_cabinet_;
  std::vector<std::vector<std::uint32_t>> by_type_;
  bool finalized_ = true;
};

}  // namespace hpcfail::logmodel
