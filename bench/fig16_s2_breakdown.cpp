// Fig 16: failure-cause breakdown for S2.  Paper: 37.5% anomalous app-exits
// (NHC turns the node down), 26.78% file-system bugs, 16.07% memory
// resource exhaustion, 7.14% critical kernel bugs, 12.5% other kernel oops
// (CPU stalls, driver/firmware bugs) — with careful analysis revealing most
// to be application-triggered (Observation 6).
#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 16: S2 failure breakdown (60 days)");

  const auto p = bench::run_system(platform::SystemName::S2, 60, 1616);
  const auto breakdown = core::cause_breakdown(p.failures);
  std::cout << core::render_cause_table(breakdown, "S2 diagnosed causes") << '\n';

  using logmodel::RootCause;
  check.in_range("anomalous app-exit share (paper 37.5%)",
                 breakdown.share(RootCause::AppAbnormalExit), 0.28, 0.47);
  check.in_range("file-system bug share (paper 26.78%)",
                 breakdown.share(RootCause::LustreBug), 0.19, 0.35);
  check.in_range("memory exhaustion share (paper 16.07%)",
                 breakdown.share(RootCause::MemoryExhaustion), 0.10, 0.23);
  check.in_range("kernel bug share (paper 7.14%)", breakdown.share(RootCause::KernelBug),
                 0.03, 0.12);
  const double others = breakdown.share(RootCause::HardwareMce) +
                        breakdown.share(RootCause::FailSlowHardware) +
                        breakdown.share(RootCause::BiosUnknown) +
                        breakdown.share(RootCause::L0SysdMceUnknown) +
                        breakdown.share(RootCause::OperatorError) +
                        breakdown.share(RootCause::Unknown);
  check.in_range("other causes share (paper 12.5%)", others, 0.06, 0.20);

  // The paper's deeper point: most failures are application-triggered.
  const auto shares = core::layer_shares(p.failures);
  check.greater("application-triggered origin is the majority",
                shares.application_triggered, 0.5);
  return check.exit_code();
}
