// Fixture: drifted fault-site inventory for the fault-sites check.
constexpr const char* kSites[] = {
    "ingest.read.badbit",
    "store.gone.bad_alloc",
    "ingest.retire.bad_alloc",
};
