#include "sensors/sensor_model.hpp"

#include <algorithm>
#include <cmath>

namespace hpcfail::sensors {

std::string_view to_string(SensorKind k) noexcept {
  switch (k) {
    case SensorKind::CpuTemperature: return "CpuTemperature";
    case SensorKind::Voltage: return "Voltage";
    case SensorKind::FanSpeed: return "FanSpeed";
    case SensorKind::AirVelocity: return "AirVelocity";
    case SensorKind::kCount: break;
  }
  return "?";
}

double OuProcess::step(util::Rng& rng, double dt_minutes) noexcept {
  // Exact discretization: X(t+dt) = mean + (X - mean) e^{-a dt} + noise,
  // noise ~ N(0, sigma^2 (1 - e^{-2 a dt}) / (2a)).
  const double a = std::max(1e-9, reversion);
  const double decay = std::exp(-a * dt_minutes);
  const double var = sigma * sigma * (1.0 - decay * decay) / (2.0 * a);
  value = mean + (value - mean) * decay + rng.normal(0.0, std::sqrt(var));
  return value;
}

SensorSpec default_spec(SensorKind kind) noexcept {
  switch (kind) {
    case SensorKind::CpuTemperature:
      // Fig 11: node CPU temperatures sit near 40 C with small spread.
      return {kind, 40.0, 1.2, 0.25, 15.0, 68.0};
    case SensorKind::Voltage:
      return {kind, 12.0, 0.08, 0.30, 11.4, 12.6};
    case SensorKind::FanSpeed:
      return {kind, 3000.0, 60.0, 0.20, 2400.0, 3600.0};
    case SensorKind::AirVelocity:
      return {kind, 2.5, 0.12, 0.20, 1.8, 3.4};
    case SensorKind::kCount:
      break;
  }
  return {};
}

BladeSensors::BladeSensors(util::Rng rng, bool deviant) : rng_(rng), deviant_(deviant) {
  for (std::size_t i = 0; i < kSensorKindCount; ++i) {
    const auto kind = static_cast<SensorKind>(i);
    specs_[i] = default_spec(kind);
    if (deviant_) {
      // A deviant blade sits just outside its low band on one or two
      // environmental sensors — warnings recur all day but nothing fails
      // (the Fig 9 storm blades).
      if (kind == SensorKind::AirVelocity) specs_[i].nominal = specs_[i].warn_low - 0.15;
      if (kind == SensorKind::CpuTemperature) specs_[i].sigma *= 2.0;
    }
    state_[i].mean = specs_[i].nominal;
    state_[i].reversion = specs_[i].reversion;
    state_[i].sigma = specs_[i].sigma;
    state_[i].value = specs_[i].nominal + rng_.normal(0.0, specs_[i].sigma);
  }
}

void BladeSensors::step(double dt_minutes) noexcept {
  if (powered_off_) return;
  for (auto& s : state_) (void)s.step(rng_, dt_minutes);
}

bool BladeSensors::violates(SensorKind k) const noexcept {
  if (powered_off_) return false;
  const auto i = static_cast<std::size_t>(k);
  const double v = state_[i].value;
  return v < specs_[i].warn_low || v > specs_[i].warn_high;
}

double FailSlowRamp::offset_at(double t) const noexcept {
  if (t <= start_minute) return 0.0;
  const double frac = std::clamp((t - start_minute) / std::max(1e-9, duration_min), 0.0, 1.0);
  return terminal_offset * frac;
}

}  // namespace hpcfail::sensors
