
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cname.cpp" "src/platform/CMakeFiles/hpcfail_platform.dir/cname.cpp.o" "gcc" "src/platform/CMakeFiles/hpcfail_platform.dir/cname.cpp.o.d"
  "/root/repo/src/platform/system_config.cpp" "src/platform/CMakeFiles/hpcfail_platform.dir/system_config.cpp.o" "gcc" "src/platform/CMakeFiles/hpcfail_platform.dir/system_config.cpp.o.d"
  "/root/repo/src/platform/topology.cpp" "src/platform/CMakeFiles/hpcfail_platform.dir/topology.cpp.o" "gcc" "src/platform/CMakeFiles/hpcfail_platform.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
