// Fixed-bin histograms (linear or logarithmic edges) with under/overflow
// buckets.  Used for per-hour warning frequencies (Fig 9), temperature
// profiles (Fig 11) and the inter-failure time distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hpcfail::stats {

class Histogram {
 public:
  /// Linear bins: [lo, hi) split into `bins` equal intervals.
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Logarithmic bins: [lo, hi) with geometrically growing edges.
  /// Requires 0 < lo < hi.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  /// Explicit edges (ascending, at least two). Bin i covers
  /// [edges[i], edges[i+1]).
  explicit Histogram(std::vector<double> edges);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept { return edges_[bin]; }
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept { return edges_[bin + 1]; }

  /// Fraction of all added mass (including under/overflow) at or below the
  /// upper edge of `bin`.
  [[nodiscard]] double cumulative_fraction(std::size_t bin) const noexcept;

  void merge(const Histogram& other);

  /// ASCII bar rendering, one bin per line.
  [[nodiscard]] std::string render(std::size_t bar_width = 40) const;

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hpcfail::stats
