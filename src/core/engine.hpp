// The unified analysis facade: one call runs the paper's whole holistic
// pipeline over a parsed corpus and returns every headline result.
//
//   AnalysisEngine engine;                       // default AnalysisConfig
//   core::AnalysisResult r = engine.analyze(parsed);
//   // r.failures, r.breakdown, r.lead_time_summary, r.clusters, r.nvf ...
//
// The engine builds one AnalysisContext (memoized detection + diagnosis +
// joins, see analysis_context.hpp) and runs the registered analyzers
// against it.  The built-in analyzers fill the AnalysisResult sections;
// `register_analyzer` appends extension stages that run after them and may
// read everything the built-ins produced.  Per-failure stages (root-cause
// evidence collection, lead-time attribution) shard over
// `AnalysisConfig::pool` with deterministic index-ordered assembly — an
// engine run with N threads is byte-identical to the serial run.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/analysis_context.hpp"
#include "core/benign_faults.hpp"
#include "core/clusters.hpp"
#include "core/external_correlator.hpp"
#include "core/failure_detector.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/root_cause.hpp"

namespace hpcfail::parsers {
struct ParsedCorpus;
}  // namespace hpcfail::parsers

namespace hpcfail::core {

struct AnalysisConfig {
  DetectorConfig detector;
  RootCauseConfig root_cause;
  LeadTimeConfig lead_time;
  CorrelatorConfig correlator;
  /// Consecutive failures closer than this form one spatio-temporal cluster.
  util::Duration cluster_gap = util::Duration::minutes(30);
  /// When non-null the per-failure stages shard over this pool; results
  /// are assembled index-ordered, byte-identical to the serial path.
  util::ThreadPool* pool = nullptr;
};

/// Everything one engine run produces.  Indexes in `lead_times` and
/// `clusters` refer to `failures`.
struct AnalysisResult {
  util::TimePoint begin;
  util::TimePoint end;

  // Detection + diagnosis (Sections III-A/E/F).
  std::vector<AnalyzedFailure> failures;
  std::vector<SwoCluster> swos;
  std::size_t intended_shutdowns_excluded = 0;

  // Root-cause aggregates (Fig 16, Table IV, the S3 layer split).
  CauseBreakdown breakdown;
  LayerShares layers;
  std::vector<ModuleUsage> module_usage;

  // Lead times (Section III-D, Fig 13).
  std::vector<FailureLeadTime> lead_times;
  LeadTimeSummary lead_time_summary;

  // External correspondence (Section III-B, Figs 5-6).
  FaultCorrespondence nvf;
  FaultCorrespondence nhf;
  NhfBreakdown nhf_breakdown;

  // Benign-fault population (Section III-C, Fig 8) and HSN health.
  SedcPopulation sedc;
  BenignFaultAnalyzer::InterconnectSummary interconnect;

  // Spatio-temporal clusters (Observations 1 and 8).
  std::vector<FailureCluster> clusters;
  ClusterSummary cluster_summary;
};

class AnalysisEngine {
 public:
  /// An analyzer reads the shared context (and anything earlier stages
  /// wrote to the result) and fills its result section.
  using Analyzer = std::function<void(const AnalysisContext&, AnalysisResult&)>;

  explicit AnalysisEngine(AnalysisConfig config = {});

  /// Appends an extension stage after the built-in analyzers.  Stages run
  /// in registration order; `name` labels the stage for introspection.
  void register_analyzer(std::string name, Analyzer fn);

  /// Registered stage names, built-ins first, in execution order.
  [[nodiscard]] std::vector<std::string> analyzer_names() const;

  [[nodiscard]] const AnalysisConfig& config() const noexcept { return config_; }

  /// Analyzes `store` over [begin, end): builds the context once, runs
  /// every analyzer.  Throws std::logic_error on a non-finalized store.
  [[nodiscard]] AnalysisResult analyze(const logmodel::LogStore& store,
                                       const jobs::JobTable* jobs,
                                       util::TimePoint begin,
                                       util::TimePoint end) const;

  /// Analyzes a parsed corpus over its full time extent.
  [[nodiscard]] AnalysisResult analyze(const parsers::ParsedCorpus& parsed) const;

 private:
  AnalysisConfig config_;
  std::vector<std::pair<std::string, Analyzer>> analyzers_;
};

}  // namespace hpcfail::core
