// Snapshot driver for the hpcfail.store.v1 binary format: parses a corpus
// once and saves it, loads it back, prints a file's section table, or
// deep-verifies one.  The verify subcommand is the CLI face of the
// corrupt-snapshot discipline: any torn, truncated or bit-flipped file
// exits 3 with the structured error on stderr, never a crash.
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 structured
// snapshot/ingest error.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/ingest.hpp"
#include "parsers/snapshot.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hpcfail;

void usage(std::FILE* to) {
  std::fputs(
      "usage: hpcfail-store <command> [options]\n"
      "\n"
      "Persists parsed corpora as hpcfail.store.v1 binary snapshots\n"
      "(see FORMATS.md), so repeated analyses skip the text parse.\n"
      "\n"
      "commands:\n"
      "  save --out FILE (--dir DIR | --preset S1..S5)\n"
      "                     ingest a corpus (or simulate one with --days N\n"
      "                     and --seed N) and write the snapshot to FILE\n"
      "  load FILE          load a snapshot and print its summary\n"
      "  info FILE          validate the container and print the section table\n"
      "  verify FILE        container validation plus a full structural\n"
      "                     rebuild; exits 3 when the file is corrupt\n"
      "\n"
      "options:\n"
      "  --dir DIR          corpus directory to ingest (save)\n"
      "  --preset NAME      simulate system S1..S5 instead (save)\n"
      "  --days N           simulated days for --preset (default 7)\n"
      "  --seed N           simulation seed for --preset (default 42)\n"
      "  --threads N        pool threads for ingest (default: hardware)\n"
      "  --out FILE         snapshot path to write (save)\n"
      "  --fault SPEC       arm deterministic fault sites, as in\n"
      "                     hpcfail-ingest (--fault list prints them; the\n"
      "                     HPCFAIL_FAULT env works too)\n",
      to);
}

std::optional<platform::SystemName> preset_of(std::string_view name) {
  if (name == "S1") return platform::SystemName::S1;
  if (name == "S2") return platform::SystemName::S2;
  if (name == "S3") return platform::SystemName::S3;
  if (name == "S4") return platform::SystemName::S4;
  if (name == "S5") return platform::SystemName::S5;
  return std::nullopt;
}

void print_summary(const parsers::ParsedCorpus& corpus) {
  std::printf("system          %s\n", corpus.system.label.c_str());
  std::printf("window          %d day(s)\n", corpus.days);
  std::printf("records         %zu\n", corpus.store.size());
  std::printf("symbols         %zu\n", corpus.store.symbols().size());
  std::printf("jobs            %zu\n", corpus.jobs.size());
  std::printf("nodes seen      %zu\n", corpus.store.nodes().size());
  std::printf("lines           %zu (%zu skipped)\n", corpus.total_lines,
              corpus.skipped_lines);
}

int run_save(const std::string& dir, std::optional<platform::SystemName> preset,
             int days, std::uint64_t seed, std::size_t threads,
             const std::string& out_path) {
  std::string corpus_dir = dir;
  bool scratch = false;
  if (preset) {
    corpus_dir = "/tmp/hpcfail_store_corpus";
    scratch = true;
    std::printf("simulating %d day(s), seed %llu ...\n", days,
                static_cast<unsigned long long>(seed));
    const auto sim =
        faultsim::Simulator(faultsim::scenario_preset(*preset, days, seed)).run();
    std::filesystem::remove_all(corpus_dir);
    loggen::write_corpus(loggen::build_corpus(sim), corpus_dir);
  }

  util::ThreadPool pool(threads);
  parsers::IngestOptions options;
  options.pool = &pool;
  const auto parsed = parsers::ingest_files(corpus_dir, options);
  if (scratch) std::filesystem::remove_all(corpus_dir);
  if (!parsed.ok()) {
    std::fprintf(stderr, "hpcfail-store: ingest error: %s\n",
                 parsed.error->to_string().c_str());
    return 3;
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (const auto err = parsers::save_snapshot(parsed, out_path)) {
    std::fprintf(stderr, "hpcfail-store: %s\n", err->to_string().c_str());
    return 3;
  }
  const auto t1 = std::chrono::steady_clock::now();
  print_summary(parsed);
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(out_path, ec);
  std::printf("snapshot        %s (%.1f MB, written in %.3f s)\n", out_path.c_str(),
              ec ? 0.0 : static_cast<double>(bytes) / 1e6,
              std::chrono::duration<double>(t1 - t0).count());
  return 0;
}

int run_load(const std::string& path) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto loaded = parsers::load_snapshot(path);
  const auto t1 = std::chrono::steady_clock::now();
  if (!loaded.ok()) {
    std::fprintf(stderr, "hpcfail-store: %s\n", loaded.error->to_string().c_str());
    return 3;
  }
  print_summary(loaded);
  std::printf("loaded in       %.3f s\n",
              std::chrono::duration<double>(t1 - t0).count());
  return 0;
}

int run_info(const std::string& path) {
  const auto read = util::read_snapshot(path);
  if (!read.ok()) {
    std::fprintf(stderr, "hpcfail-store: %s\n", read.error->to_string().c_str());
    return 3;
  }
  std::printf("format          hpcfail.store.v%u\n", read.snapshot->version());
  std::printf("file bytes      %llu\n",
              static_cast<unsigned long long>(read.snapshot->file_bytes()));
  std::printf("sections        %zu\n", read.snapshot->table().size());
  std::printf("%-24s %12s %12s %10s\n", "name", "offset", "length", "crc32");
  for (const auto& section : read.snapshot->table()) {
    std::printf("%-24s %12llu %12llu %10u\n", section.name.c_str(),
                static_cast<unsigned long long>(section.offset),
                static_cast<unsigned long long>(section.length), section.crc);
  }
  return 0;
}

int run_verify(const std::string& path) {
  // load_snapshot covers both layers: container validation (magic,
  // version, CRCs, table extents) and the full structural rebuild (CSR
  // invariants, symbol ids, column consistency).
  const auto loaded = parsers::load_snapshot(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "hpcfail-store: %s\n", loaded.error->to_string().c_str());
    return 3;
  }
  std::printf("%s: ok (%zu records, %zu jobs, system %s)\n", path.c_str(),
              loaded.store.size(), loaded.jobs.size(), loaded.system.label.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(stderr);
    return 2;
  }
  const std::string_view command = argv[1];
  if (command == "--help" || command == "-h") {
    usage(stdout);
    return 0;
  }

  std::string dir;
  std::optional<platform::SystemName> preset;
  int days = 7;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  std::string out_path;
  std::string file;
  std::string fault_spec;

  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcfail-store: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--dir") {
      dir = value();
    } else if (arg == "--preset") {
      preset = preset_of(value());
      if (!preset) {
        std::fputs("hpcfail-store: --preset expects S1..S5\n", stderr);
        return 2;
      }
    } else if (arg == "--days") {
      days = std::atoi(value());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--fault") {
      fault_spec = value();
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(std::string_view("--fault=").size());
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "hpcfail-store: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    } else if (file.empty()) {
      file = arg;
    } else {
      std::fprintf(stderr, "hpcfail-store: unexpected argument '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (fault_spec == "list") {
    for (const auto site : util::FaultInjector::sites()) {
      std::printf("%.*s\n", static_cast<int>(site.size()), site.data());
    }
    return 0;
  }

  util::FaultInjector injector;
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("HPCFAIL_FAULT")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    try {
      injector.arm_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpcfail-store: %s\n", e.what());
      return 2;
    }
    util::install_fault_injector(&injector);
  }

  try {
    if (command == "save") {
      if (out_path.empty() || dir.empty() == !preset) {
        std::fputs(
            "hpcfail-store: save needs --out and exactly one of --dir / --preset\n",
            stderr);
        return 2;
      }
      return run_save(dir, preset, days, seed, threads, out_path);
    }
    if (file.empty()) {
      std::fprintf(stderr, "hpcfail-store: %s needs a snapshot file argument\n",
                   std::string(command).c_str());
      return 2;
    }
    if (command == "load") return run_load(file);
    if (command == "info") return run_info(file);
    if (command == "verify") return run_verify(file);
    std::fprintf(stderr, "hpcfail-store: unknown command '%s'\n",
                 std::string(command).c_str());
    usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpcfail-store: %s\n", e.what());
    return 1;
  }
}
