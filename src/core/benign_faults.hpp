// Analysis of faults that do NOT cause failures (Section III-C, Figs 8-10,
// Observations 3-4): SEDC warning populations, per-hour warning frequency
// profiles, and the daily benign-error node populations vs failed nodes.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"

namespace hpcfail::core {

/// Fig 8: per-window unique blade/cabinet counts with warnings and faults.
struct SedcPopulation {
  std::size_t blades_with_warnings = 0;    ///< unique blades, SEDC warnings
  std::size_t blades_with_faults = 0;      ///< unique blades, health faults
  std::size_t cabinets_with_faults = 0;    ///< unique cabinets, any fault
  std::size_t warning_count = 0;
  std::size_t fault_count = 0;
};

/// Fig 9: hourly warning counts for one blade over one day.
struct BladeWarningProfile {
  std::uint32_t blade = 0;
  std::array<std::size_t, 24> hourly{};
  std::size_t total = 0;
};

/// Fig 10: daily counts of nodes with errors of each class vs failed nodes.
struct DailyErrorNodes {
  std::int64_t day = 0;
  std::size_t hw_error_nodes = 0;
  std::size_t mce_nodes = 0;
  std::size_t lustre_nodes = 0;
  std::size_t failed_nodes = 0;
};

class BenignFaultAnalyzer {
 public:
  explicit BenignFaultAnalyzer(const logmodel::LogStore& store) : store_(store) {}

  [[nodiscard]] SedcPopulation sedc_population(util::TimePoint begin,
                                               util::TimePoint end) const;

  /// Hourly profiles of the `top_k` most warned-at blades in [begin,
  /// begin+1d) — the Fig 9 recurring-warning storms.
  [[nodiscard]] std::vector<BladeWarningProfile> top_warning_blades(util::TimePoint day_begin,
                                                                    std::size_t top_k) const;

  /// Daily error-node populations vs failures over [begin, begin+days).
  [[nodiscard]] std::vector<DailyErrorNodes> daily_error_nodes(
      util::TimePoint begin, int days, const std::vector<AnalyzedFailure>& failures) const;

  /// Of the nodes showing errors of `type` in [begin, end), the fraction
  /// that fail within `horizon` after their first error — Observation 4's
  /// "higher error counts need not degrade reliability".
  [[nodiscard]] double erroring_node_failure_fraction(
      logmodel::EventType type, util::TimePoint begin, util::TimePoint end,
      util::Duration horizon, const std::vector<AnalyzedFailure>& failures) const;

  /// HSN interconnect event summary: lane degrades, failover outcomes, and
  /// how many degrades sit near a node failure on the same blade (another
  /// weak environmental correlate, cf. the Table VII interconnect studies).
  struct InterconnectSummary {
    std::size_t lane_degrades = 0;
    std::size_t failovers_ok = 0;
    std::size_t failovers_failed = 0;
    std::size_t degrades_near_failure = 0;
    [[nodiscard]] double failover_success_rate() const noexcept {
      const auto total = failovers_ok + failovers_failed;
      return total ? static_cast<double>(failovers_ok) / static_cast<double>(total) : 0.0;
    }
  };
  [[nodiscard]] InterconnectSummary interconnect_summary(
      util::TimePoint begin, util::TimePoint end,
      const std::vector<AnalyzedFailure>& failures,
      util::Duration near_window = util::Duration::hours(1)) const;

 private:
  const logmodel::LogStore& store_;
};

}  // namespace hpcfail::core
