#pragma once
// Streaming, bounded-memory corpus ingestion: per-source log files ->
// finalized LogStore + JobTable, without ever holding a full source text
// or a full line-view vector in memory.
//
// The pipeline per non-scheduler source:
//
//   ChunkedLineReader --chunk--> ThreadPool parse task --records--> StoreBuilder
//
// The reader hands out fixed-size chunks split on line boundaries; up to
// `max_inflight_chunks` chunks are being parsed concurrently while the
// next one is read (read -> parse -> shard pipelining); parsed chunks are
// retired in submission order, so the record sequence reaching the
// sharded builder is exactly the file's line order.  Peak text residency
// is chunk_bytes x (inflight + 1) instead of the corpus size.
//
// The scheduler source is parsed sequentially (its lines mutate the
// JobTable in order) but still streams chunk by chunk.
//
// Error surface: malformed *lines* are skipped and counted (never fatal),
// but *stream-level* failures — an I/O error mid-file, an allocation
// failure mid-pipeline, a missing source file under MissingFilePolicy::
// Error — stop the run and surface as a structured IngestError on the
// returned IngestResult, alongside the record-accurate partial store built
// from everything retired before the failure.  Configuration mistakes
// (missing/malformed manifest) still throw: they mean there is no corpus,
// not a damaged one.  The `ingest.*` fault sites (util/fault.hpp) let the
// sweep in tests/faultinject_test.cpp provoke every degraded ending.
//
// Equivalence guarantee, pinned by tests/ingest_test.cpp: for the same
// corpus bytes, ingest_files() and the in-memory parse_corpus() produce
// identical ParsedCorpus contents (record order, indexes, line counts).

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "parsers/corpus_parser.hpp"
#include "parsers/source_parsers.hpp"

namespace hpcfail::parsers {

/// What to do when a per-source log file named by the manifest layout is
/// absent from the corpus directory.
enum class MissingFilePolicy {
  /// Skip the source, like read_corpus (S5 legitimately has no external
  /// logs) — but count it in `hpcfail.ingest.files_missing` so the skip is
  /// no longer invisible.
  Skip,
  /// Stop and report IngestErrorKind::MissingFile.
  Error,
};

struct IngestOptions {
  /// Target chunk size in bytes; a chunk grows past this only when a
  /// single line is longer.  256 KiB keeps the in-flight buffers a small
  /// fraction of peak RSS at no measurable throughput cost.
  std::size_t chunk_bytes = std::size_t{1} << 18;
  /// Chunks parsed concurrently per source; 0 means 2 x pool size.
  std::size_t max_inflight_chunks = 0;
  /// Records per StoreBuilder shard (bounds the per-shard sort).
  std::size_t shard_records = std::size_t{1} << 16;
  /// Pool for chunk parsing and shard sorting; null = shared default pool.
  util::ThreadPool* pool = nullptr;
  /// Absent source files: skip-with-metric (default) or structured error.
  MissingFilePolicy missing_file_policy = MissingFilePolicy::Skip;
};

/// One open source stream; `in` must outlive the ingest call.
struct SourceStream {
  logmodel::LogSource source;
  std::istream* in = nullptr;
};

enum class IngestErrorKind {
  StreamIo,     ///< the stream reported badbit/failbit that is not EOF
  Resource,     ///< std::bad_alloc mid-pipeline (parse, retire, or merge)
  MissingFile,  ///< a source file is absent and missing_file_policy == Error
};

[[nodiscard]] std::string_view to_string(IngestErrorKind kind) noexcept;

/// Structured description of why an ingest run stopped early.
struct IngestError {
  IngestErrorKind kind = IngestErrorKind::StreamIo;
  logmodel::LogSource source = logmodel::LogSource::Console;
  std::string file;             ///< on-disk file, when ingesting a directory
  std::size_t byte_offset = 0;  ///< stream offset where detected (StreamIo)
  std::string message;

  /// "<kind> in <source> (<file>, offset N): <message>" one-liner.
  [[nodiscard]] std::string to_string() const;
};

/// ParsedCorpus plus the explicit error surface.  When `error` is set the
/// base holds the record-accurate partial result: every record retired
/// before the failure, finalized and queryable, with total_lines /
/// parsed_records / skipped_lines accounting for every line seen.
struct IngestResult : ParsedCorpus {
  std::optional<IngestError> error;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Streams a corpus directory (manifest.txt + per-source log files, as
/// written by loggen::write_corpus).  Absent source files follow
/// options.missing_file_policy.  Throws on a missing/malformed manifest;
/// data-plane failures come back as IngestResult::error.
[[nodiscard]] IngestResult ingest_files(const std::string& dir,
                                        const IngestOptions& options = {});

/// Lower-level entry: `header` carries the manifest fields (system,
/// topology, window); `sources` are parsed in the canonical source order
/// regardless of their order in the vector.
[[nodiscard]] IngestResult ingest_stream(const loggen::Corpus& header,
                                         const std::vector<SourceStream>& sources,
                                         const IngestOptions& options = {});

/// The stateless per-line parser the parallel path uses for `source`
/// (nullptr for LogSource::Scheduler, which is stateful).
using LineParseFn = std::optional<logmodel::LogRecord> (*)(std::string_view,
                                                           const ParseContext&);
[[nodiscard]] LineParseFn line_parser_for(logmodel::LogSource source) noexcept;

}  // namespace hpcfail::parsers
