// Root-cause taxonomy shared by the fault injector (ground truth) and the
// analysis pipeline (inference output).  The classes follow Sections III-E/F
// and Fig 16 of the paper; the coarse rollup matches the S3 shares quoted in
// Section III-F (hardware / software / application).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace hpcfail::logmodel {

enum class RootCause : std::uint8_t {
  HardwareMce,       ///< fail-stop MCE / CPU corruption
  FailSlowHardware,  ///< degraded hardware with external early indicators
  KernelBug,         ///< job-triggered kernel bug (invalid opcode, CPU stall)
  LustreBug,         ///< file system bug (mostly application-triggered)
  MemoryExhaustion,  ///< OOM-driven failure
  AppAbnormalExit,   ///< NHC-detected abnormal application exit -> admindown
  BiosUnknown,       ///< "type:2; severity:80" pattern; cause never inferred
  L0SysdMceUnknown,  ///< L0_sysd_mce pattern; cause never inferred
  OperatorError,     ///< manual shutdown of a good node
  Unknown,           ///< analyzer verdict when evidence is insufficient
  kCount
};

inline constexpr std::size_t kRootCauseCount = static_cast<std::size_t>(RootCause::kCount);

/// Weights over root causes (used by scenario configs).
using CauseMix = std::array<double, kRootCauseCount>;

/// Coarse rollup used by the S3 share analysis (Section III-F).
enum class CauseLayer : std::uint8_t { Hardware, Software, Application, Unknown };

[[nodiscard]] constexpr CauseLayer layer_of(RootCause c) noexcept {
  switch (c) {
    case RootCause::HardwareMce:
    case RootCause::FailSlowHardware:
      return CauseLayer::Hardware;
    case RootCause::KernelBug:
    case RootCause::LustreBug:
      return CauseLayer::Software;
    case RootCause::MemoryExhaustion:
    case RootCause::AppAbnormalExit:
      return CauseLayer::Application;
    default:
      return CauseLayer::Unknown;
  }
}

/// True when the failure chain originates in the running application, even
/// if it manifests inside the kernel or file system (Observation 7).
[[nodiscard]] constexpr bool is_application_triggered(RootCause c) noexcept {
  switch (c) {
    case RootCause::KernelBug:
    case RootCause::LustreBug:
    case RootCause::MemoryExhaustion:
    case RootCause::AppAbnormalExit:
      return true;
    default:
      return false;
  }
}

[[nodiscard]] constexpr std::string_view to_string(RootCause c) noexcept {
  switch (c) {
    case RootCause::HardwareMce: return "HardwareMce";
    case RootCause::FailSlowHardware: return "FailSlowHardware";
    case RootCause::KernelBug: return "KernelBug";
    case RootCause::LustreBug: return "LustreBug";
    case RootCause::MemoryExhaustion: return "MemoryExhaustion";
    case RootCause::AppAbnormalExit: return "AppAbnormalExit";
    case RootCause::BiosUnknown: return "BiosUnknown";
    case RootCause::L0SysdMceUnknown: return "L0SysdMceUnknown";
    case RootCause::OperatorError: return "OperatorError";
    case RootCause::Unknown: return "Unknown";
    case RootCause::kCount: break;
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(CauseLayer l) noexcept {
  switch (l) {
    case CauseLayer::Hardware: return "Hardware";
    case CauseLayer::Software: return "Software";
    case CauseLayer::Application: return "Application";
    case CauseLayer::Unknown: return "Unknown";
  }
  return "?";
}

}  // namespace hpcfail::logmodel
