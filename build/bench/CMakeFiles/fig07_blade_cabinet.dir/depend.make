# Empty dependencies file for fig07_blade_cabinet.
# This may be replaced when dependencies are built.
