// Classification of raw kernel/NHC payload text into event types.
//
// Hand-rolled substring matching over std::string_view (no std::regex): the
// signature set is small and fixed, and substring scans are an order of
// magnitude faster — the ablation in bench/perf_pipeline measures the gap.
// Since the SWAR/SIMD rework the whole signature cascade runs as ONE
// rare-byte-keyed pass over the payload (util::scan::SignatureSet) instead
// of one contains() scan per signature; the *_ref variants below resolve
// the same cascade through the retained scalar matcher and exist solely so
// tests can assert byte-identical classification.
// Matching order matters where signatures overlap (LBUG before LustreError,
// processor-context-corrupt before generic MCE); keep this file and
// loggen/renderer.cpp in sync.
#pragma once

#include <optional>
#include <string_view>

#include "logmodel/event_type.hpp"

namespace hpcfail::parsers {

struct Classified {
  logmodel::EventType type;
  logmodel::Severity severity;
  /// Payload remainder useful downstream (stack module for call traces,
  /// reason text otherwise). May be empty.
  std::string_view detail;
};

/// Classifies a console/consumer kernel payload. nullopt for lines that are
/// not fault-relevant (routine kernel chatter).
[[nodiscard]] std::optional<Classified> classify_kernel_payload(std::string_view payload) noexcept;

/// Classifies a messages-file NHC payload.
[[nodiscard]] std::optional<Classified> classify_nhc_payload(std::string_view payload) noexcept;

/// Classifies a controller payload (SEDC warnings, cabinet faults).
[[nodiscard]] std::optional<Classified> classify_controller_payload(
    std::string_view payload) noexcept;

/// Scalar-reference twins of the classifiers above: same cascade, matched
/// with one find() per signature instead of the single-pass scanner.  For
/// differential tests only — never on the hot path.
[[nodiscard]] std::optional<Classified> classify_kernel_payload_ref(
    std::string_view payload) noexcept;
[[nodiscard]] std::optional<Classified> classify_nhc_payload_ref(
    std::string_view payload) noexcept;
[[nodiscard]] std::optional<Classified> classify_controller_payload_ref(
    std::string_view payload) noexcept;

/// Maps an ERD event name (ec_*) to its event type.
[[nodiscard]] std::optional<logmodel::EventType> erd_event_type(std::string_view name) noexcept;

/// Extracts the leading module of a rendered call-trace frame
/// (" [<addr>] module+0x..." -> "module").
[[nodiscard]] std::optional<std::string_view> call_trace_module(std::string_view payload) noexcept;

}  // namespace hpcfail::parsers
