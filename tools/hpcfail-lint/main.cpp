// CLI driver for hpcfail-lint.  Exit codes: 0 clean, 1 diagnostics emitted,
// 2 usage error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: hpcfail-lint [--repo-root DIR] [--check NAME]... [--list-checks]\n"
      "\n"
      "Statically cross-checks the emitter templates, parser tables and\n"
      "FORMATS.md schemas of an hpcfail tree, plus repo invariants (banned\n"
      "nondeterminism, header hygiene).  Prints gcc-style file:line\n"
      "diagnostics and exits non-zero when the universes have drifted.\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::vector<std::string> checks;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-checks") {
      for (const auto& name : hpcfail::lint::all_check_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--repo-root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcfail-lint: --repo-root needs a value\n");
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--check") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcfail-lint: --check needs a value\n");
        return 2;
      }
      checks.emplace_back(argv[++i]);
      continue;
    }
    std::fprintf(stderr, "hpcfail-lint: unknown argument '%s'\n", argv[i]);
    usage(stderr);
    return 2;
  }

  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "hpcfail-lint: repo root '%s' does not exist\n",
                 root.string().c_str());
    return 2;
  }

  const hpcfail::lint::Report report = hpcfail::lint::run_checks(root, checks);
  for (const auto& d : report.diagnostics) {
    std::printf("%s\n", d.to_string().c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "hpcfail-lint: %zu finding(s)\n", report.diagnostics.size());
    return 1;
  }
  std::fprintf(stderr, "hpcfail-lint: clean\n");
  return 0;
}
