#include "core/prediction.hpp"

#include <algorithm>

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

std::vector<std::string> feature_names(const FeatureConfig& config) {
  std::vector<std::string> names = {
      "hw_errors",     "mce_count",     "lustre_errors", "memory_pressure",
      "kernel_signals", "nhc_signals",  "distinct_types", "minutes_since_last",
  };
  if (config.include_external) {
    names.insert(names.end(),
                 {"ext_ec_hw", "ext_voltage", "ext_link", "ext_sedc_voltage"});
  }
  return names;
}

std::vector<double> FeatureExtractor::extract(platform::NodeId node,
                                              platform::BladeId blade,
                                              util::TimePoint t) const {
  double hw = 0, mce = 0, lustre = 0, memory = 0, kernel = 0, nhc = 0;
  std::array<bool, logmodel::kEventTypeCount> seen{};
  util::TimePoint last{t.usec - config_.internal_window.usec};

  for (const std::uint32_t idx :
       store_.node_range(node, t - config_.internal_window, t)) {
    const LogRecord& r = store_[idx];
    if (!logmodel::is_internal_indicator(r.type)) continue;
    seen[static_cast<std::size_t>(r.type)] = true;
    if (r.time > last) last = r.time;
    switch (r.type) {
      case EventType::HardwareError:
      case EventType::CpuCorruption: hw += 1; break;
      case EventType::MachineCheckException: mce += 1; break;
      case EventType::LustreError:
      case EventType::LustreBug:
      case EventType::DvsError:
      case EventType::InodeError: lustre += 1; break;
      case EventType::OomKill:
      case EventType::PageAllocationFailure: memory += 1; break;
      case EventType::KernelOops:
      case EventType::InvalidOpcode:
      case EventType::CpuStall:
      case EventType::SegFault: kernel += 1; break;
      case EventType::NhcTestFail:
      case EventType::AppExitAbnormal: nhc += 1; break;
      default: break;
    }
  }
  double distinct = 0;
  for (const bool b : seen) distinct += b;

  std::vector<double> features = {
      hw, mce, lustre, memory, kernel, nhc, distinct, (t - last).to_minutes()};

  if (config_.include_external && blade.valid()) {
    double ec_hw = 0, voltage = 0, link = 0, sedc = 0;
    for (const std::uint32_t idx :
         store_.blade_range(blade, t - config_.external_window, t)) {
      const LogRecord& r = store_[idx];
      if (r.has_node() && r.node != node) continue;
      switch (r.type) {
        case EventType::EcHwError: ec_hw += 1; break;
        case EventType::NodeVoltageFault: voltage += 1; break;
        case EventType::LinkError: link += 1; break;
        case EventType::SedcVoltageWarning: sedc += 1; break;
        default: break;
      }
    }
    features.insert(features.end(), {ec_hw, voltage, link, sedc});
  } else if (config_.include_external) {
    features.insert(features.end(), {0.0, 0.0, 0.0, 0.0});
  }
  return features;
}

LabeledDataset build_dataset(const logmodel::LogStore& store,
                             const std::vector<AnalyzedFailure>& failures,
                             std::uint32_t node_count, const DatasetConfig& config) {
  LabeledDataset dataset;
  const FeatureExtractor extractor(store, config.features);

  // Positives: just before each failure.
  for (const auto& f : failures) {
    dataset.features.push_back(
        extractor.extract(f.event.node, f.event.blade, f.event.time - config.positive_offset));
    dataset.labels.push_back(1);
    ++dataset.positives;
  }

  // Negatives: random (node, time) pairs with no failure within the horizon.
  util::Rng rng(config.seed);
  const auto wanted = static_cast<std::size_t>(
      config.negatives_per_positive * static_cast<double>(dataset.positives));
  const util::TimePoint begin = store.first_time();
  const util::TimePoint end = store.last_time();
  if (end <= begin || node_count == 0) return dataset;

  std::size_t produced = 0;
  std::size_t attempts = 0;
  while (produced < wanted && attempts < wanted * 20 + 100) {
    ++attempts;
    const platform::NodeId node{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1))};
    const util::TimePoint t{begin.usec + rng.uniform_int(0, end.usec - begin.usec)};
    bool near_failure = false;
    for (const auto& f : failures) {
      if (f.event.node == node &&
          std::abs((f.event.time - t).usec) <= config.failure_horizon.usec) {
        near_failure = true;
        break;
      }
    }
    if (near_failure) continue;
    // Blade id from any record of the node, else invalid (no external).
    platform::BladeId blade;
    const auto idx = store.node_index(node);
    if (!idx.empty()) blade = store[idx.front()].blade;
    dataset.features.push_back(extractor.extract(node, blade, t));
    dataset.labels.push_back(0);
    ++produced;
  }
  return dataset;
}

TrainedPredictor train_predictor(const LabeledDataset& train, const FeatureConfig& features) {
  TrainedPredictor predictor;
  predictor.features = features;
  predictor.model = stats::train_logistic(train.features, train.labels);
  return predictor;
}

stats::BinaryMetrics evaluate_predictor_model(const TrainedPredictor& predictor,
                                              const LabeledDataset& test, double threshold) {
  return stats::evaluate_logistic(predictor.model, test.features, test.labels, threshold);
}

}  // namespace hpcfail::core
