// Fig 10: over 16 consecutive days, the number of nodes experiencing
// hardware errors, MCE log triggers and Lustre I/O errors far exceeds the
// number of failed nodes; page-fault locks (I/O) outnumber hardware errors;
// most erroring nodes never fail (Observation 4).
#include "bench_common.hpp"
#include "core/benign_faults.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 10: erroring nodes vs failed nodes (S1, 16 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 16, 1010);
  const core::BenignFaultAnalyzer benign(p.parsed.store);
  const auto days = benign.daily_error_nodes(p.sim.config.begin, 16, p.failures);

  util::TextTable table({"Day", "HW-error nodes", "MCE nodes", "Lustre nodes", "failed"});
  stats::StreamingStats hw, mce, lustre, failed;
  for (const auto& d : days) {
    table.row()
        .cell(static_cast<std::int64_t>(d.day - days.front().day + 1))
        .cell(static_cast<std::int64_t>(d.hw_error_nodes))
        .cell(static_cast<std::int64_t>(d.mce_nodes))
        .cell(static_cast<std::int64_t>(d.lustre_nodes))
        .cell(static_cast<std::int64_t>(d.failed_nodes));
    hw.add(static_cast<double>(d.hw_error_nodes));
    mce.add(static_cast<double>(d.mce_nodes));
    lustre.add(static_cast<double>(d.lustre_nodes));
    failed.add(static_cast<double>(d.failed_nodes));
  }
  std::cout << table.render() << '\n';

  check.greater("HW-error nodes/day exceed failed nodes/day", hw.mean(), failed.mean());
  check.greater("MCE nodes/day exceed failed nodes/day", mce.mean(), failed.mean());
  check.greater("Lustre-error nodes/day exceed failed nodes/day", lustre.mean(),
                failed.mean());
  check.greater("I/O (Lustre) problems outnumber hardware errors", lustre.mean(), hw.mean());
  check.in_range("failed nodes per day (paper <6 in that window)", failed.mean(), 0, 12);

  // Most erroring nodes never fail in due course.
  const double fail_frac = benign.erroring_node_failure_fraction(
      logmodel::EventType::HardwareError, p.sim.config.begin, p.sim.config.end(),
      util::Duration::hours(24), p.failures);
  check.in_range("fraction of HW-erroring nodes that fail within a day", fail_frac, 0.0,
                 0.40);
  return check.exit_code();
}
