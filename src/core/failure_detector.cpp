#include "core/failure_detector.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/strings.hpp"

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogStore;

Detection FailureDetector::detect_full(const LogStore& store,
                                       const jobs::JobTable* jobs) const {
  Detection result;
  std::vector<FailureEvent> out;

  // Collect marker record indexes, already time-ordered per type; merge the
  // three marker streams into one time-ordered list.
  std::vector<std::uint32_t> markers;
  for (const EventType type :
       {EventType::KernelPanic, EventType::NodeShutdown, EventType::NodeHalt}) {
    const auto idx = store.type_index(type);
    markers.insert(markers.end(), idx.begin(), idx.end());
  }
  std::sort(markers.begin(), markers.end(), [&store](std::uint32_t a, std::uint32_t b) {
    return store[a].time < store[b].time;
  });

  // Per-node dedup: markers within dedup_window of the previous marker on
  // the same node belong to the same failure.
  std::unordered_map<std::uint32_t, util::TimePoint> last_marker;
  for (const std::uint32_t idx : markers) {
    const LogRecord& r = store[idx];
    if (!r.has_node()) continue;
    // Intended shutdowns carry their reason in the shutdown message; the
    // paper recognizes and excludes them.
    if (r.type == EventType::NodeShutdown &&
        util::contains(store.detail(r), "scheduled maintenance")) {
      ++result.intended_shutdowns_excluded;
      continue;
    }
    const auto it = last_marker.find(r.node.value);
    if (it != last_marker.end() && r.time - it->second < config_.dedup_window) {
      it->second = r.time;  // extend the cluster
      continue;
    }
    last_marker[r.node.value] = r.time;

    FailureEvent ev;
    ev.node = r.node;
    ev.blade = r.blade;
    ev.cabinet = r.cabinet;
    ev.time = r.time;
    ev.marker = r.type;
    ev.job_id = r.job_id;

    // Indicative internal chain within the lookback window.
    ev.first_internal = ev.time;
    for (const std::uint32_t ci :
         store.node_range(ev.node, ev.time - config_.lookback,
                          ev.time + util::Duration::seconds(1))) {
      const LogRecord& c = store[ci];
      if (!logmodel::is_internal_indicator(c.type)) continue;
      ev.chain.push_back(ci);
      if (c.time < ev.first_internal) ev.first_internal = c.time;
      if (ev.job_id == logmodel::kNoJob && c.has_job()) ev.job_id = c.job_id;
    }

    if (ev.job_id == logmodel::kNoJob && jobs != nullptr) {
      if (const auto* job = jobs->job_on_node_at(ev.node, ev.time, config_.job_slack)) {
        ev.job_id = job->job_id;
      }
    }
    out.push_back(std::move(ev));
  }

  std::sort(out.begin(), out.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.time < b.time; });

  // SWO recognition: runs of near-simultaneous failures across many nodes
  // are one system-wide outage, not node failures.
  std::vector<FailureEvent> kept;
  std::size_t i = 0;
  while (i < out.size()) {
    std::size_t j = i;
    while (j + 1 < out.size() && out[j + 1].time - out[j].time <= config_.swo_gap) ++j;
    const std::size_t cluster = j - i + 1;
    if (cluster >= config_.swo_min_nodes) {
      result.swos.push_back({out[i].time, out[j].time, cluster});
    } else {
      for (std::size_t k = i; k <= j; ++k) kept.push_back(std::move(out[k]));
    }
    i = j + 1;
  }
  result.failures = std::move(kept);
  return result;
}

}  // namespace hpcfail::core
