file(REMOVE_RECURSE
  "CMakeFiles/tab04_stack_modules.dir/tab04_stack_modules.cpp.o"
  "CMakeFiles/tab04_stack_modules.dir/tab04_stack_modules.cpp.o.d"
  "tab04_stack_modules"
  "tab04_stack_modules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_stack_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
