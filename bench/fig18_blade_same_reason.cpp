// Fig 18: fraction of blade failures sharing the same failure reason, S1
// and S2 over 7 weeks.  Paper: when whole blades fail, the manifested
// symptoms are usually the same (hardware faults or application-triggered
// software faults); week-to-week errors stay within +/-7.2 (percentage
// points), i.e. temporal locality of root cause is consistent
// (Observation 8).
#include "bench_common.hpp"
#include "core/spatial.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 18: same-reason blade failures (S1+S2, 7 weeks)");

  util::TextTable table({"System", "Week", "blade groups", "same-reason fraction"});
  for (const auto sys : {platform::SystemName::S1, platform::SystemName::S2}) {
    const auto p = bench::run_system(sys, 49, 1818);
    const core::SpatialAnalyzer spatial(p.parsed.store, p.parsed.topology);

    stats::StreamingStats weekly;
    for (int week = 0; week < 7; ++week) {
      const util::TimePoint begin = p.sim.config.begin + util::Duration::days(week * 7);
      const util::TimePoint end = begin + util::Duration::days(7);
      std::vector<core::AnalyzedFailure> in_week;
      for (const auto& f : p.failures) {
        if (f.event.time >= begin && f.event.time < end) in_week.push_back(f);
      }
      const auto groups = spatial.blade_groups(in_week, 2);
      const double fraction = core::SpatialAnalyzer::same_reason_fraction(groups);
      if (!groups.empty()) weekly.add(fraction);
      table.row()
          .cell(platform::to_string(sys))
          .cell("W" + std::to_string(week + 1))
          .cell(static_cast<std::int64_t>(groups.size()))
          .pct(fraction);
    }
    check.in_range(platform::to_string(sys) + ": mean same-reason fraction (paper: high)",
                   weekly.mean(), 0.65, 1.0);
    check.in_range(platform::to_string(sys) +
                       ": week-to-week spread (paper error <= +/-7.2pp)",
                   weekly.stddev() * 100.0, 0.0, 20.0);
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
