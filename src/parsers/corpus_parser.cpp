#include "parsers/corpus_parser.hpp"

#include <atomic>
#include <vector>

#include "parsers/source_parsers.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace hpcfail::parsers {

using logmodel::LogRecord;
using logmodel::LogSource;

using util::split_lines;

ParsedCorpus parse_corpus(const loggen::Corpus& corpus, util::ThreadPool* pool) {
  ParsedCorpus out{corpus.system, platform::Topology{corpus.system.topology},
                   {}, {}, corpus.begin, corpus.days, 0, 0, 0};
  util::ThreadPool& workers = pool != nullptr ? *pool : util::default_pool();

  const auto begin_civil = util::civil_time(corpus.begin);
  ParseContext ctx;
  ctx.topo = &out.topology;
  ctx.base_year = begin_civil.year;
  ctx.base_month = begin_civil.month;

  struct SourceJob {
    LogSource source;
    std::optional<LogRecord> (*parse)(std::string_view, const ParseContext&);
  };
  const SourceJob source_jobs[] = {
      {LogSource::Console, &parse_console_line},
      {LogSource::Consumer, &parse_console_line},
      {LogSource::Messages, &parse_messages_line},
      {LogSource::Controller, &parse_controller_line},
      {LogSource::Erd, &parse_erd_line},
  };

  std::vector<LogRecord> records;
  logmodel::SymbolTable symbols;
  std::atomic<std::size_t> skipped{0};

  for (const auto& job : source_jobs) {
    const std::string& text = corpus.of(job.source);
    if (text.empty()) continue;
    // hpcfail-lint: allow(hot-path-scan) -- in-memory path shards by line index, which needs the random-access vector; the streaming hot path is ingest.cpp
    const auto lines = split_lines(text);
    out.total_lines += lines.size();

    // Shard the line range; each shard fills its own vector (with its own
    // symbol table — workers never share one), merged in order afterwards
    // (the store re-sorts by time anyway; Symbols are remapped into the
    // final table as each shard is absorbed in deterministic shard order).
    const std::size_t shards = std::max<std::size_t>(1, workers.size() * 2);
    const std::size_t chunk = std::max<std::size_t>(1, (lines.size() + shards - 1) / shards);
    std::vector<std::vector<LogRecord>> shard_records((lines.size() + chunk - 1) / chunk);
    std::vector<logmodel::SymbolTable> shard_symbols(shard_records.size());
    workers.parallel_for_ranges(
        shard_records.size(),
        // hpcfail-lint: allow(capture-lifetime) -- parallel_for_ranges joins every shard before returning
        [&](std::size_t begin_shard, std::size_t end_shard) {
          for (std::size_t s = begin_shard; s < end_shard; ++s) {
            const std::size_t lo = s * chunk;
            const std::size_t hi = std::min(lines.size(), lo + chunk);
            std::size_t local_skipped = 0;
            ParseContext local = ctx;
            local.symbols = &shard_symbols[s];
            auto& sink = shard_records[s];
            sink.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i) {
              if (auto record = job.parse(lines[i], local)) {
                sink.push_back(*record);
              } else {
                ++local_skipped;
              }
            }
            skipped.fetch_add(local_skipped, std::memory_order_relaxed);
          }
        });
    for (std::size_t s = 0; s < shard_records.size(); ++s) {
      const std::vector<logmodel::Symbol> remap = symbols.absorb(shard_symbols[s]);
      for (LogRecord& r : shard_records[s]) r.detail = remap[r.detail.id];
      records.insert(records.end(), shard_records[s].begin(), shard_records[s].end());
    }
  }

  // Scheduler log: sequential, stateful.
  {
    const std::string& text = corpus.of(LogSource::Scheduler);
    // hpcfail-lint: allow(hot-path-scan) -- sequential stateful parse over the in-memory corpus, reuses the sibling shard path's line count accounting
    const auto lines = split_lines(text);
    out.total_lines += lines.size();
    ParseContext sched_ctx = ctx;
    sched_ctx.symbols = &symbols;
    SchedulerLogParser sched(sched_ctx, out.jobs);
    for (const auto line : lines) {
      if (auto record = sched.parse_line(line)) {
        records.push_back(*record);
      } else {
        skipped.fetch_add(1, std::memory_order_relaxed);
      }
    }
    out.jobs.finalize();
  }

  out.skipped_lines = skipped.load();
  out.parsed_records = records.size();
  out.store = logmodel::LogStore{std::move(records), std::move(symbols)};
  return out;
}

}  // namespace hpcfail::parsers
