// Fixture counterpart of the drifted renderer table.
#include "parsers/line_classifier.hpp"

namespace hpcfail::parsers {

std::optional<EventType> erd_event_type(std::string_view name) noexcept {
  if (name == "ec_node_failed") return EventType::NodeHeartbeatFault;
  if (name == "ec_node_voltage_fault") return EventType::NodeVoltageFault;
  if (name == "ec_link_error") return EventType::LaneDegrade;
  return std::nullopt;
}

}  // namespace hpcfail::parsers
