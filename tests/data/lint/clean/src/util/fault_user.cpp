// Fixture: production code using exactly the registered fault sites.
#include "util/fault.hpp"

bool read_chunk() {
  if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) return false;
  if (HPCFAIL_FAULT_SITE("store.append_batch.bad_alloc")) return false;
  return true;
}

bool snapshot_io() {
  if (HPCFAIL_FAULT_SITE("store.snapshot.write_io")) return false;
  if (HPCFAIL_FAULT_SITE("store.snapshot.read_io")) return false;
  return true;
}
