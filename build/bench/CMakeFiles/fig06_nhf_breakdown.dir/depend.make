# Empty dependencies file for fig06_nhf_breakdown.
# This may be replaced when dependencies are built.
