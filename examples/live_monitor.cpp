// Live monitoring through the serve layer: boot a resident Server over an
// empty store, then feed the simulated console log into a tail file in
// slices — exactly how a deployment would follow a growing log.  The
// daemon's TailReader/OnlineMonitor pipeline turns each slice into alerts
// and a new epoch; the manual record-replay loop this example used to
// carry now lives (tested) inside serve::Server.  Closes with the daemon's
// own status line and the mitigation advisor's fleet summary — the
// deployment story the paper's Table VI recommendations describe.
//
//   ./examples/live_monitor [days] [seed]
#include <cstdlib>
#include <array>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/advisor.hpp"
#include "core/analysis_context.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const int days = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  const auto sim = faultsim::Simulator(
                       faultsim::scenario_preset(platform::SystemName::S1, days, seed))
                       .run();
  const auto corpus = loggen::build_corpus(sim);

  // Boot the daemon "cold": same machine header, no records yet.  Every
  // record it ever sees arrives through the tail, like a real deployment
  // attached to a console log at install time.
  loggen::Corpus header_only = corpus;
  for (auto& text : header_only.text) text.clear();
  serve::Server server(parsers::parse_corpus(header_only));

  const std::string tail_path = "/tmp/hpcfail_live_monitor_tail.log";
  std::filesystem::remove(tail_path);
  server.attach_tail(tail_path, logmodel::LogSource::Console);

  const std::string& console = corpus.of(logmodel::LogSource::Console);
  std::cout << "streaming " << console.size() << " console bytes (" << days
            << " days of S1) through the serve tail...\n\n";

  // Append the log in slices (cut to line boundaries by the reader's
  // partial-line rule) and poll between appends — the daemon sees the
  // same lines a tail -f would.
  constexpr std::size_t kSlices = 16;
  const std::size_t slice = console.size() / kSlices + 1;
  std::size_t shown = 0;
  std::array<std::size_t, 4> kind_counts{};
  for (std::size_t offset = 0; offset < console.size(); offset += slice) {
    {
      std::ofstream tail(tail_path, std::ios::app | std::ios::binary);
      tail << console.substr(offset, slice);
    }
    const auto poll = server.poll_tail();
    if (!poll.ok()) {
      std::cerr << "tail error: " << poll.error->to_string() << '\n';
      break;
    }
    for (const auto& alert : poll.alerts) {
      ++kind_counts[static_cast<std::size_t>(alert.kind)];
      if (shown < 40) {
        std::cout << util::format_iso(alert.time) << "  "
                  << server.topology().node_name(alert.node) << "  "
                  << to_string(alert.kind);
        if (alert.suspected != logmodel::RootCause::Unknown) {
          std::cout << " [" << to_string(alert.suspected) << "]";
        }
        std::cout << "  " << alert.message << '\n';
        ++shown;
      }
    }
  }
  std::cout << "\nalert totals: ";
  for (std::size_t k = 0; k < kind_counts.size(); ++k) {
    std::cout << to_string(static_cast<core::AlertKind>(k)) << "=" << kind_counts[k] << ' ';
  }
  std::cout << "\n\nthe daemon's own view (epoch " << server.epoch() << "):\n"
            << server.handle_line(R"({"id":1,"verb":"status"})") << "\n\n";

  // Post-hoc: what should the operator do about each confirmed failure?
  // The advisor wants the full multi-source window, so analyze the parsed
  // corpus directly (the daemon above only followed the console stream).
  const auto parsed = parsers::parse_corpus(corpus);
  const core::AnalysisContext analysis_ctx(
      parsed.store, &parsed.jobs, parsed.store.first_time(),
      parsed.store.last_time() + util::Duration::microseconds(1));
  const auto& failures = analysis_ctx.failures();
  const core::MitigationAdvisor advisor;
  const auto recommendations = advisor.advise(failures, &parsed.jobs);
  const auto summary = core::summarize_actions(recommendations, failures);

  util::TextTable table({"recommended action", "failures"});
  for (std::size_t a = 0; a < summary.counts.size(); ++a) {
    if (summary.counts[a] == 0) continue;
    table.row()
        .cell(std::string(to_string(static_cast<core::Action>(a))))
        .cell(static_cast<std::int64_t>(summary.counts[a]));
  }
  std::cout << table.render();
  std::cout << "\nquarantining by default would have wasted nodes on "
            << util::fmt_pct(summary.quarantine_waste_fraction)
            << " of failures (application-triggered; Observation 6).\n";
  std::filesystem::remove(tail_path);
  return 0;
}
