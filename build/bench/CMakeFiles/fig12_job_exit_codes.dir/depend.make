# Empty dependencies file for fig12_job_exit_codes.
# This may be replaced when dependencies are built.
