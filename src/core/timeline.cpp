#include "core/timeline.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

NodeState NodeTimeline::state_at(util::TimePoint t) const noexcept {
  for (const auto& iv : intervals) {
    if (iv.begin <= t && t < iv.end) return iv.state;
  }
  return NodeState::Up;
}

util::Duration NodeTimeline::time_in(NodeState state) const noexcept {
  util::Duration total{};
  for (const auto& iv : intervals) {
    if (iv.state == state) total = total + (iv.end - iv.begin);
  }
  return total;
}

NodeTimeline TimelineBuilder::build(platform::NodeId node, util::TimePoint begin,
                                    util::TimePoint end) const {
  NodeTimeline timeline;
  timeline.node = node;

  NodeState state = NodeState::Up;
  util::TimePoint segment_start = begin;
  auto close_segment = [&](util::TimePoint at, NodeState next) {
    if (at > end) at = end;
    if (at > segment_start) {
      timeline.intervals.push_back({segment_start, at, state});
      segment_start = at;
    }
    state = next;
  };

  for (const std::uint32_t idx : store_.node_range(node, begin, end)) {
    const LogRecord& r = store_[idx];
    if (logmodel::is_failure_marker(r.type)) {
      // Planned maintenance is not lost availability; standard practice is
      // to count unplanned downtime only.
      if (r.type == EventType::NodeShutdown &&
          util::contains(store_.detail(r), "scheduled maintenance")) {
        continue;
      }
      if (state != NodeState::Down) close_segment(r.time, NodeState::Down);
    } else if (r.type == EventType::NhcSuspectMode) {
      if (state == NodeState::Up) close_segment(r.time, NodeState::Suspect);
    } else if (r.type == EventType::NodeBoot) {
      if (state != NodeState::Up) close_segment(r.time, NodeState::Up);
    }
  }
  close_segment(end, state);
  return timeline;
}

FleetAvailability TimelineBuilder::fleet_availability(util::TimePoint begin,
                                                      util::TimePoint end) const {
  FleetAvailability out;
  const double window_hours = (end - begin).to_hours();
  if (window_hours <= 0.0 || node_count_ == 0) return out;

  double lost_hours = 0.0;
  for (const auto node : store_.nodes()) {
    const NodeTimeline timeline = build(node, begin, end);
    lost_hours += timeline.time_in(NodeState::Down).to_hours() +
                  timeline.time_in(NodeState::Suspect).to_hours();
    // Repair times: Down interval lengths that end in a reboot (i.e. the
    // interval closes before the window does).
    for (const auto& iv : timeline.intervals) {
      if (iv.state != NodeState::Down) continue;
      ++out.down_intervals;
      if (iv.end < end) out.repair_minutes.add((iv.end - iv.begin).to_minutes());
    }
  }
  const double total_hours = window_hours * static_cast<double>(node_count_);
  out.node_hours_lost = lost_hours;
  out.availability = std::clamp(1.0 - lost_hours / total_hours, 0.0, 1.0);
  return out;
}

}  // namespace hpcfail::core
