file(REMOVE_RECURSE
  "CMakeFiles/tab01_systems.dir/tab01_systems.cpp.o"
  "CMakeFiles/tab01_systems.dir/tab01_systems.cpp.o.d"
  "tab01_systems"
  "tab01_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
