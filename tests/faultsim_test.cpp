// Unit tests for src/faultsim: chains, scenarios, simulator invariants,
// special scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "faultsim/chain_emitter.hpp"
#include "faultsim/scenario_io.hpp"
#include "faultsim/simulator.hpp"
#include "faultsim/special_scenarios.hpp"

namespace hpcfail::faultsim {
namespace {

using logmodel::EventType;
using logmodel::RootCause;

struct ChainFixture {
  platform::Topology topo{platform::TopologyConfig{}};
  FailureProcessConfig config;
  std::vector<logmodel::LogRecord> records;
  logmodel::SymbolTable symbols;
  GroundTruth truth;
  util::Rng rng{99};
  ChainEmitter emitter{topo, config, records, symbols, truth, rng};

  std::size_t count(EventType t) const {
    return static_cast<std::size_t>(
        std::count_if(records.begin(), records.end(),
                      [t](const auto& r) { return r.type == t; }));
  }
};

class ChainTest : public ::testing::TestWithParam<RootCause> {};

TEST_P(ChainTest, EveryChainEndsInAMarkerAndReboot) {
  ChainFixture fx;
  const util::TimePoint t = util::make_time(2015, 3, 2, 12);
  const auto& planted =
      fx.emitter.plant_failure(platform::NodeId{17}, t, GetParam(), nullptr);
  EXPECT_EQ(planted.cause, GetParam());
  EXPECT_EQ(planted.node.value, 17u);
  EXPECT_EQ(planted.fail_time.usec, t.usec);
  EXPECT_LE(planted.first_internal_indicator.usec, t.usec);
  // A failure marker exists at the failure time.
  EXPECT_GE(fx.count(EventType::KernelPanic) + fx.count(EventType::NodeShutdown) +
                fx.count(EventType::NodeHalt),
            1u);
  EXPECT_EQ(fx.count(EventType::NodeBoot), 1u);
  // Ground truth recorded exactly one failure.
  EXPECT_EQ(fx.truth.failures.size(), 1u);
  // All records carry the node's blade/cabinet or are blade/cabinet scoped.
  for (const auto& r : fx.records) {
    EXPECT_TRUE(r.has_blade() || r.has_cabinet() || r.has_node());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCauses, ChainTest,
                         ::testing::Values(RootCause::HardwareMce,
                                           RootCause::FailSlowHardware, RootCause::KernelBug,
                                           RootCause::LustreBug, RootCause::MemoryExhaustion,
                                           RootCause::AppAbnormalExit, RootCause::BiosUnknown,
                                           RootCause::L0SysdMceUnknown,
                                           RootCause::OperatorError));

TEST(ChainTest, FailSlowEmitsEarlyExternalIndicators) {
  ChainFixture fx;
  const util::TimePoint t = util::make_time(2015, 3, 2, 12);
  const auto& planted =
      fx.emitter.plant_failure(platform::NodeId{3}, t, RootCause::FailSlowHardware, nullptr);
  EXPECT_TRUE(planted.fail_slow);
  EXPECT_TRUE(planted.has_external_indicator);
  EXPECT_LT(planted.first_external_indicator.usec, planted.first_internal_indicator.usec);
  EXPECT_GE(fx.count(EventType::EcHwError), 5u);
  // Every ec_hw_error precedes the failure.
  for (const auto& r : fx.records) {
    if (r.type == EventType::EcHwError) {
      EXPECT_LE(r.time.usec, t.usec);
    }
  }
}

TEST(ChainTest, MemoryChainCarriesJobAndModules) {
  ChainFixture fx;
  jobs::Job job;
  job.job_id = 1234;
  job.apid = 12347;
  job.app_name = "genomics_mem";
  const util::TimePoint t = util::make_time(2015, 3, 2, 12);
  const auto& planted =
      fx.emitter.plant_failure(platform::NodeId{9}, t, RootCause::MemoryExhaustion, &job);
  EXPECT_EQ(planted.job_id, 1234);
  EXPECT_FALSE(planted.stack_module.empty());
  EXPECT_GE(fx.count(EventType::OomKill), 1u);
  EXPECT_GE(fx.count(EventType::CallTrace), 2u);
  // The oom record is attributed to the job.
  for (const auto& r : fx.records) {
    if (r.type == EventType::OomKill) {
      EXPECT_EQ(r.job_id, 1234);
    }
  }
}

TEST(ChainTest, OperatorErrorHasNoPrecursors) {
  ChainFixture fx;
  const util::TimePoint t = util::make_time(2015, 3, 2, 12);
  const auto& planted =
      fx.emitter.plant_failure(platform::NodeId{5}, t, RootCause::OperatorError, nullptr);
  EXPECT_EQ(planted.first_internal_indicator.usec, t.usec);
  EXPECT_EQ(fx.count(EventType::NodeShutdown), 1u);
  EXPECT_EQ(fx.count(EventType::KernelOops), 0u);
}

TEST(BenignEmitterTest, CountsTracked) {
  ChainFixture fx;
  const util::TimePoint t = util::make_time(2015, 3, 2);
  fx.emitter.emit_benign_nhf(platform::NodeId{1}, t, true);
  fx.emitter.emit_benign_nhf(platform::NodeId{2}, t, false);
  fx.emitter.emit_benign_nvf(platform::NodeId{3}, t);
  fx.emitter.emit_sedc_warning(platform::BladeId{0}, t, EventType::SedcTemperatureWarning,
                               70.0);
  fx.emitter.emit_cabinet_fault(platform::CabinetId{0}, t);
  fx.emitter.emit_hung_task(platform::NodeId{4}, t);
  fx.emitter.emit_benign_oom(platform::NodeId{5}, t);
  EXPECT_EQ(fx.truth.benign.nhf_power_off, 1u);
  EXPECT_EQ(fx.truth.benign.nhf_skipped_heartbeat, 1u);
  EXPECT_EQ(fx.truth.benign.nvf_benign, 1u);
  EXPECT_EQ(fx.truth.benign.sedc_warnings, 1u);
  EXPECT_EQ(fx.truth.benign.cabinet_faults, 1u);
  EXPECT_EQ(fx.truth.benign.hung_task_nodes, 1u);
  EXPECT_EQ(fx.truth.failures.size(), 0u);  // none of these are failures
}

// ------------------------------------------------------------ simulator ----

TEST(SimulatorTest, SeedDeterminism) {
  const auto run = [] {
    return Simulator(scenario_preset(platform::SystemName::S3, 5, 321)).run();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.records.size(), b.records.size());
  ASSERT_EQ(a.truth.failures.size(), b.truth.failures.size());
  for (std::size_t i = 0; i < a.truth.failures.size(); ++i) {
    EXPECT_EQ(a.truth.failures[i].node.value, b.truth.failures[i].node.value);
    EXPECT_EQ(a.truth.failures[i].fail_time.usec, b.truth.failures[i].fail_time.usec);
    EXPECT_EQ(a.truth.failures[i].cause, b.truth.failures[i].cause);
  }
}

TEST(SimulatorTest, DifferentSeedsDiffer) {
  const auto a = Simulator(scenario_preset(platform::SystemName::S3, 5, 1)).run();
  const auto b = Simulator(scenario_preset(platform::SystemName::S3, 5, 2)).run();
  EXPECT_NE(a.records.size(), b.records.size());
}

TEST(SimulatorTest, FailuresWithinWindowAndTopology) {
  const auto sim = Simulator(scenario_preset(platform::SystemName::S4, 10, 55)).run();
  EXPECT_GT(sim.truth.failures.size(), 5u);
  for (const auto& f : sim.truth.failures) {
    EXPECT_LT(f.node.value, sim.topology.node_count());
    EXPECT_GE(f.fail_time.usec, sim.config.begin.usec);
    // Chains spread a little past the nominal end of the last burst.
    EXPECT_LT(f.fail_time.usec, (sim.config.end() + util::Duration::hours(4)).usec);
    EXPECT_EQ(f.blade.value, sim.topology.blade_of(f.node).value);
  }
}

TEST(SimulatorTest, JobDrivenFailuresKillTheJob) {
  const auto sim = Simulator(scenario_preset(platform::SystemName::S1, 14, 77)).run();
  std::map<std::int64_t, const jobs::Job*> jobs_by_id;
  for (const auto& j : sim.jobs) jobs_by_id[j.job_id] = &j;
  std::size_t job_failures = 0;
  for (const auto& f : sim.truth.failures) {
    if (f.job_id == -1) continue;
    ++job_failures;
    const auto it = jobs_by_id.find(f.job_id);
    ASSERT_NE(it, jobs_by_id.end());
    EXPECT_TRUE(it->second->outcome == jobs::JobOutcome::NodeFailure ||
                it->second->outcome == jobs::JobOutcome::OomKilled)
        << to_string(it->second->outcome);
    // The failed node belongs to the job.
    const auto& nodes = it->second->nodes;
    EXPECT_NE(std::find(nodes.begin(), nodes.end(), f.node), nodes.end());
  }
  EXPECT_GT(job_failures, 0u);
}

TEST(SimulatorTest, S5HasNoControllerRecords) {
  const auto sim = Simulator(scenario_preset(platform::SystemName::S5, 7, 88)).run();
  // Record-level NHFs can exist (chain emissions) but no SEDC warnings or
  // cabinet chatter are generated for the institutional cluster.
  for (const auto& r : sim.records) {
    EXPECT_FALSE(logmodel::is_sedc_warning(r.type));
    EXPECT_NE(r.type, EventType::CabinetPowerFault);
  }
}

TEST(SimulatorTest, SensorReadingsWhenEnabled) {
  ScenarioConfig cfg = scenario_preset(platform::SystemName::S1, 1, 99);
  cfg.sensors.emit_readings = true;
  cfg.sensors.reading_blade_count = 2;
  cfg.sensors.reading_interval_minutes = 30.0;
  cfg.sensors.force_power_off_node = 0;
  const auto sim = Simulator(cfg).run();
  std::size_t readings = 0;
  bool zero_seen = false;
  for (const auto& r : sim.records) {
    if (r.type != EventType::SedcReading) continue;
    ++readings;
    EXPECT_LT(r.node.value, 8u);
    if (r.node.value == 0) {
      EXPECT_EQ(r.value, 0.0);
      zero_seen = true;
    } else {
      EXPECT_GT(r.value, 20.0);
    }
  }
  EXPECT_EQ(readings, 8u * 48u);  // 2 blades x 4 nodes x 48 samples
  EXPECT_TRUE(zero_seen);
}

// ------------------------------------------------------------ scenario io ----

TEST(ScenarioIoTest, DumpParseRoundTrip) {
  const ScenarioConfig original = scenario_preset(platform::SystemName::S2, 14, 77);
  const std::string text = scenario_to_string(original);
  const ScenarioConfig back = scenario_from_string(text);
  EXPECT_EQ(back.system.name, original.system.name);
  EXPECT_EQ(back.days, original.days);
  EXPECT_EQ(back.seed, original.seed);
  EXPECT_EQ(back.begin.usec, original.begin.usec);
  EXPECT_DOUBLE_EQ(back.failures.dominant_burst_mean, original.failures.dominant_burst_mean);
  EXPECT_DOUBLE_EQ(back.benign.cabinet_faults_per_day, original.benign.cabinet_faults_per_day);
  EXPECT_DOUBLE_EQ(back.workload.arrivals_per_hour, original.workload.arrivals_per_hour);
  for (std::size_t i = 0; i < logmodel::kRootCauseCount; ++i) {
    EXPECT_DOUBLE_EQ(back.failures.cause_weights[i], original.failures.cause_weights[i])
        << i;
  }
  // Identical scenarios produce identical corpora.
  const auto a = Simulator(original).run();
  const auto b = Simulator(back).run();
  EXPECT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.truth.failures.size(), b.truth.failures.size());
}

TEST(ScenarioIoTest, OverridesApply) {
  ScenarioConfig cfg = scenario_preset(platform::SystemName::S1, 7, 42);
  apply_scenario_overrides(cfg,
                           "# comment\n"
                           "failures.dominant_burst_mean = 12.5\n"
                           "cause_weights.LustreBug = 99\n"
                           "benign.swo_per_month = 0\n"
                           "sensors.emit_readings = 1\n");
  EXPECT_DOUBLE_EQ(cfg.failures.dominant_burst_mean, 12.5);
  EXPECT_DOUBLE_EQ(
      cfg.failures.cause_weights[static_cast<std::size_t>(RootCause::LustreBug)], 99.0);
  EXPECT_DOUBLE_EQ(cfg.benign.swo_per_month, 0.0);
  EXPECT_TRUE(cfg.sensors.emit_readings);
}

TEST(ScenarioIoTest, ErrorsAreLoud) {
  ScenarioConfig cfg = scenario_preset(platform::SystemName::S1, 7, 42);
  EXPECT_THROW(apply_scenario_overrides(cfg, "no equals"), std::runtime_error);
  EXPECT_THROW(apply_scenario_overrides(cfg, "unknown.key = 1"), std::runtime_error);
  EXPECT_THROW(apply_scenario_overrides(cfg, "days = abc"), std::runtime_error);
  EXPECT_THROW(apply_scenario_overrides(cfg, "cause_weights.NotACause = 1"),
               std::runtime_error);
  EXPECT_THROW(scenario_from_string("days = 3\n"), std::runtime_error);  // no system
}

// ----------------------------------------------------- special scenarios ----

TEST(SpecialScenarioTest, Fig17PlanTotals) {
  const auto plan = fig17_job_plan();
  ASSERT_EQ(plan.size(), 16u);
  std::uint32_t failures = 0;
  for (const auto& p : plan) {
    failures += p.failures;
    EXPECT_LE(p.failures, p.overallocated);
    EXPECT_LE(p.overallocated, p.nodes);
  }
  EXPECT_EQ(failures, 53u);
  EXPECT_EQ(plan[0].overallocated, 600u);
  EXPECT_EQ(plan[0].failures, 1u);
  EXPECT_EQ(plan[15].overallocated, 683u);
  EXPECT_EQ(plan[15].failures, 6u);
  EXPECT_EQ(plan[4].failures, plan[4].overallocated);  // J5: all fail
  EXPECT_EQ(plan[7].failures, plan[7].overallocated);  // J8: all fail
}

TEST(SpecialScenarioTest, OverallocationDayMatchesPlan) {
  const auto sim = overallocation_day(12345);
  EXPECT_EQ(sim.jobs.size(), 16u);
  EXPECT_EQ(sim.truth.failures.size(), 53u);
  for (const auto& f : sim.truth.failures) {
    EXPECT_EQ(f.cause, RootCause::MemoryExhaustion);
    EXPECT_NE(f.job_id, -1);
  }
  for (const auto& job : sim.jobs) {
    EXPECT_EQ(job.outcome, jobs::JobOutcome::Overallocated);
    EXPECT_GT(job.overallocated_nodes, 0u);
  }
}

TEST(SpecialScenarioTest, CaseStudiesWellFormed) {
  const auto cases = build_case_studies(777);
  ASSERT_EQ(cases.size(), 5u);
  EXPECT_EQ(cases[0].expected, RootCause::L0SysdMceUnknown);
  EXPECT_EQ(cases[1].expected, RootCause::HardwareMce);
  EXPECT_EQ(cases[2].expected, RootCause::MemoryExhaustion);
  EXPECT_EQ(cases[3].expected, RootCause::LustreBug);
  EXPECT_EQ(cases[4].expected, RootCause::FailSlowHardware);
  EXPECT_EQ(cases[1].sim.truth.failures.size(), 3u);
  EXPECT_EQ(cases[2].sim.truth.failures.size(), 6u);
  // Case 3's six failures share one job across distinct blades.
  std::set<std::uint32_t> blades;
  for (const auto& f : cases[2].sim.truth.failures) {
    EXPECT_EQ(f.job_id, 777001);
    blades.insert(f.blade.value);
  }
  EXPECT_GT(blades.size(), 3u);
}

}  // namespace
}  // namespace hpcfail::faultsim
