// Event taxonomy for the three log universes the paper correlates:
//   internal  - compute-node console/messages/consumer logs,
//   external  - blade/cabinet controller and event-router (ERD) logs,
//   job       - scheduler (Slurm/Torque/ALPS) logs.
// The taxonomy follows Table III of the paper (health faults vs SEDC
// warnings) plus the internal failure indicators of Sections III-E/F.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hpcfail::logmodel {

enum class EventType : std::uint8_t {
  // --- internal: kernel / hardware ---
  KernelPanic,            ///< fatal; node is lost
  KernelOops,             ///< oops with call trace; often fatal
  MachineCheckException,  ///< H/W MCE (page/cache/DIMM threshold exceeded)
  HardwareError,          ///< correctable/uncorrectable memory, buffer overflow
  CpuCorruption,          ///< processor corruption report
  CpuStall,               ///< RCU/CPU stall warnings
  BiosError,              ///< "type:2; severity:80; ..." pattern (unknown cause)
  L0SysdMce,              ///< blade-controller-reported MCE (unknown cause)
  FirmwareBug,            ///< firmware bug report
  DriverBug,              ///< driver bug report
  // --- internal: software / kernel ---
  SegFault,               ///< segfault in an application process
  InvalidOpcode,          ///< software trap
  PageAllocationFailure,  ///< page allocation failure (memory pressure)
  OomKill,                ///< oom-killer invoked, process killed
  HungTaskTimeout,        ///< "task blocked for more than 120 seconds"
  CallTrace,              ///< a stack-backtrace frame (module in text)
  // --- internal: file system / interconnect ---
  LustreError,            ///< Lustre I/O error (deadlock, page-fault lock)
  LustreBug,              ///< LBUG / Lustre assertion
  DvsError,               ///< DVS (dvsipc) error
  InodeError,             ///< disk/job induced inode errors
  InterconnectError,      ///< Aries/Gemini/IB link error seen by the node
  // --- internal: lifecycle / health ---
  NhcTestFail,            ///< node health checker test failed
  AppExitAbnormal,        ///< NHC-reported abnormal application exit
  NodeShutdown,           ///< clean or anomalous shutdown message
  NodeHalt,               ///< node declared down/admindown
  NodeBoot,               ///< node (re)booted
  // --- external: health faults (Table III col 1) ---
  NodeHeartbeatFault,     ///< NHF: node skipped heartbeats / failed health test
  NodeVoltageFault,       ///< NVF
  BladeHeartbeatFault,    ///< BCHF: blade controller heartbeat fault
  EcHeartbeatStop,        ///< ec_heartbeat_stop event
  EcL0Failed,             ///< ec_l0_failed event
  EcHwError,              ///< ec_hw_error: hardware malfunction alert
  GetSensorReadingFailed, ///< controller could not read a sensor
  CabinetPowerFault,      ///< cabinet power / micro-controller fault
  CabinetMicroFault,      ///< cabinet micro-controller fault
  CommunicationFault,     ///< controller communication fault
  ModuleHealthFault,      ///< module health fault
  RpmFault,               ///< fan RPM fault
  EcbFault,               ///< electronic circuit breaker fault (power)
  CabinetSensorCheck,     ///< cabinet sensor check fault
  LinkError,              ///< HSN link error reported by the controller
  LaneDegrade,            ///< HSN lane degraded (bandwidth reduced)
  LinkFailover,           ///< traffic re-routed around a failed link
  LinkFailoverFailed,     ///< failover did not complete; nodes see errors
  // --- external: SEDC warnings (Table III col 2) ---
  SedcTemperatureWarning, ///< temperature outside allowed band
  SedcVoltageWarning,     ///< voltage outside allowed band
  SedcAirVelocityWarning, ///< air velocity below minimum
  SedcFanSpeedWarning,    ///< ec_environment fan speed / air flow warning
  SedcReading,            ///< periodic sensor sample (value attr)
  // --- job / scheduler ---
  JobStart,
  JobEnd,                 ///< exit code in attr
  JobCancelled,           ///< user / interactive cancellation
  JobOverallocation,      ///< scheduler allocated more memory than available
  EpilogueRun,            ///< scheduler epilogue cleaned the node
  NhcSuspectMode,         ///< NHC placed node in suspect mode

  kCount
};

inline constexpr std::size_t kEventTypeCount = static_cast<std::size_t>(EventType::kCount);

enum class Severity : std::uint8_t { Info, Warning, Error, Critical, Fatal };

enum class LogSource : std::uint8_t {
  Console,    ///< p0 console log
  Messages,   ///< p0 messages (syslog)
  Consumer,   ///< p0 consumer log
  Controller, ///< blade/cabinet controller log
  Erd,        ///< event router daemon log
  Scheduler,  ///< slurmctld / torque server log
  kCount
};

inline constexpr std::size_t kLogSourceCount = static_cast<std::size_t>(LogSource::kCount);

/// Event universes used throughout the analysis.
enum class EventClass : std::uint8_t { Internal, External, Job };

[[nodiscard]] EventClass event_class(EventType t) noexcept;

/// True for external events in the "health fault" column of Table III.
[[nodiscard]] bool is_health_fault(EventType t) noexcept;

/// True for external events in the "SEDC warning" column of Table III.
[[nodiscard]] bool is_sedc_warning(EventType t) noexcept;

/// Internal events that on their own indicate the node has failed
/// (ground-truth markers the failure detector keys on).
[[nodiscard]] bool is_failure_marker(EventType t) noexcept;

/// Internal events that are fault-indicative precursors (define the start
/// of the internal lead-time window).
[[nodiscard]] bool is_internal_indicator(EventType t) noexcept;

/// External events usable as early indicators for lead-time enhancement.
[[nodiscard]] bool is_external_indicator(EventType t) noexcept;

[[nodiscard]] std::string_view to_string(EventType t) noexcept;
[[nodiscard]] std::string_view to_string(Severity s) noexcept;
[[nodiscard]] std::string_view to_string(LogSource s) noexcept;

/// Inverse of to_string(EventType).
[[nodiscard]] std::optional<EventType> event_type_from_string(std::string_view s) noexcept;

}  // namespace hpcfail::logmodel
