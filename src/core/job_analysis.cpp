#include "core/job_analysis.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace hpcfail::core {

std::vector<DailyJobOutcomes> JobAnalyzer::daily_outcomes(util::TimePoint begin,
                                                          int days) const {
  std::vector<DailyJobOutcomes> out(static_cast<std::size_t>(std::max(0, days)));
  for (std::size_t d = 0; d < out.size(); ++d) {
    out[d].day = (begin + util::Duration::days(static_cast<std::int64_t>(d))).day_index();
  }
  for (const auto& job : table_.jobs()) {
    if (!job.ended) continue;
    const auto offset = (job.end - begin).usec;
    if (offset < 0) continue;
    const auto d = static_cast<std::size_t>(offset / util::Duration::days(1).usec);
    if (d >= out.size()) continue;
    auto& day = out[d];
    ++day.jobs;
    if (job.cancelled || job.exit_code == 130) {
      ++day.cancelled;
    } else if (job.exit_code == 0) {
      ++day.success;
    } else if (job.exit_code == 2) {
      ++day.config_error;
    } else if (job.exit_code == 137 || job.exit_code == 143) {
      ++day.node_caused;
    } else {
      ++day.nonzero;
    }
  }
  return out;
}

std::vector<SharedJobFailureGroup> JobAnalyzer::shared_job_groups(
    std::size_t min_failures) const {
  struct Group {
    std::size_t count = 0;
    std::set<std::uint32_t> blades;
    util::TimePoint first{std::numeric_limits<std::int64_t>::max()};
    util::TimePoint last{std::numeric_limits<std::int64_t>::min()};
  };
  std::map<std::int64_t, Group> groups;
  for (const auto& f : failures_) {
    if (f.event.job_id == logmodel::kNoJob) continue;
    auto& g = groups[f.event.job_id];
    ++g.count;
    if (f.event.blade.valid()) g.blades.insert(f.event.blade.value);
    g.first = std::min(g.first, f.event.time);
    g.last = std::max(g.last, f.event.time);
  }
  std::vector<SharedJobFailureGroup> out;
  for (const auto& [job_id, g] : groups) {
    if (g.count < min_failures) continue;
    SharedJobFailureGroup row;
    row.job_id = job_id;
    row.failures = g.count;
    row.distinct_blades = g.blades.size();
    row.span = g.last - g.first;
    out.push_back(row);
  }
  return out;
}

double JobAnalyzer::multi_blade_shared_job_fraction() const {
  const auto groups = shared_job_groups(2);
  std::size_t group_failures = 0;
  std::size_t multi_blade_failures = 0;
  for (const auto& g : groups) {
    group_failures += g.failures;
    if (g.distinct_blades > 1) multi_blade_failures += g.failures;
  }
  return group_failures == 0
             ? 0.0
             : static_cast<double>(multi_blade_failures) / static_cast<double>(group_failures);
}

std::vector<OverallocationRow> JobAnalyzer::overallocation_report() const {
  // Failure counts per job id.
  std::map<std::int64_t, std::size_t> failures_per_job;
  for (const auto& f : failures_) {
    if (f.event.job_id != logmodel::kNoJob) ++failures_per_job[f.event.job_id];
  }
  std::vector<const jobs::JobInfo*> sorted;
  for (const auto& job : table_.jobs()) sorted.push_back(&job);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->start < b->start; });

  std::vector<OverallocationRow> out;
  for (const auto* job : sorted) {
    OverallocationRow row;
    row.job_id = job->job_id;
    row.allocated = job->nodes.size();
    row.overallocated = !job->overallocated            ? 0
                        : job->overallocated_nodes > 0 ? job->overallocated_nodes
                                                       : job->nodes.size();
    const auto it = failures_per_job.find(job->job_id);
    row.failed = it == failures_per_job.end() ? 0 : it->second;
    out.push_back(row);
  }
  return out;
}

std::vector<AnalyzedFailure> JobAnalyzer::job_triggered_failures() const {
  std::vector<AnalyzedFailure> out;
  for (const auto& f : failures_) {
    if (f.event.job_id != logmodel::kNoJob && f.inference.application_triggered) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace hpcfail::core
