// Resident query daemon over the analysis engine.  Boots from an
// hpcfail.store.v1 snapshot, an on-disk corpus directory, or an in-memory
// simulated preset; optionally follows a live log tail; then answers
// line-delimited JSON requests (FORMATS.md "serve protocol") on stdin or a
// local unix-domain socket.  --client turns the same binary into the
// socket's client, so a scripted CI session needs no external tools.
// Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 structured
// boot error (snapshot/ingest).
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"
#include "parsers/snapshot.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using namespace hpcfail;

void usage(std::FILE* to) {
  std::fputs(
      "usage: hpcfail-serve [--snapshot F | --dir D | --preset S1..S5] [options]\n"
      "       hpcfail-serve --client PATH\n"
      "\n"
      "Boots a resident query daemon over the analysis engine and answers\n"
      "line-delimited JSON requests (see FORMATS.md, \"serve protocol\").\n"
      "Responses carry the epoch they were computed against; attached tails\n"
      "are polled before each request, so a query always sees every log\n"
      "line that landed before it was asked.\n"
      "\n"
      "boot source (exactly one):\n"
      "  --snapshot F       load an hpcfail.store.v1 snapshot\n"
      "  --dir D            stream-ingest a corpus directory\n"
      "  --preset NAME      simulate system S1..S5 in memory\n"
      "  --days N           simulated days for --preset (default 7)\n"
      "  --seed N           simulation seed for --preset (default 42)\n"
      "\n"
      "serving:\n"
      "  --stdio            serve requests on stdin/stdout (default)\n"
      "  --socket PATH      serve on a unix-domain socket instead\n"
      "  --client PATH      connect to a serving socket and forward stdin\n"
      "  --tail FILE        follow FILE as a live log tail\n"
      "  --tail-source S    tail's source grammar: console, messages,\n"
      "                     consumer, controller, erd (default console)\n"
      "  --tail-replay      read the tail from byte 0 instead of only the\n"
      "                     lines appended after boot\n"
      "  --window-days N    sliding analysis window (default 30)\n"
      "  --threads N        pool threads for analysis + request handling\n"
      "                     (default and 0: hardware concurrency)\n"
      "\n"
      "observability:\n"
      "  --metrics-out F    write hpcfail.metrics.v1 JSON to F on exit\n"
      "  --trace-out F      write spans to F (chrome://tracing JSON)\n"
      "  --fault SPEC       arm deterministic fault sites for repro:\n"
      "                     <site>[:<n>][,...] (also via HPCFAIL_FAULT env;\n"
      "                     --fault list prints the site inventory)\n"
      "\n"
      "--metrics-out, --trace-out and --fault also accept --opt=VALUE form.\n"
      "A boot that ends in a structured snapshot/ingest error exits 3.\n",
      to);
}

std::optional<platform::SystemName> preset_of(std::string_view name) {
  if (name == "S1") return platform::SystemName::S1;
  if (name == "S2") return platform::SystemName::S2;
  if (name == "S3") return platform::SystemName::S3;
  if (name == "S4") return platform::SystemName::S4;
  if (name == "S5") return platform::SystemName::S5;
  return std::nullopt;
}

std::optional<logmodel::LogSource> tail_source_of(std::string_view name) {
  if (name == "console") return logmodel::LogSource::Console;
  if (name == "messages") return logmodel::LogSource::Messages;
  if (name == "consumer") return logmodel::LogSource::Consumer;
  if (name == "controller") return logmodel::LogSource::Controller;
  if (name == "erd") return logmodel::LogSource::Erd;
  return std::nullopt;  // scheduler deliberately absent: not tailable
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string dir;
  std::optional<platform::SystemName> preset;
  int days = 7;
  std::uint64_t seed = 42;
  std::string socket_path;
  std::string client_path;
  std::string tail_path;
  logmodel::LogSource tail_source = logmodel::LogSource::Console;
  bool tail_replay = false;
  int window_days = 30;
  std::size_t threads = 0;
  std::string metrics_path;
  std::string trace_path;
  std::string fault_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcfail-serve: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--snapshot") {
      snapshot_path = value();
    } else if (arg == "--dir") {
      dir = value();
    } else if (arg == "--preset") {
      preset = preset_of(value());
      if (!preset) {
        std::fputs("hpcfail-serve: --preset expects S1..S5\n", stderr);
        return 2;
      }
    } else if (arg == "--days") {
      days = std::atoi(value());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--stdio") {
      // the default; accepted for explicit scripts
    } else if (arg == "--socket") {
      socket_path = value();
    } else if (arg == "--client") {
      client_path = value();
    } else if (arg == "--tail") {
      tail_path = value();
    } else if (arg == "--tail-source") {
      const auto source = tail_source_of(value());
      if (!source) {
        std::fputs(
            "hpcfail-serve: --tail-source expects console, messages, "
            "consumer, controller or erd\n",
            stderr);
        return 2;
      }
      tail_source = *source;
    } else if (arg == "--tail-replay") {
      tail_replay = true;
    } else if (arg == "--window-days") {
      window_days = std::atoi(value());
      if (window_days <= 0) {
        std::fputs("hpcfail-serve: --window-days expects a positive count\n", stderr);
        return 2;
      }
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--metrics-out") {
      metrics_path = value();
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(std::string_view("--metrics-out=").size());
    } else if (arg == "--trace-out") {
      trace_path = value();
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string_view("--trace-out=").size());
    } else if (arg == "--fault") {
      fault_spec = value();
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(std::string_view("--fault=").size());
    } else {
      std::fprintf(stderr, "hpcfail-serve: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (fault_spec == "list") {
    for (const auto site : util::FaultInjector::sites()) {
      std::printf("%.*s\n", static_cast<int>(site.size()), site.data());
    }
    return 0;
  }

  // Client mode: no boot, just a line pump against a running daemon.
  if (!client_path.empty()) {
    if (!snapshot_path.empty() || !dir.empty() || preset || !socket_path.empty()) {
      std::fputs("hpcfail-serve: --client excludes boot and --socket options\n",
                 stderr);
      return 2;
    }
    return serve::run_socket_client(client_path, std::cin, std::cout) ? 0 : 1;
  }

  const int boot_sources = static_cast<int>(!snapshot_path.empty()) +
                           static_cast<int>(!dir.empty()) +
                           static_cast<int>(preset.has_value());
  if (boot_sources != 1) {
    std::fputs(
        "hpcfail-serve: pass exactly one of --snapshot, --dir or --preset\n",
        stderr);
    usage(stderr);
    return 2;
  }

  util::MetricsRegistry registry;
  util::TraceRecorder recorder;
  util::FaultInjector injector;
  if (!metrics_path.empty()) util::install_metrics(&registry);
  if (!trace_path.empty()) util::install_trace(&recorder);
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("HPCFAIL_FAULT")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    try {
      injector.arm_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpcfail-serve: %s\n", e.what());
      return 2;
    }
    util::install_fault_injector(&injector);
  }

  try {
    util::ThreadPool pool(threads);

    // Boot: all three sources land in the same ParsedCorpus shape, which
    // is what makes snapshot-boot vs text-boot byte-identity testable.
    parsers::ParsedCorpus corpus;
    if (!snapshot_path.empty()) {
      auto loaded = parsers::load_snapshot(snapshot_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "hpcfail-serve: snapshot error: %s\n",
                     loaded.error->to_string().c_str());
        return 3;
      }
      corpus = std::move(loaded);
    } else if (!dir.empty()) {
      parsers::IngestOptions options;
      options.pool = &pool;
      auto ingested = parsers::ingest_files(dir, options);
      if (!ingested.ok()) {
        std::fprintf(stderr, "hpcfail-serve: ingest error: %s\n",
                     ingested.error->to_string().c_str());
        return 3;
      }
      corpus = std::move(ingested);
    } else {
      const auto sim =
          faultsim::Simulator(faultsim::scenario_preset(*preset, days, seed)).run();
      corpus = parsers::parse_corpus(loggen::build_corpus(sim), &pool);
    }

    serve::ServerConfig config;
    config.window = util::Duration::days(window_days);
    config.pool = &pool;
    serve::Server server(std::move(corpus), config);

    if (!tail_path.empty()) {
      std::uint64_t offset = 0;
      if (!tail_replay) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(tail_path, ec);
        if (!ec) offset = size;
      }
      server.attach_tail(tail_path, tail_source, offset);
    }

    // The banner goes to stderr: stdout is the protocol surface.
    std::fprintf(stderr,
                 "hpcfail-serve: %s ready (epoch 0, %zu boot alerts, window %d d%s)\n",
                 std::string(server.system_label()).c_str(),
                 server.boot_alerts().size(), window_days,
                 tail_path.empty() ? "" : ", tailing");

    serve::SessionOptions options;
    options.pool = pool.size() > 1 ? &pool : nullptr;
    options.poll_tail_each_request = !tail_path.empty();

    bool clean = true;
    if (!socket_path.empty()) {
      clean = serve::run_socket_server(server, socket_path, options);
    } else {
      (void)serve::run_session(server, std::cin, std::cout, options);
    }

    if (!metrics_path.empty()) {
      std::ofstream(metrics_path) << registry.to_json() << '\n';
    }
    if (!trace_path.empty()) {
      std::ofstream(trace_path) << recorder.to_chrome_json() << '\n';
    }
    if (!fault_spec.empty()) {
      for (const auto& line : injector.summary()) {
        std::fprintf(stderr, "hpcfail-serve: fault %s\n", line.c_str());
      }
    }
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpcfail-serve: %s\n", e.what());
    return 1;
  }
}
