# Empty dependencies file for job_postmortem.
# This may be replaced when dependencies are built.
