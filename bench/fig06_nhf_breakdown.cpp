// Fig 6: finer breakdown of node heartbeat faults over 7 weeks (S1).
// Paper: most NHFs in W1/W4 were failures, elsewhere more than 50%
// eventually failed; many failing NHFs trace to hardware MCEs; non-failing
// NHFs are powered-off nodes or skipped heartbeats.  Empirically ~43% of
// NHFs fail overall — far above the 2% of prior work.
#include "bench_common.hpp"
#include "core/external_correlator.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 6: NHF breakdown (S1, 7 weeks)");

  const auto p = bench::run_system(platform::SystemName::S1, 49, 606);
  const core::ExternalCorrelator correlator(p.parsed.store, p.failures);

  util::TextTable table({"Week", "NHFs", "failed", "of which MCE", "power-off",
                         "skipped-heartbeat", "failed share"});
  std::size_t total = 0, failed = 0, power_off = 0, skipped = 0;
  std::size_t weeks_majority_fail = 0;
  for (int week = 0; week < 7; ++week) {
    const util::TimePoint begin = p.sim.config.begin + util::Duration::days(week * 7);
    const auto b = correlator.nhf_breakdown(begin, begin + util::Duration::days(7));
    table.row()
        .cell("W" + std::to_string(week + 1))
        .cell(static_cast<std::int64_t>(b.total))
        .cell(static_cast<std::int64_t>(b.failed))
        .cell(static_cast<std::int64_t>(b.failed_mce))
        .cell(static_cast<std::int64_t>(b.power_off))
        .cell(static_cast<std::int64_t>(b.skipped_heartbeat))
        .pct(b.total ? static_cast<double>(b.failed) / static_cast<double>(b.total) : 0.0);
    total += b.total;
    failed += b.failed;
    power_off += b.power_off;
    skipped += b.skipped_heartbeat;
    if (b.total > 0 && b.failed * 2 >= b.total) ++weeks_majority_fail;
  }
  std::cout << table.render() << '\n';

  const double overall = total ? static_cast<double>(failed) / static_cast<double>(total) : 0;
  check.in_range("overall NHF->failure share (paper ~43%)", overall, 0.25, 0.70);
  check.greater("well above prior work's 2%", overall, 0.02);
  check.in_range("weeks where most NHFs fail (paper: majority of weeks)",
                 static_cast<double>(weeks_majority_fail), 2, 7);
  check.greater("non-failing NHFs are power-off or skipped heartbeats",
                static_cast<double>(power_off + skipped),
                0.9 * static_cast<double>(total - failed));
  return check.exit_code();
}
