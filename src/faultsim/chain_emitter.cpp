#include "faultsim/chain_emitter.hpp"

#include <algorithm>

namespace hpcfail::faultsim {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;
using logmodel::RootCause;
using logmodel::Severity;

ChainEmitter::ChainEmitter(const platform::Topology& topo, const FailureProcessConfig& config,
                           std::vector<LogRecord>& out, logmodel::SymbolTable& symbols,
                           GroundTruth& truth, util::Rng& rng)
    : topo_(topo), config_(config), out_(out), symbols_(symbols), truth_(truth), rng_(rng) {}

LogRecord ChainEmitter::base(util::TimePoint t, LogSource src, EventType type, Severity sev,
                             platform::NodeId node) const {
  LogRecord r;
  r.time = t;
  r.source = src;
  r.type = type;
  r.severity = sev;
  r.node = node;
  if (node.valid()) {
    r.blade = topo_.blade_of(node);
    r.cabinet = topo_.cabinet_of(node);
  }
  return r;
}

LogRecord ChainEmitter::blade_event(util::TimePoint t, LogSource src, EventType type,
                                    Severity sev, platform::BladeId blade) const {
  LogRecord r;
  r.time = t;
  r.source = src;
  r.type = type;
  r.severity = sev;
  r.blade = blade;
  r.cabinet = topo_.cabinet_of_blade(blade);
  return r;
}

util::Duration ChainEmitter::minutes_jitter(double lo, double hi) {
  return util::Duration::seconds(static_cast<std::int64_t>(rng_.uniform(lo, hi) * 60.0));
}

std::string ChainEmitter::emit_oops_with_trace(platform::NodeId node, util::TimePoint t,
                                               std::vector<std::string_view> modules,
                                               std::int64_t job_id) {
  LogRecord oops = base(t, LogSource::Console, EventType::KernelOops, Severity::Critical, node);
  oops.job_id = job_id;
  oops.detail = sym("BUG: unable to handle kernel paging request");
  push(std::move(oops));
  std::string lead_module;
  for (std::size_t i = 0; i < modules.size(); ++i) {
    LogRecord frame = base(t + util::Duration::milliseconds(static_cast<std::int64_t>(i) + 1),
                           LogSource::Console, EventType::CallTrace, Severity::Error, node);
    frame.job_id = job_id;
    frame.detail = sym(modules[i]);
    if (i == 0) lead_module = std::string(modules[i]);
    push(std::move(frame));
  }
  return lead_module;
}

const PlantedFailure& ChainEmitter::plant_failure(platform::NodeId node,
                                                  util::TimePoint fail_time, RootCause cause,
                                                  const jobs::Job* job) {
  PlantedFailure planted;
  planted.node = node;
  planted.blade = topo_.blade_of(node);
  planted.cabinet = topo_.cabinet_of(node);
  planted.fail_time = fail_time;
  planted.cause = cause;
  if (job != nullptr) {
    planted.job_id = job->job_id;
    planted.apid = job->apid;
  }
  const std::int64_t jid = job != nullptr ? job->job_id : logmodel::kNoJob;

  const util::Duration internal_lead = minutes_jitter(config_.internal_lead_min_minutes,
                                                      config_.internal_lead_max_minutes);
  util::TimePoint first_internal = fail_time - internal_lead;
  util::TimePoint first_external = fail_time;  // none unless the chain sets it
  bool has_external = false;

  // Heartbeat faults follow node death for chains that kill the kernel;
  // NHC-admindown chains (application-triggered) usually pass the
  // communication-level health checks, so NHFs are mostly absent there.
  auto emit_post_failure_nhf = [this, node, fail_time](double probability) {
    if (!rng_.bernoulli(probability)) return;
    LogRecord nhf = base(fail_time + minutes_jitter(0.3, 2.0), LogSource::Erd,
                         EventType::NodeHeartbeatFault, Severity::Error, node);
    nhf.detail = sym("node heartbeat fault: failed health test");
    push(std::move(nhf));
  };
  auto emit_shutdown = [this, node, fail_time, jid](EventType marker) {
    LogRecord down = base(fail_time, LogSource::Console, marker, Severity::Fatal, node);
    down.job_id = jid;
    down.detail = sym(marker == EventType::NodeHalt ? "node set to admindown"
                                                    : "anomalous shutdown");
    push(std::move(down));
  };
  auto emit_reboot = [this, node, fail_time] {
    LogRecord boot = base(fail_time + minutes_jitter(8.0, 45.0), LogSource::Console,
                          EventType::NodeBoot, Severity::Info, node);
    boot.detail = sym("node rebooted");
    push(std::move(boot));
  };

  switch (cause) {
    case RootCause::HardwareMce: {
      LogRecord hw = base(first_internal, LogSource::Console, EventType::HardwareError,
                          Severity::Error, node);
      hw.detail = sym("uncorrectable DIMM error");
      push(std::move(hw));
      LogRecord mce = base(fail_time - minutes_jitter(0.2, 1.5), LogSource::Console,
                           EventType::MachineCheckException, Severity::Critical, node);
      mce.detail = sym("Machine Check Exception: bank 4: memory read error");
      push(std::move(mce));
      if (rng_.bernoulli(0.3)) {
        LogRecord cpu = base(fail_time - minutes_jitter(0.1, 0.8), LogSource::Console,
                             EventType::CpuCorruption, Severity::Critical, node);
        cpu.detail = sym("processor context corrupt");
        push(std::move(cpu));
      }
      planted.stack_module = emit_oops_with_trace(
          node, fail_time - minutes_jitter(0.05, 0.3), {"mce_log", "do_machine_check"}, jid);
      LogRecord panic =
          base(fail_time, LogSource::Console, EventType::KernelPanic, Severity::Fatal, node);
      panic.detail = sym("Kernel panic - not syncing: Fatal machine check");
      push(std::move(panic));
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.85);
      break;
    }
    case RootCause::FailSlowHardware: {
      const util::Duration external_lead = minutes_jitter(config_.external_lead_min_minutes,
                                                          config_.external_lead_max_minutes);
      first_external = fail_time - external_lead;
      has_external = true;
      planted.fail_slow = true;
      // Rising ec_hw_error frequency across the lead window: sparse at the
      // start, dense near the failure (the fail-slow signature).
      const int bursts = static_cast<int>(rng_.uniform_int(5, 12));
      for (int i = 0; i < bursts; ++i) {
        const double frac =
            1.0 - std::pow(rng_.uniform(), 2.0);  // biased toward the failure
        const auto offset = util::Duration::microseconds(
            static_cast<std::int64_t>(static_cast<double>(external_lead.usec) * frac));
        LogRecord hw = blade_event(fail_time - external_lead + offset, LogSource::Erd,
                                   EventType::EcHwError, Severity::Warning, planted.blade);
        hw.node = node;
        hw.detail = sym("ec_hw_error: corrected memory error threshold");
        push(std::move(hw));
      }
      if (rng_.bernoulli(0.7)) {
        LogRecord link = blade_event(first_external + minutes_jitter(0.5, 4.0), LogSource::Erd,
                                     EventType::LinkError, Severity::Warning, planted.blade);
        link.detail = sym("HSN link degraded");
        push(std::move(link));
      }
      if (rng_.bernoulli(0.8)) {
        LogRecord nvf = base(fail_time - minutes_jitter(1.0, 9.0), LogSource::Erd,
                             EventType::NodeVoltageFault, Severity::Error, node);
        nvf.detail = sym("node voltage fault: VDD out of range");
        push(std::move(nvf));
      }
      if (rng_.bernoulli(0.5)) {
        LogRecord sedc =
            blade_event(fail_time - minutes_jitter(2.0, 15.0), LogSource::Controller,
                        EventType::SedcVoltageWarning, Severity::Warning, planted.blade);
        sedc.value = 11.2;
        sedc.detail = sym("SEDC voltage below minimum");
        push(std::move(sedc));
      }
      LogRecord hw = base(first_internal, LogSource::Console, EventType::HardwareError,
                          Severity::Error, node);
      hw.detail = sym("correctable memory errors exceeding threshold");
      push(std::move(hw));
      LogRecord mce = base(fail_time - minutes_jitter(0.2, 1.2), LogSource::Console,
                           EventType::MachineCheckException, Severity::Critical, node);
      mce.detail = sym("MCE: memory controller read error");
      push(std::move(mce));
      planted.stack_module = emit_oops_with_trace(
          node, fail_time - minutes_jitter(0.05, 0.3), {"mce_log", "memory_failure"}, jid);
      LogRecord panic =
          base(fail_time, LogSource::Console, EventType::KernelPanic, Severity::Fatal, node);
      panic.detail = sym("Kernel panic - not syncing: hardware failure");
      push(std::move(panic));
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.85);
      break;
    }
    case RootCause::KernelBug: {
      const EventType trigger =
          rng_.bernoulli(0.6) ? EventType::InvalidOpcode : EventType::CpuStall;
      LogRecord trig = base(first_internal, LogSource::Console, trigger, Severity::Error, node);
      trig.job_id = jid;
      trig.detail = sym(trigger == EventType::InvalidOpcode
                            ? "invalid opcode: 0000 [#1] SMP"
                            : "INFO: rcu_sched self-detected stall");
      push(std::move(trig));
      planted.stack_module =
          emit_oops_with_trace(node, fail_time - minutes_jitter(0.1, 0.9),
                               {"rwsem_down_failed", "schedule_timeout"}, jid);
      LogRecord panic =
          base(fail_time, LogSource::Console, EventType::KernelPanic, Severity::Fatal, node);
      panic.job_id = jid;
      panic.detail = sym("Kernel panic - not syncing: Fatal exception");
      push(std::move(panic));
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.35);
      break;
    }
    case RootCause::LustreBug: {
      const int errors = static_cast<int>(rng_.uniform_int(2, 6));
      for (int i = 0; i < errors; ++i) {
        LogRecord le = base(first_internal + minutes_jitter(0.0, 1.5), LogSource::Console,
                            EventType::LustreError, Severity::Error, node);
        le.job_id = jid;
        le.detail = sym("LustreError: ost_write operation failed");
        push(std::move(le));
      }
      if (rng_.bernoulli(0.5)) {
        LogRecord dvs = base(fail_time - minutes_jitter(0.5, 2.0), LogSource::Console,
                             EventType::DvsError, Severity::Error, node);
        dvs.job_id = jid;
        dvs.detail = sym("DVS: file system request timed out");
        push(std::move(dvs));
      }
      LogRecord lbug = base(fail_time - minutes_jitter(0.2, 1.0), LogSource::Console,
                            EventType::LustreBug, Severity::Critical, node);
      lbug.job_id = jid;
      lbug.detail = sym("LBUG: ASSERTION failed: race in thread spawn");
      push(std::move(lbug));
      planted.stack_module = emit_oops_with_trace(
          node, fail_time - minutes_jitter(0.05, 0.3),
          {rng_.bernoulli(0.5) ? "dvs_ipc_mesg" : "ldlm_bl", "ptlrpc_main"}, jid);
      emit_shutdown(rng_.bernoulli(0.6) ? EventType::NodeHalt : EventType::NodeShutdown);
      emit_post_failure_nhf(0.3);
      break;
    }
    case RootCause::MemoryExhaustion: {
      const int allocs = static_cast<int>(rng_.uniform_int(1, 3));
      for (int i = 0; i < allocs; ++i) {
        LogRecord pa = base(first_internal + minutes_jitter(0.0, 1.0), LogSource::Console,
                            EventType::PageAllocationFailure, Severity::Error, node);
        pa.job_id = jid;
        pa.detail = sym("page allocation failure: order:4");
        push(std::move(pa));
      }
      LogRecord oom = base(fail_time - minutes_jitter(0.5, 3.0), LogSource::Console,
                           EventType::OomKill, Severity::Critical, node);
      oom.job_id = jid;
      oom.detail = sym(job != nullptr ? "Out of memory: kill process " + job->app_name
                                      : std::string("Out of memory: kill process"));
      push(std::move(oom));
      planted.stack_module = emit_oops_with_trace(
          node, fail_time - minutes_jitter(0.1, 0.5),
          {rng_.bernoulli(0.5) ? "xpmem" : "sleep_on_page", "dvsipc", "lustre"}, jid);
      if (rng_.bernoulli(0.6)) {
        LogRecord nhc = base(fail_time - minutes_jitter(0.05, 0.4), LogSource::Messages,
                             EventType::NhcTestFail, Severity::Error, node);
        nhc.job_id = jid;
        nhc.detail = sym("NHC: memory test failed");
        push(std::move(nhc));
      }
      emit_shutdown(EventType::NodeHalt);
      emit_post_failure_nhf(0.25);
      break;
    }
    case RootCause::AppAbnormalExit: {
      LogRecord app = base(first_internal, LogSource::Messages, EventType::AppExitAbnormal,
                           Severity::Error, node);
      app.job_id = jid;
      app.detail = sym(job != nullptr ? "abnormal exit of application " + job->app_name
                                      : std::string("abnormal application exit"));
      push(std::move(app));
      const int tests = static_cast<int>(rng_.uniform_int(1, 3));
      for (int i = 0; i < tests; ++i) {
        LogRecord nhc = base(first_internal + minutes_jitter(0.1, 1.5), LogSource::Messages,
                             EventType::NhcTestFail, Severity::Error, node);
        nhc.job_id = jid;
        nhc.detail = sym("NHC: application exit test failed");
        push(std::move(nhc));
      }
      LogRecord suspect = base(fail_time - minutes_jitter(0.2, 1.0), LogSource::Messages,
                               EventType::NhcSuspectMode, Severity::Warning, node);
      suspect.job_id = jid;
      suspect.detail = sym("NHC: node placed in suspect mode");
      push(std::move(suspect));
      emit_shutdown(EventType::NodeHalt);
      emit_post_failure_nhf(0.15);
      break;
    }
    case RootCause::BiosUnknown: {
      LogRecord bios = base(first_internal, LogSource::Console, EventType::BiosError,
                            Severity::Error, node);
      bios.detail = sym("type:2; severity:80; class:3; subclass:D; operation:2");
      push(std::move(bios));
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.6);
      break;
    }
    case RootCause::L0SysdMceUnknown: {
      LogRecord l0 = base(first_internal, LogSource::Controller, EventType::L0SysdMce,
                          Severity::Error, node);
      l0.detail = sym("L0_sysd_mce: memory error reported by blade controller");
      push(std::move(l0));
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.6);
      break;
    }
    case RootCause::OperatorError:
    case RootCause::Unknown:
    case RootCause::kCount: {
      // Bare shutdown with no prior anomaly symptoms (Observation 9).
      first_internal = fail_time;
      emit_shutdown(EventType::NodeShutdown);
      emit_post_failure_nhf(0.5);
      break;
    }
  }

  emit_reboot();
  planted.first_internal_indicator = first_internal;
  planted.first_external_indicator = first_external;
  planted.has_external_indicator = has_external;
  truth_.failures.push_back(std::move(planted));
  return truth_.failures.back();
}

void ChainEmitter::emit_benign_nhf(platform::NodeId node, util::TimePoint t, bool power_off) {
  LogRecord nhf = base(t, LogSource::Erd, EventType::NodeHeartbeatFault, Severity::Warning, node);
  nhf.detail = sym(power_off ? "node heartbeat fault: node powered off"
                             : "node heartbeat fault: skipped heartbeat");
  push(std::move(nhf));
  if (power_off) {
    ++truth_.benign.nhf_power_off;
  } else {
    ++truth_.benign.nhf_skipped_heartbeat;
  }
}

void ChainEmitter::emit_benign_nvf(platform::NodeId node, util::TimePoint t) {
  LogRecord nvf = base(t, LogSource::Erd, EventType::NodeVoltageFault, Severity::Warning, node);
  nvf.detail = sym("node voltage fault: transient rail dip");
  push(std::move(nvf));
  ++truth_.benign.nvf_benign;
}

void ChainEmitter::emit_sedc_warning(platform::BladeId blade, util::TimePoint t,
                                     EventType warning, double value) {
  LogRecord w = blade_event(t, LogSource::Controller, warning, Severity::Warning, blade);
  w.value = value;
  w.detail = sym("ec_sedc_warning: reading outside allowed band");
  push(std::move(w));
  ++truth_.benign.sedc_warnings;
}

void ChainEmitter::emit_cabinet_fault(platform::CabinetId cabinet, util::TimePoint t) {
  static constexpr EventType kKinds[] = {
      EventType::CabinetPowerFault,  EventType::CabinetMicroFault,
      EventType::CommunicationFault, EventType::ModuleHealthFault,
      EventType::RpmFault,           EventType::EcbFault,
      EventType::CabinetSensorCheck, EventType::GetSensorReadingFailed,
  };
  LogRecord f;
  f.time = t;
  f.source = LogSource::Controller;
  f.type = kKinds[static_cast<std::size_t>(rng_.uniform_int(0, 7))];
  f.severity = Severity::Warning;
  f.cabinet = cabinet;
  f.detail = sym("cabinet controller fault");
  push(std::move(f));
  ++truth_.benign.cabinet_faults;
}

void ChainEmitter::emit_benign_node_errors(platform::NodeId node, util::TimePoint t,
                                           EventType type) {
  const int count = static_cast<int>(rng_.uniform_int(1, 5));
  for (int i = 0; i < count; ++i) {
    LogRecord e = base(t + minutes_jitter(0.0, 40.0), LogSource::Console, type,
                       Severity::Warning, node);
    switch (type) {
      case EventType::HardwareError:
        e.detail = sym("correctable memory error");
        break;
      case EventType::MachineCheckException:
        e.detail = sym("MCE log trigger: corrected error count exceeded threshold");
        break;
      case EventType::LustreError:
        e.detail = sym("LustreError: page fault lock timeout");
        break;
      default:
        e.detail = sym("transient error");
        break;
    }
    push(std::move(e));
  }
  switch (type) {
    case EventType::HardwareError: ++truth_.benign.node_hw_errors; break;
    case EventType::MachineCheckException: ++truth_.benign.node_mce_triggers; break;
    case EventType::LustreError: ++truth_.benign.node_lustre_errors; break;
    default: break;
  }
}

void ChainEmitter::emit_hung_task(platform::NodeId node, util::TimePoint t) {
  LogRecord hung = base(t, LogSource::Console, EventType::HungTaskTimeout, Severity::Warning,
                        node);
  hung.detail = sym("INFO: task blocked for more than 120 seconds");
  push(std::move(hung));
  LogRecord frame = base(t + util::Duration::milliseconds(2), LogSource::Console,
                         EventType::CallTrace, Severity::Warning, node);
  frame.detail = sym("io_schedule");
  push(std::move(frame));
  LogRecord frame2 = base(t + util::Duration::milliseconds(3), LogSource::Console,
                          EventType::CallTrace, Severity::Warning, node);
  frame2.detail = sym("sleep_on_page");
  push(std::move(frame2));
  ++truth_.benign.hung_task_nodes;
}

void ChainEmitter::emit_background_ec_hw_error(platform::BladeId blade, util::TimePoint t) {
  // Mostly ec_hw_errors; occasionally other benign ERD chatter so that the
  // full Table III event vocabulary appears in healthy logs too.
  const double roll = rng_.uniform();
  EventType type = EventType::EcHwError;
  std::string_view detail = "ec_hw_error: transient corrected error";
  if (roll > 0.85) {
    type = EventType::EcHeartbeatStop;
    detail = "heartbeat stream stopped and resumed";
  } else if (roll > 0.70) {
    type = EventType::EcL0Failed;
    detail = "blade controller transient failure";
  }
  LogRecord hw = blade_event(t, LogSource::Erd, type, Severity::Warning, blade);
  hw.detail = sym(detail);
  push(std::move(hw));
}

void ChainEmitter::emit_benign_oom(platform::NodeId node, util::TimePoint t) {
  LogRecord oom = base(t, LogSource::Console, EventType::OomKill, Severity::Warning, node);
  oom.detail = sym("Out of memory: kill process user_app");
  push(std::move(oom));
  (void)emit_oops_with_trace(node, t + util::Duration::seconds(1),
                             {"xpmem", "dvsipc"}, logmodel::kNoJob);
}

void ChainEmitter::emit_benign_sw_error(platform::NodeId node, util::TimePoint t) {
  const bool segv = rng_.bernoulli(0.5);
  LogRecord e = base(t, LogSource::Console,
                     segv ? EventType::SegFault : EventType::PageAllocationFailure,
                     Severity::Warning, node);
  e.detail = sym(segv ? "user binary fault" : "page allocation failure: order:2");
  push(std::move(e));
}

void ChainEmitter::emit_multi_error_episode(platform::NodeId node, util::TimePoint t,
                                            bool with_external) {
  LogRecord hw = base(t, LogSource::Console, EventType::HardwareError, Severity::Warning,
                      node);
  hw.detail = sym("correctable memory error burst");
  push(std::move(hw));
  LogRecord mce = base(t + minutes_jitter(1.0, 6.0), LogSource::Console,
                       EventType::MachineCheckException, Severity::Warning, node);
  mce.detail = sym("MCE log trigger: corrected error threshold");
  push(std::move(mce));
  if (with_external) {
    LogRecord ec = blade_event(t - minutes_jitter(1.0, 10.0), LogSource::Erd,
                               EventType::EcHwError, Severity::Warning,
                               topo_.blade_of(node));
    ec.node = node;
    ec.detail = sym("ec_hw_error: corrected error reported");
    push(std::move(ec));
  }
}

void ChainEmitter::emit_lane_degrade(platform::BladeId blade, util::TimePoint t,
                                     bool failover_ok) {
  LogRecord degrade =
      blade_event(t, LogSource::Erd, EventType::LaneDegrade, Severity::Warning, blade);
  degrade.detail = sym("HSN lane degraded: bandwidth reduced");
  push(std::move(degrade));
  if (failover_ok) {
    LogRecord failover = blade_event(t + minutes_jitter(0.05, 0.5), LogSource::Erd,
                                     EventType::LinkFailover, Severity::Info, blade);
    failover.detail = sym("traffic re-routed");
    push(std::move(failover));
    return;
  }
  LogRecord failed = blade_event(t + minutes_jitter(0.05, 0.5), LogSource::Erd,
                                 EventType::LinkFailoverFailed, Severity::Error, blade);
  failed.detail = sym("failover did not complete");
  push(std::move(failed));
  // The blade's nodes see interconnect errors until routing recovers.
  for (const auto node : topo_.nodes_on_blade(blade)) {
    if (!rng_.bernoulli(0.6)) continue;
    LogRecord err = base(t + minutes_jitter(0.2, 3.0), LogSource::Console,
                         EventType::InterconnectError, Severity::Error, node);
    err.detail = sym("lane failover incomplete");
    push(std::move(err));
  }
}

void ChainEmitter::emit_intended_shutdown(platform::NodeId node, util::TimePoint t,
                                          util::Duration downtime) {
  LogRecord down = base(t, LogSource::Console, EventType::NodeShutdown, Severity::Info, node);
  down.detail = sym("scheduled maintenance shutdown");
  push(std::move(down));
  LogRecord boot =
      base(t + downtime, LogSource::Console, EventType::NodeBoot, Severity::Info, node);
  boot.detail = sym("node rebooted");
  push(std::move(boot));
  ++truth_.benign.intended_shutdown_nodes;
}

void ChainEmitter::emit_swo(const std::vector<platform::NodeId>& nodes, util::TimePoint t) {
  ++truth_.benign.swo_events;
  for (const auto node : nodes) {
    // The file-system incident is visible on every node before it goes down.
    LogRecord le = base(t - minutes_jitter(0.5, 4.0), LogSource::Console,
                        EventType::LustreError, Severity::Critical, node);
    le.detail = sym("LustreError: MDS connection lost");
    push(std::move(le));
    LogRecord down = base(t + minutes_jitter(0.0, 3.0), LogSource::Console,
                          EventType::NodeShutdown, Severity::Fatal, node);
    down.detail = sym("anomalous shutdown");
    push(std::move(down));
    LogRecord boot = base(t + minutes_jitter(60.0, 180.0), LogSource::Console,
                          EventType::NodeBoot, Severity::Info, node);
    boot.detail = sym("node rebooted");
    push(std::move(boot));
    ++truth_.benign.swo_shutdown_nodes;
  }
}

void ChainEmitter::emit_job_records(const jobs::Job& job) {
  LogRecord start;
  start.time = job.start;
  start.source = LogSource::Scheduler;
  start.type = EventType::JobStart;
  start.severity = Severity::Info;
  start.job_id = job.job_id;
  start.detail = sym(job.app_name);
  push(std::move(start));

  LogRecord end;
  end.time = job.end;
  end.source = LogSource::Scheduler;
  end.type = EventType::JobEnd;
  end.severity = job.failed() ? Severity::Error : Severity::Info;
  end.job_id = job.job_id;
  end.value = job.exit_code();
  end.detail = sym(to_string(job.outcome));
  push(std::move(end));

  if (job.outcome == jobs::JobOutcome::UserCancelled) {
    LogRecord cancel;
    cancel.time = job.end - util::Duration::seconds(1);
    cancel.source = LogSource::Scheduler;
    cancel.type = EventType::JobCancelled;
    cancel.severity = Severity::Info;
    cancel.job_id = job.job_id;
    cancel.detail = sym("scancel by user " + job.user);
    push(std::move(cancel));
  }
  if (job.outcome == jobs::JobOutcome::Overallocated) {
    LogRecord over;
    over.time = job.start + util::Duration::seconds(30);
    over.source = LogSource::Scheduler;
    over.type = EventType::JobOverallocation;
    over.severity = Severity::Warning;
    over.job_id = job.job_id;
    over.detail = sym("allocated memory exceeds node capacity");
    push(std::move(over));
  }
  // Epilogue runs on job end (the scheduler cleaning the nodes).
  LogRecord epi;
  epi.time = job.end + util::Duration::seconds(5);
  epi.source = LogSource::Scheduler;
  epi.type = EventType::EpilogueRun;
  epi.severity = Severity::Info;
  epi.job_id = job.job_id;
  epi.detail = sym("epilogue complete");
  push(std::move(epi));
}

}  // namespace hpcfail::faultsim
