// Fig 8: the benign SEDC population, S1, one week.  Paper: unique blades
// with SEDC warnings vary between 5 and 226; the cumulative count of blades
// and cabinets experiencing faults ranges 24-240 (+/-21) per week; blade
// counts for health faults mostly exceed the warning blade counts at the
// cabinet level... and none of it pinpoints failures (Observation 3).
#include "bench_common.hpp"
#include "core/benign_faults.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 8: SEDC warning/fault populations (S1, 4 weeks)");

  const auto p = bench::run_system(platform::SystemName::S1, 28, 808);
  const core::BenignFaultAnalyzer benign(p.parsed.store);

  util::TextTable table({"Week", "blades w/ warnings", "blades w/ faults",
                         "cabinets w/ faults", "warnings", "faults"});
  double min_warn_blades = 1e9, max_warn_blades = 0;
  double min_cum = 1e9, max_cum = 0;
  for (int week = 0; week < 4; ++week) {
    const util::TimePoint begin = p.sim.config.begin + util::Duration::days(week * 7);
    const auto pop = benign.sedc_population(begin, begin + util::Duration::days(7));
    table.row()
        .cell("W" + std::to_string(week + 1))
        .cell(static_cast<std::int64_t>(pop.blades_with_warnings))
        .cell(static_cast<std::int64_t>(pop.blades_with_faults))
        .cell(static_cast<std::int64_t>(pop.cabinets_with_faults))
        .cell(static_cast<std::int64_t>(pop.warning_count))
        .cell(static_cast<std::int64_t>(pop.fault_count));
    min_warn_blades = std::min(min_warn_blades, static_cast<double>(pop.blades_with_warnings));
    max_warn_blades = std::max(max_warn_blades, static_cast<double>(pop.blades_with_warnings));
    const double cum =
        static_cast<double>(pop.blades_with_faults + pop.cabinets_with_faults);
    min_cum = std::min(min_cum, cum);
    max_cum = std::max(max_cum, cum);
  }
  std::cout << table.render() << '\n';

  check.in_range("unique warning-blade count per week (paper 5-226)", min_warn_blades, 5,
                 226);
  check.in_range("unique warning-blade count per week (paper 5-226)", max_warn_blades, 5,
                 226);
  check.in_range("cumulative faulty blades+cabinets per week (paper 24-240)", min_cum, 24,
                 240);
  check.in_range("cumulative faulty blades+cabinets per week (paper 24-240)", max_cum, 24,
                 240);
  return check.exit_code();
}
