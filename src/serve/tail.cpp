#include "serve/tail.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "util/fault.hpp"
#include "util/metrics.hpp"

namespace hpcfail::serve {

std::string TailError::to_string() const {
  return file + " at offset " + std::to_string(offset) + ": " + message;
}

TailReader::TailReader(std::string path, logmodel::LogSource source,
                       std::uint64_t offset)
    : path_(std::move(path)), source_(source), offset_(offset) {}

TailReader::Poll TailReader::poll() {
  Poll out;
  std::error_code ec;
  if (!std::filesystem::exists(path_, ec) || ec) {
    return out;  // writer has not created the file yet
  }

  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    out.error = TailError{path_, offset_, "cannot open tail file"};
    return out;
  }
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) {
    out.error = TailError{path_, offset_, "cannot seek to tail offset"};
    return out;
  }

  std::string chunk;
  char buf[std::size_t{64} * 1024];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    if (HPCFAIL_FAULT_SITE("serve.tail.read_io")) in.setstate(std::ios::badbit);
    if (in.bad()) {
      out.error = TailError{path_, offset_ + chunk.size(),
                            "I/O error while reading the tail"};
      if (util::MetricsRegistry* reg = util::metrics()) {
        reg->counter("hpcfail.serve.tail_errors").increment();
      }
      return out;  // offset_ unchanged; the next poll retries from it
    }
    chunk.append(buf, static_cast<std::size_t>(in.gcount()));
  }

  // Consume only up to the last newline; a trailing partial line stays in
  // the file (offset does not move past it) until its newline arrives.
  const std::size_t last_nl = chunk.rfind('\n');
  if (last_nl == std::string::npos) return out;
  std::size_t begin = 0;
  while (begin <= last_nl) {
    const std::size_t end = chunk.find('\n', begin);
    std::size_t len = end - begin;
    if (len > 0 && chunk[begin + len - 1] == '\r') --len;  // CRLF writers
    out.lines.emplace_back(chunk, begin, len);
    begin = end + 1;
  }
  offset_ += last_nl + 1;
  return out;
}

}  // namespace hpcfail::serve
