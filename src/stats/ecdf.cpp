#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

namespace hpcfail::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::fraction_at_or_below(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const noexcept {
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t n = sorted_.size();
  if (n == 1) return sorted_[0];
  const double h = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double Ecdf::ks_distance(const Ecdf& other) const noexcept {
  double sup = 0.0;
  for (double x : sorted_) {
    sup = std::max(sup, std::abs(fraction_at_or_below(x) - other.fraction_at_or_below(x)));
  }
  for (double x : other.sorted_) {
    sup = std::max(sup, std::abs(fraction_at_or_below(x) - other.fraction_at_or_below(x)));
  }
  return sup;
}

}  // namespace hpcfail::stats
