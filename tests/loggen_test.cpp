// Unit and property tests for src/loggen: node-list compression, the line
// renderer grammars, and corpus/manifest round trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "loggen/nid_ranges.hpp"
#include "loggen/renderer.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace hpcfail::loggen {
namespace {

// ----------------------------------------------------------- nid ranges ----

TEST(NidRangeTest, CompressKnownForms) {
  using platform::NodeId;
  EXPECT_EQ(compress_node_list({NodeId{42}}, platform::NamingScheme::CrayCname), "nid00042");
  EXPECT_EQ(compress_node_list({NodeId{1}, NodeId{2}, NodeId{3}},
                               platform::NamingScheme::CrayCname),
            "nid[00001-00003]");
  EXPECT_EQ(compress_node_list({NodeId{7}, NodeId{1}, NodeId{2}, NodeId{7}},
                               platform::NamingScheme::CrayCname),
            "nid[00001-00002,00007]");
  EXPECT_EQ(compress_node_list({NodeId{3}}, platform::NamingScheme::Hostname), "node0003");
  EXPECT_EQ(compress_node_list({}, platform::NamingScheme::CrayCname), "nid[]");
}

TEST(NidRangeTest, ExpandKnownForms) {
  const auto single = expand_node_list("nid00042");
  ASSERT_TRUE(single.has_value());
  ASSERT_EQ(single->size(), 1u);
  EXPECT_EQ((*single)[0].value, 42u);
  const auto list = expand_node_list("nid[00001-00003,00007]");
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), 4u);
  const auto empty = expand_node_list("nid[]");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(NidRangeTest, ExpandRejectsMalformed) {
  for (const char* bad : {"", "xid[001]", "nid[", "nid[1-", "nid[3-1]", "nid[1,,2]",
                          "nid[1-2", "nid[a-b]", "nid[00001-99999999]"}) {
    EXPECT_FALSE(expand_node_list(bad).has_value()) << bad;
  }
}

class NidRangeRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NidRangeRoundTrip, RandomSetsRoundTrip) {
  util::Rng rng(GetParam());
  std::set<std::uint32_t> nodes;
  const auto count = rng.uniform_int(1, 200);
  for (std::int64_t i = 0; i < count; ++i) {
    nodes.insert(static_cast<std::uint32_t>(rng.uniform_int(0, 6399)));
  }
  std::vector<platform::NodeId> input;
  for (const auto n : nodes) input.push_back(platform::NodeId{n});
  // Shuffle to prove order independence.
  std::vector<platform::NodeId> shuffled = input;
  rng.shuffle(shuffled);

  const std::string compressed =
      compress_node_list(shuffled, platform::NamingScheme::CrayCname);
  const auto expanded = expand_node_list(compressed);
  ASSERT_TRUE(expanded.has_value()) << compressed;
  ASSERT_EQ(expanded->size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_EQ((*expanded)[i].value, input[i].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NidRangeRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ------------------------------------------------------------- renderer ----

TEST(RendererTest, ConsoleLineGrammar) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S1).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Slurm, symbols);
  logmodel::LogRecord r;
  r.time = util::make_time(2015, 3, 2, 14, 5, 1, 123456);
  r.source = logmodel::LogSource::Console;
  r.type = logmodel::EventType::KernelPanic;
  r.node = platform::NodeId{42};
  r.blade = topo.blade_of(r.node);
  r.job_id = 100001;
  r.detail = symbols.intern("Fatal machine check");
  const std::string line = renderer.render(r);
  EXPECT_TRUE(util::starts_with(line, "2015-03-02T14:05:01.123456 nid00042 "));
  EXPECT_NE(line.find("kernel: Kernel panic - not syncing: Fatal machine check"),
            std::string::npos);
  EXPECT_TRUE(util::ends_with(line, "jobid=100001"));
  EXPECT_NE(line.find(topo.cname_of(r.node).to_string()), std::string::npos);
}

TEST(RendererTest, HostnameSchemeOmitsCname) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S5).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Slurm, symbols);
  logmodel::LogRecord r;
  r.time = util::make_time(2015, 3, 2);
  r.source = logmodel::LogSource::Console;
  r.type = logmodel::EventType::OomKill;
  r.node = platform::NodeId{3};
  r.detail = symbols.intern("Out of memory: kill process matlab");
  const std::string line = renderer.render(r);
  EXPECT_NE(line.find(" node0003 kernel: "), std::string::npos);
  EXPECT_EQ(line.find(" c0-"), std::string::npos);
}

TEST(RendererTest, ErdLineCarriesEventAndNode) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S1).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Slurm, symbols);
  logmodel::LogRecord r;
  r.time = util::make_time(2015, 3, 2);
  r.source = logmodel::LogSource::Erd;
  r.type = logmodel::EventType::NodeHeartbeatFault;
  r.node = platform::NodeId{7};
  r.blade = topo.blade_of(r.node);
  r.detail = symbols.intern("node heartbeat fault: failed health test");
  const std::string line = renderer.render(r);
  EXPECT_NE(line.find("ev=ec_node_failed"), std::string::npos);
  EXPECT_NE(line.find("node=nid00007"), std::string::npos);
  EXPECT_NE(line.find("src=c0-0c0s1n3"), std::string::npos);
}

TEST(RendererTest, JobLinesContainAllocationAndEnd) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S1).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Slurm, symbols);
  jobs::Job job;
  job.job_id = 100500;
  job.apid = 1005007;
  job.user = "alice";
  job.app_name = "vasp";
  job.start = util::make_time(2015, 3, 2, 8);
  job.end = util::make_time(2015, 3, 2, 10);
  job.mem_per_node_gb = 28.0;
  job.nodes = {platform::NodeId{0}, platform::NodeId{1}, platform::NodeId{5}};
  job.outcome = jobs::JobOutcome::Completed;
  const auto lines = renderer.render_job_lines(job);
  ASSERT_EQ(lines.size(), 3u);  // allocate, end, epilogue
  EXPECT_NE(lines[0].text.find("NodeList=nid[00000-00001,00005]"), std::string::npos);
  EXPECT_NE(lines[0].text.find("NodeCnt=3"), std::string::npos);
  EXPECT_NE(lines[1].text.find("ExitCode=0:0"), std::string::npos);
  EXPECT_NE(lines[2].text.find("epilog complete"), std::string::npos);
  EXPECT_EQ(lines[0].time.usec, job.start.usec);
  EXPECT_EQ(lines[1].time.usec, job.end.usec);
}

TEST(RendererTest, TorqueDialect) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S2).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Torque, symbols);
  jobs::Job job;
  job.job_id = 4242;
  job.user = "bob";
  job.start = util::make_time(2015, 3, 2, 8);
  job.end = job.start + util::Duration::hours(1);
  job.nodes = {platform::NodeId{0}};
  job.outcome = jobs::JobOutcome::UserCancelled;
  const auto lines = renderer.render_job_lines(job);
  ASSERT_EQ(lines.size(), 4u);  // run, delete, exit, epilogue
  EXPECT_TRUE(util::starts_with(lines[0].text, "03/02/2015 08:00:00;0008;PBS_Server;Job;"
                                               "4242.sdb;Job Run "));
  EXPECT_NE(lines[1].text.find("Job deleted by user bob"), std::string::npos);
  EXPECT_NE(lines[2].text.find("Exit_status=130"), std::string::npos);
  EXPECT_NE(lines[3].text.find("Epilogue complete"), std::string::npos);
}

/// Golden-format lines: the exact raw text per event type.  Guards the
/// grammar against accidental drift — the parsers and any external tooling
/// depend on these byte-for-byte.
TEST(RendererGoldenTest, ExactLines) {
  const platform::Topology topo(platform::system_preset(platform::SystemName::S1).topology);
  logmodel::SymbolTable symbols;
  const LogRenderer renderer(topo, platform::SchedulerKind::Slurm, symbols);
  const util::TimePoint t = util::make_time(2015, 3, 2, 14, 5, 1, 123456);

  auto record = [&topo, &symbols, t](logmodel::LogSource src, logmodel::EventType type,
                                   std::string_view detail, double value = 0.0) {
    logmodel::LogRecord r;
    r.time = t;
    r.source = src;
    r.type = type;
    r.node = platform::NodeId{42};
    r.blade = topo.blade_of(r.node);
    r.cabinet = topo.cabinet_of(r.node);
    r.detail = symbols.intern(detail);
    r.value = value;
    return r;
  };

  using logmodel::EventType;
  using logmodel::LogSource;
  EXPECT_EQ(renderer.render(record(LogSource::Console, EventType::MachineCheckException,
                                   "bank 4")),
            "2015-03-02T14:05:01.123456 nid00042 c0-0c0s10n2 kernel: mce: [Hardware "
            "Error]: Machine check events logged: bank 4");
  EXPECT_EQ(renderer.render(record(LogSource::Console, EventType::CallTrace, "mce_log")),
            "2015-03-02T14:05:01.123456 nid00042 c0-0c0s10n2 kernel:  "
            "[<ffffffff81234567>] mce_log+0x1a2/0x400");
  EXPECT_EQ(renderer.render(record(LogSource::Messages, EventType::NhcTestFail,
                                   "NHC: memory test failed")),
            "Mar  2 14:05:01 nid00042 nhc[2114]: NHC: memory test failed");
  EXPECT_EQ(renderer.render(record(LogSource::Erd, EventType::NodeVoltageFault,
                                   "node voltage fault: VDD out of range")),
            "2015-03-02T14:05:01.123456 erd ev=ec_node_voltage_fault src=c0-0c0s10n2 "
            "node=nid00042 node voltage fault: VDD out of range");
  logmodel::LogRecord reading =
      record(LogSource::Controller, EventType::SedcReading, "CpuTemperature", 40.125);
  EXPECT_EQ(renderer.render(reading),
            "2015-03-02T14:05:01.123456 c0-0c0s10n2 cc: sedc: CpuTemperature value=40.125");
}

// --------------------------------------------------------------- corpus ----

TEST(CorpusTest, ManifestRoundTrip) {
  Corpus corpus;
  corpus.system = platform::system_preset(platform::SystemName::S3);
  corpus.begin = util::make_time(2015, 3, 2);
  corpus.days = 14;
  const std::string manifest = manifest_to_string(corpus);
  const Corpus back = corpus_from_manifest(manifest);
  EXPECT_EQ(back.system.label, "S3");
  EXPECT_EQ(back.system.name, platform::SystemName::S3);
  EXPECT_EQ(back.system.scheduler, platform::SchedulerKind::Slurm);
  EXPECT_EQ(back.system.topology.max_nodes, corpus.system.topology.max_nodes);
  EXPECT_EQ(back.begin.usec, corpus.begin.usec);
  EXPECT_EQ(back.days, 14);
  EXPECT_EQ(platform::Topology(back.system.topology).node_count(), 2100u);
}

TEST(CorpusTest, MalformedManifestThrows) {
  EXPECT_THROW(corpus_from_manifest("no equals sign"), std::runtime_error);
  EXPECT_THROW(corpus_from_manifest("days=abc"), std::runtime_error);
  EXPECT_THROW(corpus_from_manifest("begin=notatime"), std::runtime_error);
}

TEST(CorpusTest, WriteReadDirectoryRoundTrip) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S4, 2, 404)).run();
  const Corpus corpus = build_corpus(sim);

  const std::string dir = "/tmp/hpcfail_corpus_test";
  std::filesystem::remove_all(dir);
  write_corpus(corpus, dir);
  const Corpus back = read_corpus(dir);

  EXPECT_EQ(back.system.label, corpus.system.label);
  for (std::size_t i = 0; i < corpus.text.size(); ++i) {
    EXPECT_EQ(back.text[i], corpus.text[i]) << "source " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(CorpusTest, ReadMissingDirThrows) {
  EXPECT_THROW(read_corpus("/tmp/hpcfail_no_such_dir_xyz"), std::runtime_error);
}

TEST(CorpusTest, LinesAreTimeOrderedPerSource) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 3, 505)).run();
  const Corpus corpus = build_corpus(sim);
  // ISO-stamped files sort lexically iff time-ordered.
  for (const auto source : {logmodel::LogSource::Console, logmodel::LogSource::Controller,
                            logmodel::LogSource::Erd, logmodel::LogSource::Scheduler}) {
    const auto lines = util::split(corpus.of(source), '\n');
    std::string_view prev;
    for (const auto line : lines) {
      if (line.size() < 26) continue;
      const auto stamp = line.substr(0, 26);
      EXPECT_GE(stamp, prev) << to_string(source);
      prev = stamp;
    }
  }
}

}  // namespace
}  // namespace hpcfail::loggen
