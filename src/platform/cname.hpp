// Cray physical-component name ("cname") grammar.
//
//   cabinet  cX-Y          e.g. c12-3
//   chassis  cX-YcC        e.g. c12-3c2
//   blade    cX-YcCsS      e.g. c12-3c2s7     (a blade == a slot)
//   node     cX-YcCsSnN    e.g. c12-3c2s7n3
//
// X is the cabinet column, Y the cabinet row, C in [0, chassis/cabinet),
// S in [0, slots/chassis), N in [0, nodes/slot).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace hpcfail::platform {

enum class CnameLevel { Cabinet, Chassis, Blade, Node };

struct Cname {
  int cab_x = 0;
  int cab_y = 0;
  int chassis = -1;  ///< -1 when level is Cabinet
  int slot = -1;     ///< -1 above Blade level
  int node = -1;     ///< -1 above Node level

  [[nodiscard]] CnameLevel level() const noexcept {
    if (node >= 0) return CnameLevel::Node;
    if (slot >= 0) return CnameLevel::Blade;
    if (chassis >= 0) return CnameLevel::Chassis;
    return CnameLevel::Cabinet;
  }

  /// Drops components below the requested level.
  [[nodiscard]] Cname truncated(CnameLevel lvl) const noexcept;

  [[nodiscard]] std::string to_string() const;

  bool operator==(const Cname&) const = default;
};

/// Parses any cname level. Rejects trailing garbage and negative fields.
[[nodiscard]] std::optional<Cname> parse_cname(std::string_view s) noexcept;

/// Formats a dense node index as a Cray nid hostname, e.g. nid00042.
[[nodiscard]] std::string format_nid(std::uint32_t node_index);

/// Parses "nid00042" -> 42. Accepts 3..8 digits.
[[nodiscard]] std::optional<std::uint32_t> parse_nid(std::string_view s) noexcept;

/// Institutional-cluster hostname, e.g. node0042.
[[nodiscard]] std::string format_hostname(std::uint32_t node_index);

/// Parses "node0042" -> 42.
[[nodiscard]] std::optional<std::uint32_t> parse_hostname(std::string_view s) noexcept;

}  // namespace hpcfail::platform
