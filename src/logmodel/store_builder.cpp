#include "logmodel/store_builder.hpp"

#include <algorithm>
#include <new>

#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hpcfail::logmodel {

namespace {

bool time_less(const LogRecord& a, const LogRecord& b) noexcept { return a.time < b.time; }

/// Shard-size bucket edges in records: shards are sealed near the configured
/// shard_records target, so the histogram mostly shows the tail of short
/// final shards.
const std::vector<double>& shard_bounds() {
  static const std::vector<double> bounds = {256,    1024,    4096,   16384,
                                             65536,  262144,  1048576};
  return bounds;
}

/// Records one sealed shard against the installed registry (if any).
void note_shard(std::size_t records) {
  if (util::MetricsRegistry* reg = util::metrics()) {
    reg->counter("hpcfail.store.shards_sealed").increment();
    reg->histogram("hpcfail.store.shard_records", shard_bounds())
        .observe(static_cast<double>(records));
  }
}

}  // namespace

StoreBuilder::StoreBuilder(std::size_t shard_records)
    : shard_records_(std::max<std::size_t>(1, shard_records)) {}

void StoreBuilder::seal_current() {
  if (current_.empty()) return;
  note_shard(current_.size());
  shards_.push_back(std::move(current_));
  current_ = {};
}

void StoreBuilder::append(LogRecord r) {
  current_.push_back(r);
  ++count_;
  if (current_.size() >= shard_records_) seal_current();
}

void StoreBuilder::append_batch(std::vector<LogRecord> batch,
                                const SymbolTable& batch_symbols) {
  if (HPCFAIL_FAULT_SITE("store.append_batch.bad_alloc")) throw std::bad_alloc{};
  if (batch.empty()) return;
  // Rewrite chunk-local Symbols into the builder's table.  absorb() is a
  // hash probe per *distinct* string, the remap a table lookup per record.
  const std::vector<Symbol> remap = symbols_.absorb(batch_symbols);
  for (LogRecord& r : batch) r.detail = remap[r.detail.id];
  append_batch(std::move(batch));
}

void StoreBuilder::append_batch(std::vector<LogRecord> batch) {
  if (batch.empty()) return;
  // count_ is bumped only after the records are in place, so a bad_alloc
  // from the insert can't leave record_count() claiming records the store
  // never received.
  const std::size_t records = batch.size();
  // Chunk batches coalesce into current_ rather than retiring as their own
  // shards: dozens of ~chunk-sized arena allocations stay resident (malloc
  // never returns them) for the whole ingest, where one large mmap'd
  // current_ is unmapped the moment build() moves it — measured ~1.5 MB of
  // peak RSS on the S2 week for a copy that costs well under a millisecond.
  if (current_.empty() && records >= shard_records_) {
    note_shard(records);
    shards_.push_back(std::move(batch));
    count_ += records;
    return;
  }
  current_.insert(current_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  count_ += records;
  if (current_.size() >= shard_records_) seal_current();
}

LogStore StoreBuilder::build(util::ThreadPool* pool) {
  seal_current();
  std::vector<std::vector<LogRecord>> shards = std::move(shards_);
  shards_ = {};
  count_ = 0;
  SymbolTable symbols = std::move(symbols_);
  symbols_ = SymbolTable{};

  if (shards.empty()) return LogStore::from_sorted({}, std::move(symbols));
  (void)pool;  // run merging below is cheaper single-threaded than the old
               // per-shard parallel sorts it replaced

  // Flatten the append sequence.  Each source file is ingested in order and
  // is itself time-sorted, so the sequence is a handful of long ascending
  // runs (one per source, give or take chunk seams) — not random.  A full
  // stable_sort pays n log n even on that shape; detecting the runs and
  // stably merging them is one linear pass plus ~log(runs) compares per
  // record, and collapses to a plain move when the whole sequence is one
  // run.
  std::vector<LogRecord> all;
  if (shards.size() == 1) {
    all = std::move(shards[0]);
  } else {
    std::size_t total = 0;
    for (const auto& s : shards) total += s.size();
    all.reserve(total);
    for (auto& s : shards) {
      all.insert(all.end(), s.begin(), s.end());
      s = {};  // release each absorbed shard's memory early
    }
  }
  shards = {};

  util::TraceSpan span("hpcfail.store.sort_shards");
  std::vector<std::size_t> run_begin;  // ascending-run boundaries in `all`
  run_begin.push_back(0);
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (time_less(all[i], all[i - 1])) run_begin.push_back(i);
  }
  if (run_begin.size() == 1) {
    return LogStore::from_sorted(std::move(all), std::move(symbols));
  }

  // Bottom-up natural merge: fold adjacent run pairs in place until one
  // run remains.  std::inplace_merge is stable (ties take the left, i.e.
  // earlier-appended, range first) and only ever pairs contiguous segments
  // of the append sequence, so the result is exactly what a global
  // stable_sort over the append sequence would have produced.  In-place
  // (rather than ping-pong between two full-size buffers) because
  // libstdc++'s adaptive temp buffer is min(len1, len2) — at most half a
  // pair — which keeps peak RSS at the old stable_sort level while the
  // buffered merge stays a sequential memcpy-speed sweep; a full spare
  // records buffer held across the passes measurably lifted peak RSS.
  run_begin.push_back(all.size());
  std::vector<std::size_t> bounds = std::move(run_begin);
  while (bounds.size() > 2) {
    std::vector<std::size_t> next;
    next.reserve(bounds.size() / 2 + 2);
    next.push_back(0);
    std::size_t i = 0;
    for (; i + 2 < bounds.size(); i += 2) {
      std::inplace_merge(all.begin() + bounds[i], all.begin() + bounds[i + 1],
                         all.begin() + bounds[i + 2], time_less);
      next.push_back(bounds[i + 2]);
    }
    if (i + 1 < bounds.size()) next.push_back(bounds[i + 1]);  // odd run out
    bounds = std::move(next);
  }
  return LogStore::from_sorted(std::move(all), std::move(symbols));
}

}  // namespace hpcfail::logmodel
