#include "parsers/ingest.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <new>
#include <stdexcept>
#include <utility>

#include "logmodel/store_builder.hpp"
#include "parsers/source_parsers.hpp"
#include "util/chunked_reader.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/scan.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"
#include "util/trace.hpp"

namespace hpcfail::parsers {

using logmodel::LogRecord;
using logmodel::LogSource;

LineParseFn line_parser_for(LogSource source) noexcept {
  switch (source) {
    case LogSource::Console:
    case LogSource::Consumer:
      return &parse_console_line;
    case LogSource::Messages:
      return &parse_messages_line;
    case LogSource::Controller:
      return &parse_controller_line;
    case LogSource::Erd:
      return &parse_erd_line;
    case LogSource::Scheduler:
    default:
      return nullptr;
  }
}

std::string_view to_string(IngestErrorKind kind) noexcept {
  switch (kind) {
    case IngestErrorKind::Resource: return "resource";
    case IngestErrorKind::MissingFile: return "missing-file";
    case IngestErrorKind::StreamIo: break;
  }
  return "stream-io";
}

std::string IngestError::to_string() const {
  std::string out(parsers::to_string(kind));
  out += " error in ";
  out += logmodel::to_string(source);
  if (!file.empty()) out += " (" + file + ")";
  if (kind == IngestErrorKind::StreamIo) {
    out += " at byte offset " + std::to_string(byte_offset);
  }
  out += ": " + message;
  return out;
}

namespace {

/// Result of parsing one chunk's lines on a pool worker.  Detail Symbols
/// point into the chunk-local table; append_batch remaps them into the
/// builder's table at retire time.
struct ChunkResult {
  std::vector<LogRecord> records;
  logmodel::SymbolTable symbols;
  std::size_t lines = 0;
  std::size_t skipped = 0;
};

std::int64_t steady_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Ingest-layer instrument slots, all nullptr when metrics are dark.  The
/// stall counters separate time blocked on the producer (reading the next
/// chunk) from time blocked on consumers (waiting for the oldest in-flight
/// parse), which is the read-vs-parse balance knob `max_inflight_chunks`
/// tunes.
struct IngestInstruments {
  util::Counter* bytes_read = nullptr;
  util::Counter* chunks = nullptr;
  util::Counter* records_parsed = nullptr;
  util::Counter* lines_skipped = nullptr;
  util::Counter* read_stall_us = nullptr;
  util::Counter* retire_stall_us = nullptr;

  static IngestInstruments bind() {
    IngestInstruments m;
    if (util::MetricsRegistry* reg = util::metrics()) {
      m.bytes_read = &reg->counter("hpcfail.ingest.bytes_read");
      m.chunks = &reg->counter("hpcfail.ingest.chunks");
      m.records_parsed = &reg->counter("hpcfail.ingest.records_parsed");
      m.lines_skipped = &reg->counter("hpcfail.ingest.lines_skipped");
      m.read_stall_us = &reg->counter("hpcfail.ingest.read_stall_us");
      m.retire_stall_us = &reg->counter("hpcfail.ingest.retire_stall_us");
    }
    return m;
  }

  [[nodiscard]] bool on() const noexcept { return bytes_read != nullptr; }
};

/// Parallel sources must retire in the same global sequence parse_corpus
/// appends them, or time-tied records merge in a different order.
constexpr LogSource kParallelOrder[] = {
    LogSource::Console, LogSource::Consumer, LogSource::Messages,
    LogSource::Controller, LogSource::Erd,
};

/// read -> parse -> shard pipeline over one source stream.  Chunks retire
/// in submission order (FIFO), so the builder sees the file's line order
/// no matter how the pool schedules the parse tasks.
void ingest_parallel_source(std::istream& in, LineParseFn parse, const ParseContext& ctx,
                            const IngestOptions& options, util::ThreadPool& pool,
                            std::size_t inflight, logmodel::StoreBuilder& builder,
                            std::size_t& total_lines, std::size_t& skipped) {
  util::ChunkedLineReader reader(in, options.chunk_bytes);
  std::deque<std::future<ChunkResult>> pending;
  const IngestInstruments m = IngestInstruments::bind();

  const auto retire_front = [&] {
    if (HPCFAIL_FAULT_SITE("ingest.retire.bad_alloc")) throw std::bad_alloc{};
    ChunkResult r;
    if (m.on()) {
      const std::int64_t t0 = steady_us();
      r = pending.front().get();
      m.retire_stall_us->add(
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, steady_us() - t0)));
    } else {
      r = pending.front().get();
    }
    pending.pop_front();
    // append_batch throws (if at all) before touching the store, so counting
    // the chunk's lines only after it returns keeps the partial-result
    // invariant total_lines == parsed + skipped when a retire fails.
    const std::size_t records = r.records.size();
    builder.append_batch(std::move(r.records), r.symbols);
    total_lines += r.lines;
    skipped += r.skipped;
    if (m.on()) {
      m.records_parsed->add(records);
      m.lines_skipped->add(r.skipped);
    }
  };

  const auto read_next = [&](std::string& out) {
    if (!m.on()) return reader.next(out);
    const std::int64_t t0 = steady_us();
    const bool more = reader.next(out);
    m.read_stall_us->add(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, steady_us() - t0)));
    if (more) {
      m.bytes_read->add(out.size());
      m.chunks->increment();
    }
    return more;
  };

  std::string chunk;
  try {
    while (read_next(chunk)) {
      // ctx is captured by value (four words): a queued task must not hold
      // references into this frame once an exception starts unwinding it.
      pending.push_back(
          pool.submit([text = std::move(chunk), parse, ctx]() -> ChunkResult {
            util::TraceSpan span("hpcfail.ingest.parse_chunk");
            if (HPCFAIL_FAULT_SITE("ingest.parse.bad_alloc")) throw std::bad_alloc{};
            ChunkResult r;
            ParseContext local = ctx;
            local.symbols = &r.symbols;  // intern straight from the chunk buffer
            // Zero-allocation line walk: the cursor hands out views into the
            // chunk buffer one at a time, so the per-chunk vector of line
            // views (and its resize churn) is gone from the hot loop.
            r.records.reserve(util::scan::count_byte(text, '\n') + 1);
            util::scan::LineCursor cursor(text);
            std::string_view line;
            while (cursor.next(line)) {
              ++r.lines;
              if (auto rec = parse(line, local)) {
                r.records.push_back(*rec);
              } else {
                ++r.skipped;
              }
            }
            return r;
          }));
      chunk = {};
      if (pending.size() >= inflight) retire_front();
    }
    while (!pending.empty()) retire_front();
  } catch (...) {
    // Tasks capture everything by value, so nothing dangles — but join
    // anyway so an ingest error doesn't leave parse work running after the
    // caller regains control.
    for (auto& f : pending) {
      if (f.valid()) f.wait();
    }
    throw;
  }
}

void ingest_scheduler_source(std::istream& in, const ParseContext& ctx,
                             const IngestOptions& options, jobs::JobTable& jobs,
                             logmodel::StoreBuilder& builder, std::size_t& total_lines,
                             std::size_t& skipped) {
  util::ChunkedLineReader reader(in, options.chunk_bytes);
  // The scheduler parser is stateful and sequential; it interns directly
  // into the builder's table, so append() needs no remap.
  ParseContext sched_ctx = ctx;
  sched_ctx.symbols = &builder.symbols();
  SchedulerLogParser sched(sched_ctx, jobs);
  const IngestInstruments m = IngestInstruments::bind();
  std::size_t parsed_here = 0;
  std::size_t skipped_here = 0;
  std::string chunk;
  // Records collect into a chunk-local batch and retire through one
  // append_batch per chunk: symbols already live in the builder's table, so
  // no remap is needed, and the builder skips per-record shard checks.
  std::vector<logmodel::LogRecord> batch;
  while (reader.next(chunk)) {
    util::TraceSpan span("hpcfail.ingest.parse_chunk");
    if (m.on()) {
      m.bytes_read->add(chunk.size());
      m.chunks->increment();
    }
    util::scan::LineCursor cursor(chunk);
    std::string_view line;
    batch.clear();
    while (cursor.next(line)) {
      ++total_lines;
      if (auto rec = sched.parse_line(line)) {
        batch.push_back(*rec);
        ++parsed_here;
      } else {
        ++skipped;
        ++skipped_here;
      }
    }
    builder.append_batch(std::move(batch));
    batch = {};
  }
  if (m.on()) {
    m.records_parsed->add(parsed_here);
    m.lines_skipped->add(skipped_here);
  }
}

/// Runs one source's pipeline, converting the two recoverable data-plane
/// failures — a stream I/O error from the reader and an allocation failure
/// anywhere in the chunk pipeline — into a structured IngestError.  Logic
/// errors and everything else stay loud.
template <typename Fn>
std::optional<IngestError> run_source_guarded(LogSource source, Fn&& fn) {
  try {
    fn();
    return std::nullopt;
  } catch (const util::IoError& e) {
    return IngestError{IngestErrorKind::StreamIo, source, {}, e.byte_offset, e.what()};
  } catch (const std::bad_alloc&) {
    return IngestError{IngestErrorKind::Resource, source, {}, 0,
                       "allocation failure in the ingest pipeline"};
  }
}

}  // namespace

IngestResult ingest_stream(const loggen::Corpus& header,
                           const std::vector<SourceStream>& sources,
                           const IngestOptions& options) {
  util::TraceSpan run_span("hpcfail.ingest.run");
  IngestResult out;
  out.system = header.system;
  out.topology = platform::Topology{header.system.topology};
  out.begin = header.begin;
  out.days = header.days;
  util::ThreadPool& pool = options.pool != nullptr ? *options.pool : util::default_pool();
  const std::size_t inflight = options.max_inflight_chunks != 0
                                   ? options.max_inflight_chunks
                                   : 2 * pool.size();

  const auto begin_civil = util::civil_time(header.begin);
  ParseContext ctx;
  ctx.topo = &out.topology;
  ctx.base_year = begin_civil.year;
  ctx.base_month = begin_civil.month;

  const auto stream_of = [&sources](LogSource s) -> std::istream* {
    for (const auto& src : sources) {
      if (src.source == s) return src.in;
    }
    return nullptr;
  };

  logmodel::StoreBuilder builder(options.shard_records);
  std::size_t skipped = 0;

  for (const LogSource source : kParallelOrder) {
    std::istream* in = stream_of(source);
    if (in == nullptr) continue;
    util::TraceSpan span("hpcfail.ingest.source_" +
                         util::trace_name_segment(logmodel::to_string(source)));
    out.error = run_source_guarded(source, [&] {
      ingest_parallel_source(*in, line_parser_for(source), ctx, options, pool, inflight,
                             builder, out.total_lines, skipped);
    });
    if (out.error) break;
  }

  if (!out.error) {
    if (std::istream* in = stream_of(LogSource::Scheduler)) {
      util::TraceSpan span("hpcfail.ingest.source_scheduler");
      out.error = run_source_guarded(LogSource::Scheduler, [&] {
        ingest_scheduler_source(*in, ctx, options, out.jobs, builder, out.total_lines,
                                skipped);
      });
    }
  }
  out.jobs.finalize();

  // Build the store even after a failure: everything retired before the
  // error is a record-accurate partial result, and the line accounting
  // (total_lines = parsed + skipped) covers exactly what was seen.
  out.skipped_lines = skipped;
  out.parsed_records = builder.record_count();
  out.store = builder.build(&pool);
  return out;
}

IngestResult ingest_files(const std::string& dir, const IngestOptions& options) {
  namespace fs = std::filesystem;
  const loggen::Corpus header = loggen::read_corpus_header(dir);

  std::vector<std::ifstream> files;
  std::vector<SourceStream> sources;
  files.reserve(logmodel::kLogSourceCount);
  sources.reserve(logmodel::kLogSourceCount);
  for (std::size_t i = 0; i < logmodel::kLogSourceCount; ++i) {
    const auto source = static_cast<LogSource>(i);
    const fs::path path = fs::path(dir) / loggen::source_file_name(source);
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      // Absent source (e.g. no ERD on S5): never invisible, optionally fatal.
      if (util::MetricsRegistry* reg = util::metrics()) {
        reg->counter("hpcfail.ingest.files_missing").increment();
      }
      if (options.missing_file_policy == MissingFilePolicy::Error) {
        IngestResult out;
        out.system = header.system;
        out.topology = platform::Topology{header.system.topology};
        out.begin = header.begin;
        out.days = header.days;
        out.error = IngestError{IngestErrorKind::MissingFile, source, path.string(), 0,
                                "source file is absent and missing_file_policy is Error"};
        return out;
      }
      continue;
    }
    files.push_back(std::move(file));
    sources.push_back(SourceStream{source, &files.back()});
  }
  IngestResult out = ingest_stream(header, sources, options);
  if (out.error && out.error->file.empty()) {
    out.error->file = (fs::path(dir) / loggen::source_file_name(out.error->source)).string();
  }
  return out;
}

}  // namespace hpcfail::parsers
