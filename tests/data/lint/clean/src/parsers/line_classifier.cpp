#include "parsers/line_classifier.hpp"

namespace hpcfail::parsers {

std::optional<EventType> erd_event_type(std::string_view name) noexcept {
  if (name == "ec_node_failed") return EventType::NodeHeartbeatFault;
  if (name == "ec_node_voltage_fault") return EventType::NodeVoltageFault;
  return std::nullopt;
}

}  // namespace hpcfail::parsers
