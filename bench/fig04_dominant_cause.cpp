// Fig 4: fraction of failed nodes per day sharing the dominant failure
// cause, 30 days, S1-S4.  Paper: 65% to 82% of the nodes share the same
// cause; if the dominant fault were fixed, over 50% of daily failures would
// be recovered (Observation 1).
#include "bench_common.hpp"
#include "core/temporal.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 4: dominant daily failure cause (S1-S4, 30 days)");

  const platform::SystemName systems[] = {platform::SystemName::S1, platform::SystemName::S2,
                                          platform::SystemName::S3, platform::SystemName::S4};
  util::TextTable table(
      {"System", "Failure days", "Mean dominant share", "Min", "Max", ">50% fixable days"});

  for (const auto sys : systems) {
    const auto p = bench::run_system(sys, 30, 404);
    const core::TemporalAnalyzer temporal(p.failures);
    const auto days = temporal.dominant_cause_per_day(p.sim.config.begin, 30);

    stats::StreamingStats share;
    std::size_t fixable = 0;
    for (const auto& d : days) {
      share.add(d.dominant_share());
      if (d.dominant_share() > 0.5) ++fixable;
    }
    table.row()
        .cell(platform::to_string(sys))
        .cell(static_cast<std::int64_t>(days.size()))
        .pct(share.mean())
        .pct(share.min())
        .pct(share.max())
        .pct(days.empty() ? 0.0
                          : static_cast<double>(fixable) / static_cast<double>(days.size()));

    check.in_range(platform::to_string(sys) + ": mean dominant share (paper 65-82%)",
                   share.mean(), 0.55, 0.95);
    check.greater(platform::to_string(sys) + ": >50% of daily failures fixable on most days",
                  days.empty() ? 0.0
                               : static_cast<double>(fixable) /
                                     static_cast<double>(days.size()),
                  0.5);
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
