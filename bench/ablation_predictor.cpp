// Ablation: the learned failure predictor (core/prediction) with and
// without external features, against the rule-based pattern predictor of
// Fig 14 — the paper's "ML-guided failure prediction" recommendation made
// concrete.  Trained on one corpus, evaluated on a different seed.
#include "bench_common.hpp"
#include "core/leadtime.hpp"
#include "core/prediction.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Ablation: learned predictor feature sets");

  const auto train = bench::run_system(platform::SystemName::S1, 21, 801);
  const auto test = bench::run_system(platform::SystemName::S1, 21, 802);

  util::TextTable table({"feature set", "AUC", "precision", "recall", "F1"});
  double auc_with = 0.0, auc_without = 0.0;
  for (const bool external : {false, true}) {
    core::DatasetConfig cfg;
    cfg.features.include_external = external;
    const auto train_set = core::build_dataset(train.parsed.store, train.failures,
                                               train.parsed.topology.node_count(), cfg);
    const auto test_set = core::build_dataset(test.parsed.store, test.failures,
                                              test.parsed.topology.node_count(), cfg);
    const auto predictor = core::train_predictor(train_set, cfg.features);
    const auto metrics = core::evaluate_predictor_model(predictor, test_set);
    table.row()
        .cell(external ? "internal + external" : "internal only")
        .cell(metrics.auc, 3)
        .pct(metrics.precision())
        .pct(metrics.recall())
        .pct(metrics.f1());
    (external ? auc_with : auc_without) = metrics.auc;
    if (external) {
      // Feature importances of the full model (standardized weights).
      util::TextTable weights({"feature", "weight"});
      const auto names = core::feature_names(cfg.features);
      for (std::size_t i = 0;
           i < names.size() && i < predictor.model.weights.size(); ++i) {
        weights.row().cell(names[i]).cell(predictor.model.weights[i], 3);
      }
      std::cout << "learned feature weights (standardized):\n" << weights.render() << '\n';
    }
  }
  std::cout << table.render() << '\n';

  check.in_range("cross-corpus AUC, internal-only", auc_without, 0.80, 1.0);
  check.in_range("cross-corpus AUC, with external", auc_with, 0.82, 1.0);
  check.greater("external features never hurt (paper Observation 5)", auc_with + 0.02,
                auc_without);

  // Rule-based baseline, pooled over both corpora (42 days) to keep the
  // FP-rate comparison out of small-sample noise.
  core::PredictorEvaluation rule_internal, rule_external;
  for (const auto* corpus : {&train, &test}) {
    const core::LeadTimeAnalyzer analyzer(corpus->parsed.store);
    const auto internal = analyzer.evaluate_predictor(corpus->failures, false);
    const auto external = analyzer.evaluate_predictor(corpus->failures, true);
    rule_internal.flagged += internal.flagged;
    rule_internal.true_positive += internal.true_positive;
    rule_internal.false_positive += internal.false_positive;
    rule_external.flagged += external.flagged;
    rule_external.true_positive += external.true_positive;
    rule_external.false_positive += external.false_positive;
  }
  std::cout << "rule-based pattern predictor (42 days pooled): FP "
            << util::fmt_pct(rule_internal.fp_rate()) << " (internal) vs "
            << util::fmt_pct(rule_external.fp_rate()) << " (with external gate)\n";
  check.greater("rule-based: external gate lowers FP", rule_internal.fp_rate() + 1e-9,
                rule_external.fp_rate());
  return check.exit_code();
}
