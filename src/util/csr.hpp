// Compressed-sparse-row index: one flat `entries` array holding runs of
// values grouped by a dense uint32 key, with `offsets[k] .. offsets[k+1]`
// delimiting key k's run.  For id-keyed secondary indexes (ids come from
// real machine topologies, so the key space is small and dense) this
// replaces a hash map of per-key vectors with two exact-sized allocations:
// lookups are one bounds check + two loads, and there is no per-key heap
// block or growth slack.
//
// Building is the caller's job (count into offsets[key + 1], prefix-sum,
// then fill entries through a cursor copy of offsets) because callers fuse
// the counting passes of several indexes; see LogStore::build_indexes and
// JobTable::finalize.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/serialize.hpp"

namespace hpcfail::util {

template <class T>
struct CsrIndex {
  std::vector<std::uint32_t> offsets;  ///< size max_key + 2; empty when no entries
  std::vector<T> entries;              ///< values grouped by key

  /// The run for `key`; empty for keys never filled (including keys past
  /// the built range, so no caller needs to pre-check bounds).
  [[nodiscard]] std::span<const T> of(std::uint32_t key) const noexcept {
    if (key + 1 >= offsets.size()) return {};
    return std::span<const T>(entries).subspan(offsets[key],
                                               offsets[key + 1] - offsets[key]);
  }

  /// Registers the two flat arrays as "<prefix>.offsets" / "<prefix>.entries"
  /// (borrowed views — this index must outlive `out`).
  void append_sections(Sections& out, const std::string& prefix) const {
    static_assert(std::is_trivially_copyable_v<T>);
    out.add_vector(prefix + ".offsets", offsets);
    out.add_vector(prefix + ".entries", entries);
  }

  /// Rebuilds an index from its two sections, validating the CSR invariants
  /// (monotone offsets spanning exactly the entry array) so a corrupted
  /// snapshot can never produce an index that reads out of bounds.  Throws
  /// SectionError; the snapshot layer converts at the load boundary.
  [[nodiscard]] static CsrIndex from_sections(const SectionMap& in,
                                              const std::string& prefix) {
    CsrIndex index;
    index.offsets = in.vector_of<std::uint32_t>(prefix + ".offsets");
    index.entries = in.vector_of<T>(prefix + ".entries");
    if (index.offsets.empty()) {
      if (!index.entries.empty()) {
        throw SectionError(prefix + ".offsets", "empty offsets with non-empty entries");
      }
      return index;
    }
    if (index.offsets.front() != 0 ||
        index.offsets.back() != index.entries.size()) {
      throw SectionError(prefix + ".offsets",
                         "offsets do not span the entry array exactly");
    }
    for (std::size_t k = 1; k < index.offsets.size(); ++k) {
      if (index.offsets[k] < index.offsets[k - 1]) {
        throw SectionError(prefix + ".offsets",
                           "offsets decrease at key " + std::to_string(k - 1));
      }
    }
    return index;
  }
};

}  // namespace hpcfail::util
