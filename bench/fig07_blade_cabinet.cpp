// Fig 7: fraction of failures belonging to "faulty" blades and cabinets
// (those that elicited warnings or faults around the failure), over 2
// months.  Paper: 23-59% of failures on faulty blades, 19-58% on faulty
// cabinets — a weak correlation; blade/cabinet health alone does not
// explain failures (Observation 2/3).
#include "bench_common.hpp"
#include "core/spatial.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 7: failures on faulty blades/cabinets (S1+S2, 2 months)");

  util::TextTable table({"System", "Month", "Failures", "on faulty blade", "on faulty cabinet"});
  for (const auto sys : {platform::SystemName::S1, platform::SystemName::S2}) {
    const auto p = bench::run_system(sys, 60, 707);
    const core::SpatialAnalyzer spatial(p.parsed.store, p.parsed.topology);
    for (int month = 0; month < 2; ++month) {
      const util::TimePoint begin = p.sim.config.begin + util::Duration::days(month * 30);
      const auto attribution =
          spatial.attribute(p.failures, begin, begin + util::Duration::days(30));
      table.row()
          .cell(platform::to_string(sys))
          .cell("M" + std::to_string(month + 1))
          .cell(static_cast<std::int64_t>(attribution.failures))
          .pct(attribution.blade_fraction())
          .pct(attribution.cabinet_fraction());
      check.in_range(platform::to_string(sys) + " M" + std::to_string(month + 1) +
                         ": faulty-blade fraction (paper 23-59%)",
                     attribution.blade_fraction(), 0.15, 0.70);
      check.in_range(platform::to_string(sys) + " M" + std::to_string(month + 1) +
                         ": faulty-cabinet fraction (paper 19-58%)",
                     attribution.cabinet_fraction(), 0.12, 0.70);
    }
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
