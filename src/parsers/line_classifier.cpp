#include "parsers/line_classifier.hpp"

#include <bit>
#include <cstdint>

#include "util/scan.hpp"
#include "util/strings.hpp"

namespace hpcfail::parsers {

using logmodel::EventType;
using logmodel::Severity;
using util::starts_with;
using util::scan::Signature;
using util::scan::SignatureSet;

namespace {

/// Remainder after "<signature>" (and an optional ": ").
std::string_view after(std::string_view payload, std::string_view signature) noexcept {
  const auto pos = payload.find(signature);
  if (pos == std::string_view::npos) return {};
  std::string_view rest = payload.substr(pos + signature.size());
  if (starts_with(rest, ": ")) rest.remove_prefix(2);
  return util::trim(rest);
}

// ---------------------------------------------------------------------------
// Signature tables
//
// Each classifier's cascade is a priority-ordered signature list matched in
// ONE pass over the payload (util::scan::SignatureSet), then resolved
// lowest-priority-bit first — exactly equivalent to the old chain of
// sequential contains()/starts_with() tests, because each test only asked
// whether its literal occurs anywhere (or at the start) of the payload.
// Order still matters where signatures overlap (LBUG before LustreError,
// processor-context-corrupt before generic MCE); keep these tables and
// loggen/renderer.cpp in sync.
// ---------------------------------------------------------------------------

// clang-format off
constexpr Signature kKernelSignatures[] = {
    /*  0 */ {"Kernel panic - not syncing", false},
    /*  1 */ {"LBUG", false},
    /*  2 */ {"LustreError", false},
    /*  3 */ {"processor context corrupt", false},
    /*  4 */ {"Machine check", false},
    /*  5 */ {"EDAC", false},
    /*  6 */ {"rcu_sched self-detected stall", false},
    /*  7 */ {"HEST:", true},
    /*  8 */ {"[Firmware Bug]", false},
    /*  9 */ {"driver bug", false},
    /* 10 */ {"segfault at", false},
    /* 11 */ {"invalid opcode", false},
    /* 12 */ {"page allocation failure", false},
    /* 13 */ {"Out of memory", false},
    /* 14 */ {"blocked for more than", false},
    /* 15 */ {"unable to handle kernel paging request", false},
    /* 16 */ {">] ", false},  // call-trace frame; validated by call_trace_module
    /* 17 */ {"DVS:", true},
    /* 18 */ {"bad inode", false},
    /* 19 */ {"link error detected", false},
    /* 20 */ {"Shutdown: system going down", false},
    /* 21 */ {"System halted", false},
    /* 22 */ {"Booting Linux", false},
};

constexpr Signature kNhcSignatures[] = {
    /* 0 */ {"abnormal", false},
    /* 1 */ {"suspect mode", false},
    /* 2 */ {"NHC:", false},
};

constexpr Signature kControllerSignatures[] = {
    /*  0 */ {"ec_sedc_warning", false},
    /*  1 */ {"ec_environment", false},
    /*  2 */ {"sedc:", true},
    /*  3 */ {"L0_sysd_mce", false},
    /*  4 */ {"cabinet power fault", false},
    /*  5 */ {"micro controller fault", false},
    /*  6 */ {"communication fault", false},
    /*  7 */ {"module health fault", false},
    /*  8 */ {"RPM fault", false},
    /*  9 */ {"ECB fault", false},
    /* 10 */ {"sensor check failed", false},
    /* 11 */ {"get sensor reading failed", false},
    /* 12 */ {"bc heartbeat fault", false},
    // Auxiliary signatures: only consulted when ec_sedc_warning (bit 0)
    // wins, to pick the SEDC warning subtype in the same single pass.
    /* 13 */ {"CPU_TEMP", false},
    /* 14 */ {"VDD", false},
    /* 15 */ {"AIR_VEL", false},
};
// clang-format on

constexpr std::uint32_t kCpuTempBit = 1u << 13;
constexpr std::uint32_t kVddBit = 1u << 14;
constexpr std::uint32_t kAirVelBit = 1u << 15;

// ---------------------------------------------------------------------------
// Resolution: walk the hit mask lowest bit first (cascade priority order)
// and produce the classification for the first signature that stands.
// ---------------------------------------------------------------------------

std::optional<Classified> resolve_kernel(std::string_view payload,
                                         std::uint32_t hits) noexcept {
  while (hits != 0) {
    const int idx = std::countr_zero(hits);
    hits &= hits - 1;
    switch (idx) {
      case 0:
        return Classified{EventType::KernelPanic, Severity::Fatal,
                          after(payload, "not syncing:")};
      case 1:
        return Classified{EventType::LustreBug, Severity::Critical,
                          after(payload, "ASSERTION failed:")};
      case 2:
        return Classified{EventType::LustreError, Severity::Error, after(payload, "11-0:")};
      case 3:
        return Classified{EventType::CpuCorruption, Severity::Critical,
                          after(payload, "corrupt:")};
      case 4:
        return Classified{EventType::MachineCheckException, Severity::Critical,
                          after(payload, "logged:")};
      case 5:
        return Classified{EventType::HardwareError, Severity::Error, after(payload, "MC0:")};
      case 6:
        return Classified{EventType::CpuStall, Severity::Error, after(payload, "CPU:")};
      case 7:
        return Classified{EventType::BiosError, Severity::Error, after(payload, "HEST:")};
      case 8:
        return Classified{EventType::FirmwareBug, Severity::Error,
                          after(payload, "[Firmware Bug]:")};
      case 9:
        return Classified{EventType::DriverBug, Severity::Error,
                          after(payload, "driver bug:")};
      case 10:
        return Classified{EventType::SegFault, Severity::Error, after(payload, "err 4:")};
      case 11:
        return Classified{EventType::InvalidOpcode, Severity::Error, after(payload, "SMP:")};
      case 12: {
        // Rendered as "<detail>, mode:0x4020" with the signature inside detail.
        std::string_view d = payload;
        const auto comma = d.rfind(", mode:");
        if (comma != std::string_view::npos) d = d.substr(0, comma);
        return Classified{EventType::PageAllocationFailure, Severity::Error, util::trim(d)};
      }
      case 13: {
        std::string_view d = payload;
        const auto score = d.rfind(" score ");
        if (score != std::string_view::npos) d = d.substr(0, score);
        return Classified{EventType::OomKill, Severity::Critical, util::trim(d)};
      }
      case 14:
        return Classified{EventType::HungTaskTimeout, Severity::Warning,
                          after(payload, "seconds:")};
      case 15:
        return Classified{EventType::KernelOops, Severity::Critical, std::string_view{}};
      case 16:
        // A ">] " hit is only a call trace when a '+' follows the frame; a
        // failed validation falls through to the remaining signatures,
        // exactly like the old cascade.
        if (const auto module = call_trace_module(payload)) {
          return Classified{EventType::CallTrace, Severity::Error, *module};
        }
        break;
      case 17:
        return Classified{EventType::DvsError, Severity::Error, after(payload, "DVS:")};
      case 18:
        return Classified{EventType::InodeError, Severity::Error,
                          after(payload, "bad inode:")};
      case 19:
        return Classified{EventType::InterconnectError, Severity::Error,
                          after(payload, "detected:")};
      case 20:
        return Classified{EventType::NodeShutdown, Severity::Fatal,
                          after(payload, "going down:")};
      case 21:
        return Classified{EventType::NodeHalt, Severity::Fatal, after(payload, "halted:")};
      case 22:
        return Classified{EventType::NodeBoot, Severity::Info, after(payload, "0x0:")};
      default:
        break;
    }
  }
  return std::nullopt;
}

std::optional<Classified> resolve_nhc(std::string_view payload,
                                      std::uint32_t hits) noexcept {
  if ((hits & 1u) != 0) {
    return Classified{EventType::AppExitAbnormal, Severity::Error, util::trim(payload)};
  }
  if ((hits & 2u) != 0) {
    return Classified{EventType::NhcSuspectMode, Severity::Warning, util::trim(payload)};
  }
  if ((hits & 4u) != 0) {
    return Classified{EventType::NhcTestFail, Severity::Error, util::trim(payload)};
  }
  return std::nullopt;
}

std::optional<Classified> resolve_controller(std::string_view payload,
                                             std::uint32_t hits) noexcept {
  while (hits != 0) {
    const int idx = std::countr_zero(hits);
    hits &= hits - 1;
    switch (idx) {
      case 0:
        if ((hits & kCpuTempBit) != 0) {
          return Classified{EventType::SedcTemperatureWarning, Severity::Warning, payload};
        }
        if ((hits & kVddBit) != 0) {
          return Classified{EventType::SedcVoltageWarning, Severity::Warning, payload};
        }
        if ((hits & kAirVelBit) != 0) {
          return Classified{EventType::SedcAirVelocityWarning, Severity::Warning, payload};
        }
        return Classified{EventType::SedcTemperatureWarning, Severity::Warning, payload};
      case 1:
        return Classified{EventType::SedcFanSpeedWarning, Severity::Warning, payload};
      case 2:
        return Classified{EventType::SedcReading, Severity::Info, after(payload, "sedc:")};
      case 3:
        return Classified{EventType::L0SysdMce, Severity::Error,
                          after(payload, "L0_sysd_mce:")};
      case 4:
        return Classified{EventType::CabinetPowerFault, Severity::Warning, payload};
      case 5:
        return Classified{EventType::CabinetMicroFault, Severity::Warning, payload};
      case 6:
        return Classified{EventType::CommunicationFault, Severity::Warning, payload};
      case 7:
        return Classified{EventType::ModuleHealthFault, Severity::Warning, payload};
      case 8:
        return Classified{EventType::RpmFault, Severity::Warning, payload};
      case 9:
        return Classified{EventType::EcbFault, Severity::Warning, payload};
      case 10:
        return Classified{EventType::CabinetSensorCheck, Severity::Warning, payload};
      case 11:
        return Classified{EventType::GetSensorReadingFailed, Severity::Warning, payload};
      case 12:
        return Classified{EventType::BladeHeartbeatFault, Severity::Warning, payload};
      default:
        // Auxiliary SEDC-subtype bits (13..15) classify nothing on their own.
        break;
    }
  }
  return std::nullopt;
}

const SignatureSet& kernel_set() {
  static const SignatureSet set{kKernelSignatures};
  return set;
}
const SignatureSet& nhc_set() {
  static const SignatureSet set{kNhcSignatures};
  return set;
}
const SignatureSet& controller_set() {
  static const SignatureSet set{kControllerSignatures};
  return set;
}

}  // namespace

std::optional<std::string_view> call_trace_module(std::string_view payload) noexcept {
  // " [<ffffffff81234567>] module+0x1a2/0x400"
  const auto close = payload.find(">] ");
  if (close == std::string_view::npos) return std::nullopt;
  std::string_view rest = payload.substr(close + 3);
  const auto plus = rest.find('+');
  if (plus == std::string_view::npos || plus == 0) return std::nullopt;
  return rest.substr(0, plus);
}

std::optional<Classified> classify_kernel_payload(std::string_view payload) noexcept {
  return resolve_kernel(payload, kernel_set().match(payload));
}

std::optional<Classified> classify_kernel_payload_ref(std::string_view payload) noexcept {
  return resolve_kernel(payload, kernel_set().match_ref(payload));
}

std::optional<Classified> classify_nhc_payload(std::string_view payload) noexcept {
  return resolve_nhc(payload, nhc_set().match(payload));
}

std::optional<Classified> classify_nhc_payload_ref(std::string_view payload) noexcept {
  return resolve_nhc(payload, nhc_set().match_ref(payload));
}

std::optional<Classified> classify_controller_payload(std::string_view payload) noexcept {
  return resolve_controller(payload, controller_set().match(payload));
}

std::optional<Classified> classify_controller_payload_ref(std::string_view payload) noexcept {
  return resolve_controller(payload, controller_set().match_ref(payload));
}

std::optional<EventType> erd_event_type(std::string_view name) noexcept {
  if (name == "ec_node_failed") return EventType::NodeHeartbeatFault;
  if (name == "ec_node_voltage_fault") return EventType::NodeVoltageFault;
  if (name == "ec_bc_heartbeat_fault") return EventType::BladeHeartbeatFault;
  if (name == "ec_heartbeat_stop") return EventType::EcHeartbeatStop;
  if (name == "ec_l0_failed") return EventType::EcL0Failed;
  if (name == "ec_hw_error") return EventType::EcHwError;
  if (name == "ec_link_error") return EventType::LinkError;
  if (name == "ec_lane_degrade") return EventType::LaneDegrade;
  if (name == "ec_link_failover") return EventType::LinkFailover;
  if (name == "ec_failover_failed") return EventType::LinkFailoverFailed;
  if (name == "ec_get_sensor_failed") return EventType::GetSensorReadingFailed;
  return std::nullopt;
}

}  // namespace hpcfail::parsers
