// End-to-end integration: simulate -> render -> parse -> analyze, scored
// against the injector's ground-truth ledger.  These tests are the
// equivalent of the paper's administrator validation of failure ground
// truth (Section II-A step 1).
#include <gtest/gtest.h>

#include <map>

#include "core/analysis_context.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"

namespace hpcfail {
namespace {

struct Pipeline {
  faultsim::SimulationResult sim;
  loggen::Corpus corpus;
  parsers::ParsedCorpus parsed;
  std::vector<core::AnalyzedFailure> failures;
};

Pipeline run_pipeline(platform::SystemName system, int days, std::uint64_t seed) {
  Pipeline p{faultsim::Simulator(faultsim::scenario_preset(system, days, seed)).run(),
             {}, {}, {}};
  p.corpus = loggen::build_corpus(p.sim);
  p.parsed = parsers::parse_corpus(p.corpus);
  const core::AnalysisContext ctx(
      p.parsed.store, &p.parsed.jobs, p.parsed.store.first_time(),
      p.parsed.store.last_time() + util::Duration::microseconds(1));
  p.failures = ctx.failures();
  return p;
}

/// Matches detected failures to planted ones by (node, |dt| <= 5 min).
struct MatchResult {
  std::size_t matched = 0;
  std::size_t cause_correct = 0;
  std::size_t planted = 0;
  std::size_t detected = 0;
};

MatchResult match_against_truth(const Pipeline& p) {
  MatchResult m;
  m.planted = p.sim.truth.failures.size();
  m.detected = p.failures.size();
  std::vector<bool> used(p.failures.size(), false);
  for (const auto& truth : p.sim.truth.failures) {
    for (std::size_t i = 0; i < p.failures.size(); ++i) {
      if (used[i]) continue;
      const auto& f = p.failures[i];
      if (f.event.node != truth.node) continue;
      if (std::abs((f.event.time - truth.fail_time).usec) >
          util::Duration::minutes(5).usec) {
        continue;
      }
      used[i] = true;
      ++m.matched;
      if (f.inference.cause == truth.cause) ++m.cause_correct;
      break;
    }
  }
  return m;
}

TEST(IntegrationTest, DetectorRecoversPlantedFailures) {
  const auto p = run_pipeline(platform::SystemName::S1, 14, 7001);
  const auto m = match_against_truth(p);
  ASSERT_GT(m.planted, 20u);
  // Recall: nearly every planted failure is found from the raw text alone.
  EXPECT_GE(static_cast<double>(m.matched) / static_cast<double>(m.planted), 0.95);
  // Precision: no significant spurious detections.
  EXPECT_LE(m.detected, m.planted + m.planted / 10 + 2);
}

/// The same recall/precision bar must hold on every system preset — the
/// dialects (naming scheme, scheduler grammar, missing external universe)
/// must not cost detection quality.
class CrossSystemRecall : public ::testing::TestWithParam<platform::SystemName> {};

TEST_P(CrossSystemRecall, RecallAndPrecisionHold) {
  const auto p = run_pipeline(GetParam(), 14, 7100);
  const auto m = match_against_truth(p);
  ASSERT_GT(m.planted, 10u) << platform::to_string(GetParam());
  EXPECT_GE(static_cast<double>(m.matched) / static_cast<double>(m.planted), 0.93)
      << platform::to_string(GetParam());
  EXPECT_LE(m.detected, m.planted + m.planted / 10 + 2)
      << platform::to_string(GetParam());
  // Cause accuracy stays useful everywhere.
  EXPECT_GE(static_cast<double>(m.cause_correct) / static_cast<double>(m.matched), 0.70)
      << platform::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CrossSystemRecall,
                         ::testing::Values(platform::SystemName::S1, platform::SystemName::S2,
                                           platform::SystemName::S3, platform::SystemName::S4,
                                           platform::SystemName::S5));

TEST(IntegrationTest, RootCauseAccuracyIsHigh) {
  const auto p = run_pipeline(platform::SystemName::S1, 21, 7002);
  const auto m = match_against_truth(p);
  ASSERT_GT(m.matched, 30u);
  const double accuracy =
      static_cast<double>(m.cause_correct) / static_cast<double>(m.matched);
  EXPECT_GE(accuracy, 0.75) << "cause confusion:\n"
                            << core::render_cause_table(
                                   core::cause_breakdown(p.failures), "diagnosed");
}

TEST(IntegrationTest, ParseDropsNothingEssential) {
  const auto p = run_pipeline(platform::SystemName::S2, 7, 7003);
  // Every planted chain leaves markers; skipped lines must be a small
  // minority (job-trailing epilogue lines and unparsed chatter).
  EXPECT_LT(p.parsed.skipped_lines, p.parsed.total_lines / 5);
  EXPECT_GT(p.parsed.parsed_records, 0u);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const auto a = run_pipeline(platform::SystemName::S3, 7, 7004);
  const auto b = run_pipeline(platform::SystemName::S3, 7, 7004);
  ASSERT_EQ(a.sim.records.size(), b.sim.records.size());
  EXPECT_EQ(a.corpus.bytes(), b.corpus.bytes());
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].event.node.value, b.failures[i].event.node.value);
    EXPECT_EQ(a.failures[i].event.time.usec, b.failures[i].event.time.usec);
    EXPECT_EQ(a.failures[i].inference.cause, b.failures[i].inference.cause);
  }
}

TEST(IntegrationTest, S5HasNoExternalUniverse) {
  const auto p = run_pipeline(platform::SystemName::S5, 7, 7005);
  EXPECT_TRUE(p.corpus.of(logmodel::LogSource::Erd).empty());
  EXPECT_TRUE(p.corpus.of(logmodel::LogSource::Controller).empty());
  // And therefore no lead-time enhancements are possible (Observation 5).
  const core::LeadTimeAnalyzer analyzer(p.parsed.store);
  const auto summary = analyzer.summarize(p.failures);
  EXPECT_EQ(summary.enhanceable, 0u);
}

TEST(IntegrationTest, LeadTimesNonNegative) {
  const auto p = run_pipeline(platform::SystemName::S4, 14, 7006);
  const core::LeadTimeAnalyzer analyzer(p.parsed.store);
  for (const auto& lt : analyzer.lead_times(p.failures)) {
    EXPECT_GE(lt.internal_lead.usec, 0);
    if (lt.external_lead) {
      EXPECT_GT(lt.external_lead->usec, lt.internal_lead.usec);
    }
  }
}

}  // namespace
}  // namespace hpcfail
