// Fixture: fault-site inventory matching the uses in fault_user.cpp.
#include "util/fault.hpp"

constexpr const char* kSites[] = {
    "ingest.read.badbit",
    "store.append_batch.bad_alloc",
    "store.snapshot.read_io",
    "store.snapshot.write_io",
};
