#include "jobs/job_table.hpp"

#include <algorithm>

namespace hpcfail::jobs {

JobTable JobTable::from_jobs(const std::vector<Job>& jobs) {
  JobTable table;
  for (const auto& j : jobs) {
    JobInfo info;
    info.job_id = j.job_id;
    info.apid = j.apid;
    info.user = j.user;
    info.app_name = j.app_name;
    info.start = j.start;
    info.end = j.end;
    info.mem_per_node_gb = j.mem_per_node_gb;
    info.nodes = j.nodes;
    info.exit_code = j.exit_code();
    info.end_reason = std::string(to_string(j.outcome));
    info.ended = true;
    info.overallocated = j.outcome == JobOutcome::Overallocated;
    info.overallocated_nodes = j.overallocated_nodes;
    info.cancelled = j.outcome == JobOutcome::UserCancelled;
    table.add_start(std::move(info));
  }
  table.finalize();
  return table;
}

void JobTable::add_start(JobInfo info) {
  finalized_ = false;
  const auto it = by_id_.find(info.job_id);
  if (it != by_id_.end()) {
    jobs_[it->second] = std::move(info);
    return;
  }
  by_id_[info.job_id] = jobs_.size();
  jobs_.push_back(std::move(info));
}

void JobTable::add_end(std::int64_t job_id, util::TimePoint end, int exit_code,
                       std::string reason) {
  const auto it = by_id_.find(job_id);
  if (it == by_id_.end()) return;
  JobInfo& info = jobs_[it->second];
  info.end = end;
  info.exit_code = exit_code;
  info.end_reason = std::move(reason);
  info.ended = true;
}

void JobTable::mark_overallocated(std::int64_t job_id, std::uint32_t node_count) {
  const auto it = by_id_.find(job_id);
  if (it == by_id_.end()) return;
  jobs_[it->second].overallocated = true;
  jobs_[it->second].overallocated_nodes = node_count;
}

void JobTable::mark_cancelled(std::int64_t job_id) {
  const auto it = by_id_.find(job_id);
  if (it != by_id_.end()) jobs_[it->second].cancelled = true;
}

void JobTable::finalize() {
  if (finalized_) return;
  // CSR build: count per node, prefix-sum into offsets, fill job indexes,
  // then sort each node's run by start time (see util/csr.hpp).
  by_node_ = {};
  std::uint32_t node_keys = 0;
  for (const JobInfo& j : jobs_) {
    for (const auto node : j.nodes) node_keys = std::max(node_keys, node.value + 1);
  }
  if (node_keys != 0) {
    by_node_.offsets.assign(std::size_t{node_keys} + 1, 0);
    for (const JobInfo& j : jobs_) {
      for (const auto node : j.nodes) ++by_node_.offsets[node.value + 1];
    }
    for (std::size_t k = 1; k < by_node_.offsets.size(); ++k) {
      by_node_.offsets[k] += by_node_.offsets[k - 1];
    }
    by_node_.entries.resize(by_node_.offsets.back());
    std::vector<std::uint32_t> cursor = by_node_.offsets;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      for (const auto node : jobs_[i].nodes) {
        by_node_.entries[cursor[node.value]++] = static_cast<std::uint32_t>(i);
      }
    }
    for (std::uint32_t k = 0; k < node_keys; ++k) {
      const auto begin = by_node_.entries.begin() + by_node_.offsets[k];
      const auto end = by_node_.entries.begin() + by_node_.offsets[k + 1];
      std::sort(begin, end, [this](std::uint32_t a, std::uint32_t b) {
        return jobs_[a].start < jobs_[b].start;
      });
    }
  }
  finalized_ = true;
}

const JobInfo* JobTable::find(std::int64_t job_id) const noexcept {
  const auto it = by_id_.find(job_id);
  return it == by_id_.end() ? nullptr : &jobs_[it->second];
}

const JobInfo* JobTable::job_on_node_at(platform::NodeId node, util::TimePoint t,
                                        util::Duration slack) const noexcept {
  for (const std::uint32_t idx : by_node_.of(node.value)) {
    const JobInfo& j = jobs_[idx];
    if (j.start - slack <= t && t < j.end + slack) return &j;
    if (j.start - slack > t) break;  // sorted by start; no later job matches
  }
  return nullptr;
}

std::vector<const JobInfo*> JobTable::running_at(util::TimePoint t) const {
  std::vector<const JobInfo*> out;
  for (const auto& j : jobs_) {
    if (j.start <= t && t < j.end) out.push_back(&j);
  }
  return out;
}

}  // namespace hpcfail::jobs
