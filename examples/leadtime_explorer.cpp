// Lead-time exploration: how much earlier can failures be flagged when
// external (controller/ERD) indicators are correlated with the internal
// chains?  Reproduces the Section III-D methodology on a fail-slow-heavy
// scenario and sweeps the correlation window, the knob DESIGN.md calls out
// as ablation candidate #3.
//
//   ./examples/leadtime_explorer [days] [seed]
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const int days = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  // A hardware-heavy S4 scenario: half the failures are fail-slow.
  faultsim::ScenarioConfig scenario =
      faultsim::scenario_preset(platform::SystemName::S4, days, seed);
  scenario.failures.cause_weights = faultsim::make_cause_mix({
      {logmodel::RootCause::FailSlowHardware, 40},
      {logmodel::RootCause::HardwareMce, 25},
      {logmodel::RootCause::LustreBug, 20},
      {logmodel::RootCause::MemoryExhaustion, 15},
  });

  const auto sim = faultsim::Simulator(scenario).run();
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus);

  // One engine run: failures plus their default-config lead times.
  const core::AnalysisEngine engine;
  const auto analysis =
      engine.analyze(parsed.store, &parsed.jobs, scenario.begin, scenario.end());
  const auto& failures = analysis.failures;
  std::cout << "diagnosed " << failures.size() << " failures on " << corpus.system.label
            << " over " << days << " days\n\n";

  // Per-failure lead times (first 15 rows).
  const auto& lead_times = analysis.lead_times;
  util::TextTable table(
      {"node", "cause", "internal lead", "external lead", "gain"});
  std::size_t shown = 0;
  for (const auto& lt : lead_times) {
    if (shown >= 15) break;
    const auto& f = failures[lt.failure_index];
    table.row()
        .cell(parsed.topology.node_name(f.event.node))
        .cell(std::string(to_string(f.inference.cause)))
        .cell(util::format_duration(lt.internal_lead))
        .cell(lt.external_lead ? util::format_duration(*lt.external_lead) : "-")
        .cell(lt.external_lead ? util::format_duration(*lt.external_lead - lt.internal_lead)
                               : "-");
    ++shown;
  }
  std::cout << table.render() << '\n';

  // Sweep the external correlation window: too narrow misses indicators,
  // too wide starts matching ambient noise.  The sweep drops below the
  // facade to the LeadTimeAnalyzer so only the swept stage reruns (the
  // predictor evaluation is not part of AnalysisResult).
  util::TextTable sweep({"window (min)", "enhanceable", "mean factor", "FP rate (gated)"});
  for (const int window : {10, 30, 60, 120, 240}) {
    core::LeadTimeConfig cfg;
    cfg.external_lookback = util::Duration::minutes(window);
    const core::LeadTimeAnalyzer swept(parsed.store, cfg);
    const auto summary = swept.summarize(failures);
    const auto gated = swept.evaluate_predictor(failures, /*require_external=*/true);
    sweep.row()
        .cell(static_cast<std::int64_t>(window))
        .pct(summary.enhanceable_fraction())
        .cell(summary.enhancement_factor(), 2)
        .pct(gated.fp_rate());
  }
  std::cout << "correlation-window sweep:\n" << sweep.render();
  return 0;
}
