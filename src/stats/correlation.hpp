// Correlation and association measures used by the external-influence
// analysis: Pearson/Spearman for sensor series, chi-square and Cramer's V
// for fault-vs-failure contingency tables.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcfail::stats {

/// Pearson correlation coefficient; 0 when either side is constant or the
/// spans are empty / mismatched.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Spearman rank correlation (Pearson over mid-ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// R x C contingency table of observation counts.
class ContingencyTable {
 public:
  ContingencyTable(std::size_t rows, std::size_t cols);

  void add(std::size_t row, std::size_t col, std::uint64_t n = 1);

  [[nodiscard]] std::uint64_t at(std::size_t row, std::size_t col) const noexcept {
    return cells_[row * cols_ + col];
  }
  [[nodiscard]] std::uint64_t row_total(std::size_t row) const noexcept;
  [[nodiscard]] std::uint64_t col_total(std::size_t col) const noexcept;
  [[nodiscard]] std::uint64_t grand_total() const noexcept { return total_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Pearson chi-square statistic; 0 when any margin is empty.
  [[nodiscard]] double chi_square() const noexcept;

  /// Degrees of freedom (rows-1)*(cols-1).
  [[nodiscard]] std::size_t dof() const noexcept { return (rows_ - 1) * (cols_ - 1); }

  /// Upper-tail p-value of the chi-square statistic.
  [[nodiscard]] double p_value() const noexcept;

  /// Cramer's V in [0, 1]; association strength independent of sample size.
  [[nodiscard]] double cramers_v() const noexcept;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// Regularized lower incomplete gamma P(a, x) (series + continued fraction).
[[nodiscard]] double regularized_gamma_p(double a, double x) noexcept;

/// Upper-tail probability of a chi-square variable with `dof` degrees of
/// freedom exceeding `x`.
[[nodiscard]] double chi_square_sf(double x, std::size_t dof) noexcept;

}  // namespace hpcfail::stats
