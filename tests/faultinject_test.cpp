// Self-fault-injection sweep: every registered fault site (util/fault.hpp)
// is armed one at a time against the full simulate -> write -> ingest ->
// snapshot save -> snapshot load pipeline, and every run must end in one
// of exactly two ways — a structured error (IngestError / SnapshotError,
// or the writers' fail-loud std::runtime_error) or a record-accurate
// partial result whose metrics account for every line seen.  No crash, no
// hang, no silent truncation.  CI repeats this suite under ASan.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <stdexcept>
#include <string>

#include "faultsim/scenario_io.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"
#include "parsers/snapshot.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail {
namespace {

using util::FaultInjector;

/// RAII install/uninstall so a failing assertion can't leak an armed
/// injector into the next test.
class ScopedInjector {
 public:
  explicit ScopedInjector(FaultInjector& inj) { util::install_fault_injector(&inj); }
  ~ScopedInjector() { util::install_fault_injector(nullptr); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;
};

loggen::Corpus small_corpus() {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 1, 4242))
          .run();
  return loggen::build_corpus(sim);
}

std::map<std::string, std::uint64_t> counter_map(const util::MetricsRegistry& registry) {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : registry.counters()) out[name] = value;
  return out;
}

// ------------------------------------------------------- injector unit ----

TEST(FaultInjectorTest, UnknownSiteThrows) {
  FaultInjector inj;
  EXPECT_THROW(inj.arm("ingest.read.no_such_site"), std::invalid_argument);
  EXPECT_THROW(inj.arm_spec("definitely.not.a.site:1"), std::invalid_argument);
}

TEST(FaultInjectorTest, SpecGrammar) {
  FaultInjector inj;
  inj.arm_spec("ingest.read.badbit:3,store.append_batch.bad_alloc");
  EXPECT_FALSE(inj.hit("ingest.read.badbit"));
  EXPECT_FALSE(inj.hit("ingest.read.badbit"));
  EXPECT_TRUE(inj.hit("ingest.read.badbit"));   // third hit fires
  EXPECT_FALSE(inj.hit("ingest.read.badbit"));  // fires exactly once
  EXPECT_TRUE(inj.hit("store.append_batch.bad_alloc"));  // default n = 1
  EXPECT_EQ(inj.hits("ingest.read.badbit"), 4u);
  EXPECT_EQ(inj.fires("ingest.read.badbit"), 1u);
  EXPECT_EQ(inj.total_fires(), 2u);

  FaultInjector bad;
  EXPECT_THROW(bad.arm_spec(""), std::invalid_argument);
  EXPECT_THROW(bad.arm_spec("ingest.read.badbit:"), std::invalid_argument);
  EXPECT_THROW(bad.arm_spec("ingest.read.badbit:0"), std::invalid_argument);
  EXPECT_THROW(bad.arm_spec("ingest.read.badbit:two"), std::invalid_argument);
  EXPECT_THROW(bad.arm_spec("ingest.read.badbit,,"), std::invalid_argument);
}

TEST(FaultInjectorTest, UnarmedSitesAreFree) {
  FaultInjector inj;
  EXPECT_FALSE(inj.hit("ingest.read.badbit"));
  EXPECT_EQ(inj.hits("ingest.read.badbit"), 0u);
  // Nothing installed: sites pass straight through.
  EXPECT_FALSE(util::fault_should_fire("ingest.read.badbit"));
}

TEST(FaultInjectorTest, InventoryIsSortedUniqueAndStyled) {
  const auto sites = FaultInjector::sites();
  ASSERT_FALSE(sites.empty());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(sites[i - 1], sites[i]) << "inventory must be sorted/unique";
    }
    // <layer>.<component>.<kind>, lowercase snake_case segments.
    std::size_t segments = 1;
    for (const char c : sites[i]) {
      if (c == '.') {
        ++segments;
        continue;
      }
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << "bad character in site name " << sites[i];
    }
    EXPECT_GE(segments, 3u) << sites[i];
  }
}

// --------------------------------------------------- targeted regressions ----

/// The EOF-conflation bug class: a stream error mid-corpus must surface as
/// a structured StreamIo error with the byte offset — never parse as a
/// quietly shorter corpus (the pre-PR7 behavior).
TEST(FaultInjectTest, BadbitSurfacesAsStructuredErrorNotTruncation) {
  const loggen::Corpus corpus = small_corpus();
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = "/tmp/hpcfail_faultinject_badbit";
  std::filesystem::remove_all(dir);
  loggen::write_corpus(corpus, dir);

  FaultInjector inj;
  inj.arm("ingest.read.badbit", 3);  // mid-file, not the first read
  const ScopedInjector scope(inj);
  parsers::IngestOptions options;
  options.chunk_bytes = 4096;  // many reads per file, so hit 3 is mid-stream
  const auto result = parsers::ingest_files(dir, options);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->kind, parsers::IngestErrorKind::StreamIo);
  EXPECT_GT(result.error->byte_offset, 0u);
  EXPECT_NE(result.error->message.find("not EOF"), std::string::npos);
  EXPECT_NE(result.error->file.find(".log"), std::string::npos);
  EXPECT_NE(result.error->to_string().find("stream-io"), std::string::npos);
  // The partial result is smaller than the full parse, and says so.
  EXPECT_LT(result.parsed_records, reference.parsed_records);
  EXPECT_EQ(result.parsed_records + result.skipped_lines, result.total_lines);
  EXPECT_EQ(inj.fires("ingest.read.badbit"), 1u);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectTest, MissingFilePolicySkipCountsAndErrorStops) {
  const loggen::Corpus corpus = small_corpus();
  const std::string dir = "/tmp/hpcfail_faultinject_missing";
  std::filesystem::remove_all(dir);
  loggen::write_corpus(corpus, dir);
  // The S2 corpus has no consumer log, so one source file is already
  // legitimately absent; deleting the console log adds a second.
  ASSERT_TRUE(std::filesystem::remove(std::filesystem::path(dir) / "p0-console.log"));

  util::MetricsRegistry registry;
  util::install_metrics(&registry);
  parsers::IngestOptions options;
  {
    util::ThreadPool pool(2);
    options.pool = &pool;
    const auto skipped = parsers::ingest_files(dir, options);
    EXPECT_TRUE(skipped.ok());  // today's behavior, but no longer invisible:
    EXPECT_EQ(counter_map(registry)["hpcfail.ingest.files_missing"], 2u);
    EXPECT_GT(skipped.parsed_records, 0u);
  }
  util::install_metrics(nullptr);
  options.pool = nullptr;

  // Error policy stops on the first absent source in canonical order.
  options.missing_file_policy = parsers::MissingFilePolicy::Error;
  const auto stopped = parsers::ingest_files(dir, options);
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.error->kind, parsers::IngestErrorKind::MissingFile);
  EXPECT_EQ(stopped.error->source, logmodel::LogSource::Console);
  EXPECT_NE(stopped.error->file.find("p0-console.log"), std::string::npos);
  EXPECT_EQ(stopped.parsed_records, 0u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------------- the sweep ----

/// One full pipeline pass under an armed site: scenario serialization,
/// corpus write, chunked ingest.  Returns via gtest assertions only.
void run_armed_pipeline(const std::string& site) {
  SCOPED_TRACE("armed site: " + site);
  const auto config = faultsim::scenario_preset(platform::SystemName::S2, 1, 4242);
  const loggen::Corpus corpus = small_corpus();
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = "/tmp/hpcfail_faultinject_sweep";
  std::filesystem::remove_all(dir);

  FaultInjector inj;
  inj.arm(site, 2);  // not the first hit: mid-run faults are the hard case
  util::MetricsRegistry registry;
  util::install_metrics(&registry);
  const ScopedInjector scope(inj);

  // Stage 1+2: the writers (scenario serialization, corpus files).  Either
  // they succeed or they fail loud; a thrown writer error ends this site's
  // sweep entry — there is nothing to ingest.
  bool wrote = false;
  try {
    (void)faultsim::scenario_to_string(config);
    (void)faultsim::scenario_to_string(config);  // second hit for n=2 schedules
    loggen::write_corpus(corpus, dir);
    wrote = true;
  } catch (const std::bad_alloc&) {
    // structured enough: allocation fault escaped before any file existed
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("write_corpus"), std::string::npos)
        << "writer failure must name the writer, got: " << e.what();
  }

  if (wrote) {
    // Stage 3: chunked ingest with small chunks so mid-corpus sites hit
    // several times per file, on a 2-thread pool.
    parsers::IngestOptions options;
    options.chunk_bytes = 4096;
    parsers::IngestResult result;
    {
      util::ThreadPool pool(2);
      options.pool = &pool;
      result = parsers::ingest_files(dir, options);
    }

    if (result.ok()) {
      // Graceful degradation: a record-accurate partial (or full) result.
      // Every line seen is either a record or an accounted skip, and the
      // counters agree with the in-memory totals.
      EXPECT_EQ(result.parsed_records + result.skipped_lines, result.total_lines);
      EXPECT_EQ(result.parsed_records, result.store.size());
      EXPECT_LE(result.parsed_records, reference.parsed_records);
      const auto counters = counter_map(registry);
      EXPECT_EQ(counters.at("hpcfail.ingest.records_parsed"), result.parsed_records);
      EXPECT_EQ(counters.at("hpcfail.ingest.lines_skipped"), result.skipped_lines);
      if (inj.total_fires() > 0 && site.rfind("ingest.", 0) == 0) {
        EXPECT_GE(counters.at("hpcfail.ingest.faults_injected"), 1u);
      }

      // Stage 4+5: snapshot save -> load of the clean parse.  Each snapshot
      // site is hit once per header/section transfer, so the n=2 schedule
      // lands mid-file; the outcome must be binary — a loaded corpus equal
      // to the ingested one, or a structured SnapshotError and nothing.
      const std::string snap = dir + "/sweep.snap";
      if (const auto save_err = parsers::save_snapshot(result, snap)) {
        EXPECT_EQ(save_err->kind, util::SnapshotError::Kind::Io)
            << save_err->to_string();
        // A torn write must never leave a file that validates.
        EXPECT_FALSE(parsers::load_snapshot(snap).ok());
      } else {
        const auto loaded = parsers::load_snapshot(snap);
        if (loaded.ok()) {
          EXPECT_EQ(loaded.store.size(), result.store.size());
          EXPECT_EQ(loaded.jobs.size(), result.jobs.size());
          EXPECT_EQ(loaded.total_lines, result.total_lines);
        } else {
          EXPECT_EQ(loaded.error->kind, util::SnapshotError::Kind::Io)
              << loaded.error->to_string();
          // Never a partial corpus on a failed load.
          EXPECT_EQ(loaded.store.size(), 0u);
          EXPECT_EQ(loaded.jobs.size(), 0u);
        }
      }

      // Stage 6: the serve layer.  Boot a daemon over the ingested corpus,
      // advance its tail twice and answer three requests, so both serve
      // sites see >= 2 hits per pass (tail.read_io hits once per
      // data-bearing poll, request.parse once per request).  A fired site
      // must surface as a structured TailError / error response — the
      // daemon itself always survives.
      const std::string tail_path = dir + "/serve-tail.log";
      serve::Server server(std::move(result));
      server.attach_tail(tail_path, logmodel::LogSource::Console);

      const auto append_and_poll = [&](std::string_view text) {
        {
          std::ofstream tail(tail_path, std::ios::app);
          tail << text << "\n";
        }
        const auto poll = server.poll_tail();
        if (!poll.ok()) {
          EXPECT_FALSE(poll.error->message.empty());
          EXPECT_EQ(poll.error->file, tail_path);
          EXPECT_NE(poll.error->to_string().find(tail_path), std::string::npos);
          // The offset did not advance: the retry poll drains the backlog.
          EXPECT_TRUE(server.poll_tail().ok());
        }
      };
      append_and_poll("tail line one (not a parsable console record)");
      append_and_poll("tail line two (not a parsable console record)");

      for (const std::string_view request :
           {std::string_view(R"({"id":1,"verb":"ping"})"),
            std::string_view(R"({"id":2,"verb":"status"})"),
            std::string_view(R"({"id":3,"verb":"ping"})")}) {
        const std::string response = server.handle_line(request);
        ASSERT_FALSE(response.empty());
        EXPECT_EQ(response.front(), '{');
        EXPECT_NE(response.find("\"id\":"), std::string::npos)
            << "response must echo an id, got: " << response;
      }
      EXPECT_FALSE(server.shutdown_requested());
    } else {
      // Structured failure: kind + message + source set, and the partial
      // store still accounts for exactly what was retired.
      EXPECT_FALSE(result.error->message.empty());
      EXPECT_EQ(result.parsed_records + result.skipped_lines, result.total_lines);
      EXPECT_EQ(result.parsed_records, result.store.size());
    }
  }

  util::install_metrics(nullptr);
  // The site must actually have fired: a sweep that never reaches its
  // sites proves nothing.  Every site in the inventory is hit at least
  // twice per pipeline pass, so the nth=2 schedule always lands.
  EXPECT_EQ(inj.fires(site), 1u)
      << "site " << site << " never fired (hits=" << inj.hits(site) << ")";
  std::filesystem::remove_all(dir);
}

class FaultSiteSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultSiteSweep, DegradesGracefullyOrFailsStructured) {
  run_armed_pipeline(GetParam());
}

std::vector<std::string> all_sites() {
  std::vector<std::string> out;
  for (const auto site : FaultInjector::sites()) out.emplace_back(site);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSites, FaultSiteSweep, ::testing::ValuesIn(all_sites()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hpcfail
