file(REMOVE_RECURSE
  "CMakeFiles/fig15_s5_calltraces.dir/fig15_s5_calltraces.cpp.o"
  "CMakeFiles/fig15_s5_calltraces.dir/fig15_s5_calltraces.cpp.o.d"
  "fig15_s5_calltraces"
  "fig15_s5_calltraces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_s5_calltraces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
