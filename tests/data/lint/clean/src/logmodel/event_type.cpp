#include "logmodel/event_type.hpp"

namespace hpcfail::logmodel {

constexpr const char* kEventNames[] = {
    "NodeHeartbeatFault",
    "NodeVoltageFault",
};

}  // namespace hpcfail::logmodel
