file(REMOVE_RECURSE
  "CMakeFiles/jobs_test.dir/jobs_test.cpp.o"
  "CMakeFiles/jobs_test.dir/jobs_test.cpp.o.d"
  "jobs_test"
  "jobs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
