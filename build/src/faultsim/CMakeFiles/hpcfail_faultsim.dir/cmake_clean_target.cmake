file(REMOVE_RECURSE
  "libhpcfail_faultsim.a"
)
