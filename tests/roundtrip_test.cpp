// Round-trip property suite: simulate -> render raw text -> parse, then
// compare the parsed records against the originals.  This is the fidelity
// guarantee behind every figure bench: the analysis pipeline sees exactly
// what the simulator produced, through nothing but raw log text.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"

namespace hpcfail {
namespace {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;

struct RoundTripCase {
  platform::SystemName system;
  std::uint64_t seed;
};

class RoundTrip : public ::testing::TestWithParam<RoundTripCase> {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<faultsim::SimulationResult>(
        faultsim::Simulator(faultsim::scenario_preset(GetParam().system, 3, GetParam().seed))
            .run());
    corpus_ = loggen::build_corpus(*sim_);
    parsed_ = std::make_unique<parsers::ParsedCorpus>(parsers::parse_corpus(corpus_));
  }

  /// Originals that are expected to survive the text round trip.
  [[nodiscard]] std::vector<const LogRecord*> expected_records() const {
    const bool has_external = GetParam().system != platform::SystemName::S5;
    std::vector<const LogRecord*> out;
    for (const auto& r : sim_->records) {
      if (r.source == LogSource::Scheduler) continue;  // rendered from jobs
      if (!has_external &&
          (r.source == LogSource::Controller || r.source == LogSource::Erd)) {
        continue;
      }
      out.push_back(&r);
    }
    return out;
  }

  std::unique_ptr<faultsim::SimulationResult> sim_;
  loggen::Corpus corpus_;
  std::unique_ptr<parsers::ParsedCorpus> parsed_;
};

TEST_P(RoundTrip, OnlyChatterIsSkipped) {
  // Routine chatter lines are skipped by design — and nothing else.
  EXPECT_EQ(parsed_->skipped_lines, corpus_.chatter_lines);
  EXPECT_GT(corpus_.chatter_lines, 0u);
  EXPECT_GT(parsed_->parsed_records, 0u);
}

TEST_P(RoundTrip, PerTypeCountsSurvive) {
  std::map<EventType, std::size_t> original, parsed;
  for (const auto* r : expected_records()) ++original[r->type];
  for (const auto& r : parsed_->store.records()) {
    if (r.source == LogSource::Scheduler) continue;
    ++parsed[r.type];
  }
  for (const auto& [type, count] : original) {
    EXPECT_EQ(parsed[type], count) << to_string(type);
  }
}

TEST_P(RoundTrip, RecordFieldsSurvive) {
  // Sort both sides by (time, type, location) and compare element-wise.
  // Messages-file syslog stamps truncate to seconds, so their key uses
  // second precision; every other source preserves microseconds exactly.
  auto key = [](const LogRecord& r) {
    const std::int64_t t =
        r.source == LogSource::Messages ? r.time.usec / 1'000'000 * 1'000'000 : r.time.usec;
    return std::tuple(t, static_cast<int>(r.type), r.node.value, r.blade.value,
                      r.cabinet.value);
  };
  auto originals = expected_records();
  std::vector<const LogRecord*> round_tripped;
  for (const auto& r : parsed_->store.records()) {
    if (r.source != LogSource::Scheduler) round_tripped.push_back(&r);
  }
  ASSERT_EQ(originals.size(), round_tripped.size());
  auto cmp = [&key](const LogRecord* a, const LogRecord* b) { return key(*a) < key(*b); };
  std::sort(originals.begin(), originals.end(), cmp);
  std::sort(round_tripped.begin(), round_tripped.end(), cmp);

  for (std::size_t i = 0; i < originals.size(); ++i) {
    const LogRecord& a = *originals[i];
    const LogRecord& b = *round_tripped[i];
    ASSERT_EQ(a.type, b.type) << i;
    EXPECT_EQ(a.node.value, b.node.value);
    EXPECT_EQ(a.blade.value, b.blade.value);
    EXPECT_EQ(a.cabinet.value, b.cabinet.value);
    EXPECT_EQ(a.job_id, b.job_id) << to_string(a.type);
    // Messages-file syslog stamps truncate to seconds; others are exact.
    const std::int64_t tolerance_usec =
        a.source == LogSource::Messages ? 1'000'000 : 0;
    EXPECT_LE(std::abs(a.time.usec - b.time.usec), tolerance_usec) << to_string(a.type);
    if (a.type == EventType::SedcReading) {
      EXPECT_NEAR(a.value, b.value, 5e-4);  // rendered with 3 decimals
      EXPECT_EQ(sim_->symbols.view(a.detail), parsed_->store.detail(b));
    }
    if (a.type == EventType::CallTrace) {
      // Stack module must survive exactly (the two sides intern into
      // different tables, so compare resolved text).
      EXPECT_EQ(sim_->symbols.view(a.detail), parsed_->store.detail(b));
    }
  }
}

TEST_P(RoundTrip, JobTableSurvives) {
  const jobs::JobTable original = jobs::JobTable::from_jobs(sim_->jobs);
  ASSERT_EQ(parsed_->jobs.size(), original.size());
  for (const auto& job : original.jobs()) {
    const auto* back = parsed_->jobs.find(job.job_id);
    ASSERT_NE(back, nullptr) << job.job_id;
    EXPECT_EQ(back->app_name, job.app_name);
    EXPECT_EQ(back->user, job.user);
    EXPECT_EQ(back->apid, job.apid);
    EXPECT_EQ(back->exit_code, job.exit_code);
    EXPECT_EQ(back->nodes.size(), job.nodes.size());
    EXPECT_EQ(back->overallocated, job.overallocated);
    EXPECT_EQ(back->cancelled, job.cancelled);
    EXPECT_EQ(back->start.usec, job.start.usec);
    EXPECT_EQ(back->end.usec, job.end.usec);
    EXPECT_NEAR(back->mem_per_node_gb, job.mem_per_node_gb, 0.051);  // "%.1fG"
    // The compressed NodeList is sorted, so compare as sets.
    auto lhs = job.nodes;
    auto rhs = back->nodes;
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(rhs[i].value, lhs[i].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Systems, RoundTrip,
    ::testing::Values(RoundTripCase{platform::SystemName::S1, 31},
                      RoundTripCase{platform::SystemName::S2, 32},
                      RoundTripCase{platform::SystemName::S3, 33},
                      RoundTripCase{platform::SystemName::S4, 34},
                      RoundTripCase{platform::SystemName::S5, 35}));

}  // namespace
}  // namespace hpcfail
