#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace hpcfail::util {

std::int64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double product = uniform();
    std::int64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = std::max(0.0, weights[i]);
    if (target < w) return i;
    target -= w;
  }
  // Floating-point round-off can step past the last positive weight.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  k = std::min(k, n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // population sizes the simulator uses (nodes per system <= ~10k).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace hpcfail::util
