// Parametric fits for time-between-failure distributions.  The paper reports
// MTBFs per window; fitting exponential / Weibull / log-normal models lets
// the benches characterize burstiness (Weibull shape < 1 indicates the
// clustered failures of Observation 1).
#pragma once

#include <optional>
#include <span>
#include <string>

namespace hpcfail::stats {

struct ExponentialFit {
  double rate = 0.0;  ///< 1 / mean
  [[nodiscard]] double mean() const noexcept { return rate > 0 ? 1.0 / rate : 0.0; }
};

struct WeibullFit {
  double shape = 1.0;  ///< k; < 1 means bursty (decreasing hazard)
  double scale = 1.0;  ///< lambda
};

struct LogNormalFit {
  double mu = 0.0;
  double sigma = 1.0;
};

/// MLE; requires at least one strictly positive sample.
[[nodiscard]] std::optional<ExponentialFit> fit_exponential(std::span<const double> sample);

/// MLE via Newton iteration on the shape profile likelihood; requires at
/// least two strictly positive, non-identical samples.
[[nodiscard]] std::optional<WeibullFit> fit_weibull(std::span<const double> sample);

/// MLE of the log-transformed sample; requires positive samples.
[[nodiscard]] std::optional<LogNormalFit> fit_lognormal(std::span<const double> sample);

/// One-sample Kolmogorov-Smirnov distance between the sample and a model CDF.
[[nodiscard]] double ks_statistic_exponential(std::span<const double> sample,
                                              const ExponentialFit& fit);
[[nodiscard]] double ks_statistic_weibull(std::span<const double> sample,
                                          const WeibullFit& fit);

}  // namespace hpcfail::stats
