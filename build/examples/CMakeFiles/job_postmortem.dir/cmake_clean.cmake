file(REMOVE_RECURSE
  "CMakeFiles/job_postmortem.dir/job_postmortem.cpp.o"
  "CMakeFiles/job_postmortem.dir/job_postmortem.cpp.o.d"
  "job_postmortem"
  "job_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
