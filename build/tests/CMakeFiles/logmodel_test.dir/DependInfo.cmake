
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logmodel_test.cpp" "tests/CMakeFiles/logmodel_test.dir/logmodel_test.cpp.o" "gcc" "tests/CMakeFiles/logmodel_test.dir/logmodel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hpcfail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parsers/CMakeFiles/hpcfail_parsers.dir/DependInfo.cmake"
  "/root/repo/build/src/loggen/CMakeFiles/hpcfail_loggen.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/hpcfail_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/hpcfail_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/hpcfail_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/logmodel/CMakeFiles/hpcfail_logmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hpcfail_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
