// Minimal logistic regression for the learned failure predictor
// (core/prediction).  Full-batch gradient descent with L2 regularization
// and built-in feature standardization; deterministic given the data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcfail::stats {

struct LogisticModel {
  std::vector<double> weights;  ///< per standardized feature
  double bias = 0.0;
  std::vector<double> feature_means;
  std::vector<double> feature_stds;  ///< 1 where a feature is constant

  /// P(y=1 | x) for a raw (unstandardized) feature vector.
  [[nodiscard]] double predict(std::span<const double> features) const;
};

struct LogisticTrainConfig {
  int epochs = 300;
  double learning_rate = 0.5;
  double l2 = 1e-3;
};

/// Trains on rows X (equal lengths) with labels y in {0, 1}.
/// Requires at least one example of each class; throws otherwise.
[[nodiscard]] LogisticModel train_logistic(const std::vector<std::vector<double>>& x,
                                           const std::vector<int>& y,
                                           const LogisticTrainConfig& config = {});

struct BinaryMetrics {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  double auc = 0.0;  ///< ROC AUC via the rank statistic

  [[nodiscard]] double precision() const noexcept {
    return tp + fp ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  }
  [[nodiscard]] double recall() const noexcept {
    return tp + fn ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  }
  [[nodiscard]] double f1() const noexcept {
    const double p = precision(), r = recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  }
  [[nodiscard]] double accuracy() const noexcept {
    const auto total = tp + fp + tn + fn;
    return total ? static_cast<double>(tp + tn) / static_cast<double>(total) : 0.0;
  }
  [[nodiscard]] double false_positive_rate() const noexcept {
    return fp + tn ? static_cast<double>(fp) / static_cast<double>(fp + tn) : 0.0;
  }
};

/// Evaluates a model at the given probability threshold.
[[nodiscard]] BinaryMetrics evaluate_logistic(const LogisticModel& model,
                                              const std::vector<std::vector<double>>& x,
                                              const std::vector<int>& y,
                                              double threshold = 0.5);

}  // namespace hpcfail::stats
