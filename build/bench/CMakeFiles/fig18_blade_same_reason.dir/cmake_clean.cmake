file(REMOVE_RECURSE
  "CMakeFiles/fig18_blade_same_reason.dir/fig18_blade_same_reason.cpp.o"
  "CMakeFiles/fig18_blade_same_reason.dir/fig18_blade_same_reason.cpp.o.d"
  "fig18_blade_same_reason"
  "fig18_blade_same_reason.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_blade_same_reason.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
