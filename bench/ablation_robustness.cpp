// Ablation: analysis robustness under the paper's logging discrepancies
// (challenge 1) — random line loss, corruption, missing windows, and absent
// environmental sources, measured as detection recall and lead-time
// capability on degraded raw text.
#include "bench_common.hpp"
#include "loggen/degrade.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Ablation: robustness to logging discrepancies");

  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 14, 910)).run();
  const auto corpus = loggen::build_corpus(sim);

  // Degraded corpora re-enter the unified path at the parse step: one
  // engine run per corpus yields failures and lead-time capability.
  const core::AnalysisEngine engine;

  auto recall_of = [&sim, &engine](const loggen::Corpus& c) {
    const auto parsed = parsers::parse_corpus(c);
    const auto failures = engine.analyze(parsed).failures;
    std::size_t matched = 0;
    for (const auto& truth : sim.truth.failures) {
      for (const auto& f : failures) {
        if (f.event.node == truth.node &&
            std::abs((f.event.time - truth.fail_time).usec) <=
                util::Duration::minutes(5).usec) {
          ++matched;
          break;
        }
      }
    }
    return sim.truth.failures.empty()
               ? 0.0
               : static_cast<double>(matched) / static_cast<double>(sim.truth.failures.size());
  };

  util::TextTable table({"line loss", "detection recall"});
  double recall_clean = 0.0, recall_heavy = 0.0;
  for (const double drop : {0.0, 0.05, 0.15, 0.30, 0.50}) {
    loggen::DegradeConfig cfg;
    cfg.drop_line_fraction = drop;
    const double recall = recall_of(loggen::degrade_corpus(corpus, cfg));
    table.row().pct(drop, 0).pct(recall);
    if (drop == 0.0) recall_clean = recall;
    if (drop == 0.50) recall_heavy = recall;
  }
  std::cout << table.render() << '\n';

  check.in_range("clean corpus recall", recall_clean, 0.97, 1.0);
  check.greater("graceful degradation: 50% loss still finds most failures", recall_heavy,
                0.55);
  check.greater("recall decreases with loss", recall_clean, recall_heavy);

  // Missing external universe: detection unharmed, lead times gone.
  loggen::DegradeConfig no_env;
  no_env.drop_source[static_cast<std::size_t>(logmodel::LogSource::Erd)] = true;
  no_env.drop_source[static_cast<std::size_t>(logmodel::LogSource::Controller)] = true;
  const auto degraded = loggen::degrade_corpus(corpus, no_env);
  check.in_range("no-external recall", recall_of(degraded), 0.95, 1.0);
  const auto no_env_analysis = engine.analyze(parsers::parse_corpus(degraded));
  check.in_range("no-external lead-time enhancements (must vanish)",
                 static_cast<double>(no_env_analysis.lead_time_summary.enhanceable), 0, 0);

  // Corrupted lines are rejected, not crashed on.
  loggen::DegradeConfig corrupt;
  corrupt.corrupt_line_fraction = 0.25;
  const auto noisy = parsers::parse_corpus(loggen::degrade_corpus(corpus, corrupt));
  check.greater("corruption rejected at parse", static_cast<double>(noisy.skipped_lines),
                1.0);
  return check.exit_code();
}
