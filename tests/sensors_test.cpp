// Unit tests for src/sensors: OU processes, blade sensors, fail-slow ramps.
#include <gtest/gtest.h>

#include "sensors/sensor_model.hpp"
#include "stats/summary.hpp"

namespace hpcfail::sensors {
namespace {

TEST(OuProcessTest, MeanReversion) {
  util::Rng rng(1);
  OuProcess p{40.0, 0.5, 1.0, 80.0};  // start far above the mean
  stats::StreamingStats tail;
  for (int i = 0; i < 5000; ++i) {
    const double v = p.step(rng, 1.0);
    if (i > 500) tail.add(v);
  }
  EXPECT_NEAR(tail.mean(), 40.0, 0.5);
  // Stationary stddev = sigma / sqrt(2a) = 1.
  EXPECT_NEAR(tail.stddev(), 1.0, 0.2);
}

TEST(OuProcessTest, DeterministicForSeed) {
  util::Rng a(5), b(5);
  OuProcess pa{0, 0.2, 1.0, 0}, pb{0, 0.2, 1.0, 0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(pa.step(a, 1.0), pb.step(b, 1.0));
  }
}

TEST(BladeSensorsTest, HealthyBladeRarelyViolates) {
  BladeSensors blade(util::Rng(7), /*deviant=*/false);
  int violations = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    blade.step(10.0);
    for (std::size_t k = 0; k < kSensorKindCount; ++k) {
      violations += blade.violates(static_cast<SensorKind>(k));
    }
  }
  EXPECT_LT(violations, samples / 20);
}

TEST(BladeSensorsTest, DeviantBladeViolatesOften) {
  BladeSensors blade(util::Rng(9), /*deviant=*/true);
  int violations = 0;
  const int samples = 1000;
  for (int i = 0; i < samples; ++i) {
    blade.step(10.0);
    violations += blade.violates(SensorKind::AirVelocity);
  }
  // The deviant blade's air velocity sits just below the low threshold.
  EXPECT_GT(violations, samples / 2);
  EXPECT_TRUE(blade.deviant());
}

TEST(BladeSensorsTest, PoweredOffReadsZero) {
  BladeSensors blade(util::Rng(11), false);
  blade.set_powered_off(true);
  blade.step(10.0);
  EXPECT_EQ(blade.reading(SensorKind::CpuTemperature), 0.0);
  EXPECT_FALSE(blade.violates(SensorKind::CpuTemperature));
}

TEST(BladeSensorsTest, TemperatureNearNominal) {
  BladeSensors blade(util::Rng(13), false);
  stats::StreamingStats temps;
  for (int i = 0; i < 2000; ++i) {
    blade.step(10.0);
    temps.add(blade.reading(SensorKind::CpuTemperature));
  }
  EXPECT_NEAR(temps.mean(), 40.0, 1.0);  // Fig 11's steady ~40 C
}

TEST(DefaultSpecTest, BandsContainNominal) {
  for (std::size_t k = 0; k < kSensorKindCount; ++k) {
    const SensorSpec spec = default_spec(static_cast<SensorKind>(k));
    EXPECT_LT(spec.warn_low, spec.nominal) << to_string(spec.kind);
    EXPECT_GT(spec.warn_high, spec.nominal) << to_string(spec.kind);
    EXPECT_GT(spec.sigma, 0.0);
  }
}

TEST(FailSlowRampTest, OffsetsClampAndRamp) {
  const FailSlowRamp ramp{100.0, 50.0, -3.0};
  EXPECT_EQ(ramp.offset_at(50.0), 0.0);
  EXPECT_EQ(ramp.offset_at(100.0), 0.0);
  EXPECT_NEAR(ramp.offset_at(125.0), -1.5, 1e-12);
  EXPECT_NEAR(ramp.offset_at(150.0), -3.0, 1e-12);
  EXPECT_NEAR(ramp.offset_at(1000.0), -3.0, 1e-12);
}

}  // namespace
}  // namespace hpcfail::sensors
