file(REMOVE_RECURSE
  "CMakeFiles/fig12_job_exit_codes.dir/fig12_job_exit_codes.cpp.o"
  "CMakeFiles/fig12_job_exit_codes.dir/fig12_job_exit_codes.cpp.o.d"
  "fig12_job_exit_codes"
  "fig12_job_exit_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_job_exit_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
