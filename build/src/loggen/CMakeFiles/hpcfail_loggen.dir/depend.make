# Empty dependencies file for hpcfail_loggen.
# This may be replaced when dependencies are built.
