# Empty dependencies file for tab01_systems.
# This may be replaced when dependencies are built.
