// hpcfail-lint: domain-specific static analysis for the hpcfail repo.
//
// Two families of checks share one source model (cxx_model.hpp):
//
//  Consistency checks (PR 1 lineage) keep three universes aligned:
//    1. what the emitters can produce   (src/faultsim/chain_emitter.cpp via
//       src/loggen/renderer.cpp templates),
//    2. what the parsers can recover    (src/parsers/line_classifier.cpp,
//       src/parsers/source_parsers.cpp),
//    3. what the documentation promises (FORMATS.md).
//
//  Semantic checks distill this repo's actual production bug history into
//  token-level passes over the C++ sources:
//    - capture-lifetime: the PR 1 ThreadPool use-after-scope class,
//    - dangling-view:    the PR 5 span/string_view-of-temporary class,
//    - finalize-protocol: the fail-loud std::logic_error contract added in
//      PR 2/3 for non-finalized LogStore/AnalysisContext access,
//    - raw-sync:         bare std::thread/detach()/new/const_cast that
//      bypass the instrumented util::ThreadPool and ownership rules.
//
// Every check emits gcc-style file:line diagnostics (clickable, CI-parsed);
// run_checks() can also be rendered as SARIF 2.1.0 (sarif.hpp) and gated
// against a committed baseline (baseline.hpp) so only regressions fail.
//
// The checks are exposed individually (the fixture tests run them against
// deliberately drifted mini-trees) and collectively via run_checks().
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::lint {

class SourceTree;

/// SARIF-aligned severities.  The gate (non-zero exit, CI failure) triggers
/// on Error; Warning and Note surface in output and SARIF but a run with
/// only those still exits clean.
enum class Severity { Error, Warning, Note };

[[nodiscard]] std::string_view to_string(Severity severity) noexcept;

struct Diagnostic {
  std::string file;     ///< path relative to the repo root
  std::size_t line;     ///< 1-based; 0 means "whole file"
  std::string check;    ///< check name, e.g. "erd-table"
  std::string message;
  Severity severity = Severity::Error;

  /// "file:line: error: [check] message" (gcc-style, clickable in editors).
  [[nodiscard]] std::string to_string() const;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  /// Clean for gating purposes: no Error-severity diagnostics.
  [[nodiscard]] bool ok() const noexcept;
  void add(std::string file, std::size_t line, std::string check, std::string message,
           Severity severity = Severity::Error);
};

// ---------------------------------------------------------------------------
// Consistency checks (line/regex level)
// ---------------------------------------------------------------------------

/// ERD event-name table: renderer's erd_event_name() and the classifier's
/// erd_event_type() must be exact inverses (same names, same EventTypes).
void check_erd_tables(SourceTree& tree, Report& report);

/// kEventNames in event_type.cpp must list exactly the EventType enumerators
/// of event_type.hpp, in declaration order (to_string indexes by value).
void check_event_names(SourceTree& tree, Report& report);

/// Every payload template the renderer can emit per source (console,
/// controller) must have a matching classifier rule, and vice versa.
void check_payload_coverage(SourceTree& tree, Report& report);

/// FORMATS.md tables must match the code: console signature table rows are
/// real EventTypes covered by renderer+classifier, and the documented ERD
/// event-name vocabulary equals the renderer's table.
void check_formats_doc(SourceTree& tree, Report& report);

/// Corpus directory layout: the kFileNames table in src/loggen/corpus.cpp
/// (what write_corpus/ingest_files actually use on disk) must match the
/// file names documented in the FORMATS.md layout block, both directions.
void check_corpus_files(SourceTree& tree, Report& report);

/// Snapshot format version: the kSnapshotFormatVersion constant in
/// src/util/snapshot.hpp (what save/load actually stamp and accept) must
/// match the `Format version: **N**` line FORMATS.md promises for the
/// hpcfail.store.v1 container, so a layout bump cannot ship undocumented.
void check_snapshot_version(SourceTree& tree, Report& report);

/// Repo invariants: no rand()/srand()/time(NULL)/std::random_device/mt19937
/// in src/ (simulation must be deterministic through util::Rng).  Suppress a
/// line with "hpcfail-lint: allow(banned-pattern)".
void check_banned_patterns(SourceTree& tree, Report& report);

/// Header hygiene: every .hpp under src/ carries #pragma once near the top
/// and no header pollutes includers with `using namespace`.
void check_header_hygiene(SourceTree& tree, Report& report);

/// Figure/table benches (bench/fig*.cpp, bench/tab*.cpp) must route their
/// analysis through bench::run_pipeline/run_system or core::AnalysisEngine —
/// never a private analyze_failures() wiring, which drifts from the shared
/// pipeline.  Suppress a file with "hpcfail-lint: allow(bench-pipeline)"
/// (for benches that do no failure analysis at all).
void check_bench_pipeline(SourceTree& tree, Report& report);

/// Metric/span naming: every instrument name literal in src/, tools/ and
/// bench/ — registry calls (counter/gauge/histogram), TraceSpan/PhaseScope
/// constructions, and any string literal rooted at "hpcfail." — must follow
/// `hpcfail.<layer>.<snake_case>` (lowercase snake_case dot-segments, at
/// least two after the hpcfail root).  A literal completed at runtime
/// (followed by `+`) is validated as a prefix.  Suppress a line with
/// "hpcfail-lint: allow(metric-naming)".
void check_metric_naming(SourceTree& tree, Report& report);

/// Fault-site inventory: every HPCFAIL_FAULT_SITE("...") literal in src/,
/// tools/ and bench/ must be unique across the tree, follow the
/// `<layer>.<component>.<kind>` naming style (lowercase snake_case dot
/// segments, at least three), and appear in the kSites inventory of
/// src/util/fault.cpp — and every inventory entry must have a code use, so
/// the sweep harness (tests/faultinject_test.cpp) really enumerates every
/// injection point.  Suppress a line with
/// "hpcfail-lint: allow(fault-sites)".
void check_fault_sites(SourceTree& tree, Report& report);

// ---------------------------------------------------------------------------
// Semantic checks (token level, cxx_model.hpp)
//
// All the checks below honor `// hpcfail-lint: allow(<check>) -- <reason>` on the
// diagnosed line or the line above; the reason is mandatory (a reasonless
// allow leaves the finding standing and is itself diagnosed).
// ---------------------------------------------------------------------------

/// Lambdas handed to ThreadPool::submit() or parallel_for_ranges() must not
/// capture by reference: a queued task can outlive the enclosing scope (the
/// PR 1 use-after-scope, where an early rethrow left queued chunks holding a
/// dangling fn reference).  Scans src/, bench/, examples/, tools/.
void check_capture_lifetime(SourceTree& tree, Report& report);

/// Functions must not return std::span/std::string_view derived from locals
/// or by-value parameters, and call sites must not bind view-returning
/// members off temporary LogStore/SymbolTable expressions — both dangle (the
/// PR 5 hazard class introduced with the columnar accessors).
void check_dangling_view(SourceTree& tree, Report& report);

/// Public LogStore/AnalysisContext member functions must either guard
/// non-finalized state (require_finalized()/finalized() + std::logic_error
/// in their own body), belong to a class that fails loud at construction
/// (AnalysisContext's constructor throws on a non-finalized store), or carry
/// an explicit reasoned allow — so new accessors cannot silently read
/// unsorted records or stale indexes.
void check_finalize_protocol(SourceTree& tree, Report& report);

/// Concurrency and ownership primitives stay behind src/util: bare
/// std::thread/std::jthread/std::async construction, detach(), raw `new`
/// without an owning smart pointer, and const_cast are diagnosed everywhere
/// else (src/, bench/, examples/, tools/) — all concurrency goes through
/// the instrumented util::ThreadPool.
void check_raw_sync(SourceTree& tree, Report& report);

/// The ingest hot path (src/parsers/ and src/util/chunked_reader.cpp) must
/// scan bytes through util::scan — a raw std::string find('\n')/rfind('\n')
/// or a split_lines() call there silently reintroduces the byte-at-a-time
/// scanning and per-chunk line-vector allocation the SWAR/SIMD scan layer
/// removed.  Honors `// hpcfail-lint: allow(hot-path-scan) -- <reason>` for
/// the cold paths that legitimately keep the simpler idiom (e.g. the
/// in-memory corpus parser, which needs random access to line indices for
/// sharding).
void check_hot_path_scan(SourceTree& tree, Report& report);

/// The daemon's wire verbs (kVerbs in src/serve/protocol.cpp) and the
/// FORMATS.md "serve protocol" table must agree in both directions — same
/// verbs, same one-line summaries — so a verb cannot ship undocumented and
/// the doc cannot promise one the daemon does not answer.
void check_serve_protocol(SourceTree& tree, Report& report);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Registry metadata: one entry per check, in execution order.  The
/// description doubles as the SARIF rule shortDescription.
struct CheckInfo {
  std::string name;
  Severity severity = Severity::Error;
  std::string description;
};

[[nodiscard]] const std::vector<CheckInfo>& all_checks();

/// All known check names, in execution order.
[[nodiscard]] const std::vector<std::string>& all_check_names();

/// Runs the named checks (all of them when `checks` is empty) against the
/// repo rooted at `root`.  Every check reads files through one shared
/// SourceTree, so the tree is read and lexed at most once per run.  Unknown
/// names produce a "usage" diagnostic.
[[nodiscard]] Report run_checks(const std::filesystem::path& root,
                                const std::vector<std::string>& checks = {});

/// run_checks() against an existing tree (exposed so callers that want
/// cache statistics — the CLI's --stats — can own the SourceTree).
[[nodiscard]] Report run_checks(SourceTree& tree,
                                const std::vector<std::string>& checks = {});

}  // namespace hpcfail::lint
