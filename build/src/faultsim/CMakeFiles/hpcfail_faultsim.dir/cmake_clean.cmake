file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_faultsim.dir/chain_emitter.cpp.o"
  "CMakeFiles/hpcfail_faultsim.dir/chain_emitter.cpp.o.d"
  "CMakeFiles/hpcfail_faultsim.dir/scenario.cpp.o"
  "CMakeFiles/hpcfail_faultsim.dir/scenario.cpp.o.d"
  "CMakeFiles/hpcfail_faultsim.dir/scenario_io.cpp.o"
  "CMakeFiles/hpcfail_faultsim.dir/scenario_io.cpp.o.d"
  "CMakeFiles/hpcfail_faultsim.dir/simulator.cpp.o"
  "CMakeFiles/hpcfail_faultsim.dir/simulator.cpp.o.d"
  "CMakeFiles/hpcfail_faultsim.dir/special_scenarios.cpp.o"
  "CMakeFiles/hpcfail_faultsim.dir/special_scenarios.cpp.o.d"
  "libhpcfail_faultsim.a"
  "libhpcfail_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
