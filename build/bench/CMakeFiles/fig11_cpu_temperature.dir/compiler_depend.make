# Empty compiler generated dependencies file for fig11_cpu_temperature.
# This may be replaced when dependencies are built.
