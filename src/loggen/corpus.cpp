#include "loggen/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "loggen/renderer.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace hpcfail::loggen {

using logmodel::LogSource;

namespace {

constexpr std::array<std::string_view, logmodel::kLogSourceCount> kFileNames = {
    "p0-console.log", "p0-messages.log", "p0-consumer.log",
    "controller.log", "erd.log",         "scheduler.log"};

}  // namespace

std::string_view source_file_name(logmodel::LogSource source) noexcept {
  return kFileNames[static_cast<std::size_t>(source)];
}

std::size_t Corpus::bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& t : text) total += t.size();
  return total;
}

namespace {

/// Routine daemon noise the classifiers must skip; none of these payloads
/// match any fault signature.
constexpr std::array<std::string_view, 8> kConsoleChatter = {
    "usb 1-1: new high-speed USB device",
    "eth0: link becomes ready",
    "audit: backlog limit exceeded adjustment",
    "perf: interrupt took too long, lowering rate",
    "device-mapper: uevent: version 1.0.3",
    "random: crng init done",
    "igb 0000:01:00.0: changing MTU",
    "NFS: state manager reclaiming locks",
};

constexpr std::array<std::string_view, 6> kMessagesChatter = {
    "systemd[1]: Started Session 2114 of user ops.",
    "crond[3321]: (root) CMD (run-parts /etc/cron.hourly)",
    "sshd[881]: Accepted publickey for ops from 10.1.0.4",
    "dbus[640]: [system] Successfully activated service",
    "ntpd[512]: kernel time sync status change 2001",
    "rsyslogd: action resumed (module builtin:omfile)",
};

}  // namespace

Corpus build_corpus(const faultsim::SimulationResult& sim) {
  Corpus corpus;
  corpus.system = sim.config.system;
  corpus.begin = sim.config.begin;
  corpus.days = sim.config.days;

  const bool has_external = corpus.system.name != platform::SystemName::S5;
  LogRenderer renderer(sim.topology, corpus.system.scheduler, sim.symbols);

  // Render every non-scheduler record plus the routine chatter into
  // per-source (time, line) streams, then sort and concatenate.
  struct Line {
    util::TimePoint time;
    LogSource source;
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(sim.records.size());
  for (const auto& r : sim.records) {
    if (r.source == LogSource::Scheduler) continue;  // jobs render below
    if (!has_external &&
        (r.source == LogSource::Controller || r.source == LogSource::Erd)) {
      continue;  // S5 has no external log universe
    }
    lines.push_back({r.time, r.source, renderer.render(r)});
  }

  // Routine chatter: raw daemon lines matching no fault signature.
  const double chatter_rate = sim.config.benign.routine_chatter_lines_per_day;
  if (chatter_rate > 0.0 && sim.topology.node_count() > 0) {
    util::Rng rng(sim.config.seed ^ 0xc4a77e5ULL);
    const auto total = static_cast<std::size_t>(
        chatter_rate * static_cast<double>(std::max(1, sim.config.days)));
    for (std::size_t i = 0; i < total; ++i) {
      const util::TimePoint t =
          sim.config.begin + util::Duration::seconds(rng.uniform_int(
                                 0, static_cast<std::int64_t>(sim.config.days) * 86400 - 1));
      const platform::NodeId node{static_cast<std::uint32_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(sim.topology.node_count()) - 1))};
      const bool console = rng.bernoulli(0.7);
      std::string text;
      if (console) {
        text = util::format_iso(t) + ' ' + sim.topology.node_name(node);
        if (sim.topology.config().naming == platform::NamingScheme::CrayCname) {
          text += ' ' + sim.topology.cname_of(node).to_string();
        }
        text += " kernel: ";
        text += kConsoleChatter[static_cast<std::size_t>(rng.uniform_int(0, 7))];
      } else {
        text = util::format_syslog(t) + ' ' + sim.topology.node_name(node) +
               " daemon[1]: ";
        text += kMessagesChatter[static_cast<std::size_t>(rng.uniform_int(0, 5))];
      }
      lines.push_back({t, console ? LogSource::Console : LogSource::Messages,
                       std::move(text)});
      ++corpus.chatter_lines;
    }
  }

  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.time < b.time; });
  for (const auto& line : lines) {
    auto& out = corpus.of(line.source);
    out += line.text;
    out += '\n';
  }

  // Scheduler file from the jobs table, sorted by event time (Torque
  // timestamps do not sort lexically).
  std::vector<LogRenderer::SchedulerLine> sched_lines;
  for (const auto& job : sim.jobs) {
    for (auto& line : renderer.render_job_lines(job)) {
      sched_lines.push_back(std::move(line));
    }
  }
  std::stable_sort(sched_lines.begin(), sched_lines.end(),
                   [](const auto& a, const auto& b) { return a.time < b.time; });
  auto& sched = corpus.of(LogSource::Scheduler);
  for (const auto& line : sched_lines) {
    sched += line.text;
    sched += '\n';
  }
  return corpus;
}

std::string manifest_to_string(const Corpus& corpus) {
  const auto& sys = corpus.system;
  const auto& topo = sys.topology;
  std::ostringstream out;
  out << "label=" << sys.label << '\n'
      << "machine_type=" << sys.machine_type << '\n'
      << "system=" << static_cast<int>(sys.name) << '\n'
      << "scheduler=" << (sys.scheduler == platform::SchedulerKind::Slurm ? "slurm" : "torque")
      << '\n'
      << "naming=" << (topo.naming == platform::NamingScheme::CrayCname ? "cray" : "hostname")
      << '\n'
      << "cabinet_cols=" << topo.cabinet_cols << '\n'
      << "cabinet_rows=" << topo.cabinet_rows << '\n'
      << "chassis_per_cabinet=" << topo.chassis_per_cabinet << '\n'
      << "slots_per_chassis=" << topo.slots_per_chassis << '\n'
      << "nodes_per_slot=" << topo.nodes_per_slot << '\n'
      << "max_nodes=" << topo.max_nodes << '\n'
      << "begin=" << util::format_iso(corpus.begin) << '\n'
      << "days=" << corpus.days << '\n';
  return out.str();
}

Corpus corpus_from_manifest(const std::string& manifest) {
  Corpus corpus;
  platform::TopologyConfig topo;
  int system_index = 0;
  for (const auto line : util::split(manifest, '\n')) {
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("corpus manifest: malformed line");
    }
    const auto key = trimmed.substr(0, eq);
    const auto value = trimmed.substr(eq + 1);
    auto as_int = [&value, &key]() {
      const auto v = util::parse_i64(value);
      if (!v) throw std::runtime_error("corpus manifest: bad integer for " + std::string(key));
      return static_cast<int>(*v);
    };
    if (key == "label") {
      corpus.system.label = value;
    } else if (key == "machine_type") {
      corpus.system.machine_type = value;
    } else if (key == "system") {
      system_index = as_int();
    } else if (key == "scheduler") {
      corpus.system.scheduler = value == "slurm" ? platform::SchedulerKind::Slurm
                                                 : platform::SchedulerKind::Torque;
    } else if (key == "naming") {
      topo.naming = value == "cray" ? platform::NamingScheme::CrayCname
                                    : platform::NamingScheme::Hostname;
    } else if (key == "cabinet_cols") {
      topo.cabinet_cols = as_int();
    } else if (key == "cabinet_rows") {
      topo.cabinet_rows = as_int();
    } else if (key == "chassis_per_cabinet") {
      topo.chassis_per_cabinet = as_int();
    } else if (key == "slots_per_chassis") {
      topo.slots_per_chassis = as_int();
    } else if (key == "nodes_per_slot") {
      topo.nodes_per_slot = as_int();
    } else if (key == "max_nodes") {
      topo.max_nodes = static_cast<std::uint32_t>(as_int());
    } else if (key == "begin") {
      const auto t = util::parse_iso(value);
      if (!t) throw std::runtime_error("corpus manifest: bad begin timestamp");
      corpus.begin = *t;
    } else if (key == "days") {
      corpus.days = as_int();
    }
    // Unknown keys are ignored for forward compatibility.
  }
  corpus.system.name = static_cast<platform::SystemName>(system_index);
  corpus.system.topology = topo;
  corpus.system.nodes = platform::Topology{topo}.node_count();
  return corpus;
}

void write_corpus(const Corpus& corpus, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  {
    std::ofstream manifest(fs::path(dir) / "manifest.txt");
    if (!manifest) throw std::runtime_error("write_corpus: cannot open manifest");
    manifest << manifest_to_string(corpus);
    manifest.flush();
    if (!manifest) throw std::runtime_error("write_corpus: short write to manifest.txt");
  }
  for (std::size_t i = 0; i < kFileNames.size(); ++i) {
    if (corpus.text[i].empty()) continue;
    std::ofstream file(fs::path(dir) / kFileNames[i], std::ios::binary);
    if (!file) throw std::runtime_error("write_corpus: cannot open log file");
    file << corpus.text[i];
    if (HPCFAIL_FAULT_SITE("loggen.write.badbit")) file.setstate(std::ios::badbit);
    file.flush();
    // An unchecked stream here turns a full disk into a silently truncated
    // corpus; fail loud with the file that broke.
    if (!file) {
      throw std::runtime_error("write_corpus: short write to " +
                               std::string(kFileNames[i]));
    }
  }
}

Corpus read_corpus_header(const std::string& dir) {
  namespace fs = std::filesystem;
  std::ifstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) throw std::runtime_error("read_corpus: missing manifest.txt in " + dir);
  std::ostringstream buf;
  buf << manifest.rdbuf();
  return corpus_from_manifest(buf.str());
}

Corpus read_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  Corpus corpus = read_corpus_header(dir);
  for (std::size_t i = 0; i < kFileNames.size(); ++i) {
    std::ifstream file(fs::path(dir) / kFileNames[i], std::ios::binary);
    if (!file) continue;  // absent source (e.g. no ERD on S5)
    std::ostringstream text;
    text << file.rdbuf();
    corpus.text[i] = text.str();
  }
  return corpus;
}

}  // namespace hpcfail::loggen
