// Streaming-ingestion driver: parses an on-disk corpus directory through
// the chunked bounded-memory path and reports throughput (MB/s and
// records/s) plus the process peak RSS.  With --preset it first simulates
// and writes a corpus, so the tool doubles as a self-contained smoke
// benchmark of the write -> stream -> store pipeline.
// Exit codes: 0 success, 1 runtime failure, 2 usage error.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/ingest.hpp"
#include "parsers/snapshot.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using namespace hpcfail;

void usage(std::FILE* to) {
  std::fputs(
      "usage: hpcfail-ingest [--dir DIR | --preset S1..S5] [options]\n"
      "\n"
      "Streams a corpus directory (manifest.txt + per-source log files)\n"
      "through the chunked, bounded-memory ingestion path and prints\n"
      "throughput and peak-RSS figures.\n"
      "\n"
      "  --dir DIR          ingest an existing corpus directory\n"
      "  --preset NAME      simulate system S1..S5, write a corpus to a\n"
      "                     temp directory, then ingest it\n"
      "  --days N           simulated days for --preset (default 7)\n"
      "  --seed N           simulation seed for --preset (default 42)\n"
      "  --threads N        pool threads (default: hardware concurrency)\n"
      "  --chunk-bytes N    chunk size in bytes (default 256 KiB)\n"
      "  --shard-records N  records per store shard (default 65536)\n"
      "  --keep             keep the --preset temp directory\n"
      "  --snapshot-out F   after a clean ingest, save the parsed corpus as\n"
      "                     an hpcfail.store.v1 snapshot (see hpcfail-store)\n"
      "  --metrics-out F    write pipeline counters/histograms to F (JSON)\n"
      "  --trace-out F      write spans to F (chrome://tracing JSON)\n"
      "  --fault SPEC       arm deterministic fault sites for repro:\n"
      "                     <site>[:<n>][,<site>[:<n>]...] fires the n-th\n"
      "                     hit of each site (also via HPCFAIL_FAULT env;\n"
      "                     --fault list prints the site inventory)\n"
      "\n"
      "--metrics-out, --trace-out and --fault also accept --opt=VALUE form.\n"
      "A faulted run that ends in a structured ingest error exits 3 (the\n"
      "partial-result accounting is still printed).\n",
      to);
}

std::optional<platform::SystemName> preset_of(std::string_view name) {
  if (name == "S1") return platform::SystemName::S1;
  if (name == "S2") return platform::SystemName::S2;
  if (name == "S3") return platform::SystemName::S3;
  if (name == "S4") return platform::SystemName::S4;
  if (name == "S5") return platform::SystemName::S5;
  return std::nullopt;
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux reports KiB
}

std::size_t dir_log_bytes(const std::string& dir) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < logmodel::kLogSourceCount; ++i) {
    const auto path = std::filesystem::path(dir) /
                      loggen::source_file_name(static_cast<logmodel::LogSource>(i));
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) total += static_cast<std::size_t>(size);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::optional<platform::SystemName> preset;
  int days = 7;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  bool keep = false;
  std::string snapshot_path;
  std::string metrics_path;
  std::string trace_path;
  std::string fault_spec;
  parsers::IngestOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "hpcfail-ingest: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--dir") {
      dir = value();
    } else if (arg == "--preset") {
      preset = preset_of(value());
      if (!preset) {
        std::fputs("hpcfail-ingest: --preset expects S1..S5\n", stderr);
        return 2;
      }
    } else if (arg == "--days") {
      days = std::atoi(value());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--chunk-bytes") {
      options.chunk_bytes = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--shard-records") {
      options.shard_records = static_cast<std::size_t>(std::atoll(value()));
    } else if (arg == "--keep") {
      keep = true;
    } else if (arg == "--snapshot-out") {
      snapshot_path = value();
    } else if (arg.rfind("--snapshot-out=", 0) == 0) {
      snapshot_path = arg.substr(std::string_view("--snapshot-out=").size());
    } else if (arg == "--metrics-out") {
      metrics_path = value();
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = arg.substr(std::string_view("--metrics-out=").size());
    } else if (arg == "--trace-out") {
      trace_path = value();
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(std::string_view("--trace-out=").size());
    } else if (arg == "--fault") {
      fault_spec = value();
    } else if (arg.rfind("--fault=", 0) == 0) {
      fault_spec = arg.substr(std::string_view("--fault=").size());
    } else {
      std::fprintf(stderr, "hpcfail-ingest: unknown option '%s'\n", argv[i]);
      usage(stderr);
      return 2;
    }
  }
  if (fault_spec == "list") {
    for (const auto site : util::FaultInjector::sites()) {
      std::printf("%.*s\n", static_cast<int>(site.size()), site.data());
    }
    return 0;
  }
  if (dir.empty() == !preset) {
    std::fputs("hpcfail-ingest: pass exactly one of --dir or --preset\n", stderr);
    usage(stderr);
    return 2;
  }

  // Sinks live in main's frame so they outlive the pool inside the try
  // block; installed only when the matching flag was passed.
  util::MetricsRegistry registry;
  util::TraceRecorder recorder;
  util::FaultInjector injector;
  if (!metrics_path.empty()) util::install_metrics(&registry);
  if (!trace_path.empty()) util::install_trace(&recorder);
  if (fault_spec.empty()) {
    if (const char* env = std::getenv("HPCFAIL_FAULT")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    try {
      injector.arm_spec(fault_spec);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hpcfail-ingest: %s\n", e.what());
      return 2;
    }
    util::install_fault_injector(&injector);
  }

  try {
    bool scratch = false;
    if (preset) {
      dir = "/tmp/hpcfail_ingest_corpus";
      scratch = !keep;
      std::printf("simulating %d day(s), seed %llu ...\n", days,
                  static_cast<unsigned long long>(seed));
      const auto sim =
          faultsim::Simulator(faultsim::scenario_preset(*preset, days, seed)).run();
      std::filesystem::remove_all(dir);
      loggen::write_corpus(loggen::build_corpus(sim), dir);
    }

    const std::size_t bytes = dir_log_bytes(dir);
    util::ThreadPool pool(threads);
    options.pool = &pool;

    const auto t0 = std::chrono::steady_clock::now();
    const auto parsed = parsers::ingest_files(dir, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();

    std::printf("corpus dir      %s\n", dir.c_str());
    std::printf("system          %s\n", parsed.system.label.c_str());
    std::printf("log bytes       %.1f MB\n", static_cast<double>(bytes) / 1e6);
    std::printf("lines           %zu (%zu skipped)\n", parsed.total_lines,
                parsed.skipped_lines);
    std::printf("records         %zu\n", parsed.parsed_records);
    std::printf("jobs            %zu\n", parsed.jobs.size());
    std::printf("threads         %zu\n", pool.size());
    std::printf("elapsed         %.3f s\n", seconds);
    std::printf("throughput      %.1f MB/s, %.0f records/s\n",
                static_cast<double>(bytes) / 1e6 / seconds,
                static_cast<double>(parsed.parsed_records) / seconds);
    std::printf("peak rss        %.1f MB\n", peak_rss_mb());

    if (!metrics_path.empty()) {
      std::ofstream(metrics_path) << registry.to_json() << '\n';
      std::printf("metrics         %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      std::ofstream(trace_path) << recorder.to_chrome_json() << '\n';
      std::printf("trace           %s\n", trace_path.c_str());
    }
    if (!fault_spec.empty()) {
      for (const auto& line : injector.summary()) {
        std::printf("fault           %s\n", line.c_str());
      }
    }
    if (!parsed.ok()) {
      std::fprintf(stderr, "hpcfail-ingest: ingest error: %s\n",
                   parsed.error->to_string().c_str());
      std::fprintf(stderr,
                   "hpcfail-ingest: partial result above covers %zu records "
                   "(%zu lines seen, %zu skipped)\n",
                   parsed.parsed_records, parsed.total_lines, parsed.skipped_lines);
      if (scratch) std::filesystem::remove_all(dir);
      return 3;
    }

    // A snapshot is only written from a clean parse — a partial store must
    // never masquerade as a persisted corpus.
    if (!snapshot_path.empty()) {
      if (const auto err = parsers::save_snapshot(parsed, snapshot_path)) {
        std::fprintf(stderr, "hpcfail-ingest: %s\n", err->to_string().c_str());
        if (scratch) std::filesystem::remove_all(dir);
        return 3;
      }
      std::printf("snapshot        %s\n", snapshot_path.c_str());
    }

    if (scratch) std::filesystem::remove_all(dir);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hpcfail-ingest: %s\n", e.what());
    return 1;
  }
}
