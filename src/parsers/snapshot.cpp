#include "parsers/snapshot.hpp"

#include <cstring>
#include <utility>

#include "loggen/corpus.hpp"

namespace hpcfail::parsers {

namespace {

/// "corpus.meta" row: the line accounting of the original parse, so a
/// loaded corpus reports the same totals the text path did.
struct CorpusMeta {
  std::uint64_t total_lines = 0;
  std::uint64_t parsed_records = 0;
  std::uint64_t skipped_lines = 0;
};
static_assert(sizeof(CorpusMeta) == 24);

}  // namespace

std::optional<util::SnapshotError> save_snapshot(const ParsedCorpus& corpus,
                                                 const std::string& path) {
  util::Sections sections;

  // The machine/window header rides along as the manifest text itself —
  // the exact format a corpus directory carries, so one grammar serves
  // both and unknown future keys stay forward-compatible.
  loggen::Corpus header;
  header.system = corpus.system;
  header.begin = corpus.begin;
  header.days = corpus.days;
  const std::string manifest = loggen::manifest_to_string(header);
  std::vector<std::byte> manifest_bytes(manifest.size());
  std::memcpy(manifest_bytes.data(), manifest.data(), manifest.size());
  sections.add_owned("corpus.manifest", std::move(manifest_bytes));

  CorpusMeta meta;
  meta.total_lines = corpus.total_lines;
  meta.parsed_records = corpus.parsed_records;
  meta.skipped_lines = corpus.skipped_lines;
  sections.add_scalar("corpus.meta", meta);

  corpus.store.append_sections(sections);
  corpus.jobs.append_sections(sections, "jobs");
  return util::write_snapshot(path, sections);
}

SnapshotLoadResult load_snapshot(const std::string& path) {
  SnapshotLoadResult out;
  auto read = util::read_snapshot(path);
  if (!read.ok()) {
    out.error = std::move(read.error);
    return out;
  }
  const util::SectionMap& in = read.snapshot->sections();
  try {
    const auto manifest_bytes = in.require("corpus.manifest");
    const std::string manifest(reinterpret_cast<const char*>(manifest_bytes.data()),
                               manifest_bytes.size());
    // corpus_from_manifest throws std::runtime_error on malformed text;
    // inside a snapshot that is section corruption, not a config error.
    loggen::Corpus header;
    try {
      header = loggen::corpus_from_manifest(manifest);
    } catch (const std::exception& e) {
      throw util::SectionError("corpus.manifest", e.what());
    }
    out.system = header.system;
    out.topology = platform::Topology{header.system.topology};
    out.begin = header.begin;
    out.days = header.days;

    const auto meta = in.scalar_of<CorpusMeta>("corpus.meta");
    out.total_lines = meta.total_lines;
    out.parsed_records = meta.parsed_records;
    out.skipped_lines = meta.skipped_lines;

    out.store = logmodel::LogStore::from_sections(in);
    out.jobs = jobs::JobTable::from_sections(in, "jobs");
  } catch (const util::SectionError& e) {
    // Never a partial corpus: reset the base before reporting.
    static_cast<ParsedCorpus&>(out) = ParsedCorpus{};
    util::SnapshotError err;
    err.kind = e.kind() == util::SectionError::Kind::Missing
                   ? util::SnapshotError::Kind::MissingSection
                   : util::SnapshotError::Kind::BadSection;
    err.path = path;
    err.section = e.section();
    err.message = e.what();
    out.error = std::move(err);
  }
  return out;
}

}  // namespace hpcfail::parsers
