// Persistence suite for the storage-layer serialization stack:
//   - util/serialize.hpp section vocabulary (Sections / SectionMap),
//   - the hpcfail.store.v1 container (util/snapshot.hpp) including the full
//     corrupt-file rejection matrix — truncation, bad magic, future
//     version, bit flips at every checksum tier — each yielding the right
//     structured SnapshotError and never a partial structure,
//   - the per-structure hooks (CsrIndex, SymbolTable, LogStore, JobTable),
//   - the corpus-level round trip: a loaded snapshot must drive
//     markdown_report to bytes identical to the text-parse path, on the
//     same S2 week/seed-42 corpus the committed BENCH_pipeline.json pins,
//   - the two snapshot fault sites (store.snapshot.write_io / read_io).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/markdown_report.hpp"
#include "faultsim/simulator.hpp"
#include "jobs/job_table.hpp"
#include "loggen/corpus.hpp"
#include "logmodel/log_store.hpp"
#include "logmodel/symbol_table.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/snapshot.hpp"
#include "serve/server.hpp"
#include "util/csr.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"
#include "util/snapshot.hpp"

namespace hpcfail {
namespace {

using util::SectionError;
using util::SectionMap;
using util::Sections;
using util::SnapshotError;

// ---------------------------------------------------------- test support ----

/// Per-test scratch file under /tmp, removed on destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("/tmp/hpcfail_snapshot_test." + name) {
    std::filesystem::remove(path_);
  }
  ~ScratchFile() { std::filesystem::remove(path_); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

class ScopedInjector {
 public:
  explicit ScopedInjector(util::FaultInjector& inj) {
    util::install_fault_injector(&inj);
  }
  ~ScopedInjector() { util::install_fault_injector(nullptr); }
  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;
};

/// Reader-side view over writer-side sections, skipping the file container
/// (the hooks compose over any SectionMap, not just a loaded snapshot).
SectionMap map_of(const Sections& sections) {
  SectionMap map;
  for (const auto& e : sections.entries()) map.add(e.name, e.bytes);
  return map;
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

void write_file(const std::string& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

void put_le32(std::vector<std::byte>& bytes, std::size_t at, std::uint32_t v) {
  ASSERT_LE(at + 4, bytes.size());
  std::memcpy(bytes.data() + at, &v, 4);  // host is little-endian by static_assert
}

/// Recomputes and patches the trailing whole-file CRC, so a test can prove
/// the *section* checksum tier catches a flip the file tier would otherwise
/// mask.
void repair_file_crc(std::vector<std::byte>& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const auto crc =
      util::crc32(std::span<const std::byte>(bytes.data(), bytes.size() - 4));
  put_le32(bytes, bytes.size() - 4, crc);
}

// ------------------------------------------------------ serialize layer ----

TEST(Crc32Test, KnownVectorAndChaining) {
  // The canonical CRC-32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  const auto span = std::as_bytes(std::span<const char>(digits, 9));
  EXPECT_EQ(util::crc32(span), 0xE3069283u);
  EXPECT_EQ(util::crc32(std::span<const std::byte>{}), 0u);

  // Incremental updates chain: crc(a+b) == crc(b, seed=crc(a)).
  const auto head = span.subspan(0, 4);
  const auto tail = span.subspan(4);
  EXPECT_EQ(util::crc32(tail, util::crc32(head)), 0xE3069283u);
}

TEST(SectionsTest, DuplicateNameThrows) {
  Sections sections;
  const std::vector<std::uint32_t> v{1, 2, 3};
  sections.add_vector("store.times", v);
  EXPECT_THROW(sections.add_vector("store.times", v), SectionError);
}

TEST(SectionMapTest, TypedAccessorsValidate) {
  Sections sections;
  const std::vector<std::uint32_t> v{1, 2, 3};
  sections.add_vector("a", v);
  sections.add_scalar("b", std::uint64_t{42});
  const SectionMap map = map_of(sections);

  EXPECT_EQ(map.vector_of<std::uint32_t>("a"), v);
  EXPECT_EQ(map.scalar_of<std::uint64_t>("b"), 42u);
  // 12 bytes is not a multiple of 8, and not exactly 4.
  EXPECT_THROW((void)map.vector_of<std::uint64_t>("a"), SectionError);
  EXPECT_THROW((void)map.scalar_of<std::uint32_t>("b"), SectionError);
  try {
    (void)map.require("absent");
    FAIL() << "require() must throw for a missing section";
  } catch (const SectionError& e) {
    EXPECT_EQ(e.kind(), SectionError::Kind::Missing);
    EXPECT_EQ(e.section(), "absent");
  }
}

// ------------------------------------------------------- container layer ----

Sections small_sections(const std::vector<std::uint32_t>& numbers,
                        const std::string& text) {
  Sections sections;
  sections.add_vector("test.numbers", numbers);
  sections.add("test.empty", {});
  std::vector<std::byte> owned(text.size());
  std::memcpy(owned.data(), text.data(), text.size());
  sections.add_owned("test.text", std::move(owned));
  return sections;
}

TEST(SnapshotContainerTest, WriteReadRoundtrip) {
  const ScratchFile file("roundtrip");
  const std::vector<std::uint32_t> numbers{3, 1, 4, 1, 5, 9, 2, 6};
  const std::string text = "persisted free-form bytes";
  ASSERT_FALSE(util::write_snapshot(file.path(), small_sections(numbers, text)));

  const auto read = util::read_snapshot(file.path());
  ASSERT_TRUE(read.ok()) << read.error->to_string();
  const auto& snap = *read.snapshot;
  EXPECT_EQ(snap.version(), util::kSnapshotFormatVersion);
  EXPECT_EQ(snap.file_bytes(), std::filesystem::file_size(file.path()));

  // Table preserves writer order; payloads start 64-byte aligned.
  ASSERT_EQ(snap.table().size(), 3u);
  EXPECT_EQ(snap.table()[0].name, "test.numbers");
  EXPECT_EQ(snap.table()[1].name, "test.empty");
  EXPECT_EQ(snap.table()[2].name, "test.text");
  for (const auto& entry : snap.table()) {
    EXPECT_EQ(entry.offset % util::kSnapshotAlign, 0u) << entry.name;
  }

  EXPECT_EQ(snap.sections().vector_of<std::uint32_t>("test.numbers"), numbers);
  EXPECT_EQ(snap.sections().require("test.empty").size(), 0u);
  const auto text_bytes = snap.sections().require("test.text");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(text_bytes.data()),
                        text_bytes.size()),
            text);
}

TEST(SnapshotContainerTest, OverlongSectionNameRejectedAtWrite) {
  const ScratchFile file("longname");
  Sections sections;
  const std::vector<std::uint32_t> v{1};
  sections.add_vector(std::string(util::kSnapshotMaxName + 1, 'x'), v);
  const auto err = util::write_snapshot(file.path(), sections);
  ASSERT_TRUE(err);
  EXPECT_EQ(err->kind, SnapshotError::Kind::BadSection);
}

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_FALSE(util::write_snapshot(
        file_.path(), small_sections({3, 1, 4, 1, 5, 9, 2, 6}, "payload")));
    bytes_ = read_file(file_.path());
    ASSERT_GT(bytes_.size(), 200u);
  }

  /// Writes the mutated bytes and returns the read error (which must exist).
  SnapshotError reject(const std::vector<std::byte>& bytes) {
    const ScratchFile mutated("corrupt");
    write_file(mutated.path(), bytes);
    auto read = util::read_snapshot(mutated.path());
    EXPECT_FALSE(read.ok()) << "corrupt file validated clean";
    EXPECT_FALSE(read.snapshot.has_value()) << "error result still carries data";
    return read.ok() ? SnapshotError{} : *read.error;
  }

  ScratchFile file_{"corruption_base"};
  std::vector<std::byte> bytes_;
};

TEST_F(SnapshotCorruption, TruncatedFile) {
  auto bytes = bytes_;
  bytes.resize(bytes.size() - 10);
  EXPECT_EQ(reject(bytes).kind, SnapshotError::Kind::Truncated);
  // Below even the fixed header there is nothing to validate against.
  bytes.resize(10);
  EXPECT_EQ(reject(bytes).kind, SnapshotError::Kind::Truncated);
}

TEST_F(SnapshotCorruption, WrongMagic) {
  auto bytes = bytes_;
  bytes[0] = std::byte{'X'};
  EXPECT_EQ(reject(bytes).kind, SnapshotError::Kind::BadMagic);
}

TEST_F(SnapshotCorruption, FutureVersionReportedBeforeChecksums) {
  // Only the version field is patched — every CRC in the file is now stale,
  // but a reader must still say "version 99" rather than "corrupt", or
  // upgraded formats would be undiagnosable.
  auto bytes = bytes_;
  put_le32(bytes, 16, 99);
  const auto err = reject(bytes);
  EXPECT_EQ(err.kind, SnapshotError::Kind::BadVersion);
  EXPECT_NE(err.message.find("99"), std::string::npos);
}

TEST_F(SnapshotCorruption, PayloadFlipFailsFileChecksum) {
  auto bytes = bytes_;
  bytes[bytes.size() - 20] ^= std::byte{0x01};
  EXPECT_EQ(reject(bytes).kind, SnapshotError::Kind::FileChecksum);
}

TEST_F(SnapshotCorruption, PayloadFlipBehindRepairedFileCrcFailsSectionChecksum) {
  // Flip a byte *inside* a section payload (located via the table, so the
  // flip cannot land in alignment padding, which only the file CRC covers)
  // and repair the trailing file CRC: the per-section tier must still
  // catch it, naming the section.
  const auto clean = util::read_snapshot(file_.path());
  ASSERT_TRUE(clean.ok());
  const auto& target = clean.snapshot->table().front();
  ASSERT_GT(target.length, 0u);

  auto bytes = bytes_;
  bytes[target.offset + 1] ^= std::byte{0x01};
  repair_file_crc(bytes);
  const auto err = reject(bytes);
  EXPECT_EQ(err.kind, SnapshotError::Kind::SectionChecksum);
  EXPECT_EQ(err.section, target.name);
}

TEST_F(SnapshotCorruption, TableFlipBehindRepairedFileCrcFailsTableChecksum) {
  // Flip a byte of a table entry's stored CRC (header is 64 bytes, entries
  // 64 bytes each; the per-entry CRC lives at entry offset 56).
  auto bytes = bytes_;
  bytes[64 + 56] ^= std::byte{0x01};
  repair_file_crc(bytes);
  const auto err = reject(bytes);
  EXPECT_EQ(err.kind, SnapshotError::Kind::SectionChecksum);
  EXPECT_EQ(err.section, "(section table)");
}

TEST(SnapshotContainerTest, MissingFileIsIoError) {
  const auto read = util::read_snapshot("/tmp/hpcfail_no_such_snapshot.snap");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.error->kind, SnapshotError::Kind::Io);
}

// -------------------------------------------------- per-structure hooks ----

TEST(CsrIndexSnapshotTest, RoundtripAndInvariantValidation) {
  util::CsrIndex<std::uint32_t> index;
  index.offsets = {0, 2, 2, 3};
  index.entries = {5, 6, 7};

  Sections sections;
  index.append_sections(sections, "idx");
  const auto back =
      util::CsrIndex<std::uint32_t>::from_sections(map_of(sections), "idx");
  EXPECT_EQ(back.offsets, index.offsets);
  EXPECT_EQ(back.entries, index.entries);
  EXPECT_EQ(back.of(0).size(), 2u);
  EXPECT_EQ(back.of(1).size(), 0u);
  EXPECT_EQ(back.of(2).size(), 1u);
  EXPECT_EQ(back.of(99).size(), 0u);  // past the built range: empty, no UB

  const auto rejects = [](std::vector<std::uint32_t> offsets,
                          std::vector<std::uint32_t> entries) {
    util::CsrIndex<std::uint32_t> bad;
    bad.offsets = std::move(offsets);
    bad.entries = std::move(entries);
    Sections s;
    bad.append_sections(s, "idx");
    EXPECT_THROW(
        (void)util::CsrIndex<std::uint32_t>::from_sections(map_of(s), "idx"),
        SectionError);
  };
  rejects({}, {5});            // empty offsets with entries
  rejects({1, 3}, {5, 6, 7});  // front != 0
  rejects({0, 2}, {5, 6, 7});  // back != entries.size()
  rejects({0, 2, 1, 3}, {5, 6, 7});  // non-monotone
}

TEST(SymbolTableSnapshotTest, RoundtripPreservesIdsAndBytes) {
  logmodel::SymbolTable symbols;
  const auto a = symbols.intern("alpha");
  const auto b = symbols.intern("beta");
  const auto c = symbols.intern("");  // maps to the shared empty symbol

  Sections sections;
  symbols.append_sections(sections, "sym");
  const auto back =
      logmodel::SymbolTable::from_sections(map_of(sections), "sym");
  ASSERT_EQ(back.size(), symbols.size());
  EXPECT_EQ(back.view(a), "alpha");
  EXPECT_EQ(back.view(b), "beta");
  EXPECT_EQ(back.view(c), "");

  // A dropped fence byte breaks the offsets/payload agreement.
  Sections bad;
  symbols.append_sections(bad, "sym");
  SectionMap map;
  for (const auto& e : bad.entries()) {
    auto bytes = e.bytes;
    if (e.name == "sym.bytes") bytes = bytes.subspan(0, bytes.size() - 1);
    map.add(e.name, bytes);
  }
  EXPECT_THROW((void)logmodel::SymbolTable::from_sections(map, "sym"),
               SectionError);
}

const faultsim::SimulationResult& small_sim() {
  static const faultsim::SimulationResult sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 1, 7))
          .run();
  return sim;
}

TEST(LogStoreSnapshotTest, SaveLoadRoundtripPreservesEveryColumnAndIndex) {
  const logmodel::LogStore store = small_sim().make_store();
  ASSERT_GT(store.size(), 0u);

  const ScratchFile file("logstore");
  ASSERT_FALSE(store.save(file.path()));
  const auto loaded = logmodel::LogStore::load(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error->to_string();
  const logmodel::LogStore& back = *loaded.store;

  ASSERT_EQ(back.size(), store.size());
  EXPECT_TRUE(back.finalized());
  EXPECT_EQ(back.nodes(), store.nodes());
  EXPECT_EQ(back.symbols().size(), store.symbols().size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto& want = store[i];
    const auto& got = back[i];
    ASSERT_EQ(got.time.usec, want.time.usec) << "record " << i;
    ASSERT_EQ(got.source, want.source) << "record " << i;
    ASSERT_EQ(got.type, want.type) << "record " << i;
    ASSERT_EQ(got.severity, want.severity) << "record " << i;
    ASSERT_EQ(got.node.value, want.node.value) << "record " << i;
    ASSERT_EQ(got.blade.value, want.blade.value) << "record " << i;
    ASSERT_EQ(got.cabinet.value, want.cabinet.value) << "record " << i;
    ASSERT_EQ(got.job_id, want.job_id) << "record " << i;
    ASSERT_EQ(got.value, want.value) << "record " << i;
    ASSERT_EQ(back.detail(i), store.detail(i)) << "record " << i;
  }
  // Rebuilt secondary indexes answer identically.
  const auto t0 = store.first_time();
  const auto t1 = store.last_time();
  for (const auto node : store.nodes()) {
    EXPECT_EQ(back.node_range(node, t0, t1).size(),
              store.node_range(node, t0, t1).size());
  }
  for (std::size_t t = 0; t < logmodel::kEventTypeCount; ++t) {
    const auto type = static_cast<logmodel::EventType>(t);
    EXPECT_EQ(back.count_of_type(type), store.count_of_type(type));
  }
}

TEST(LogStoreSnapshotTest, UnfinalizedStoreRefusesToSave) {
  logmodel::LogStore store;
  store.add(logmodel::LogRecord{});
  const ScratchFile file("unfinalized");
  EXPECT_THROW((void)store.save(file.path()), std::logic_error);
}

TEST(JobTableSnapshotTest, RoundtripPreservesJobsAndNodeIndex) {
  const jobs::JobTable table = jobs::JobTable::from_jobs(small_sim().jobs);
  ASSERT_GT(table.size(), 0u);

  Sections sections;
  table.append_sections(sections, "jobs");
  const auto back = jobs::JobTable::from_sections(map_of(sections), "jobs");

  ASSERT_EQ(back.size(), table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& want = table.jobs()[i];
    const auto& got = back.jobs()[i];
    ASSERT_EQ(got.job_id, want.job_id) << "job " << i;
    ASSERT_EQ(got.apid, want.apid) << "job " << i;
    ASSERT_EQ(got.user, want.user) << "job " << i;
    ASSERT_EQ(got.app_name, want.app_name) << "job " << i;
    ASSERT_EQ(got.start.usec, want.start.usec) << "job " << i;
    ASSERT_EQ(got.end.usec, want.end.usec) << "job " << i;
    ASSERT_EQ(got.mem_per_node_gb, want.mem_per_node_gb) << "job " << i;
    ASSERT_EQ(got.nodes.size(), want.nodes.size()) << "job " << i;
    ASSERT_EQ(got.exit_code, want.exit_code) << "job " << i;
    ASSERT_EQ(got.end_reason, want.end_reason) << "job " << i;
    ASSERT_EQ(got.ended, want.ended) << "job " << i;
    ASSERT_EQ(got.overallocated, want.overallocated) << "job " << i;
    ASSERT_EQ(got.overallocated_nodes, want.overallocated_nodes) << "job " << i;
    ASSERT_EQ(got.cancelled, want.cancelled) << "job " << i;
  }
  // by_id_ and by_node_ must answer identically after the rebuild.
  for (const auto& job : table.jobs()) {
    const auto* found = back.find(job.job_id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->apid, job.apid);
    for (const auto node : job.nodes) {
      const auto* want_hit = table.job_on_node_at(node, job.start);
      const auto* got_hit = back.job_on_node_at(node, job.start);
      ASSERT_EQ(want_hit != nullptr, got_hit != nullptr);
      if (want_hit != nullptr) EXPECT_EQ(got_hit->job_id, want_hit->job_id);
    }
  }
}

// -------------------------------------------------- corpus-level equality ----

/// The acceptance corpus: one simulated S2 week, seed 42 — the same corpus
/// BENCH_pipeline.json measures.
TEST(CorpusSnapshotTest, LoadedSnapshotReportsByteIdenticalToTextParse) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 7, 42))
          .run();
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus);
  ASSERT_GT(parsed.parsed_records, 0u);

  const ScratchFile file("corpus_s2");
  ASSERT_FALSE(parsers::save_snapshot(parsed, file.path()));
  const auto loaded = parsers::load_snapshot(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.error->to_string();

  // Window, accounting and label survive the round trip.
  EXPECT_EQ(loaded.system.label, parsed.system.label);
  EXPECT_EQ(loaded.begin.usec, parsed.begin.usec);
  EXPECT_EQ(loaded.days, parsed.days);
  EXPECT_EQ(loaded.total_lines, parsed.total_lines);
  EXPECT_EQ(loaded.parsed_records, parsed.parsed_records);
  EXPECT_EQ(loaded.skipped_lines, parsed.skipped_lines);
  ASSERT_EQ(loaded.store.size(), parsed.store.size());
  ASSERT_EQ(loaded.jobs.size(), parsed.jobs.size());

  const auto report_of = [&corpus](const parsers::ParsedCorpus& c) {
    core::ReportInputs inputs;
    inputs.store = &c.store;
    inputs.jobs = &c.jobs;
    inputs.topology = &c.topology;
    inputs.system_label = corpus.system.label;
    inputs.begin = corpus.begin;
    inputs.end = corpus.begin + util::Duration::days(corpus.days);
    return core::markdown_report(inputs);
  };
  const std::string from_text = report_of(parsed);
  const std::string from_snapshot = report_of(loaded);
  ASSERT_FALSE(from_text.empty());
  EXPECT_EQ(from_snapshot, from_text)
      << "snapshot-loaded corpus must be indistinguishable from text ingest";
}

TEST(CorpusSnapshotTest, CorruptFileYieldsErrorAndEmptyCorpus) {
  const auto parsed = parsers::parse_corpus(loggen::build_corpus(small_sim()));
  const ScratchFile file("corpus_corrupt");
  ASSERT_FALSE(parsers::save_snapshot(parsed, file.path()));

  auto bytes = read_file(file.path());
  bytes[bytes.size() - 40] ^= std::byte{0x01};
  write_file(file.path(), bytes);

  const auto loaded = parsers::load_snapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error->kind, SnapshotError::Kind::FileChecksum);
  // Never a partial corpus: the base stays default-constructed.
  EXPECT_EQ(loaded.store.size(), 0u);
  EXPECT_EQ(loaded.jobs.size(), 0u);
  EXPECT_EQ(loaded.parsed_records, 0u);
}

TEST(CorpusSnapshotTest, MissingSectionReportedStructurally) {
  // A container-valid file that is not a corpus snapshot must be rejected
  // by the structural layer, with the missing section named.
  const ScratchFile file("not_a_corpus");
  ASSERT_FALSE(
      util::write_snapshot(file.path(), small_sections({1, 2, 3}, "x")));
  const auto loaded = parsers::load_snapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error->kind, SnapshotError::Kind::MissingSection);
  EXPECT_FALSE(loaded.error->section.empty());
  EXPECT_EQ(loaded.store.size(), 0u);
}

/// The serve-layer face of the same guarantee: a daemon booted from a
/// snapshot must answer every protocol verb byte-identically to one booted
/// from the equivalent text corpus.
TEST(CorpusSnapshotTest, SnapshotBootedDaemonAnswersByteIdenticalToTextBoot) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 7, 42))
          .run();
  const auto corpus = loggen::build_corpus(sim);
  auto from_text = parsers::parse_corpus(corpus);
  ASSERT_GT(from_text.parsed_records, 0u);
  const std::string node_name = std::string(
      from_text.topology.node_name(from_text.store.nodes().front()));

  const ScratchFile file("serve_boot");
  ASSERT_FALSE(parsers::save_snapshot(from_text, file.path()));
  auto from_snapshot = parsers::load_snapshot(file.path());
  ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.error->to_string();

  serve::Server text_boot(std::move(from_text));
  serve::Server snapshot_boot(std::move(from_snapshot));
  const std::string requests[] = {
      R"({"id":1,"verb":"ping"})",
      R"({"id":2,"verb":"status"})",
      R"({"id":3,"verb":"causes"})",
      R"({"id":4,"verb":"lead_time"})",
      R"({"id":5,"verb":"node_health","params":{"node":")" + node_name + R"("}})",
      R"({"id":6,"verb":"report"})",
      R"({"id":7,"verb":"metrics"})",
  };
  for (const std::string& request : requests) {
    EXPECT_EQ(snapshot_boot.handle_line(request), text_boot.handle_line(request))
        << "boot paths disagree on: " << request;
  }
  EXPECT_EQ(snapshot_boot.boot_alerts().size(), text_boot.boot_alerts().size());
}

// --------------------------------------------------- snapshot fault sites ----

TEST(SnapshotFaultTest, InjectedWriteFailureSurfacesStructuredIoError) {
  const auto parsed = parsers::parse_corpus(loggen::build_corpus(small_sim()));
  const ScratchFile file("fault_write");

  util::FaultInjector inj;
  inj.arm("store.snapshot.write_io", 2);  // mid-file: after the header lands
  {
    const ScopedInjector scope(inj);
    const auto err = parsers::save_snapshot(parsed, file.path());
    ASSERT_TRUE(err);
    EXPECT_EQ(err->kind, SnapshotError::Kind::Io);
    EXPECT_FALSE(err->to_string().empty());
  }
  EXPECT_EQ(inj.fires("store.snapshot.write_io"), 1u);

  // The torn file left behind must never validate.
  const auto loaded = parsers::load_snapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.store.size(), 0u);
}

TEST(SnapshotFaultTest, InjectedReadFailureSurfacesStructuredIoError) {
  const auto parsed = parsers::parse_corpus(loggen::build_corpus(small_sim()));
  const ScratchFile file("fault_read");
  ASSERT_FALSE(parsers::save_snapshot(parsed, file.path()));

  util::FaultInjector inj;
  inj.arm("store.snapshot.read_io", 2);  // a section read, not the bulk read
  {
    const ScopedInjector scope(inj);
    const auto loaded = parsers::load_snapshot(file.path());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error->kind, SnapshotError::Kind::Io);
    EXPECT_EQ(loaded.store.size(), 0u);
    EXPECT_EQ(loaded.jobs.size(), 0u);
  }
  EXPECT_EQ(inj.fires("store.snapshot.read_io"), 1u);

  // Uninjected, the same file loads clean.
  const auto clean = parsers::load_snapshot(file.path());
  ASSERT_TRUE(clean.ok()) << clean.error->to_string();
  EXPECT_EQ(clean.store.size(), parsed.store.size());
}

}  // namespace
}  // namespace hpcfail
