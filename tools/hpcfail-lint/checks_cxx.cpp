// Token-level semantic checks over the C++ sources (cxx_model.hpp lexer).
//
// Each check encodes one class of production bug this repo has actually
// shipped and fixed:
//   - capture-lifetime: PR 1's ThreadPool use-after-scope (queued chunks
//     holding a dangling reference after an early rethrow),
//   - dangling-view: the hazard class PR 5 introduced repo-wide when
//     LogStore/SymbolTable grew std::span/std::string_view accessors,
//   - finalize-protocol: the fail-loud std::logic_error contract for
//     querying non-finalized stores (PR 2/3),
//   - raw-sync: concurrency/ownership primitives that bypass the
//     instrumented util::ThreadPool (whose metrics caught PR 4's ABA
//     use-after-free).
//
// The checks are deliberately token-level, not AST-level: they trade
// soundness for zero build dependencies and sub-second repo-wide runtime,
// and lean on mandatory reasoned suppressions for the (rare) safe cases.
#include <array>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cxx_model.hpp"
#include "lint.hpp"

namespace hpcfail::lint {

namespace {

using Tokens = std::vector<Token>;

constexpr std::array<const char*, 4> kScanDirs = {"src", "bench", "examples", "tools"};

/// The lint's own sources and fixtures quote violations in messages/tests.
[[nodiscard]] bool lint_own_source(const std::string& rel) {
  return rel.rfind("tools/hpcfail-lint/", 0) == 0;
}

[[nodiscard]] bool is_punct(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::Punct && t.text == text;
}

[[nodiscard]] bool is_ident(const Token& t, std::string_view text) {
  return t.kind == Token::Kind::Identifier && t.text == text;
}

/// Skips a balanced `<...>` starting at tokens[i] == "<"; returns the index
/// one past the closing ">", or `i` unchanged when tokens[i] is not "<".
/// Gives up (returns end) if the run looks unbalanced — callers treat that
/// as "not a template argument list".
[[nodiscard]] std::size_t skip_angles(const Tokens& toks, std::size_t i) {
  if (i >= toks.size() || !is_punct(toks[i], "<")) return i;
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], "<")) ++depth;
    else if (is_punct(toks[j], ">")) {
      if (--depth == 0) return j + 1;
    } else if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) {
      return toks.size();  // statement ended first: was a comparison
    }
  }
  return toks.size();
}

// ---------------------------------------------------------------------------
// Check: capture-lifetime
// ---------------------------------------------------------------------------

void scan_capture_lifetime(const SourceFile& file, Report& report) {
  const std::string check = "capture-lifetime";
  static const std::set<std::string_view> kSinks = {"submit", "parallel_for_ranges"};
  const Tokens& toks = file.tokens;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier || kSinks.count(toks[i].text) == 0) {
      continue;
    }
    if (!is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = matching_close(toks, i + 1);
    if (close >= toks.size()) continue;

    // Lambda intros inside the argument list: a '[' directly after '(' or
    // ',' (array subscripts follow an identifier/']'/')' instead).
    for (std::size_t j = i + 2; j < close; ++j) {
      if (!is_punct(toks[j], "[")) continue;
      if (!(is_punct(toks[j - 1], "(") || is_punct(toks[j - 1], ","))) continue;
      const std::size_t intro_end = matching_close(toks, j);
      if (intro_end >= toks.size()) break;
      bool by_ref = false;
      for (std::size_t k = j + 1; k < intro_end && !by_ref; ++k) {
        by_ref = is_punct(toks[k], "&") || is_punct(toks[k], "&&");
      }
      if (by_ref) {
        emit(file, toks[j].line, check,
             "lambda passed to ThreadPool::" + std::string(toks[i].text) +
                 "() captures by reference; a queued task can outlive the "
                 "enclosing scope (the PR 1 use-after-scope class) — capture by "
                 "value/move or justify with allow(capture-lifetime)",
             report);
      }
      j = intro_end;
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// Check: dangling-view
// ---------------------------------------------------------------------------

/// Owning local/parameter types whose views must not escape the function.
[[nodiscard]] bool owning_type(std::string_view name) {
  return name == "string" || name == "vector" || name == "ostringstream" ||
         name == "stringstream" || name == "array";
}

/// Records every `std::<owning-type> [<...>] NAME` declaration in
/// [begin, end) into `names` (covers both by-value parameters in a
/// signature range and locals in a body range).
void collect_owning_names(const Tokens& toks, std::size_t begin, std::size_t end,
                          std::set<std::string_view>& names) {
  for (std::size_t i = begin; i + 2 < end; ++i) {
    if (!is_ident(toks[i], "std") || !is_punct(toks[i + 1], "::")) continue;
    if (toks[i + 2].kind != Token::Kind::Identifier || !owning_type(toks[i + 2].text)) {
      continue;
    }
    std::size_t j = skip_angles(toks, i + 3);
    if (j == toks.size()) j = i + 3;
    if (j < end && toks[j].kind == Token::Kind::Identifier) {
      names.insert(toks[j].text);
    }
  }
}

void scan_view_returning_functions(const SourceFile& file, Report& report) {
  const std::string check = "dangling-view";
  const Tokens& toks = file.tokens;

  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    // `std::string_view` or `std::span<...>` in return-type position:
    // followed by a function name, a parameter list, then a body.
    if (!is_ident(toks[i], "std") || !is_punct(toks[i + 1], "::")) continue;
    const bool is_view = is_ident(toks[i + 2], "string_view");
    const bool is_span = is_ident(toks[i + 2], "span");
    if (!is_view && !is_span) continue;
    const std::string_view view_type = is_view ? "std::string_view" : "std::span";

    std::size_t j = i + 3;
    if (is_span) {
      const std::size_t after = skip_angles(toks, j);
      if (after == toks.size() || after == j) continue;  // span without args: not a type use
      j = after;
    }
    if (j >= toks.size() || toks[j].kind != Token::Kind::Identifier) continue;
    const std::string_view fn_name = toks[j].text;
    if (j + 1 >= toks.size() || !is_punct(toks[j + 1], "(")) continue;
    const std::size_t params_close = matching_close(toks, j + 1);
    if (params_close >= toks.size()) continue;

    // A definition follows: only const/noexcept/attributes may precede '{'.
    std::size_t body_open = toks.size();
    for (std::size_t k = params_close + 1; k < toks.size(); ++k) {
      if (is_punct(toks[k], "{")) {
        body_open = k;
        break;
      }
      const bool qualifier = is_ident(toks[k], "const") || is_ident(toks[k], "noexcept") ||
                             is_ident(toks[k], "override") || is_ident(toks[k], "final") ||
                             is_punct(toks[k], "[") || is_punct(toks[k], "]") ||
                             is_ident(toks[k], "nodiscard");
      if (!qualifier) break;
    }
    if (body_open == toks.size()) continue;
    const std::size_t body_close = matching_close(toks, body_open);
    if (body_close >= toks.size()) continue;

    std::set<std::string_view> owned;
    collect_owning_names(toks, j + 2, params_close, owned);       // by-value params
    collect_owning_names(toks, body_open + 1, body_close, owned);  // locals

    for (std::size_t k = body_open + 1; k + 1 < body_close; ++k) {
      if (!is_ident(toks[k], "return")) continue;
      const Token& ret = toks[k + 1];
      if (ret.kind != Token::Kind::Identifier || owned.count(ret.text) == 0) continue;
      const Token& next = toks[k + 2];
      if (is_punct(next, ";") || is_punct(next, ".") || is_punct(next, "[")) {
        emit(file, ret.line, check,
             "'" + std::string(fn_name) + "' returns a " + std::string(view_type) +
                 " derived from local/parameter '" + std::string(ret.text) +
                 "'; the view dangles when the function returns (the PR 5 "
                 "hazard class) — return an owning type or a view of "
                 "caller-owned data",
             report);
      }
    }
    i = body_open;  // resume after the signature; nested defs are rescanned anyway
  }
}

void scan_temporary_view_bindings(const SourceFile& file, Report& report) {
  const std::string check = "dangling-view";
  // Members of LogStore/SymbolTable returning views or references into the
  // object; calling one on a temporary dangles at the end of the statement.
  static const std::set<std::string_view> kViewMembers = {
      "view",        "detail",      "times",      "types",      "records",
      "symbols",     "range",       "node_range", "blade_range", "cabinet_range",
      "type_range",  "node_index",  "type_index", "nodes",       "row"};
  static const std::set<std::string_view> kClasses = {"LogStore", "SymbolTable"};
  const Tokens& toks = file.tokens;

  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier || kClasses.count(toks[i].text) == 0) {
      continue;
    }
    // `LogStore(...)` / `LogStore{...}` temporary, or `LogStore::from_sorted(...)`.
    std::size_t open = toks.size();
    if (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "{")) {
      // Skip constructor definitions (`LogStore::LogStore(`) and class
      // definitions (`class LogStore {`).
      if (i >= 2 && is_punct(toks[i - 1], "::") && toks[i - 2].text == toks[i].text) {
        continue;
      }
      if (i >= 1 && (is_ident(toks[i - 1], "class") || is_ident(toks[i - 1], "struct"))) {
        continue;
      }
      open = i + 1;
    } else if (i + 3 < toks.size() && is_punct(toks[i + 1], "::") &&
               is_ident(toks[i + 2], "from_sorted") && is_punct(toks[i + 3], "(")) {
      open = i + 3;
    } else {
      continue;
    }
    const std::size_t close = matching_close(toks, open);
    if (close + 3 >= toks.size()) continue;
    if (!is_punct(toks[close + 1], ".")) continue;
    const Token& member = toks[close + 2];
    if (member.kind != Token::Kind::Identifier || kViewMembers.count(member.text) == 0) {
      continue;
    }
    if (!is_punct(toks[close + 3], "(")) continue;
    emit(file, toks[close + 1].line, check,
         "binds '" + std::string(member.text) + "()' off a temporary " +
             std::string(toks[i].text) +
             "; the view dangles at the end of the full expression (the PR 5 "
             "hazard class) — name the " + std::string(toks[i].text) + " first",
         report);
  }
}

// ---------------------------------------------------------------------------
// Check: finalize-protocol
// ---------------------------------------------------------------------------

/// True when [begin, end) mentions any token of the finalize guard
/// vocabulary (require_finalized(), the finalized_ flag / finalized()
/// accessor, or a thrown std::logic_error).
[[nodiscard]] bool mentions_guard(const Tokens& toks, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::Identifier) continue;
    const std::string_view t = toks[i].text;
    if (t == "require_finalized" || t == "finalized_" || t == "finalized" ||
        t == "logic_error") {
      return true;
    }
  }
  return false;
}

/// Finds `Class::name(` definitions in `toks` and returns true when any
/// such definition's body mentions the guard vocabulary.  `found` reports
/// whether a definition exists at all.
[[nodiscard]] bool out_of_class_guarded(const Tokens& toks, std::string_view cls,
                                        std::string_view name, bool& found) {
  found = false;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (!is_ident(toks[i], cls) || !is_punct(toks[i + 1], "::") ||
        !is_ident(toks[i + 2], name) || !is_punct(toks[i + 3], "(")) {
      continue;
    }
    const std::size_t params_close = matching_close(toks, i + 3);
    if (params_close >= toks.size()) continue;
    // Skip to the body (over const/noexcept/member-init lists).
    std::size_t body_open = toks.size();
    for (std::size_t k = params_close + 1; k < toks.size(); ++k) {
      if (is_punct(toks[k], "{")) {
        body_open = k;
        break;
      }
      if (is_punct(toks[k], ";")) break;  // a declaration, not a definition
    }
    if (body_open == toks.size()) continue;
    found = true;
    const std::size_t body_close = matching_close(toks, body_open);
    if (mentions_guard(toks, body_open, std::min(body_close + 1, toks.size()))) {
      return true;
    }
  }
  return false;
}

void finalize_protocol_for_class(SourceTree& tree, const char* cls, const char* hpp_path,
                                 std::initializer_list<const char*> cpp_paths,
                                 Report& report) {
  const std::string check = "finalize-protocol";
  const SourceFile* hpp = tree.source(hpp_path);
  if (hpp == nullptr) return;  // fixture trees carry only the classes they exercise
  // A class's out-of-line members may be split across several .cpp files
  // (LogStore's persistence lives in store_snapshot.cpp); a guard in any of
  // them counts.
  std::vector<const Tokens*> cpp_tokens;
  for (const char* cpp_path : cpp_paths) {
    const SourceFile* cpp = tree.source(cpp_path);
    if (cpp != nullptr) cpp_tokens.push_back(&cpp->tokens);
  }
  const Tokens& toks = hpp->tokens;

  // Locate `class <cls> ... {`.
  std::size_t body_open = toks.size();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "class") || !is_ident(toks[i + 1], cls)) continue;
    for (std::size_t j = i + 2; j < toks.size(); ++j) {
      if (is_punct(toks[j], "{")) {
        body_open = j;
        break;
      }
      if (is_punct(toks[j], ";")) break;  // forward declaration
    }
    if (body_open != toks.size()) break;
  }
  if (body_open == toks.size()) return;
  const std::size_t body_close = matching_close(toks, body_open);
  if (body_close >= toks.size()) return;
  const int member_depth = toks[body_open].depth + 1;

  // The established alternative to per-accessor guards: a constructor that
  // fails loud (std::logic_error) on a non-finalized store at construction —
  // AnalysisContext's protocol.  Such a class needs no per-member guards.
  // Merely touching finalized_ in the constructor (LogStore's does, to reset
  // the flag) is not a guard: the throw is what makes it one.
  {
    for (const Tokens* file_toks : cpp_tokens) {
      const Tokens& cpp_toks = *file_toks;
      for (std::size_t i = 0; i + 3 < cpp_toks.size(); ++i) {
        if (!is_ident(cpp_toks[i], cls) || !is_punct(cpp_toks[i + 1], "::") ||
            !is_ident(cpp_toks[i + 2], cls) || !is_punct(cpp_toks[i + 3], "(")) {
          continue;
        }
        const std::size_t params_close = matching_close(cpp_toks, i + 3);
        if (params_close >= cpp_toks.size()) continue;
        for (std::size_t k = params_close + 1; k < cpp_toks.size(); ++k) {
          if (is_punct(cpp_toks[k], ";")) break;
          if (is_punct(cpp_toks[k], "{")) {
            const std::size_t ctor_close = matching_close(cpp_toks, k);
            for (std::size_t g = k; g < ctor_close && g < cpp_toks.size(); ++g) {
              if (is_ident(cpp_toks[g], "logic_error")) return;
            }
            break;
          }
        }
      }
    }
    // Inline constructor bodies in the header count too.
    for (std::size_t i = body_open + 1; i + 1 < body_close; ++i) {
      if (toks[i].depth != member_depth || !is_ident(toks[i], cls) ||
          !is_punct(toks[i + 1], "(")) {
        continue;
      }
      if (i >= 1 && is_punct(toks[i - 1], "~")) continue;
      const std::size_t params_close = matching_close(toks, i + 1);
      if (params_close >= toks.size()) continue;
      for (std::size_t k = params_close + 1; k < body_close; ++k) {
        if (is_punct(toks[k], ";")) break;
        if (is_punct(toks[k], "{")) {
          const std::size_t ctor_close = matching_close(toks, k);
          if (mentions_guard(toks, k, std::min(ctor_close + 1, toks.size())) &&
              ctor_close < toks.size()) {
            // Guarding at construction requires the throw, not just the flag.
            for (std::size_t g = k; g < ctor_close; ++g) {
              if (is_ident(toks[g], "logic_error")) return;
            }
          }
          break;
        }
      }
    }
  }

  // Keywords that look like `name(` but are not member declarations.
  static const std::set<std::string_view> kNotMembers = {
      "if", "for", "while", "switch", "return", "static_assert",
      "sizeof", "decltype", "noexcept", "alignof", "catch", "throw"};

  bool is_public = false;  // class scope defaults private
  for (std::size_t i = body_open + 1; i < body_close; ++i) {
    const Token& t = toks[i];
    if (t.depth != member_depth) continue;
    if (t.kind == Token::Kind::Identifier && i + 1 < body_close &&
        is_punct(toks[i + 1], ":") &&
        (t.text == "public" || t.text == "private" || t.text == "protected")) {
      is_public = (t.text == "public");
      ++i;
      continue;
    }
    if (!is_public) continue;
    if (t.kind != Token::Kind::Identifier || i + 1 >= body_close) continue;

    // Member-function declaration: `name(` at member depth.
    std::string name(t.text);
    std::size_t paren = i + 1;
    if (name == "operator") {  // operator[]/operator== etc: puncts up to '('
      while (paren < body_close && !is_punct(toks[paren], "(")) {
        name += toks[paren].text;
        ++paren;
      }
      if (paren >= body_close) continue;
    }
    if (!is_punct(toks[paren], "(")) continue;
    if (kNotMembers.count(name) != 0) continue;
    if (name == cls) {  // constructor (handled above)
      i = matching_close(toks, paren);
      continue;
    }
    if (i >= 1 && is_punct(toks[i - 1], "~")) {  // destructor
      i = matching_close(toks, paren);
      continue;
    }
    const std::size_t params_close = matching_close(toks, paren);
    if (params_close >= toks.size()) continue;

    // Classify the declaration tail: deleted/defaulted, inline body, or `;`.
    bool guarded = false;
    bool skip = false;
    std::size_t tail_end = params_close;
    for (std::size_t k = params_close + 1; k < body_close; ++k) {
      if (is_punct(toks[k], "=") && k + 1 < body_close &&
          (is_ident(toks[k + 1], "delete") || is_ident(toks[k + 1], "default"))) {
        skip = true;
      }
      if (is_punct(toks[k], "{")) {
        const std::size_t inline_close = matching_close(toks, k);
        guarded = mentions_guard(toks, k, std::min(inline_close + 1, toks.size()));
        tail_end = inline_close;
        break;
      }
      if (is_punct(toks[k], ";")) {
        for (const Tokens* file_toks : cpp_tokens) {
          bool found = false;
          if (out_of_class_guarded(*file_toks, cls, name, found)) {
            guarded = true;
            break;
          }
        }
        tail_end = k;
        break;
      }
    }
    if (!skip && !guarded) {
      emit(*hpp, t.line, check,
           "public " + std::string(cls) + "::" + std::string(name) +
               "() reads store state without a require_finalized()/finalized() "
               "guard and " + std::string(cls) +
               " does not fail loud at construction; throw std::logic_error on "
               "non-finalized access or justify with allow(finalize-protocol)",
           report);
    }
    i = tail_end;
  }
}

// ---------------------------------------------------------------------------
// Check: raw-sync
// ---------------------------------------------------------------------------

void scan_raw_sync(const SourceFile& file, Report& report) {
  const std::string check = "raw-sync";
  static const std::set<std::string_view> kBareThreading = {"thread", "jthread",
                                                            "async"};
  const Tokens& toks = file.tokens;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::Identifier) continue;

    if (t.text == "std" && i + 2 < toks.size() && is_punct(toks[i + 1], "::") &&
        toks[i + 2].kind == Token::Kind::Identifier &&
        kBareThreading.count(toks[i + 2].text) != 0) {
      emit(file, t.line, check,
           "bare std::" + std::string(toks[i + 2].text) +
               " outside src/util; route concurrency through util::ThreadPool "
               "(instrumented, exception-joining) or justify with allow(raw-sync)",
           report);
      i += 2;
      continue;
    }

    if (t.text == "detach" && i >= 1 &&
        (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
        i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      emit(file, t.line, check,
           "detach() leaves a task running past its owner's lifetime with no "
           "join point; submit to util::ThreadPool and hold the future instead",
           report);
      continue;
    }

    if (t.text == "new") {
      emit(file, t.line, check,
           "raw `new` without an owning smart pointer; use std::make_unique "
           "(or a container) so ownership is explicit",
           report);
      continue;
    }

    if (t.text == "const_cast") {
      emit(file, t.line, check,
           "const_cast subverts the const contract of the API it touches; fix "
           "constness at the interface or take an explicit copy",
           report);
      continue;
    }
  }
}

}  // namespace

void check_capture_lifetime(SourceTree& tree, Report& report) {
  for (const char* top : kScanDirs) {
    for (const auto& rel : tree.files_under(top)) {
      if (lint_own_source(rel)) continue;
      const SourceFile* file = tree.source(rel);
      if (file != nullptr) scan_capture_lifetime(*file, report);
    }
  }
}

void check_dangling_view(SourceTree& tree, Report& report) {
  for (const char* top : kScanDirs) {
    for (const auto& rel : tree.files_under(top)) {
      if (lint_own_source(rel)) continue;
      const SourceFile* file = tree.source(rel);
      if (file == nullptr) continue;
      scan_view_returning_functions(*file, report);
      scan_temporary_view_bindings(*file, report);
    }
  }
}

void check_finalize_protocol(SourceTree& tree, Report& report) {
  finalize_protocol_for_class(tree, "LogStore", "src/logmodel/log_store.hpp",
                              {"src/logmodel/log_store.cpp",
                               "src/logmodel/store_snapshot.cpp"},
                              report);
  finalize_protocol_for_class(tree, "AnalysisContext", "src/core/analysis_context.hpp",
                              {"src/core/analysis_context.cpp"}, report);
}

void check_raw_sync(SourceTree& tree, Report& report) {
  for (const char* top : kScanDirs) {
    for (const auto& rel : tree.files_under(top)) {
      if (lint_own_source(rel)) continue;
      if (rel.rfind("src/util/", 0) == 0) continue;  // the primitives live here
      const SourceFile* file = tree.source(rel);
      if (file != nullptr) scan_raw_sync(*file, report);
    }
  }
}

}  // namespace hpcfail::lint
