#include "util/chunked_reader.hpp"

#include <algorithm>

#include "util/fault.hpp"
#include "util/scan.hpp"

namespace hpcfail::util {

ChunkedLineReader::ChunkedLineReader(std::istream& in, std::size_t chunk_bytes)
    : in_(in), chunk_bytes_(std::max<std::size_t>(1, chunk_bytes)) {}

bool ChunkedLineReader::next(std::string& chunk) {
  chunk.clear();
  if (eof_ && carry_.empty()) return false;

  chunk.swap(carry_);
  // Grow until the chunk holds at least one complete line and is at least
  // chunk_bytes_ long (or the stream ends).  Reading never splits a line:
  // everything after the last '\n' is carried into the next call.
  //
  // `scanned` marks how far the newline search has already looked, so each
  // loop iteration only scans the bytes the read just appended.  (The carry
  // never contains a '\n' by construction, so starting past it is safe.)
  // Rescanning from offset 0 every iteration — the old behaviour — made a
  // single line of L bytes cost O(L²/chunk_bytes) comparisons.
  std::size_t scanned = 0;
  bool has_newline = false;
  while (!eof_ && (chunk.size() < chunk_bytes_ || !has_newline)) {
    const std::size_t old_size = chunk.size();
    chunk.resize(old_size + chunk_bytes_);
    if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) in_.setstate(std::ios::badbit);
    in_.read(chunk.data() + old_size, static_cast<std::streamsize>(chunk_bytes_));
    std::size_t got = static_cast<std::size_t>(in_.gcount());
    chunk.resize(old_size + got);
    if (in_.bad() || (in_.fail() && !in_.eof())) {
      // A stream error is not EOF: eofbit means the bytes ran out, badbit
      // (or failbit without eofbit) means the read itself broke.  Treating
      // the two alike silently truncates the corpus; fail loud instead.
      const std::size_t offset = bytes_read_ + chunk.size();
      throw IoError("stream I/O error (not EOF) after byte offset " +
                        std::to_string(offset),
                    offset);
    }
    if (HPCFAIL_FAULT_SITE("ingest.read.short_read")) {
      // Simulate a device short read: hand back half the bytes and behave
      // as if the stream ended there (truncation, not an error).
      got /= 2;
      chunk.resize(old_size + got);
    }
    if (got < chunk_bytes_) eof_ = true;
    if (!has_newline) {
      has_newline = scan::find_byte(chunk, '\n', scanned) != scan::npos;
      scanned = chunk.size();
    }
  }

  if (HPCFAIL_FAULT_SITE("ingest.read.torn_chunk")) {
    // Garble a run of payload bytes (newlines kept, so line accounting is
    // unchanged): the damaged lines must be skipped and counted, never
    // crash a parser.
    const std::size_t begin = chunk.size() / 3;
    const std::size_t end = std::min(chunk.size(), begin + 64);
    for (std::size_t i = begin; i < end; ++i) {
      if (chunk[i] != '\n') chunk[i] = '\x01';
    }
  }
  if (HPCFAIL_FAULT_SITE("ingest.read.midline_eof")) {
    // Cut the stream in the middle of the chunk's final line.
    const std::size_t last_nl = scan::rfind_byte(chunk, '\n');
    if (last_nl != std::string::npos && last_nl + 2 < chunk.size()) {
      chunk.resize(last_nl + 1 + (chunk.size() - last_nl - 1) / 2);
    }
    eof_ = true;
    carry_.clear();
  }

  if (!eof_) {
    const std::size_t last_nl = scan::rfind_byte(chunk, '\n');
    // The loop above guarantees a '\n' exists when !eof_.
    carry_.assign(chunk, last_nl + 1, chunk.size() - last_nl - 1);
    chunk.resize(last_nl + 1);
  }
  bytes_read_ += chunk.size();
  return !chunk.empty();
}

}  // namespace hpcfail::util
