// Streaming, bounded-memory corpus ingestion: per-source log files ->
// finalized LogStore + JobTable, without ever holding a full source text
// or a full line-view vector in memory.
//
// The pipeline per non-scheduler source:
//
//   ChunkedLineReader --chunk--> ThreadPool parse task --records--> StoreBuilder
//
// The reader hands out fixed-size chunks split on line boundaries; up to
// `max_inflight_chunks` chunks are being parsed concurrently while the
// next one is read (read -> parse -> shard pipelining); parsed chunks are
// retired in submission order, so the record sequence reaching the
// sharded builder is exactly the file's line order.  Peak text residency
// is chunk_bytes x (inflight + 1) instead of the corpus size.
//
// The scheduler source is parsed sequentially (its lines mutate the
// JobTable in order) but still streams chunk by chunk.
//
// Equivalence guarantee, pinned by tests/ingest_test.cpp: for the same
// corpus bytes, ingest_files() and the in-memory parse_corpus() produce
// identical ParsedCorpus contents (record order, indexes, line counts).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "parsers/corpus_parser.hpp"
#include "parsers/source_parsers.hpp"

namespace hpcfail::parsers {

struct IngestOptions {
  /// Target chunk size in bytes; a chunk grows past this only when a
  /// single line is longer.  256 KiB keeps the in-flight buffers a small
  /// fraction of peak RSS at no measurable throughput cost.
  std::size_t chunk_bytes = std::size_t{1} << 18;
  /// Chunks parsed concurrently per source; 0 means 2 x pool size.
  std::size_t max_inflight_chunks = 0;
  /// Records per StoreBuilder shard (bounds the per-shard sort).
  std::size_t shard_records = std::size_t{1} << 16;
  /// Pool for chunk parsing and shard sorting; null = shared default pool.
  util::ThreadPool* pool = nullptr;
};

/// One open source stream; `in` must outlive the ingest call.
struct SourceStream {
  logmodel::LogSource source;
  std::istream* in = nullptr;
};

/// Streams a corpus directory (manifest.txt + per-source log files, as
/// written by loggen::write_corpus).  Absent source files are skipped,
/// mirroring read_corpus.  Throws on a missing/malformed manifest.
[[nodiscard]] ParsedCorpus ingest_files(const std::string& dir,
                                        const IngestOptions& options = {});

/// Lower-level entry: `header` carries the manifest fields (system,
/// topology, window); `sources` are parsed in the canonical source order
/// regardless of their order in the vector.
[[nodiscard]] ParsedCorpus ingest_stream(const loggen::Corpus& header,
                                         const std::vector<SourceStream>& sources,
                                         const IngestOptions& options = {});

/// The stateless per-line parser the parallel path uses for `source`
/// (nullptr for LogSource::Scheduler, which is stateful).
using LineParseFn = std::optional<logmodel::LogRecord> (*)(std::string_view,
                                                           const ParseContext&);
[[nodiscard]] LineParseFn line_parser_for(logmodel::LogSource source) noexcept;

}  // namespace hpcfail::parsers
