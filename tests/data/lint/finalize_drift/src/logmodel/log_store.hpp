// Fixture: unguarded public accessors on the finalize protocol.
#pragma once
#include <cstddef>
#include <vector>

namespace hpcfail::logmodel {

class LogStore {
 public:
  void add(int r) { finalized_ = false; records_.push_back(r); }
  void finalize();
  bool finalized() const { return finalized_; }
  std::size_t size() const { return records_.size(); }
  // hpcfail-lint: allow(finalize-protocol) -- order-independent read, tolerated in this fixture
  int first() const { return records_.front(); }
  // hpcfail-lint: allow(finalize-protocol)
  int last() const { return records_.back(); }

 private:
  std::vector<int> records_;
  bool finalized_ = false;
};

}  // namespace hpcfail::logmodel
