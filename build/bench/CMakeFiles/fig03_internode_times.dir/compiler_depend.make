# Empty compiler generated dependencies file for fig03_internode_times.
# This may be replaced when dependencies are built.
