// A corpus is the raw-text form of a simulated log window: one text blob
// per log source plus a manifest describing the machine (the information a
// site operator would know out-of-band: system label, topology, scheduler,
// log window).  Corpora can live in memory or be written to / read from a
// directory of files:
//
//   <dir>/manifest.txt   key=value lines
//   <dir>/p0-console.log p0-messages.log p0-consumer.log
//   <dir>/controller.log erd.log scheduler.log
//
// The institutional system S5 has no controller/ERD universe; those files
// are simply absent, which is how the paper's "no external environmental
// logs for S5" materializes at the text level.
#pragma once

#include <array>
#include <string>

#include "faultsim/simulator.hpp"
#include "logmodel/event_type.hpp"
#include "platform/system_config.hpp"

namespace hpcfail::loggen {

struct Corpus {
  platform::SystemConfig system;
  util::TimePoint begin;
  int days = 0;
  /// Raw text per source, one line per record, time-ordered.
  std::array<std::string, logmodel::kLogSourceCount> text;
  /// Routine chatter lines interleaved into console/messages (not events;
  /// parsers must skip exactly these).
  std::size_t chatter_lines = 0;

  [[nodiscard]] const std::string& of(logmodel::LogSource s) const noexcept {
    return text[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::string& of(logmodel::LogSource s) noexcept {
    return text[static_cast<std::size_t>(s)];
  }
  /// Total corpus size in bytes.
  [[nodiscard]] std::size_t bytes() const noexcept;
};

/// Renders a simulation into raw text (in memory).
[[nodiscard]] Corpus build_corpus(const faultsim::SimulationResult& sim);

/// Writes a corpus to a directory (created if needed). Throws on IO errors.
void write_corpus(const Corpus& corpus, const std::string& dir);

/// Reads a corpus back from a directory. Throws on missing manifest or
/// malformed fields.
[[nodiscard]] Corpus read_corpus(const std::string& dir);

/// Reads only manifest.txt — the machine/window header — leaving every
/// source text empty.  This is how the streaming ingest path
/// (parsers::ingest_files) learns the topology and base year without
/// pulling the log files into memory.
[[nodiscard]] Corpus read_corpus_header(const std::string& dir);

/// File name a source is written to inside a corpus directory
/// (e.g. "p0-console.log" for LogSource::Console).
[[nodiscard]] std::string_view source_file_name(logmodel::LogSource source) noexcept;

/// Serializes/parses the manifest (exposed for tests).
[[nodiscard]] std::string manifest_to_string(const Corpus& corpus);
[[nodiscard]] Corpus corpus_from_manifest(const std::string& manifest);

}  // namespace hpcfail::loggen
