// Corpus-level persistence: a whole ParsedCorpus — finalized LogStore,
// JobTable, the machine/window manifest and the line accounting — as one
// hpcfail.store.v1 file.  This is what "parse once, analyze many times"
// ships between runs: load_snapshot() yields a ParsedCorpus
// indistinguishable from the text-ingest paths (enforced byte-for-byte
// against the report goldens in tests/snapshot_test.cpp), without touching
// a line of log text.
//
// Error discipline matches ingest.hpp: structured SnapshotError, never an
// exception across the API boundary, and never a partially loaded corpus —
// a file that fails any validation step yields an error and nothing else.
#pragma once

#include <optional>
#include <string>

#include "parsers/corpus_parser.hpp"
#include "util/snapshot.hpp"

namespace hpcfail::parsers {

/// Writes `corpus` (which must hold a finalized store and job table — any
/// ParsedCorpus returned by parse_corpus/ingest_files qualifies) to `path`
/// as an hpcfail.store.v1 snapshot.
[[nodiscard]] std::optional<util::SnapshotError> save_snapshot(
    const ParsedCorpus& corpus, const std::string& path);

/// load_snapshot's result: on success `error` is empty and the base
/// ParsedCorpus is fully populated; on failure only `error` is meaningful
/// (the base is default-constructed, never partially filled).
struct SnapshotLoadResult : ParsedCorpus {
  std::optional<util::SnapshotError> error;

  [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
};

/// Bulk-reads and validates a snapshot written by save_snapshot().
[[nodiscard]] SnapshotLoadResult load_snapshot(const std::string& path);

}  // namespace hpcfail::parsers
