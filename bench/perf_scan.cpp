// Microbenchmarks for the util::scan primitives, isolated from the rest
// of the pipeline: newline scanning (LineCursor), branchless timestamp
// parsing (parse_iso over the SWAR digit kernels) and single-pass payload
// classification (SignatureSet via classify_kernel_payload).
//
// Each primitive is measured twice — once under the runtime-dispatched
// tier (AVX2/SSE on x86, whatever active_isa() picked) and once with
// force_isa(Swar), the portable fallback every build ships.  A kernel
// regression shows up here as a tier-level rate change long before it is
// visible through end-to-end ingest noise.  Note the digit kernels are
// header-inline SWAR at every tier, so the timestamp row moving with the
// tier would itself be a bug.
//
// `--json[=PATH]` writes BENCH_scan.json (CI uploads it next to
// BENCH_pipeline.ci.json); with no flag a human-readable table prints.
// Inputs are real rendered log text (one simulated S1 day, fixed seed),
// not synthetic byte soup, so anchor-byte frequencies match production.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/line_classifier.hpp"
#include "util/scan.hpp"
#include "util/time.hpp"

namespace {

using namespace hpcfail;
using Clock = std::chrono::steady_clock;

constexpr int kRepeats = 5;          // best-of, like perf_pipeline --json
constexpr double kMinSeconds = 0.2;  // per measured repeat

struct Rate {
  double mb_per_s = 0.0;
  double items_per_s = 0.0;
};

/// Runs `body` (which processes `bytes` bytes / `items` items per call)
/// in a calibrated loop, returns the best-of-kRepeats rate.
template <typename Body>
Rate measure(std::size_t bytes, std::size_t items, Body&& body) {
  // Calibrate the inner iteration count to ~kMinSeconds per repeat.
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s >= kMinSeconds / 4) break;
    iters *= 4;
  }
  Rate best;
  for (int r = 0; r < kRepeats; ++r) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    const double mb = static_cast<double>(iters * bytes) / 1e6 / s;
    if (mb > best.mb_per_s) {
      best.mb_per_s = mb;
      best.items_per_s = static_cast<double>(iters * items) / s;
    }
  }
  return best;
}

struct Inputs {
  std::string console_text;             ///< whole rendered console stream
  std::vector<std::string> timestamps;  ///< ISO prefixes of console lines
  std::vector<std::string> payloads;    ///< text after "kernel: "
  std::size_t timestamp_bytes = 0;
  std::size_t payload_bytes = 0;
};

Inputs build_inputs() {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 1, 42)).run();
  const auto corpus = loggen::build_corpus(sim);
  Inputs in;
  in.console_text = corpus.of(logmodel::LogSource::Console);
  util::scan::LineCursor cursor(in.console_text);
  std::string_view line;
  while (cursor.next(line)) {
    // Console lines open with an ISO-8601 timestamp; take through the
    // fractional seconds (26 bytes, format_iso width).
    if (line.size() >= 26) in.timestamps.emplace_back(line.substr(0, 26));
    const std::size_t pos = line.find("kernel: ");
    if (pos != std::string_view::npos) in.payloads.emplace_back(line.substr(pos + 8));
  }
  for (const auto& t : in.timestamps) in.timestamp_bytes += t.size();
  for (const auto& p : in.payloads) in.payload_bytes += p.size();
  return in;
}

struct TierResults {
  const char* isa = "";
  Rate newline_scan;      ///< LineCursor over the whole console stream
  Rate timestamp_parse;   ///< parse_iso per extracted timestamp
  Rate classifier;        ///< classify_kernel_payload per payload
};

TierResults run_tier(const Inputs& in) {
  TierResults r;
  r.isa = util::scan::isa_name(util::scan::active_isa()).data();

  std::size_t sink = 0;
  r.newline_scan = measure(in.console_text.size(), 1, [&] {
    util::scan::LineCursor cursor(in.console_text);
    std::string_view line;
    std::size_t lines = 0;
    while (cursor.next(line)) lines += line.size() != 0;
    sink += lines;
  });

  r.timestamp_parse = measure(in.timestamp_bytes, in.timestamps.size(), [&] {
    for (const auto& t : in.timestamps) {
      if (const auto tp = util::parse_iso(t)) sink += static_cast<std::size_t>(tp->usec);
    }
  });

  r.classifier = measure(in.payload_bytes, in.payloads.size(), [&] {
    for (const auto& p : in.payloads) {
      if (parsers::classify_kernel_payload(p)) ++sink;
    }
  });

  // Keep `sink` live without letting the compiler see through it.
  if (sink == static_cast<std::size_t>(-1)) std::fprintf(stderr, "impossible\n");
  return r;
}

void print_tier(const TierResults& r) {
  std::printf("  [%s]\n", r.isa);
  std::printf("    newline_scan     %8.1f MB/s\n", r.newline_scan.mb_per_s);
  std::printf("    timestamp_parse  %8.1f MB/s  (%.1f M/s)\n", r.timestamp_parse.mb_per_s,
              r.timestamp_parse.items_per_s / 1e6);
  std::printf("    classifier       %8.1f MB/s  (%.1f M/s)\n", r.classifier.mb_per_s,
              r.classifier.items_per_s / 1e6);
}

void write_json(const std::string& path, const Inputs& in, const TierResults& fast,
                const TierResults& swar) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "perf_scan: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  char buf[1024];
  const auto tier = [&buf](const TierResults& r) {
    std::snprintf(buf, sizeof(buf),
                  "{\"isa\": \"%s\", \"newline_scan_mb_per_s\": %.1f, "
                  "\"timestamp_parse_mb_per_s\": %.1f, "
                  "\"timestamp_parse_per_s\": %.0f, "
                  "\"classifier_mb_per_s\": %.1f, "
                  "\"classifier_lines_per_s\": %.0f}",
                  r.isa, r.newline_scan.mb_per_s, r.timestamp_parse.mb_per_s,
                  r.timestamp_parse.items_per_s, r.classifier.mb_per_s,
                  r.classifier.items_per_s);
    return std::string(buf);
  };
  out << "{\n"
      << "  \"bench\": \"perf_scan\",\n"
      << "  \"corpus\": {\"system\": \"S1\", \"days\": 1, \"seed\": 42, "
      << "\"console_bytes\": " << in.console_text.size()
      << ", \"timestamps\": " << in.timestamps.size()
      << ", \"payloads\": " << in.payloads.size() << "},\n"
      << "  \"repeats\": " << kRepeats << ",\n"
      << "  \"dispatched\": " << tier(fast) << ",\n"
      << "  \"swar\": " << tier(swar) << "\n"
      << "}\n";
  std::fprintf(stderr, "perf_scan: wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_scan.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: perf_scan [--json[=PATH]]\n");
      return 1;
    }
  }

  std::fprintf(stderr, "perf_scan: rendering S1 day (seed 42)...\n");
  const Inputs in = build_inputs();

  // Dispatched tier first (whatever the CPU + HPCFAIL_NO_SIMD resolve to),
  // then pin the portable SWAR floor and measure the same primitives.
  const TierResults fast = run_tier(in);
  util::scan::force_isa(util::scan::Isa::Swar);
  const TierResults swar = run_tier(in);

  if (!json_path.empty()) {
    write_json(json_path, in, fast, swar);
    return 0;
  }
  std::printf("==== perf_scan (console %zu bytes, %zu timestamps, %zu payloads) ====\n",
              in.console_text.size(), in.timestamps.size(), in.payloads.size());
  print_tier(fast);
  print_tier(swar);
  return 0;
}
