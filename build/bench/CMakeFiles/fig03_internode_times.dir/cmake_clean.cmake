file(REMOVE_RECURSE
  "CMakeFiles/fig03_internode_times.dir/fig03_internode_times.cpp.o"
  "CMakeFiles/fig03_internode_times.dir/fig03_internode_times.cpp.o.d"
  "fig03_internode_times"
  "fig03_internode_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_internode_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
