# Empty dependencies file for hpcfail_faultsim.
# This may be replaced when dependencies are built.
