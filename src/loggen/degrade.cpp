#include "loggen/degrade.hpp"

#include "util/strings.hpp"
#include "util/time.hpp"

namespace hpcfail::loggen {

namespace {

/// Best-effort line timestamp: ISO prefix, else syslog prefix.
std::optional<util::TimePoint> line_time(std::string_view line, int base_year) {
  if (line.size() >= 26) {
    if (const auto iso = util::parse_iso(line.substr(0, 26))) return iso;
  }
  if (line.size() >= 15) {
    if (const auto sys = util::parse_syslog(line.substr(0, 15), base_year)) return sys;
  }
  return std::nullopt;
}

}  // namespace

Corpus degrade_corpus(const Corpus& corpus, const DegradeConfig& config) {
  Corpus out = corpus;
  util::Rng rng(config.seed);
  const int base_year = util::civil_time(corpus.begin).year;

  for (std::size_t s = 0; s < out.text.size(); ++s) {
    if (config.drop_source[s]) {
      out.text[s].clear();
      continue;
    }
    if (config.drop_line_fraction <= 0.0 && config.corrupt_line_fraction <= 0.0 &&
        !config.gap_begin) {
      continue;
    }
    std::string degraded;
    degraded.reserve(out.text[s].size());
    for (const auto line : util::split(out.text[s], '\n')) {
      if (line.empty()) continue;
      if (config.drop_line_fraction > 0.0 && rng.bernoulli(config.drop_line_fraction)) {
        continue;
      }
      if (config.gap_begin && config.gap_end) {
        const auto t = line_time(line, base_year);
        if (t && *t >= *config.gap_begin && *t < *config.gap_end) continue;
      }
      std::string kept(line);
      if (config.corrupt_line_fraction > 0.0 &&
          rng.bernoulli(config.corrupt_line_fraction) && !kept.empty()) {
        const auto bytes = rng.uniform_int(1, 5);
        for (std::int64_t b = 0; b < bytes; ++b) {
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(kept.size()) - 1));
          kept[pos] = static_cast<char>(rng.uniform_int(33, 126));
        }
      }
      degraded += kept;
      degraded += '\n';
    }
    out.text[s] = std::move(degraded);
  }
  return out;
}

}  // namespace hpcfail::loggen
