// CLI driver for hpcfail-lint.  Exit codes: 0 clean, 1 diagnostics emitted,
// 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "baseline.hpp"
#include "cxx_model.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: hpcfail-lint [--repo-root DIR] [--check NAME]... [--list-checks]\n"
      "                    [--baseline FILE] [--write-baseline FILE]\n"
      "                    [--sarif-out FILE] [--stats]\n"
      "\n"
      "Statically cross-checks the emitter templates, parser tables and\n"
      "FORMATS.md schemas of an hpcfail tree, plus repo invariants and\n"
      "token-level lifetime/concurrency checks (capture-lifetime,\n"
      "dangling-view, finalize-protocol, raw-sync).  Prints gcc-style\n"
      "file:line diagnostics and exits non-zero when the tree has drifted.\n"
      "\n"
      "  --baseline FILE        drop findings listed in FILE (file|check|message\n"
      "                         lines); only regressions fail the run.  Stale\n"
      "                         entries are reported on stderr.\n"
      "  --write-baseline FILE  write the current findings as a baseline and\n"
      "                         exit 0 (accept-current-state workflow).\n"
      "  --sarif-out FILE       also write the (pre-baseline) report as\n"
      "                         SARIF 2.1.0 for code-scanning upload.\n"
      "  --stats                print files/bytes loaded and wall time to\n"
      "                         stderr (the shared SourceTree cache means the\n"
      "                         tree is read once regardless of check count).\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::vector<std::string> checks;
  std::filesystem::path baseline_path;
  std::filesystem::path write_baseline_path;
  std::filesystem::path sarif_path;
  bool stats = false;

  const auto need_value = [&](int i, const char* flag) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "hpcfail-lint: %s needs a value\n", flag);
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    }
    if (arg == "--list-checks") {
      for (const auto& name : hpcfail::lint::all_check_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg == "--repo-root") {
      if (!need_value(i, "--repo-root")) return 2;
      root = argv[++i];
      continue;
    }
    if (arg == "--check") {
      if (!need_value(i, "--check")) return 2;
      checks.emplace_back(argv[++i]);
      continue;
    }
    if (arg == "--baseline") {
      if (!need_value(i, "--baseline")) return 2;
      baseline_path = argv[++i];
      continue;
    }
    if (arg == "--write-baseline") {
      if (!need_value(i, "--write-baseline")) return 2;
      write_baseline_path = argv[++i];
      continue;
    }
    if (arg == "--sarif-out") {
      if (!need_value(i, "--sarif-out")) return 2;
      sarif_path = argv[++i];
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    std::fprintf(stderr, "hpcfail-lint: unknown argument '%s'\n", argv[i]);
    usage(stderr);
    return 2;
  }

  if (!std::filesystem::exists(root)) {
    std::fprintf(stderr, "hpcfail-lint: repo root '%s' does not exist\n",
                 root.string().c_str());
    return 2;
  }

  // A mistyped --check is a usage error (exit 2), not a lint finding: a CI
  // job must not be able to "fail with findings" on a flag typo.
  const auto known = hpcfail::lint::all_check_names();
  for (const auto& name : checks) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "hpcfail-lint: unknown check '%s' (see --list-checks)\n",
                   name.c_str());
      return 2;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  hpcfail::lint::SourceTree tree(root);
  hpcfail::lint::Report report = hpcfail::lint::run_checks(tree, checks);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (stats) {
    std::fprintf(stderr,
                 "hpcfail-lint: stats: %zu files / %zu bytes loaded once, "
                 "%lld ms wall\n",
                 tree.files_loaded(), tree.bytes_loaded(),
                 static_cast<long long>(wall_ms));
  }

  // SARIF reflects the full (pre-baseline) report: code scanning tracks
  // known findings itself; hiding baselined ones would resurface them as
  // "new" the day the baseline changes.
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "hpcfail-lint: cannot write SARIF to '%s'\n",
                   sarif_path.string().c_str());
      return 2;
    }
    out << hpcfail::lint::to_sarif(report);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "hpcfail-lint: cannot write baseline to '%s'\n",
                   write_baseline_path.string().c_str());
      return 2;
    }
    out << hpcfail::lint::render_baseline(report);
    std::fprintf(stderr, "hpcfail-lint: wrote %zu finding(s) to baseline '%s'\n",
                 report.diagnostics.size(), write_baseline_path.string().c_str());
    return 0;
  }

  if (!baseline_path.empty()) {
    const auto baseline = hpcfail::lint::load_baseline(baseline_path);
    const auto applied = hpcfail::lint::apply_baseline(report, baseline);
    if (applied.suppressed > 0) {
      std::fprintf(stderr, "hpcfail-lint: %zu baselined finding(s) suppressed\n",
                   applied.suppressed);
    }
    for (const auto& key : applied.stale_keys) {
      std::fprintf(stderr, "hpcfail-lint: stale baseline entry: %s\n", key.c_str());
    }
  }

  for (const auto& d : report.diagnostics) {
    std::printf("%s\n", d.to_string().c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "hpcfail-lint: %zu finding(s)\n", report.diagnostics.size());
    return 1;
  }
  std::fprintf(stderr, "hpcfail-lint: clean\n");
  return 0;
}
