// Serve-layer battery: golden request/response transcripts for every
// protocol verb (byte-pinned per system, S1..S5), the malformed-request
// matrix (every bad input answers a structured error and the daemon keeps
// serving), the epoch cache contract (repeated queries within an epoch
// never recompute; a tail advance bumps the epoch and recomputes once),
// and the tail/session mechanics the daemon is built from.
//
// To regenerate the transcripts after an intentional protocol change:
//   HPCFAIL_UPDATE_GOLDENS=1 ./tests/serve_test
// then review the diff like any golden update.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/tail.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail {
namespace {

std::string golden_dir() {
  // Tests run from the build tree; the fixture lives in the source tree.
  for (const char* candidate :
       {"../testdata/serve_golden", "../../testdata/serve_golden",
        "testdata/serve_golden", "/root/repo/testdata/serve_golden"}) {
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return {};
}

/// The last line of a source's raw text that actually parses into a record
/// (console text interleaves chatter the parsers skip) — re-appending it
/// to a tail is guaranteed to produce one record without violating the
/// store's time order.
std::string last_parsable_line(const parsers::ParsedCorpus& parsed,
                               const loggen::Corpus& corpus,
                               logmodel::LogSource source) {
  const parsers::LineParseFn parse = parsers::line_parser_for(source);
  logmodel::SymbolTable scratch;
  parsers::ParseContext ctx;
  ctx.topo = &parsed.topology;
  ctx.symbols = &scratch;
  const util::CivilTime civil = util::civil_time(corpus.begin);
  ctx.base_year = civil.year;
  ctx.base_month = civil.month;

  const std::string& text = corpus.of(source);
  std::size_t end = text.size();
  while (end > 0) {
    while (end > 0 && text[end - 1] == '\n') --end;
    const std::size_t nl = text.rfind('\n', end == 0 ? 0 : end - 1);
    const std::size_t begin = nl == std::string::npos ? 0 : nl + 1;
    std::string line = text.substr(begin, end - begin);
    if (parse != nullptr && parse(line, ctx).has_value()) return line;
    end = begin;
  }
  return {};
}

/// A booted daemon plus the context the tests need alongside it.
struct Booted {
  loggen::Corpus corpus;
  std::string node_name;       ///< a real node name for node_health requests
  std::string tail_line;       ///< console line guaranteed to parse
  std::size_t base_records = 0;
  std::unique_ptr<serve::Server> server;
};

Booted boot(platform::SystemName system, int days, unsigned seed,
            serve::ServerConfig config = {}) {
  Booted out;
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(system, days, seed)).run();
  out.corpus = loggen::build_corpus(sim);
  auto parsed = parsers::parse_corpus(out.corpus);
  out.base_records = parsed.store.size();
  if (!parsed.store.nodes().empty()) {
    out.node_name =
        std::string(parsed.topology.node_name(parsed.store.nodes().front()));
  }
  out.tail_line = last_parsable_line(parsed, out.corpus, logmodel::LogSource::Console);
  out.server = std::make_unique<serve::Server>(std::move(parsed), config);
  return out;
}

/// Scratch file with lifetime-scoped cleanup.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("/tmp/hpcfail_serve_test." + name) {
    std::filesystem::remove(path_);
  }
  ~ScratchFile() { std::filesystem::remove(path_); }
  ScratchFile(const ScratchFile&) = delete;
  ScratchFile& operator=(const ScratchFile&) = delete;

  void append(const std::string& text) const {
    std::ofstream out(path_, std::ios::app | std::ios::binary);
    out << text;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------- golden transcripts --

/// Transcript format: alternating request line / response line.  The
/// request script covers every verb in the protocol table.
std::vector<std::string> transcript_requests(serve::Server& server,
                                             const std::string& node_name) {
  std::vector<std::string> requests = {
      R"({"id":1,"verb":"ping"})",
      R"({"id":2,"verb":"status"})",
      R"({"id":3,"verb":"causes"})",
      R"({"id":4,"verb":"lead_time"})",
      R"({"id":5,"verb":"node_health","params":{"node":")" + node_name + R"("}})",
      R"({"id":6,"verb":"report"})",
  };
  // Slice the first report section by the name the daemon just listed.
  const std::string listing = server.handle_line(requests.back());
  const auto doc = serve::JsonValue::parse(listing);
  std::string section;
  if (doc.has_value()) {
    if (const serve::JsonValue* data = doc->find("data")) {
      if (const serve::JsonValue* sections = data->find("sections")) {
        if (sections->is_array() && !sections->items().empty() &&
            sections->items().front().is_string()) {
          section = sections->items().front().as_string();
        }
      }
    }
  }
  std::string escaped;
  serve::append_json_string(escaped, section);
  requests.push_back(R"({"id":7,"verb":"report","params":{"section":)" + escaped +
                     "}}");
  requests.push_back(R"({"id":8,"verb":"metrics"})");
  requests.push_back(R"({"id":9,"verb":"shutdown"})");
  return requests;
}

class ServeGolden : public ::testing::TestWithParam<platform::SystemName> {};

TEST_P(ServeGolden, TranscriptMatchesGolden) {
  const std::string dir = golden_dir();
  if (dir.empty()) GTEST_SKIP() << "testdata/serve_golden not found";
  Booted booted = boot(GetParam(), 3, 4200);
  const std::string label = booted.corpus.system.label;
  const std::filesystem::path path = std::filesystem::path(dir) / (label + ".txt");

  if (std::getenv("HPCFAIL_UPDATE_GOLDENS") != nullptr) {
    // A fresh daemon, so the transcript-listing probe inside
    // transcript_requests and the recorded responses see the same epoch
    // cache state as a replay does.
    const std::vector<std::string> requests =
        transcript_requests(*booted.server, booted.node_name);
    Booted fresh = boot(GetParam(), 3, 4200);
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    for (const std::string& request : requests) {
      out << request << "\n" << fresh.server->handle_line(request) << "\n";
    }
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (run with HPCFAIL_UPDATE_GOLDENS=1 to create)";
  std::string request;
  std::string want;
  std::size_t pairs = 0;
  while (std::getline(in, request)) {
    ASSERT_TRUE(std::getline(in, want)) << "transcript has a request with no response";
    EXPECT_EQ(booted.server->handle_line(request), want)
        << label << " response drifted for request: " << request;
    ++pairs;
  }
  EXPECT_EQ(pairs, 9u) << "transcript must cover all nine scripted requests";
  EXPECT_TRUE(booted.server->shutdown_requested()) << "script ends in shutdown";
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ServeGolden,
                         ::testing::Values(platform::SystemName::S1,
                                           platform::SystemName::S2,
                                           platform::SystemName::S3,
                                           platform::SystemName::S4,
                                           platform::SystemName::S5),
                         [](const auto& info) {
                           return platform::system_preset(info.param).label;
                         });

// --------------------------------------------------- malformed requests ----

TEST(ServeProtocolTest, MalformedRequestsAnswerStructuredErrors) {
  Booted booted = boot(platform::SystemName::S2, 1, 4242);
  serve::Server& server = *booted.server;

  const struct {
    std::string request;
    std::string kind;
  } cases[] = {
      {R"({"id":1,"verb":"pi)", "bad_request"},              // truncated JSON
      {"", "bad_request"},                                    // empty line
      {"[1,2,3]", "bad_request"},                             // not an object
      {R"({"verb":"ping"})", "bad_request"},                  // missing id
      {R"({"id":-1,"verb":"ping"})", "bad_request"},          // negative id
      {R"({"id":1.5,"verb":"ping"})", "bad_request"},         // fractional id
      {R"({"id":1})", "bad_request"},                         // missing verb
      {R"({"id":1,"verb":7})", "bad_request"},                // verb not a string
      {R"({"id":1,"verb":"frobnicate"})", "unknown_verb"},    // not in the table
      {R"({"id":1,"verb":"ping","params":7})", "bad_request"},  // params not object
      {R"({"id":1,"verb":"node_health"})", "bad_params"},       // missing node
      {R"({"id":1,"verb":"node_health","params":{"node":"no-such-node"}})",
       "bad_params"},
      {R"({"id":1,"verb":"report","params":{"section":"No Such Section"}})",
       "bad_params"},
      {R"({"id":1,"verb":"ping"}trailing)", "bad_request"},   // trailing garbage
  };
  for (const auto& c : cases) {
    const std::string response = server.handle_line(c.request);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos)
        << "request: " << c.request << " response: " << response;
    EXPECT_NE(response.find("\"kind\":\"" + c.kind + "\""), std::string::npos)
        << "request: " << c.request << " response: " << response;
    const auto doc = serve::JsonValue::parse(response);
    ASSERT_TRUE(doc.has_value()) << "error response must itself be valid JSON";
    ASSERT_NE(doc->find("error"), nullptr);
    EXPECT_NE(doc->find("error")->find("message"), nullptr);
  }

  // Oversized line: limit + 1 bytes of valid-looking JSON is still refused.
  std::string big = R"({"id":1,"verb":"ping","params":{"pad":")";
  big.append(serve::kMaxRequestBytes, 'x');
  big += "\"}}";
  const std::string response = server.handle_line(big);
  EXPECT_NE(response.find("\"kind\":\"oversized\""), std::string::npos) << response;

  // The daemon survived all of it: a well-formed request still answers.
  EXPECT_NE(server.handle_line(R"({"id":99,"verb":"ping"})")
                .find("\"data\":{\"pong\":true}"),
            std::string::npos);
  EXPECT_FALSE(server.shutdown_requested());
}

// ------------------------------------------------------------ epoch cache --

TEST(ServeEpochTest, RepeatedQueriesNeverRecomputeWithinAnEpoch) {
  Booted booted = boot(platform::SystemName::S2, 1, 4242);
  serve::Server& server = *booted.server;
  const ScratchFile tail("epoch_tail.log");
  server.attach_tail(tail.path(), logmodel::LogSource::Console);

  EXPECT_EQ(server.analysis_recomputes(), 0u) << "boot must not analyze eagerly";
  const std::string first = server.handle_line(R"({"id":1,"verb":"causes"})");
  EXPECT_EQ(server.analysis_recomputes(), 1u);
  // Same query, same epoch: answered from the cache, byte-identical.
  EXPECT_EQ(server.handle_line(R"({"id":1,"verb":"causes"})"), first);
  // Different analysis-backed verbs share the one computation.
  (void)server.handle_line(R"({"id":2,"verb":"lead_time"})");
  (void)server.handle_line(R"({"id":3,"verb":"report"})");
  EXPECT_EQ(server.analysis_recomputes(), 1u)
      << "lead_time/report within the epoch must reuse the cached analysis";
  EXPECT_NE(first.find("\"epoch\":0"), std::string::npos);

  // An empty poll is not a tail advance: epoch and cache stay put.
  EXPECT_TRUE(server.poll_tail().ok());
  EXPECT_EQ(server.epoch(), 0u);

  // A record-bearing poll advances the epoch; the next analysis-backed
  // query recomputes exactly once against the grown store.
  ASSERT_FALSE(booted.tail_line.empty());
  tail.append(booted.tail_line + "\n");
  const auto poll = server.poll_tail();
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(poll.records, 1u) << "re-appended corpus line must parse";
  EXPECT_EQ(server.epoch(), 1u);

  const std::string after = server.handle_line(R"({"id":4,"verb":"causes"})");
  EXPECT_EQ(server.analysis_recomputes(), 2u);
  EXPECT_NE(after.find("\"epoch\":1"), std::string::npos);
  const std::string status = server.handle_line(R"({"id":5,"verb":"status"})");
  EXPECT_NE(status.find("\"records\":" + std::to_string(booted.base_records + 1)),
            std::string::npos)
      << status;
  EXPECT_NE(status.find("\"tail_records\":1"), std::string::npos) << status;
}

// ------------------------------------------------------------- tail reader --

TEST(TailReaderTest, PartialLinesWaitForTheirNewline) {
  const ScratchFile file("tail_partial.log");
  serve::TailReader reader(file.path(), logmodel::LogSource::Console);

  // Absent file: empty poll, no error.
  auto poll = reader.poll();
  EXPECT_TRUE(poll.ok());
  EXPECT_TRUE(poll.lines.empty());

  file.append("alpha\nbeta");  // beta is mid-append
  poll = reader.poll();
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll.lines.size(), 1u);
  EXPECT_EQ(poll.lines[0], "alpha");

  file.append("-still-beta\ngamma\r\n");  // beta completes; gamma is CRLF
  poll = reader.poll();
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(poll.lines.size(), 2u);
  EXPECT_EQ(poll.lines[0], "beta-still-beta");
  EXPECT_EQ(poll.lines[1], "gamma");

  poll = reader.poll();  // nothing new
  EXPECT_TRUE(poll.ok());
  EXPECT_TRUE(poll.lines.empty());
  EXPECT_EQ(reader.offset(), std::string("alpha\nbeta-still-beta\ngamma\r\n").size());
}

TEST(TailReaderTest, SchedulerTailsAreRejected) {
  Booted booted = boot(platform::SystemName::S2, 1, 4242);
  EXPECT_THROW(
      booted.server->attach_tail("/tmp/never-read.log", logmodel::LogSource::Scheduler),
      std::invalid_argument);
}

// ---------------------------------------------------------------- sessions --

TEST(ServeSessionTest, SerialSessionAnswersInOrderAndStopsOnShutdown) {
  Booted booted = boot(platform::SystemName::S2, 1, 4242);
  std::istringstream in(
      "{\"id\":1,\"verb\":\"ping\"}\n"
      "{\"id\":2,\"verb\":\"shutdown\"}\n"
      "{\"id\":3,\"verb\":\"ping\"}\n");
  std::ostringstream out;
  const std::size_t answered = serve::run_session(*booted.server, in, out);
  EXPECT_EQ(answered, 2u) << "the request after shutdown must not be read";
  const std::string text = out.str();
  EXPECT_NE(text.find("\"id\":1"), std::string::npos);
  EXPECT_NE(text.find("\"stopping\":true"), std::string::npos);
  EXPECT_EQ(text.find("\"id\":3"), std::string::npos);
}

TEST(ServeSessionTest, PooledSessionKeepsResponsesInRequestOrder) {
  Booted booted = boot(platform::SystemName::S2, 1, 4242);
  std::ostringstream script;
  const int kRequests = 40;
  for (int i = 1; i <= kRequests; ++i) {
    script << R"({"id":)" << i << R"(,"verb":)"
           << (i % 3 == 0 ? R"("status")" : R"("ping")") << "}\n";
  }
  std::istringstream in(script.str());
  std::ostringstream out;
  util::ThreadPool pool(4);
  serve::SessionOptions options;
  options.pool = &pool;
  options.max_inflight = 8;
  const std::size_t answered = serve::run_session(*booted.server, in, out, options);
  EXPECT_EQ(answered, static_cast<std::size_t>(kRequests));

  std::istringstream responses(out.str());
  std::string line;
  int expected = 1;
  while (std::getline(responses, line)) {
    EXPECT_NE(line.find("\"id\":" + std::to_string(expected) + ","),
              std::string::npos)
        << "out-of-order response at position " << expected << ": " << line;
    ++expected;
  }
  EXPECT_EQ(expected, kRequests + 1);
}

}  // namespace
}  // namespace hpcfail
