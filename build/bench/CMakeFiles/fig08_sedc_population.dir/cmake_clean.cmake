file(REMOVE_RECURSE
  "CMakeFiles/fig08_sedc_population.dir/fig08_sedc_population.cpp.o"
  "CMakeFiles/fig08_sedc_population.dir/fig08_sedc_population.cpp.o.d"
  "fig08_sedc_population"
  "fig08_sedc_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sedc_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
