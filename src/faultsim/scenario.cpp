#include "faultsim/scenario.hpp"

namespace hpcfail::faultsim {

using logmodel::RootCause;

logmodel::CauseMix make_cause_mix(
    std::initializer_list<std::pair<logmodel::RootCause, double>> entries) {
  logmodel::CauseMix mix{};
  for (const auto& [cause, weight] : entries) {
    mix[static_cast<std::size_t>(cause)] = weight;
  }
  return mix;
}

ScenarioConfig scenario_preset(platform::SystemName name, int days, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.system = platform::system_preset(name);
  cfg.seed = seed;
  cfg.begin = util::make_time(2015, 3, 2);  // inside the paper's 2014-2016 window
  cfg.days = days;

  switch (name) {
    case platform::SystemName::S1:
      // Busy XC30: frequent short-spaced bursts (Fig 3: failures minutes
      // apart), hardware/software/application mix close to the S3 shares.
      cfg.failures.cause_weights = make_cause_mix({
          {RootCause::HardwareMce, 20},
          {RootCause::FailSlowHardware, 15},
          {RootCause::KernelBug, 12},
          {RootCause::LustreBug, 20},
          {RootCause::MemoryExhaustion, 12},
          {RootCause::AppAbnormalExit, 16},
          {RootCause::BiosUnknown, 2},
          {RootCause::L0SysdMceUnknown, 2},
          {RootCause::OperatorError, 1},
      });
      cfg.failures.dominant_burst_mean = 9.0;
      cfg.failures.burst_spread_minutes = 12.0;
      cfg.benign.deviant_blade_fraction = 0.02;
      break;
    case platform::SystemName::S2:
      // XE6 with Gemini: Fig 16's manifestation mix — app-exits 37.5%,
      // FS bugs 26.78%, OOM 16.07%, kernel bugs 7.14%, other 12.5%.
      cfg.failures.cause_weights = make_cause_mix({
          {RootCause::AppAbnormalExit, 36.0},
          {RootCause::LustreBug, 29.0},
          {RootCause::MemoryExhaustion, 16.1},
          {RootCause::KernelBug, 7.1},
          {RootCause::HardwareMce, 4.0},
          {RootCause::FailSlowHardware, 9.0},
          {RootCause::BiosUnknown, 0.8},
          {RootCause::L0SysdMceUnknown, 0.4},
          {RootCause::OperatorError, 0.4},
      });
      cfg.failures.dominant_burst_mean = 7.0;
      cfg.benign.cabinet_faults_per_day = 1700.0;
      break;
    case platform::SystemName::S3:
      // XC40: Section III-F shares — hardware 37%, software 32%,
      // application 31%; job-triggered MTBFs under 32 minutes (Fig 19).
      cfg.failures.cause_weights = make_cause_mix({
          {RootCause::HardwareMce, 22},
          {RootCause::FailSlowHardware, 15},
          {RootCause::KernelBug, 12},
          {RootCause::LustreBug, 20},
          {RootCause::MemoryExhaustion, 20},
          {RootCause::AppAbnormalExit, 11},
      });
      cfg.failures.dominant_burst_mean = 6.0;
      cfg.failures.burst_spread_minutes = 16.0;
      break;
    case platform::SystemName::S4:
      cfg.failures.cause_weights = make_cause_mix({
          {RootCause::HardwareMce, 18},
          {RootCause::FailSlowHardware, 14},
          {RootCause::KernelBug, 10},
          {RootCause::LustreBug, 22},
          {RootCause::MemoryExhaustion, 14},
          {RootCause::AppAbnormalExit, 18},
          {RootCause::BiosUnknown, 2},
          {RootCause::L0SysdMceUnknown, 1},
          {RootCause::OperatorError, 1},
      });
      cfg.failures.dominant_burst_mean = 5.0;
      break;
    case platform::SystemName::S5:
      // Institutional cluster: a local file system, hung-task storms that
      // do NOT fail nodes (Fig 15: 80.57% hung tasks), few real failures.
      // Local file system: Lustre-style FS bugs are rare here, unlike the
      // Cray systems (Observation 6).
      cfg.failures.cause_weights = make_cause_mix({
          {RootCause::MemoryExhaustion, 46},
          {RootCause::LustreBug, 6},
          {RootCause::AppAbnormalExit, 22},
          {RootCause::KernelBug, 8},
          {RootCause::HardwareMce, 6},
          {RootCause::FailSlowHardware, 0},  // no Cray-style telemetry
      });
      cfg.failures.failure_day_fraction = 0.5;
      cfg.failures.dominant_burst_mean = 3.0;
      cfg.failures.isolated_failures_per_day = 0.6;
      // No blade/cabinet controllers on the institutional cluster.
      cfg.benign.benign_nhf_per_day = 0.0;
      cfg.benign.benign_nvf_per_month = 0.0;
      cfg.benign.deviant_blade_fraction = 0.0;
      cfg.benign.sedc_sample_interval_minutes = 0.0;
      cfg.benign.transient_sedc_warnings_per_day = 0.0;
      cfg.benign.cabinet_faults_per_day = 0.0;
      cfg.benign.background_ec_hw_errors_per_day = 0.0;
      cfg.benign.benign_hw_error_nodes_per_day = 0.6;
      cfg.benign.benign_mce_nodes_per_day = 0.0;
      cfg.benign.benign_lustre_nodes_per_day = 2.0;
      cfg.benign.benign_oom_nodes_per_day = 4.5;
      cfg.benign.benign_sw_error_nodes_per_day = 1.0;
      cfg.benign.hung_task_nodes_per_day = 35.0;
      cfg.benign.multi_error_episode_nodes_per_day = 0.0;
      cfg.benign.routine_chatter_lines_per_day = 400.0;
      cfg.benign.lane_degrades_per_day = 0.0;  // no HSN on the IB cluster
      cfg.workload.arrivals_per_hour = 18.0;
      break;
  }
  return cfg;
}

}  // namespace hpcfail::faultsim
