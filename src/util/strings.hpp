// Small string utilities used throughout the parsers and log generators.
// Everything operates on std::string_view and never allocates unless it
// returns std::string / std::vector by value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::util {

[[nodiscard]] constexpr bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] constexpr bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] constexpr bool contains(std::string_view s, std::string_view needle) noexcept {
  return s.find(needle) != std::string_view::npos;
}

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits text into non-empty line views on '\n', stripping a trailing
/// '\r' from each line (CRLF corpora parse identically to LF ones).
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Splits into at most `max_fields` pieces; the last piece keeps the rest.
[[nodiscard]] std::vector<std::string_view> split_n(std::string_view s, char sep,
                                                    std::size_t max_fields);

[[nodiscard]] std::string to_lower(std::string_view s);

[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s) noexcept;
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept;
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// If `s` starts with `prefix`, returns the remainder; otherwise nullopt.
[[nodiscard]] std::optional<std::string_view> strip_prefix(std::string_view s,
                                                           std::string_view prefix) noexcept;

/// Returns the text between the first occurrences of `open` then `close`
/// after it, e.g. extract_between("a [b] c", "[", "]") == "b".
[[nodiscard]] std::optional<std::string_view> extract_between(std::string_view s,
                                                              std::string_view open,
                                                              std::string_view close) noexcept;

/// Value of a "key=value" token in a whitespace-separated line; the value
/// ends at the next whitespace.
[[nodiscard]] std::optional<std::string_view> find_kv(std::string_view line,
                                                      std::string_view key) noexcept;

}  // namespace hpcfail::util
