// Table III: the observed controller fault / SEDC warning vocabulary.
// Verifies every taxonomy entry of the paper's Table III actually occurs in
// a generated-and-reparsed corpus, and prints the measured counts.
#include "bench_common.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table III: fault breakdown (S1, 28 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 28, 2103);
  const auto& store = p.parsed.store;

  using logmodel::EventType;
  struct Entry {
    EventType type;
    const char* column;
  };
  const Entry entries[] = {
      {EventType::NodeHeartbeatFault, "Health fault"},
      {EventType::NodeVoltageFault, "Health fault"},
      {EventType::BladeHeartbeatFault, "Health fault"},
      {EventType::EcHeartbeatStop, "Health fault"},
      {EventType::EcL0Failed, "Health fault"},
      {EventType::GetSensorReadingFailed, "Health fault"},
      {EventType::CabinetPowerFault, "Health fault"},
      {EventType::CabinetMicroFault, "Health fault"},
      {EventType::CommunicationFault, "Health fault"},
      {EventType::ModuleHealthFault, "Health fault"},
      {EventType::RpmFault, "Health fault"},
      {EventType::SedcTemperatureWarning, "SEDC warning"},
      {EventType::SedcVoltageWarning, "SEDC warning"},
      {EventType::SedcAirVelocityWarning, "SEDC warning"},
      {EventType::SedcFanSpeedWarning, "SEDC warning"},
      {EventType::EcbFault, "SEDC warning"},
      {EventType::CabinetSensorCheck, "SEDC warning"},
  };

  util::TextTable table({"Event", "Table III column", "count"});
  for (const auto& e : entries) {
    const auto count = store.count_of_type(e.type);
    table.row()
        .cell(std::string(to_string(e.type)))
        .cell(e.column)
        .cell(static_cast<std::int64_t>(count));
    check.greater(std::string(to_string(e.type)) + " present in corpus",
                  static_cast<double>(count), 1.0);
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
