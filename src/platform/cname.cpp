#include "platform/cname.hpp"

#include <cstdio>

namespace hpcfail::platform {

namespace {

/// Consumes a non-negative decimal integer (max 6 digits) at `pos`.
bool consume_int(std::string_view s, std::size_t& pos, int& out) noexcept {
  std::size_t digits = 0;
  int value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9' && digits < 6) {
    value = value * 10 + (s[pos] - '0');
    ++pos;
    ++digits;
  }
  if (digits == 0) return false;
  out = value;
  return true;
}

}  // namespace

Cname Cname::truncated(CnameLevel lvl) const noexcept {
  Cname out = *this;
  if (lvl < CnameLevel::Node) out.node = -1;
  if (lvl < CnameLevel::Blade) out.slot = -1;
  if (lvl < CnameLevel::Chassis) out.chassis = -1;
  return out;
}

std::string Cname::to_string() const {
  char buf[48];
  switch (level()) {
    case CnameLevel::Cabinet:
      std::snprintf(buf, sizeof buf, "c%d-%d", cab_x, cab_y);
      break;
    case CnameLevel::Chassis:
      std::snprintf(buf, sizeof buf, "c%d-%dc%d", cab_x, cab_y, chassis);
      break;
    case CnameLevel::Blade:
      std::snprintf(buf, sizeof buf, "c%d-%dc%ds%d", cab_x, cab_y, chassis, slot);
      break;
    case CnameLevel::Node:
      std::snprintf(buf, sizeof buf, "c%d-%dc%ds%dn%d", cab_x, cab_y, chassis, slot, node);
      break;
  }
  return buf;
}

std::optional<Cname> parse_cname(std::string_view s) noexcept {
  Cname c;
  std::size_t pos = 0;
  if (pos >= s.size() || s[pos] != 'c') return std::nullopt;
  ++pos;
  if (!consume_int(s, pos, c.cab_x)) return std::nullopt;
  if (pos >= s.size() || s[pos] != '-') return std::nullopt;
  ++pos;
  if (!consume_int(s, pos, c.cab_y)) return std::nullopt;
  if (pos == s.size()) return c;  // cabinet

  if (s[pos] != 'c') return std::nullopt;
  ++pos;
  if (!consume_int(s, pos, c.chassis)) return std::nullopt;
  if (pos == s.size()) return c;  // chassis

  if (s[pos] != 's') return std::nullopt;
  ++pos;
  if (!consume_int(s, pos, c.slot)) return std::nullopt;
  if (pos == s.size()) return c;  // blade

  if (s[pos] != 'n') return std::nullopt;
  ++pos;
  if (!consume_int(s, pos, c.node)) return std::nullopt;
  if (pos != s.size()) return std::nullopt;
  return c;  // node
}

std::string format_nid(std::uint32_t node_index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "nid%05u", node_index);
  return buf;
}

std::optional<std::uint32_t> parse_nid(std::string_view s) noexcept {
  if (s.size() < 6 || s.size() > 11 || s.substr(0, 3) != "nid") return std::nullopt;
  std::uint32_t value = 0;
  for (char ch : s.substr(3)) {
    if (ch < '0' || ch > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(ch - '0');
  }
  return value;
}

std::string format_hostname(std::uint32_t node_index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "node%04u", node_index);
  return buf;
}

std::optional<std::uint32_t> parse_hostname(std::string_view s) noexcept {
  if (s.size() < 5 || s.size() > 12 || s.substr(0, 4) != "node") return std::nullopt;
  std::uint32_t value = 0;
  for (char ch : s.substr(4)) {
    if (ch < '0' || ch > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(ch - '0');
  }
  return value;
}

}  // namespace hpcfail::platform
