// Rule-based root-cause inference over a failure's internal chain, external
// environment window and job context — the paper's "holistic" diagnosis
// (Sections III-E/F, Table IV, Table V).
//
// The engine collects evidence flags from three universes and applies an
// ordered rule list.  Rules are ordered most-specific-first so that, e.g.,
// an OOM chain whose stack trace mentions lustre modules is still classified
// MemoryExhaustion (the fault ORIGIN, per Observation 7), not LustreBug.
#pragma once

#include <string>
#include <vector>

#include "core/failure_detector.hpp"
#include "logmodel/cause.hpp"
#include "logmodel/log_store.hpp"

namespace hpcfail::core {

struct Evidence {
  // internal
  bool mce = false;
  bool hw_error = false;
  bool cpu_corruption = false;
  bool oom = false;
  bool page_alloc_failure = false;
  bool lustre_error = false;
  bool lustre_bug = false;
  bool dvs_error = false;
  bool kernel_oops = false;
  bool invalid_opcode = false;
  bool cpu_stall = false;
  bool seg_fault = false;
  bool nhc_test_fail = false;
  bool app_exit_abnormal = false;
  bool bios_error = false;
  bool l0_sysd_mce = false;
  std::vector<std::string> stack_modules;  ///< call-trace lead modules, in order
  // external (within the external lookback window, same node or blade)
  bool ec_hw_errors = false;
  bool link_errors = false;
  bool node_voltage_fault = false;
  bool sedc_voltage = false;
  // job
  bool job_attributed = false;
};

struct Inference {
  logmodel::RootCause cause = logmodel::RootCause::Unknown;
  double confidence = 0.0;  ///< heuristic 0..1
  bool application_triggered = false;
  std::string rationale;    ///< human-readable one-liner
  Evidence evidence;
};

struct RootCauseConfig {
  /// External indicators are searched this far before the failure.
  util::Duration external_lookback = util::Duration::minutes(60);
  /// Internal evidence window before the failure (matches detector lookback).
  util::Duration internal_lookback = util::Duration::minutes(30);
};

class RootCauseEngine {
 public:
  explicit RootCauseEngine(RootCauseConfig config = {}) : config_(config) {}

  /// Collects evidence for one failure from the store (and optional jobs).
  [[nodiscard]] Evidence collect_evidence(const logmodel::LogStore& store,
                                          const FailureEvent& failure,
                                          const jobs::JobTable* jobs) const;

  /// Applies the rule list to evidence.
  [[nodiscard]] Inference infer(const Evidence& evidence,
                                logmodel::EventType marker) const;

  /// Convenience: collect + infer.
  [[nodiscard]] Inference diagnose(const logmodel::LogStore& store,
                                   const FailureEvent& failure,
                                   const jobs::JobTable* jobs) const;

 private:
  RootCauseConfig config_;
};

/// A failure with its diagnosis attached; what all figure analyses consume.
struct AnalyzedFailure {
  FailureEvent event;
  Inference inference;
};

}  // namespace hpcfail::core
