// Interconnect health report: HSN lane degrades, failover outcomes and
// their (weak) correlation with node failures — the interconnect dimension
// of Table VII and the Aries link errors of the Table V case studies.
// Failed failovers surface interconnect errors on nodes without usually
// failing them, mirroring how the paper's environmental signals behave.
#include "bench_common.hpp"
#include "core/benign_faults.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Interconnect: lane degrades & failovers (S1, 30 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 30, 4004);
  const core::BenignFaultAnalyzer benign(p.parsed.store);
  const auto summary = benign.interconnect_summary(p.sim.config.begin, p.sim.config.end(),
                                                   p.failures);

  util::TextTable table({"metric", "value"});
  table.row().cell("lane degrades").cell(static_cast<std::int64_t>(summary.lane_degrades));
  table.row().cell("failovers ok").cell(static_cast<std::int64_t>(summary.failovers_ok));
  table.row().cell("failovers failed").cell(
      static_cast<std::int64_t>(summary.failovers_failed));
  table.row().cell("degrades near a blade failure").cell(
      static_cast<std::int64_t>(summary.degrades_near_failure));
  table.row()
      .cell("nodes with interconnect errors")
      .cell(static_cast<std::int64_t>(
          p.parsed.store.count_of_type(logmodel::EventType::InterconnectError)));
  std::cout << table.render() << '\n';

  check.in_range("lane degrades over 30 days", static_cast<double>(summary.lane_degrades),
                 90, 300);
  check.in_range("failover success rate (adaptive routing mostly works)",
                 summary.failover_success_rate(), 0.80, 0.99);
  // Weak correlation: most degrades are nowhere near a failure.
  check.in_range("degrades near failures (weak correlation)",
                 summary.lane_degrades
                     ? static_cast<double>(summary.degrades_near_failure) /
                           static_cast<double>(summary.lane_degrades)
                     : 0.0,
                 0.0, 0.25);
  // Failed failovers produce interconnect errors on nodes, but those nodes
  // do not fail because of them.
  const double err_fail_fraction = benign.erroring_node_failure_fraction(
      logmodel::EventType::InterconnectError, p.sim.config.begin, p.sim.config.end(),
      util::Duration::hours(6), p.failures);
  check.in_range("interconnect-erroring nodes that then fail", err_fail_fraction, 0.0,
                 0.30);
  return check.exit_code();
}
