// Table I: the five-system inventory. Prints the presets and verifies the
// modelled topologies reach the paper's node counts.
// No failure analysis here — pure topology. hpcfail-lint: allow(bench-pipeline)
#include "bench_common.hpp"
#include "platform/system_config.hpp"
#include "util/table.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table I: HPC system details");

  util::TextTable table({"System", "Type", "Months", "Log GB", "Nodes", "Interconnect",
                         "Scheduler", "FS/OS", "Processors", "Extras"});
  for (const auto& sys : platform::all_system_presets()) {
    const platform::Topology topo(sys.topology);
    std::string extras;
    if (sys.has_gpus) extras += "GPUs ";
    if (sys.has_burst_buffer) extras += "BurstBuffer";
    if (extras.empty()) extras = "-";
    // Built stepwise: GCC 12's -Wrestrict false-positives on chained +.
    std::string fs_os = sys.filesystem_name();
    fs_os += '/';
    fs_os += sys.os;
    table.row()
        .cell(sys.label)
        .cell(sys.machine_type)
        .cell(sys.duration_months)
        .cell(sys.log_size_gb, 1)
        .cell(static_cast<std::int64_t>(topo.node_count()))
        .cell(sys.interconnect_name())
        .cell(sys.scheduler_name())
        .cell(fs_os)
        .cell(sys.processors)
        .cell(extras);
    check.in_range(sys.label + " topology node count", topo.node_count(),
                   static_cast<double>(sys.nodes), static_cast<double>(sys.nodes));
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
