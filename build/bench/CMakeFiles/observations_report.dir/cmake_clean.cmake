file(REMOVE_RECURSE
  "CMakeFiles/observations_report.dir/observations_report.cpp.o"
  "CMakeFiles/observations_report.dir/observations_report.cpp.o.d"
  "observations_report"
  "observations_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observations_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
