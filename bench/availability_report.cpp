// Fleet health report: availability, repair times, and the survival /
// hazard characterization of inter-failure times (the statistical framing
// behind Observation 1's burstiness and the resilience framing of the
// paper's introduction).
#include "bench_common.hpp"
#include "core/temporal.hpp"
#include "core/timeline.hpp"
#include "stats/fit.hpp"
#include "stats/survival.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fleet availability & failure-process shape (S1, 30 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 30, 3003);
  const core::TimelineBuilder builder(p.parsed.store, p.parsed.topology.node_count());
  const auto fleet =
      builder.fleet_availability(p.sim.config.begin, p.sim.config.end());

  std::cout << "availability " << util::fmt_pct(fleet.availability, 4) << ", "
            << util::fmt_double(fleet.node_hours_lost, 1) << " node-hours lost, "
            << fleet.down_intervals << " down intervals, mean repair "
            << util::fmt_double(fleet.repair_minutes.mean(), 1) << " min\n\n";

  check.in_range("fleet availability (large machine, node failures are rare)",
                 fleet.availability, 0.99, 1.0);
  // Failure chains reboot within 8-45 min; an SWO in the window (reboots up
  // to 3 h) can pull the mean upward.
  check.in_range("mean unplanned repair time (minutes)", fleet.repair_minutes.mean(), 8.0,
                 150.0);

  // Survival / hazard over inter-failure gaps.
  const core::TemporalAnalyzer temporal(p.failures);
  const auto gaps = temporal.inter_failure_minutes(p.sim.config.begin, p.sim.config.end());
  const stats::KaplanMeier km(gaps);
  const std::vector<double> edges = {0, 2, 8, 16, 64, 256, 2048};
  const auto hazard = stats::discrete_hazard(gaps, edges);

  util::TextTable table({"gap bin (min)", "at risk", "events", "hazard"});
  for (const auto& bin : hazard) {
    table.row()
        .cell("[" + util::fmt_double(bin.lo, 0) + ", " + util::fmt_double(bin.hi, 0) + ")")
        .cell(static_cast<std::int64_t>(bin.at_risk))
        .cell(static_cast<std::int64_t>(bin.events))
        .pct(bin.hazard());
  }
  std::cout << table.render() << '\n';

  std::cout << "median inter-failure gap: " << util::fmt_double(km.median(), 1)
            << " min; S(16 min) = " << util::fmt_double(km.survival_at(16.0), 3) << "\n";

  // Burstiness: the hazard of "next failure soon" is highest right after a
  // failure and decays (clustered process), and the Weibull shape is < 1.
  check.greater("hazard decays after the burst window (bursty process)",
                hazard[1].hazard(), hazard[4].hazard());
  if (const auto weibull = stats::fit_weibull(gaps)) {
    std::cout << "Weibull shape over gaps: " << util::fmt_double(weibull->shape, 3) << "\n";
    check.in_range("Weibull shape <= 1 (clustered)", weibull->shape, 0.05, 1.05);
  }
  check.greater("most failures arrive within 16 min of the previous one "
                "(paper Fig 3)",
                1.0 - km.survival_at(16.0), 0.5);
  return check.exit_code();
}
