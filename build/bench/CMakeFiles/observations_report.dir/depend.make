# Empty dependencies file for observations_report.
# This may be replaced when dependencies are built.
