// Fixture: instrumentation sites whose metric/span names drift from the
// hpcfail.<layer>.<snake_case> convention.
#include "util/metrics.hpp"
#include "util/trace.hpp"

void instrument(hpcfail::util::MetricsRegistry& reg, int worker) {
  reg.counter("hpcfail.ingest.bytes_read").add(1);
  reg.counter("hpcfail.Ingest.BytesRead").add(1);
  reg.gauge("hpcfail.pool").set(1);
  reg.counter("ingest.chunks").add(1);
  reg.counter("hpcfail.pool.Worker" + std::to_string(worker)).add(1);
  hpcfail::util::TraceSpan span("hpcfail.engine.run");
  hpcfail::util::TraceSpan bad("hpcfail.engine.Analyzer");
  reg.counter("hpcfail.Legacy.Name").add(1);  // hpcfail-lint: allow(metric-naming)
}
