// Table IV: failure causes vs the kernel modules their stack backtraces
// lead with.  Paper: sleep_on_page / ldlm_bl / dvs_ipc_mesg / mce_log /
// rwsem_down_failed map onto segfault-page-fault / file-system / MCE /
// kernel-bug failures; dvsipc-flavoured traces reveal application-triggered
// file-system damage (Observation 7).
#include <algorithm>

#include "bench_common.hpp"
#include "core/report.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table IV: stack modules by cause (S1, 30 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 30, 2104);
  const auto usage = core::stack_module_usage(p.failures);

  util::TextTable table({"Root cause", "lead modules (count)"});
  for (const auto& row : usage) {
    std::string modules;
    for (const auto& [module, count] : row.modules) {
      if (!modules.empty()) modules += ", ";
      modules += module + " (" + std::to_string(count) + ")";
    }
    table.row().cell(std::string(to_string(row.cause))).cell(modules);
  }
  std::cout << table.render() << '\n';

  auto top_module_contains = [&usage](logmodel::RootCause cause,
                                      std::initializer_list<const char*> expected) {
    for (const auto& row : usage) {
      if (row.cause != cause || row.modules.empty()) continue;
      for (const char* e : expected) {
        if (row.modules.front().first.find(e) != std::string::npos) return true;
      }
    }
    return false;
  };
  check.greater("MemoryExhaustion leads with xpmem/sleep_on_page",
                top_module_contains(logmodel::RootCause::MemoryExhaustion,
                                    {"xpmem", "sleep_on_page"}),
                0.5);
  check.greater("LustreBug leads with dvs_ipc/ldlm",
                top_module_contains(logmodel::RootCause::LustreBug, {"dvs_ipc", "ldlm"}),
                0.5);
  check.greater("HardwareMce leads with mce_log",
                top_module_contains(logmodel::RootCause::HardwareMce, {"mce_log"}), 0.5);
  check.greater("KernelBug leads with rwsem_down_failed",
                top_module_contains(logmodel::RootCause::KernelBug, {"rwsem"}), 0.5);
  return check.exit_code();
}
