// Scenario parameter sweep: vary one calibration knob across values and
// watch the headline statistics respond — the workflow for re-calibrating
// the simulator against a new site's logs.
//
//   ./examples/scenario_sweep <key> <value>... [--system S1..S5] [--days N]
//   ./examples/scenario_sweep failures.dominant_burst_mean 2 5 10 20
//   ./examples/scenario_sweep cause_weights.FailSlowHardware 0 10 30
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/engine.hpp"
#include "core/temporal.hpp"
#include "faultsim/scenario_io.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "stats/ecdf.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  if (argc < 3) {
    std::cerr << "usage: scenario_sweep <key> <value>... [--system S1..S5] [--days N]\n"
                 "keys: see `corpus_tool dump-scenario S1`\n";
    return 2;
  }
  const std::string key = argv[1];
  std::vector<std::string> values;
  std::string system_label = "S1";
  int days = 7;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--system" && i + 1 < argc) {
      system_label = argv[++i];
    } else if (arg == "--days" && i + 1 < argc) {
      days = std::atoi(argv[++i]);
    } else {
      values.push_back(arg);
    }
  }

  util::TextTable table({key, "failures", "failures/day", "median gap (min)",
                         "<=16 min", "enhanceable", "factor"});
  for (const auto& value : values) {
    faultsim::ScenarioConfig scenario;
    try {
      scenario = faultsim::scenario_from_string("system = " + system_label +
                                                "\ndays = " + std::to_string(days) +
                                                "\nseed = 77\n" + key + " = " + value + "\n");
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }

    const auto sim = faultsim::Simulator(scenario).run();
    const auto corpus = loggen::build_corpus(sim);
    const auto parsed = parsers::parse_corpus(corpus);
    const core::AnalysisEngine engine;
    const auto analysis =
        engine.analyze(parsed.store, &parsed.jobs, scenario.begin, scenario.end());
    const auto& failures = analysis.failures;

    const core::TemporalAnalyzer temporal(failures);
    const auto gaps = temporal.inter_failure_minutes(scenario.begin, scenario.end());
    const stats::Ecdf ecdf{gaps};
    const auto& lt = analysis.lead_time_summary;

    table.row()
        .cell(value)
        .cell(static_cast<std::int64_t>(failures.size()))
        .cell(static_cast<double>(failures.size()) / std::max(1, days), 1)
        .cell(ecdf.empty() ? 0.0 : ecdf.quantile(0.5), 1)
        .pct(ecdf.empty() ? 0.0 : ecdf.fraction_at_or_below(16.0))
        .pct(lt.enhanceable_fraction())
        .cell(lt.enhancement_factor(), 2);
  }
  std::cout << table.render();
  return 0;
}
