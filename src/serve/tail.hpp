// Incremental reader over a growing log file — the serve-layer face of
// "ingest a live tail".  A TailReader remembers a byte offset into one
// source file and, on every poll, consumes the complete lines appended
// since the last poll; a trailing partial line (a writer mid-append) is
// left in the file and picked up once its newline lands, so records are
// never built from torn lines.
//
// Error discipline matches the rest of the pipeline: an I/O failure while
// reading the tail (provoked deterministically through the
// serve.tail.read_io fault site) surfaces as a structured TailError on the
// poll result, the offset does not advance, and the next poll retries —
// the daemon never crashes or silently skips bytes.  A file that does not
// exist yet is an empty poll, not an error (the writer may not have
// created it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "logmodel/event_type.hpp"

namespace hpcfail::serve {

/// Why a tail poll failed; `offset` is where the read stopped.
struct TailError {
  std::string file;
  std::uint64_t offset = 0;
  std::string message;

  /// "<file> at offset N: <message>" one-liner.
  [[nodiscard]] std::string to_string() const;
};

class TailReader {
 public:
  /// Follows `path` (parsed as `source` lines) starting at `offset` —
  /// pass the size of the already-ingested prefix to skip it.
  TailReader(std::string path, logmodel::LogSource source, std::uint64_t offset = 0);

  struct Poll {
    std::vector<std::string> lines;  ///< complete new lines, file order
    std::optional<TailError> error;

    [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }
  };

  /// Reads every complete line appended since the last successful poll.
  [[nodiscard]] Poll poll();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] logmodel::LogSource source() const noexcept { return source_; }
  /// Byte offset of the first unconsumed byte.
  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

 private:
  std::string path_;
  logmodel::LogSource source_;
  std::uint64_t offset_ = 0;
};

}  // namespace hpcfail::serve
