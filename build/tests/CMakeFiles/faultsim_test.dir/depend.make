# Empty dependencies file for faultsim_test.
# This may be replaced when dependencies are built.
