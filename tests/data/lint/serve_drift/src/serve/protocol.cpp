// Drifted serve verb table: a typo'd status verb, a ping summary that
// disagrees with the doc, and the lead_time verb the documentation
// promises is missing entirely.
namespace hpcfail::serve {
namespace {
constexpr VerbDef kVerbs[] = {
    {"ping", "liveness probe, answers pong"},
    {"statuss", "store, window and epoch counters for the daemon"},
};
}  // namespace
}  // namespace hpcfail::serve
