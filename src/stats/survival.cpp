#include "stats/survival.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace hpcfail::stats {

KaplanMeier::KaplanMeier(std::span<const double> durations, std::span<const std::uint8_t> observed) {
  if (durations.size() != observed.size()) {
    throw std::invalid_argument("KaplanMeier: size mismatch");
  }
  struct Entry {
    double time;
    bool event;
  };
  std::vector<Entry> entries;
  entries.reserve(durations.size());
  for (std::size_t i = 0; i < durations.size(); ++i) {
    if (durations[i] >= 0.0) entries.push_back({durations[i], observed[i] != 0});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.time < b.time; });

  double survival = 1.0;
  std::size_t at_risk = entries.size();
  std::size_t i = 0;
  while (i < entries.size()) {
    const double t = entries[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < entries.size() && entries[i].time == t) {
      events += entries[i].event;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      survival *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      curve_.push_back({t, survival, at_risk, events});
    }
    at_risk -= leaving;
  }
}

KaplanMeier::KaplanMeier(std::span<const double> durations)
    : KaplanMeier(durations, std::vector<std::uint8_t>(durations.size(), 1)) {}

double KaplanMeier::survival_at(double t) const noexcept {
  double s = 1.0;
  for (const auto& p : curve_) {
    if (p.time > t) break;
    s = p.survival;
  }
  return s;
}

double KaplanMeier::median() const noexcept {
  for (const auto& p : curve_) {
    if (p.survival <= 0.5) return p.time;
  }
  return std::numeric_limits<double>::infinity();
}

double KaplanMeier::restricted_mean(double horizon) const noexcept {
  double area = 0.0;
  double prev_time = 0.0;
  double prev_survival = 1.0;
  for (const auto& p : curve_) {
    const double t = std::min(p.time, horizon);
    if (t > prev_time) area += prev_survival * (t - prev_time);
    if (p.time >= horizon) return area;
    prev_time = p.time;
    prev_survival = p.survival;
  }
  if (horizon > prev_time) area += prev_survival * (horizon - prev_time);
  return area;
}

std::vector<HazardBin> discrete_hazard(std::span<const double> durations,
                                       std::span<const double> edges) {
  if (edges.size() < 2) throw std::invalid_argument("discrete_hazard: need >=2 edges");
  std::vector<double> sorted(durations.begin(), durations.end());
  std::sort(sorted.begin(), sorted.end());

  std::vector<HazardBin> bins;
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    HazardBin bin;
    bin.lo = edges[i];
    bin.hi = edges[i + 1];
    const auto enter = std::lower_bound(sorted.begin(), sorted.end(), bin.lo);
    const auto leave = std::lower_bound(enter, sorted.end(), bin.hi);
    bin.at_risk = static_cast<std::size_t>(sorted.end() - enter);
    bin.events = static_cast<std::size_t>(leave - enter);
    bins.push_back(bin);
  }
  return bins;
}

}  // namespace hpcfail::stats
