// Unit tests for core/timeline plus the detector's intended-shutdown and
// SWO exclusion (paper Section III: SWOs and intended shutdowns are
// recognized and excluded).
#include <gtest/gtest.h>

#include "core/failure_detector.hpp"
#include "core/timeline.hpp"
#include "faultsim/simulator.hpp"

namespace hpcfail::core {
namespace {

using logmodel::EventType;
using logmodel::LogRecord;

const util::TimePoint kBase = util::make_time(2015, 3, 2);

/// Shared interner for the synthetic records; each store gets a copy.
logmodel::SymbolTable& test_symbols() {
  static logmodel::SymbolTable table;
  return table;
}

LogRecord rec(util::Duration offset, EventType type, std::uint32_t node,
              std::string detail = {}) {
  LogRecord r;
  r.time = kBase + offset;
  r.type = type;
  r.node = platform::NodeId{node};
  r.blade = platform::BladeId{node / 4};
  r.detail = test_symbols().intern(detail);
  return r;
}

TEST(TimelineTest, StatesFollowMarkers) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::hours(2), EventType::KernelPanic, 1));
  records.push_back(rec(util::Duration::hours(3), EventType::NodeBoot, 1));
  records.push_back(rec(util::Duration::hours(5), EventType::NhcSuspectMode, 1));
  records.push_back(rec(util::Duration::hours(6), EventType::NodeBoot, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const TimelineBuilder builder(store, 4);
  const auto timeline =
      builder.build(platform::NodeId{1}, kBase, kBase + util::Duration::hours(10));

  EXPECT_EQ(timeline.state_at(kBase + util::Duration::hours(1)), NodeState::Up);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::minutes(150)), NodeState::Down);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::hours(4)), NodeState::Up);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::minutes(330)), NodeState::Suspect);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::hours(7)), NodeState::Up);
  EXPECT_DOUBLE_EQ(timeline.time_in(NodeState::Down).to_hours(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.time_in(NodeState::Suspect).to_hours(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.time_in(NodeState::Up).to_hours(), 8.0);
}

TEST(TimelineTest, FleetAvailability) {
  std::vector<LogRecord> records;
  // Node 1 down for 2 of 10 hours; node 2 clean.
  records.push_back(rec(util::Duration::hours(4), EventType::NodeShutdown, 1));
  records.push_back(rec(util::Duration::hours(6), EventType::NodeBoot, 1));
  records.push_back(rec(util::Duration::hours(1), EventType::HardwareError, 2));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const TimelineBuilder builder(store, 4);  // 4-node fleet
  const auto fleet =
      builder.fleet_availability(kBase, kBase + util::Duration::hours(10));
  EXPECT_NEAR(fleet.node_hours_lost, 2.0, 1e-9);
  EXPECT_NEAR(fleet.availability, 1.0 - 2.0 / 40.0, 1e-9);
  EXPECT_EQ(fleet.down_intervals, 1u);
  EXPECT_NEAR(fleet.repair_minutes.mean(), 120.0, 1e-9);
}

TEST(TimelineTest, OpenDownIntervalHasNoRepairTime) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::hours(9), EventType::KernelPanic, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const TimelineBuilder builder(store, 1);
  const auto fleet = builder.fleet_availability(kBase, kBase + util::Duration::hours(10));
  EXPECT_EQ(fleet.down_intervals, 1u);
  EXPECT_EQ(fleet.repair_minutes.count(), 0u);  // censored: no reboot seen
  EXPECT_NEAR(fleet.node_hours_lost, 1.0, 1e-9);
}

TEST(TimelineTest, SuspectThenDownThenRecovered) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::hours(1), EventType::NhcSuspectMode, 1));
  records.push_back(rec(util::Duration::hours(2), EventType::NodeHalt, 1));
  records.push_back(rec(util::Duration::hours(3), EventType::NodeBoot, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const TimelineBuilder builder(store, 4);
  const auto timeline =
      builder.build(platform::NodeId{1}, kBase, kBase + util::Duration::hours(4));
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::minutes(90)), NodeState::Suspect);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::minutes(150)), NodeState::Down);
  EXPECT_EQ(timeline.state_at(kBase + util::Duration::minutes(210)), NodeState::Up);
  EXPECT_DOUBLE_EQ(timeline.time_in(NodeState::Suspect).to_hours(), 1.0);
  EXPECT_DOUBLE_EQ(timeline.time_in(NodeState::Down).to_hours(), 1.0);
}

TEST(TimelineTest, MaintenanceShutdownIsNotDowntime) {
  std::vector<LogRecord> records;
  records.push_back(rec(util::Duration::hours(2), EventType::NodeShutdown, 1,
                        "scheduled maintenance shutdown"));
  records.push_back(rec(util::Duration::hours(6), EventType::NodeBoot, 1));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const TimelineBuilder builder(store, 1);
  const auto fleet = builder.fleet_availability(kBase, kBase + util::Duration::hours(10));
  EXPECT_DOUBLE_EQ(fleet.availability, 1.0);
  EXPECT_EQ(fleet.down_intervals, 0u);
}

TEST(DetectorExclusionTest, IntendedShutdownsExcluded) {
  std::vector<LogRecord> records;
  records.push_back(
      rec(util::Duration::hours(1), EventType::NodeShutdown, 1, "scheduled maintenance shutdown"));
  records.push_back(rec(util::Duration::hours(2), EventType::NodeShutdown, 2,
                        "anomalous shutdown"));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto detection = FailureDetector().detect_full(store, nullptr);
  EXPECT_EQ(detection.failures.size(), 1u);
  EXPECT_EQ(detection.failures[0].node.value, 2u);
  EXPECT_EQ(detection.intended_shutdowns_excluded, 1u);
}

TEST(DetectorExclusionTest, SwoClusterExcluded) {
  std::vector<LogRecord> records;
  // 80 nodes die within seconds: an SWO.
  for (std::uint32_t n = 0; n < 80; ++n) {
    records.push_back(rec(util::Duration::minutes(30) + util::Duration::seconds(n / 8),
                          EventType::NodeShutdown, n));
  }
  // A lone genuine failure hours later.
  records.push_back(rec(util::Duration::hours(5), EventType::KernelPanic, 99));
  const logmodel::LogStore store{std::move(records), test_symbols()};
  const auto detection = FailureDetector().detect_full(store, nullptr);
  ASSERT_EQ(detection.swos.size(), 1u);
  EXPECT_EQ(detection.swos[0].nodes, 80u);
  ASSERT_EQ(detection.failures.size(), 1u);
  EXPECT_EQ(detection.failures[0].node.value, 99u);
}

TEST(DetectorExclusionTest, SimulatedMaintenanceAndSwo) {
  faultsim::ScenarioConfig cfg =
      faultsim::scenario_preset(platform::SystemName::S3, 10, 4242);
  cfg.benign.maintenance_windows_per_month = 30.0;  // one per day
  cfg.benign.swo_per_month = 15.0;
  const auto sim = faultsim::Simulator(cfg).run();
  ASSERT_GT(sim.truth.benign.intended_shutdown_nodes, 0u);
  ASSERT_GT(sim.truth.benign.swo_events, 0u);

  const auto store = sim.make_store();
  const auto detection = FailureDetector().detect_full(store, nullptr);
  EXPECT_EQ(detection.intended_shutdowns_excluded,
            sim.truth.benign.intended_shutdown_nodes);
  EXPECT_GE(detection.swos.size(), 1u);
  // Node-failure count stays near the planted count despite the hundreds
  // of SWO/maintenance shutdowns.
  EXPECT_LE(detection.failures.size(), sim.truth.failures.size() + 25);
}

}  // namespace
}  // namespace hpcfail::core
