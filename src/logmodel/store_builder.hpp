// Sharded LogStore construction for the streaming ingestion pipeline.
//
// The bulk-build path used to be "concatenate every record, then one global
// stable_sort" — fine in RAM, hostile at production scale.  StoreBuilder
// instead accumulates records into bounded shards, stably sorts each shard
// by time (in parallel when a pool is supplied), and k-way-merges the
// sorted shards into the final record vector.
//
// Ordering contract: append() calls must arrive in the same global sequence
// the in-memory path would have used (per-source line order, sources in
// parse order).  Each shard then covers a contiguous run of that sequence,
// so merging with ties broken by shard index reproduces the global
// stable_sort byte for byte — the ingestion equivalence suite pins this.
//
// Detail strings: parse workers intern into chunk-local SymbolTables;
// append_batch absorbs each chunk table into the builder's table (chunks
// retire in FIFO order, so this is serialized) and rewrites the batch's
// Symbols through the returned remap.  build() moves the merged table into
// the LogStore, which owns it for the records' lifetime.
#pragma once

#include <cstddef>
#include <vector>

#include "logmodel/log_store.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail::logmodel {

class StoreBuilder {
 public:
  /// `shard_records` bounds how many records a shard holds before it is
  /// sealed; 0 is clamped to 1.
  explicit StoreBuilder(std::size_t shard_records = kDefaultShardRecords);

  static constexpr std::size_t kDefaultShardRecords = 1 << 16;

  /// Appends a record whose detail Symbol was interned via symbols().
  void append(LogRecord r);
  /// Moves a whole parsed chunk in (cheaper than record-at-a-time).
  /// `batch_symbols` is the chunk-local table the batch's detail Symbols
  /// point into; they are remapped into the builder's table here.  Chunks
  /// retire in FIFO order, so for a fixed chunk size the merged ids are
  /// deterministic regardless of worker-thread count.
  void append_batch(std::vector<LogRecord> batch, const SymbolTable& batch_symbols);
  /// Batch variant for records whose detail Symbols are already valid in
  /// this builder's table (default-constructed, or interned via symbols()).
  void append_batch(std::vector<LogRecord> batch);

  /// The builder's own table, for sequential producers that intern
  /// directly (e.g. the stateful scheduler parser) before append().
  [[nodiscard]] SymbolTable& symbols() noexcept { return symbols_; }

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }
  /// Shards sealed so far (the open shard is not counted).
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Sorts every shard (on `pool` when non-null), merges, and returns the
  /// finalized store.  The builder is left empty and reusable.
  [[nodiscard]] LogStore build(util::ThreadPool* pool = nullptr);

 private:
  void seal_current();

  std::vector<std::vector<LogRecord>> shards_;  ///< sealed, unsorted until build()
  std::vector<LogRecord> current_;              ///< open shard
  SymbolTable symbols_;                         ///< moved into the store at build()
  std::size_t shard_records_;
  std::size_t count_ = 0;
};

}  // namespace hpcfail::logmodel
