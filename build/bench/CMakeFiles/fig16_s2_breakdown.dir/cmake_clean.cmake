file(REMOVE_RECURSE
  "CMakeFiles/fig16_s2_breakdown.dir/fig16_s2_breakdown.cpp.o"
  "CMakeFiles/fig16_s2_breakdown.dir/fig16_s2_breakdown.cpp.o.d"
  "fig16_s2_breakdown"
  "fig16_s2_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_s2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
