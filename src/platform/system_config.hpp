// System presets mirroring Table I of the paper: five clusters S1-S5 with
// their interconnect, scheduler, file system, processors and node counts.
// The presets parameterize both the simulator (which system's failure
// profile to synthesize) and the Table I bench.
#pragma once

#include <string>
#include <vector>

#include "platform/topology.hpp"

namespace hpcfail::platform {

enum class SystemName { S1, S2, S3, S4, S5 };

enum class SchedulerKind { Slurm, Torque };
enum class InterconnectKind { AriesDragonfly, GeminiTorus, Infiniband };
enum class FileSystemKind { Lustre, LocalFs };

struct SystemConfig {
  SystemName name = SystemName::S1;
  std::string label;          ///< "S1".."S5"
  std::string machine_type;   ///< e.g. "Cray XC30"
  int duration_months = 10;   ///< span of the paper's log window
  double log_size_gb = 0.0;   ///< size of the paper's corpus (Table I)
  std::uint32_t nodes = 0;    ///< populated compute nodes
  InterconnectKind interconnect = InterconnectKind::AriesDragonfly;
  SchedulerKind scheduler = SchedulerKind::Slurm;
  FileSystemKind filesystem = FileSystemKind::Lustre;
  std::string os;             ///< "SuSE", "CLE", "RedHat"
  std::string processors;     ///< "IvyBridge", "Haswell", ...
  bool has_gpus = false;
  bool has_burst_buffer = false;

  TopologyConfig topology;

  [[nodiscard]] std::string interconnect_name() const;
  [[nodiscard]] std::string scheduler_name() const;
  [[nodiscard]] std::string filesystem_name() const;
};

/// Returns the Table I preset for a system.
[[nodiscard]] SystemConfig system_preset(SystemName name);

/// All five presets in order.
[[nodiscard]] std::vector<SystemConfig> all_system_presets();

[[nodiscard]] std::string to_string(SystemName name);

}  // namespace hpcfail::platform
