#include "util/scan.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <climits>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HPCFAIL_SCAN_X86 1
#endif

namespace hpcfail::util::scan {

namespace {

using detail::kOnes;
using detail::load8;
using detail::zero_bytes;

// ---------------------------------------------------------------------------
// find / rfind / count — one implementation per tier
// ---------------------------------------------------------------------------

std::size_t find_swar(const char* p, std::size_t n, char c, std::size_t i) noexcept {
  const std::uint64_t pat = kOnes * static_cast<unsigned char>(c);
  while (i + 8 <= n) {
    const std::uint64_t z = zero_bytes(load8(p + i) ^ pat);
    if (z != 0) return i + (static_cast<std::size_t>(std::countr_zero(z)) >> 3);
    i += 8;
  }
  for (; i < n; ++i)
    if (p[i] == c) return i;
  return npos;
}

std::size_t rfind_swar(const char* p, std::size_t n, char c) noexcept {
  const std::uint64_t pat = kOnes * static_cast<unsigned char>(c);
  std::size_t i = n;
  while (i >= 8) {
    const std::uint64_t z = zero_bytes(load8(p + i - 8) ^ pat);
    if (z != 0) return i - 8 + ((63u - static_cast<unsigned>(std::countl_zero(z))) >> 3);
    i -= 8;
  }
  while (i > 0) {
    --i;
    if (p[i] == c) return i;
  }
  return npos;
}

std::size_t count_swar(const char* p, std::size_t n, char c) noexcept {
  const std::uint64_t pat = kOnes * static_cast<unsigned char>(c);
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 8 <= n) {
    total += static_cast<std::size_t>(std::popcount(zero_bytes(load8(p + i) ^ pat)));
    i += 8;
  }
  for (; i < n; ++i) total += (p[i] == c);
  return total;
}

#ifdef HPCFAIL_SCAN_X86

__attribute__((target("sse2"))) std::size_t find_sse(const char* p, std::size_t n, char c,
                                                     std::size_t i) noexcept {
  const __m128i pat = _mm_set1_epi8(c);
  while (i + 16 <= n) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const unsigned m =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)));
    if (m != 0) return i + static_cast<std::size_t>(std::countr_zero(m));
    i += 16;
  }
  return find_swar(p, n, c, i);
}

__attribute__((target("sse2"))) std::size_t rfind_sse(const char* p, std::size_t n,
                                                      char c) noexcept {
  const __m128i pat = _mm_set1_epi8(c);
  std::size_t i = n;
  while (i >= 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i - 16));
    const unsigned m =
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)));
    if (m != 0) return i - 16 + (31u - static_cast<unsigned>(std::countl_zero(m)));
    i -= 16;
  }
  return rfind_swar(p, i, c);
}

__attribute__((target("sse2"))) std::size_t count_sse(const char* p, std::size_t n,
                                                      char c) noexcept {
  const __m128i pat = _mm_set1_epi8(c);
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 16 <= n) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    total += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, pat)))));
    i += 16;
  }
  for (; i < n; ++i) total += (p[i] == c);
  return total;
}

__attribute__((target("avx2"))) std::size_t find_avx2(const char* p, std::size_t n, char c,
                                                      std::size_t i) noexcept {
  const __m256i pat = _mm256_set1_epi8(c);
  while (i + 32 <= n) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)));
    if (m != 0) return i + static_cast<std::size_t>(std::countr_zero(m));
    i += 32;
  }
  return find_swar(p, n, c, i);
}

__attribute__((target("avx2"))) std::size_t rfind_avx2(const char* p, std::size_t n,
                                                       char c) noexcept {
  const __m256i pat = _mm256_set1_epi8(c);
  std::size_t i = n;
  while (i >= 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i - 32));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)));
    if (m != 0) return i - 32 + (31u - static_cast<unsigned>(std::countl_zero(m)));
    i -= 32;
  }
  return rfind_swar(p, i, c);
}

__attribute__((target("avx2"))) std::size_t count_avx2(const char* p, std::size_t n,
                                                       char c) noexcept {
  const __m256i pat = _mm256_set1_epi8(c);
  std::size_t total = 0;
  std::size_t i = 0;
  while (i + 32 <= n) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    total += static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pat)))));
    i += 32;
  }
  for (; i < n; ++i) total += (p[i] == c);
  return total;
}

#endif  // HPCFAIL_SCAN_X86

// ---------------------------------------------------------------------------
// Dispatch state
// ---------------------------------------------------------------------------

Isa detect_hw_isa() noexcept {
#ifdef HPCFAIL_SCAN_X86
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
  if (__builtin_cpu_supports("sse4.2")) return Isa::Sse42;
#endif
  return Isa::Swar;
}

Isa hw_isa() noexcept {
  static const Isa isa = detect_hw_isa();
  return isa;
}

Isa initial_isa() noexcept {
  if (const char* env = std::getenv("HPCFAIL_NO_SIMD");
      env != nullptr && !(env[0] == '0' && env[1] == '\0') && env[0] != '\0') {
    return Isa::Swar;
  }
  return hw_isa();
}

std::atomic<Isa>& isa_slot() noexcept {
  static std::atomic<Isa> slot{initial_isa()};
  return slot;
}

// Per-signature anchor bytes are picked by rarity: scanning stops at bytes
// that seldom occur in log text, so the candidate-verify path stays cold.
// Rough relative frequencies of bytes in syslog/console corpora (space,
// digits and common lowercase letters dominate); ties break toward the
// earliest byte of the literal.
constexpr auto kByteFreq = [] {
  std::array<std::uint8_t, 256> f{};
  f.fill(1);  // unseen bytes (control chars, high bit) are the rarest
  constexpr std::string_view common = " eationsrlcdu0123456789";
  constexpr std::string_view medium = "mphgbfykvw.:-_=/[]()";
  for (std::size_t i = 0; i < common.size(); ++i)
    f[static_cast<unsigned char>(common[i])] = static_cast<std::uint8_t>(200 - 4 * i);
  for (std::size_t i = 0; i < medium.size(); ++i)
    f[static_cast<unsigned char>(medium[i])] = static_cast<std::uint8_t>(100 - 3 * i);
  for (char c = 'A'; c <= 'Z'; ++c) f[static_cast<unsigned char>(c)] = 12;
  for (std::string_view rare = "jqxzJQXZ#!~^"; const char c : rare)
    f[static_cast<unsigned char>(c)] = 2;
  return f;
}();

}  // namespace

// ---------------------------------------------------------------------------
// Public dispatch
// ---------------------------------------------------------------------------

Isa active_isa() noexcept { return isa_slot().load(std::memory_order_relaxed); }

std::string_view isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Sse42:
      return "sse4.2";
    case Isa::Swar:
      break;
  }
  return "swar";
}

Isa force_isa(Isa isa) noexcept {
  if (static_cast<int>(isa) > static_cast<int>(hw_isa())) isa = hw_isa();
  isa_slot().store(isa, std::memory_order_relaxed);
  return isa;
}

// ---------------------------------------------------------------------------
// Byte scanning
// ---------------------------------------------------------------------------

namespace detail {
std::size_t find_byte_long(std::string_view hay, char needle, std::size_t from) noexcept {
#ifdef HPCFAIL_SCAN_X86
  switch (active_isa()) {
    case Isa::Avx2:
      return find_avx2(hay.data(), hay.size(), needle, from);
    case Isa::Sse42:
      return find_sse(hay.data(), hay.size(), needle, from);
    case Isa::Swar:
      break;
  }
#endif
  return find_swar(hay.data(), hay.size(), needle, from);
}
}  // namespace detail

std::size_t rfind_byte(std::string_view hay, char needle) noexcept {
  if (hay.empty()) return npos;
#ifdef HPCFAIL_SCAN_X86
  switch (active_isa()) {
    case Isa::Avx2:
      return rfind_avx2(hay.data(), hay.size(), needle);
    case Isa::Sse42:
      return rfind_sse(hay.data(), hay.size(), needle);
    case Isa::Swar:
      break;
  }
#endif
  return rfind_swar(hay.data(), hay.size(), needle);
}

std::size_t count_byte(std::string_view hay, char needle) noexcept {
#ifdef HPCFAIL_SCAN_X86
  switch (active_isa()) {
    case Isa::Avx2:
      return count_avx2(hay.data(), hay.size(), needle);
    case Isa::Sse42:
      return count_sse(hay.data(), hay.size(), needle);
    case Isa::Swar:
      break;
  }
#endif
  return count_swar(hay.data(), hay.size(), needle);
}

namespace ref {

std::size_t find_byte(std::string_view hay, char needle, std::size_t from) noexcept {
  for (std::size_t i = from; i < hay.size(); ++i)
    if (hay[i] == needle) return i;
  return npos;
}

std::size_t rfind_byte(std::string_view hay, char needle) noexcept {
  for (std::size_t i = hay.size(); i > 0; --i)
    if (hay[i - 1] == needle) return i - 1;
  return npos;
}

std::size_t count_byte(std::string_view hay, char needle) noexcept {
  std::size_t total = 0;
  for (const char c : hay) total += (c == needle);
  return total;
}

}  // namespace ref

// ---------------------------------------------------------------------------
// LineCursor
// ---------------------------------------------------------------------------

bool LineCursor::next(std::string_view& line) noexcept {
  while (pos_ < text_.size()) {
    std::size_t end = find_byte(text_, '\n', pos_);
    if (end == npos) end = text_.size();
    std::size_t len = end - pos_;
    if (len > 0 && text_[pos_ + len - 1] == '\r') --len;
    const std::size_t start = pos_;
    pos_ = end + 1;
    if (len > 0) {
      line = text_.substr(start, len);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// SignatureSet
// ---------------------------------------------------------------------------

SignatureSet::SignatureSet(std::span<const Signature> signatures) {
  assert(signatures.size() <= 32);
  count_ = signatures.size();
  for (std::size_t i = 0; i < count_; ++i) {
    const Signature& sig = signatures[i];
    assert(!sig.text.empty() && sig.text.size() <= 255);
    entries_[i].text = sig.text;
    const auto bit = static_cast<std::uint32_t>(1u << i);
    if (sig.prefix_only) {
      prefix_mask_ |= bit;
      continue;
    }
    contains_mask_ |= bit;
    std::size_t anchor = 0;
    for (std::size_t j = 1; j < sig.text.size(); ++j) {
      if (kByteFreq[static_cast<unsigned char>(sig.text[j])] <
          kByteFreq[static_cast<unsigned char>(sig.text[anchor])]) {
        anchor = j;
      }
    }
    const auto key = static_cast<unsigned char>(sig.text[anchor]);
    assert(key < 0x80 && "signature anchors must be ASCII for the nibble tables");
    entries_[i].anchor_offset = static_cast<std::uint8_t>(anchor);
    key_mask_[key] |= bit;
    nibble_lo_[key & 0x0F] |= static_cast<std::uint8_t>(1u << (key >> 4));
  }
  for (unsigned h = 0; h < 8; ++h) nibble_hi_[h] = static_cast<std::uint8_t>(1u << h);
}

std::uint32_t SignatureSet::match_candidates(const char* data, std::size_t n, std::size_t i,
                                             std::uint32_t found) const noexcept {
  std::uint32_t cand = key_mask_[static_cast<unsigned char>(data[i])] & contains_mask_ & ~found;
  while (cand != 0) {
    const int bi = std::countr_zero(cand);
    cand &= cand - 1;
    const Entry& e = entries_[static_cast<std::size_t>(bi)];
    if (i >= e.anchor_offset) {
      const std::size_t start = i - e.anchor_offset;
      if (start + e.text.size() <= n &&
          std::memcmp(data + start, e.text.data(), e.text.size()) == 0) {
        found |= 1u << static_cast<unsigned>(bi);
      }
    }
  }
  return found;
}

namespace detail {

#ifdef HPCFAIL_SCAN_X86

__attribute__((target("avx2"))) std::uint32_t scan_contains_avx2(
    const SignatureSet& set, const char* p, std::size_t n, std::uint32_t found) noexcept {
  const __m256i lo_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(set.nibble_lo_)));
  const __m256i hi_tab = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(set.nibble_hi_)));
  const __m256i low4 = _mm256_set1_epi8(0x0F);
  const std::uint32_t want = set.contains_mask_;
  std::size_t i = 0;
  while (i + 32 <= n && (found & want) != want) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i lo = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(v, low4));
    const __m256i hi = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi16(v, 4), low4));
    const __m256i none =
        _mm256_cmpeq_epi8(_mm256_and_si256(lo, hi), _mm256_setzero_si256());
    std::uint32_t hits = ~static_cast<std::uint32_t>(_mm256_movemask_epi8(none));
    while (hits != 0) {
      const std::size_t pos = i + static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      found = set.match_candidates(p, n, pos, found);
    }
    i += 32;
  }
  // Vector tail: one more (possibly overlapping) block instead of a scalar
  // byte loop — payloads average well under two blocks, so the tail IS the
  // common case.  Hits in the already-scanned overlap are masked off;
  // short inputs go through a zero-padded stack copy, and zero bytes can't
  // light the nibble filter because anchors are printable ASCII.
  if (i < n && (found & want) != want) {
    __m256i v;
    std::uint32_t keep;
    std::size_t base;
    if (n >= 32) {
      base = n - 32;
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + base));
      keep = ~0u << (i - base);
    } else {
      alignas(32) char buf[32] = {};
      std::memcpy(buf, p, n);
      base = 0;
      v = _mm256_load_si256(reinterpret_cast<const __m256i*>(buf));
      keep = (1u << n) - 1u;
    }
    const __m256i lo = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(v, low4));
    const __m256i hi = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi16(v, 4), low4));
    const __m256i none =
        _mm256_cmpeq_epi8(_mm256_and_si256(lo, hi), _mm256_setzero_si256());
    std::uint32_t hits = ~static_cast<std::uint32_t>(_mm256_movemask_epi8(none)) & keep;
    while (hits != 0 && (found & want) != want) {
      const std::size_t pos = base + static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      found = set.match_candidates(p, n, pos, found);
    }
  }
  return found;
}

__attribute__((target("ssse3"))) std::uint32_t scan_contains_sse(
    const SignatureSet& set, const char* p, std::size_t n, std::uint32_t found) noexcept {
  const __m128i lo_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(set.nibble_lo_));
  const __m128i hi_tab =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(set.nibble_hi_));
  const __m128i low4 = _mm_set1_epi8(0x0F);
  const std::uint32_t want = set.contains_mask_;
  std::size_t i = 0;
  while (i + 16 <= n && (found & want) != want) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(v, low4));
    const __m128i hi = _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi16(v, 4), low4));
    const __m128i none = _mm_cmpeq_epi8(_mm_and_si128(lo, hi), _mm_setzero_si128());
    std::uint32_t hits =
        0xFFFFu & ~static_cast<std::uint32_t>(_mm_movemask_epi8(none));
    while (hits != 0) {
      const std::size_t pos = i + static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      found = set.match_candidates(p, n, pos, found);
    }
    i += 16;
  }
  // Same vector-tail trick as the AVX2 kernel, one 16-byte lane wide.
  if (i < n && (found & want) != want) {
    __m128i v;
    std::uint32_t keep;
    std::size_t base;
    if (n >= 16) {
      base = n - 16;
      v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + base));
      keep = 0xFFFFu << (i - base);
    } else {
      alignas(16) char buf[16] = {};
      std::memcpy(buf, p, n);
      base = 0;
      v = _mm_load_si128(reinterpret_cast<const __m128i*>(buf));
      keep = (1u << n) - 1u;
    }
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(v, low4));
    const __m128i hi = _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi16(v, 4), low4));
    const __m128i none = _mm_cmpeq_epi8(_mm_and_si128(lo, hi), _mm_setzero_si128());
    std::uint32_t hits =
        0xFFFFu & ~static_cast<std::uint32_t>(_mm_movemask_epi8(none)) & keep;
    while (hits != 0 && (found & want) != want) {
      const std::size_t pos = base + static_cast<std::size_t>(std::countr_zero(hits));
      hits &= hits - 1;
      found = set.match_candidates(p, n, pos, found);
    }
  }
  return found;
}

#else  // !HPCFAIL_SCAN_X86

std::uint32_t scan_contains_avx2(const SignatureSet&, const char*, std::size_t,
                                 std::uint32_t found) noexcept {
  return found;
}
std::uint32_t scan_contains_sse(const SignatureSet&, const char*, std::size_t,
                                std::uint32_t found) noexcept {
  return found;
}

#endif  // HPCFAIL_SCAN_X86

}  // namespace detail

std::uint32_t SignatureSet::match(std::string_view payload) const noexcept {
  const char* p = payload.data();
  const std::size_t n = payload.size();
  std::uint32_t found = 0;
  std::uint32_t pm = prefix_mask_;
  while (pm != 0) {
    const int bi = std::countr_zero(pm);
    pm &= pm - 1;
    const Entry& e = entries_[static_cast<std::size_t>(bi)];
    if (n >= e.text.size() && std::memcmp(p, e.text.data(), e.text.size()) == 0)
      found |= 1u << static_cast<unsigned>(bi);
  }
  if (contains_mask_ == 0 || n == 0) return found;
#ifdef HPCFAIL_SCAN_X86
  switch (active_isa()) {
    case Isa::Avx2:
      return detail::scan_contains_avx2(*this, p, n, found);
    case Isa::Sse42:
      return detail::scan_contains_sse(*this, p, n, found);
    case Isa::Swar:
      break;
  }
#endif
  const std::uint32_t want = contains_mask_;
  for (std::size_t i = 0; i < n && (found & want) != want; ++i) {
    if ((key_mask_[static_cast<unsigned char>(p[i])] & want & ~found) != 0)
      found = match_candidates(p, n, i, found);
  }
  return found;
}

std::uint32_t SignatureSet::match_ref(std::string_view payload) const noexcept {
  std::uint32_t found = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const Entry& e = entries_[i];
    const bool hit = ((prefix_mask_ >> i) & 1u) != 0
                         ? payload.substr(0, e.text.size()) == e.text
                         : payload.find(e.text) != std::string_view::npos;
    if (hit) found |= 1u << static_cast<unsigned>(i);
  }
  return found;
}

}  // namespace hpcfail::util::scan
