#include "util/time.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <cstring>

#include "util/scan.hpp"

namespace hpcfail::util {

namespace {

constexpr std::array<std::string_view, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

bool parse_int_field(std::string_view s, std::size_t pos, std::size_t len, int& out) noexcept {
  if (pos + len > s.size()) return false;
  // The fixed timestamp formats only ever ask for 1-, 2- or 4-digit
  // fields; the two wide cases go through the branchless SWAR parsers.
  switch (len) {
    case 2:
      return scan::parse_digits2(s.data() + pos, out);
    case 4:
      return scan::parse_digits4(s.data() + pos, out);
    default:
      break;
  }
  int value = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const char c = s[pos + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}

/// Month token plus its mandatory trailing space ("Mar ") as one 32-bit
/// compare instead of twelve 3-byte string compares.
int parse_month_sp(const char* p) noexcept {
  std::uint32_t key;
  std::memcpy(&key, p, 4);
  static const std::array<std::uint32_t, 12> kMonthKeys = [] {
    std::array<std::uint32_t, 12> keys{};
    for (std::size_t i = 0; i < 12; ++i) {
      const char buf[4] = {kMonthNames[i][0], kMonthNames[i][1], kMonthNames[i][2], ' '};
      std::memcpy(&keys[i], buf, 4);
    }
    return keys;
  }();
  for (std::size_t i = 0; i < 12; ++i) {
    if (key == kMonthKeys[i]) return static_cast<int>(i) + 1;
  }
  return 0;
}

bool valid_civil(int mo, int d, int h, int mi, int sec) noexcept {
  return mo >= 1 && mo <= 12 && d >= 1 && d <= 31 && h >= 0 && h < 24 &&
         mi >= 0 && mi < 60 && sec >= 0 && sec < 60;
}

}  // namespace

std::int64_t days_from_civil(int y, int m, int d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
                       static_cast<unsigned>(d) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& y, int& m, int& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t yy = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(yy + (m <= 2));
}

TimePoint make_time(const CivilTime& c) noexcept {
  const std::int64_t days = days_from_civil(c.year, c.month, c.day);
  std::int64_t sec = days * 86400 + c.hour * 3600 + c.minute * 60 + c.second;
  return TimePoint{sec * 1'000'000 + c.usec};
}

TimePoint make_time(int y, int mo, int d, int h, int mi, int s, int us) noexcept {
  return make_time(CivilTime{y, mo, d, h, mi, s, us});
}

CivilTime civil_time(TimePoint t) noexcept {
  CivilTime c;
  std::int64_t sec = t.usec / 1'000'000;
  std::int64_t us = t.usec % 1'000'000;
  if (us < 0) {
    us += 1'000'000;
    --sec;
  }
  std::int64_t days = sec / 86400;
  std::int64_t in_day = sec % 86400;
  if (in_day < 0) {
    in_day += 86400;
    --days;
  }
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(in_day / 3600);
  c.minute = static_cast<int>((in_day % 3600) / 60);
  c.second = static_cast<int>(in_day % 60);
  c.usec = static_cast<int>(us);
  return c;
}

std::string format_iso(TimePoint t) {
  const CivilTime c = civil_time(t);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%06d", c.year,
                c.month, c.day, c.hour, c.minute, c.second, c.usec);
  return buf;
}

std::string format_sql(TimePoint t) {
  const CivilTime c = civil_time(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month,
                c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string format_syslog(TimePoint t) {
  const CivilTime c = civil_time(t);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%s %2d %02d:%02d:%02d",
                std::string(kMonthNames[static_cast<std::size_t>(c.month - 1)]).c_str(),
                c.day, c.hour, c.minute, c.second);
  return buf;
}

std::optional<TimePoint> parse_iso(std::string_view s) noexcept {
  // YYYY-MM-DDTHH:MM:SS[.ffffff][Z]
  if (s.size() < 19) return std::nullopt;
  int y = 0, mo = 0, d = 0, h = 0, mi = 0, sec = 0;
  if (!parse_int_field(s, 0, 4, y) || s[4] != '-' || !parse_int_field(s, 5, 2, mo) ||
      s[7] != '-' || !parse_int_field(s, 8, 2, d) || (s[10] != 'T' && s[10] != ' ') ||
      !parse_int_field(s, 11, 2, h) || s[13] != ':' || !parse_int_field(s, 14, 2, mi) ||
      s[16] != ':' || !parse_int_field(s, 17, 2, sec)) {
    return std::nullopt;
  }
  if (!valid_civil(mo, d, h, mi, sec)) return std::nullopt;
  int us = 0;
  std::size_t pos = 19;
  if (pos < s.size() && s[pos] == '.') {
    ++pos;
    int scale = 100000;
    std::size_t digits = 0;
    while (pos < s.size() && digits < 6 && s[pos] >= '0' && s[pos] <= '9') {
      us += (s[pos] - '0') * scale;
      scale /= 10;
      ++pos;
      ++digits;
    }
    if (digits == 0) return std::nullopt;
  }
  if (pos < s.size() && s[pos] == 'Z') ++pos;
  if (pos != s.size()) return std::nullopt;
  return make_time(y, mo, d, h, mi, sec, us);
}

std::optional<TimePoint> parse_sql(std::string_view s) noexcept {
  if (s.size() != 19 || s[10] != ' ') return std::nullopt;
  return parse_iso(std::string(s.substr(0, 10)) + "T" + std::string(s.substr(11)));
}

std::optional<TimePoint> parse_syslog(std::string_view s, int year) noexcept {
  // "Mar  2 14:05:01" or "Mar 12 14:05:01"
  if (s.size() < 15) return std::nullopt;
  const int month = parse_month_sp(s.data());  // covers the s[3] == ' ' check
  if (month == 0) return std::nullopt;
  int day = 0;
  if (s[4] == ' ') {
    if (!parse_int_field(s, 5, 1, day)) return std::nullopt;
  } else {
    if (!parse_int_field(s, 4, 2, day)) return std::nullopt;
  }
  int h = 0, mi = 0, sec = 0;
  if (s[6] != ' ' || !parse_int_field(s, 7, 2, h) || s[9] != ':' ||
      !parse_int_field(s, 10, 2, mi) || s[12] != ':' || !parse_int_field(s, 13, 2, sec)) {
    return std::nullopt;
  }
  if (!valid_civil(month, day, h, mi, sec)) return std::nullopt;
  return make_time(year, month, day, h, mi, sec, 0);
}

std::optional<TimePoint> parse_syslog(std::string_view s, int base_year,
                                      int base_month) noexcept {
  const auto t = parse_syslog(s, base_year);
  if (!t) return std::nullopt;
  // The effective month comes from civil_time, not the token: "Feb 29"
  // normalizes to Mar 1 in non-leap years, and the reparse below recovers
  // the true leap day when the post-rollover year is leap.
  if (civil_time(*t).month < base_month) return parse_syslog(s, base_year + 1);
  return t;
}

std::string format_torque(TimePoint t) {
  const CivilTime c = civil_time(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%02d/%02d/%04d %02d:%02d:%02d", c.month, c.day, c.year,
                c.hour, c.minute, c.second);
  return buf;
}

std::optional<TimePoint> parse_torque(std::string_view s) noexcept {
  // MM/DD/YYYY HH:MM:SS
  if (s.size() != 19) return std::nullopt;
  int mo = 0, d = 0, y = 0, h = 0, mi = 0, sec = 0;
  if (!parse_int_field(s, 0, 2, mo) || s[2] != '/' || !parse_int_field(s, 3, 2, d) ||
      s[5] != '/' || !parse_int_field(s, 6, 4, y) || s[10] != ' ' ||
      !parse_int_field(s, 11, 2, h) || s[13] != ':' || !parse_int_field(s, 14, 2, mi) ||
      s[16] != ':' || !parse_int_field(s, 17, 2, sec)) {
    return std::nullopt;
  }
  if (!valid_civil(mo, d, h, mi, sec)) return std::nullopt;
  return make_time(y, mo, d, h, mi, sec, 0);
}

std::string format_duration(Duration d) {
  const double s = std::abs(d.to_seconds());
  char buf[32];
  const char* sign = d.usec < 0 ? "-" : "";
  if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%s%.0f ms", sign, s * 1000.0);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof buf, "%s%.1f s", sign, s);
  } else if (s < 7200.0) {
    std::snprintf(buf, sizeof buf, "%s%.1f min", sign, s / 60.0);
  } else if (s < 172800.0) {
    std::snprintf(buf, sizeof buf, "%s%.1f h", sign, s / 3600.0);
  } else {
    std::snprintf(buf, sizeof buf, "%s%.1f d", sign, s / 86400.0);
  }
  return buf;
}

}  // namespace hpcfail::util
