// Fixture: conforming instrumentation — the metric-naming check must pass.
#include "util/metrics.hpp"
#include "util/trace.hpp"

void instrument(hpcfail::util::MetricsRegistry& reg, int worker) {
  reg.counter("hpcfail.ingest.bytes_read").add(1);
  reg.gauge("hpcfail.pool.queue_depth").set(0);
  reg.histogram("hpcfail.pool.task_latency_us", {1.0, 10.0}).observe(0.5);
  reg.counter("hpcfail.pool.worker" + std::to_string(worker) + ".busy_us").add(1);
  hpcfail::util::TraceSpan span("hpcfail.engine.analyzer_cause_aggregates");
}
