file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_loggen.dir/corpus.cpp.o"
  "CMakeFiles/hpcfail_loggen.dir/corpus.cpp.o.d"
  "CMakeFiles/hpcfail_loggen.dir/degrade.cpp.o"
  "CMakeFiles/hpcfail_loggen.dir/degrade.cpp.o.d"
  "CMakeFiles/hpcfail_loggen.dir/nid_ranges.cpp.o"
  "CMakeFiles/hpcfail_loggen.dir/nid_ranges.cpp.o.d"
  "CMakeFiles/hpcfail_loggen.dir/renderer.cpp.o"
  "CMakeFiles/hpcfail_loggen.dir/renderer.cpp.o.d"
  "libhpcfail_loggen.a"
  "libhpcfail_loggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_loggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
