// Fixture: a pool user whose tasks capture by value only (clean).
#include <cstddef>

struct Pool {
  template <typename F> int submit(F f) { return f(), 0; }
  template <typename F> void parallel_for_ranges(std::size_t n, F f) { f(0, n); }
};

int run(Pool& pool) {
  const int seed = 7;
  pool.parallel_for_ranges(4, [seed](std::size_t b, std::size_t e) {
    (void)(seed + int(e - b));
  });
  return pool.submit([seed] { return seed + 1; });
}
